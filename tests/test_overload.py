"""Tests for the bounded priority ingest queue (alert-storm shedding)."""

import pytest

from repro.core.overload import (
    CLASS_ENFORCING,
    CLASS_MONITOR,
    CLASS_TELEMETRY,
    IngestConfig,
    IngestQueue,
)


def make_queue(sim, handled, **kwargs):
    config = IngestConfig(**kwargs)
    return IngestQueue(sim, handler=handled.append, config=config)


class TestConfig:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            IngestConfig(capacity=0)

    def test_rejects_bad_watermarks(self):
        with pytest.raises(ValueError):
            IngestConfig(low_watermark=0.8, high_watermark=0.5)
        with pytest.raises(ValueError):
            IngestConfig(low_watermark=0.0)

    def test_rejects_negative_service_time(self):
        with pytest.raises(ValueError):
            IngestConfig(service_time=-1.0)


class TestPriorityService:
    def test_strict_class_order(self, sim):
        handled = []
        q = make_queue(sim, handled, capacity=8, service_time=0.01)
        q.offer(CLASS_TELEMETRY, "t1")
        q.offer(CLASS_MONITOR, "m1")
        q.offer(CLASS_ENFORCING, "e1")
        q.offer(CLASS_TELEMETRY, "t2")
        sim.run()
        assert handled == ["e1", "m1", "t1", "t2"]

    def test_fifo_mode_is_arrival_order(self, sim):
        handled = []
        q = make_queue(
            sim, handled, capacity=8, service_time=0.01, prioritized=False, shed=False
        )
        q.offer(CLASS_TELEMETRY, "t1")
        q.offer(CLASS_ENFORCING, "e1")
        sim.run()
        assert handled == ["t1", "e1"]

    def test_service_rate_paces_handling(self, sim):
        handled = []
        q = make_queue(sim, handled, capacity=8, service_time=0.5)
        times = []
        q.on_processed = lambda cls, lat: times.append(sim.now)
        for i in range(3):
            q.offer(CLASS_ENFORCING, i)
        sim.run()
        assert times == [0.5, 1.0, 1.5]


class TestEviction:
    def test_full_queue_evicts_newest_lower_class(self, sim):
        handled = []
        q = make_queue(sim, handled, capacity=2, service_time=1.0, shed=False)
        assert q.offer(CLASS_TELEMETRY, "t1")
        assert q.offer(CLASS_TELEMETRY, "t2")
        # Full.  An enforcing arrival evicts the *newest* telemetry entry.
        assert q.offer(CLASS_ENFORCING, "e1")
        assert q.dropped[CLASS_TELEMETRY] == 1
        sim.run()
        assert handled == ["e1", "t1"]

    def test_equal_class_is_dropped_not_evicted(self, sim):
        handled = []
        q = make_queue(sim, handled, capacity=1, service_time=1.0, shed=False)
        assert q.offer(CLASS_ENFORCING, "e1")
        assert not q.offer(CLASS_ENFORCING, "e2")
        assert q.dropped[CLASS_ENFORCING] == 1

    def test_fifo_mode_is_drop_tail(self, sim):
        handled = []
        q = make_queue(
            sim, handled, capacity=1, service_time=1.0, prioritized=False, shed=False
        )
        assert q.offer(CLASS_TELEMETRY, "t1")
        assert not q.offer(CLASS_ENFORCING, "e1")
        assert q.dropped[CLASS_ENFORCING] == 1
        sim.run()
        assert handled == ["t1"]


class TestShedMode:
    def test_watermark_enter_and_exit(self, sim):
        handled = []
        q = make_queue(
            sim,
            handled,
            capacity=10,
            service_time=0.01,
            high_watermark=0.5,
            low_watermark=0.2,
        )
        shed_signals = []
        q.on_shed = shed_signals.append
        for i in range(5):
            q.offer(CLASS_MONITOR, i)
        assert q.shedding  # depth hit 5 >= 0.5 * 10
        # Telemetry is refused at the door while shedding.
        assert not q.offer(CLASS_TELEMETRY, "t")
        assert q.dropped[CLASS_TELEMETRY] == 1
        # Higher classes are still admitted.
        assert q.offer(CLASS_ENFORCING, "e")
        sim.run()
        assert not q.shedding  # drained below 0.2 * 10
        assert shed_signals == [True, False]
        assert q.shed_transitions == 2

    def test_shed_transitions_journaled(self, sim):
        handled = []
        q = make_queue(
            sim, handled, capacity=4, service_time=0.01, high_watermark=0.5
        )
        for i in range(2):
            q.offer(CLASS_TELEMETRY, i)
        sim.run()
        kinds = [e.kind for e in sim.journal.entries() if e.kind.startswith("shed")]
        assert kinds == ["shed-on", "shed-off"]

    def test_shed_disabled_never_triggers(self, sim):
        handled = []
        q = make_queue(sim, handled, capacity=2, service_time=0.01, shed=False)
        q.offer(CLASS_TELEMETRY, "t1")
        q.offer(CLASS_TELEMETRY, "t2")
        assert not q.shedding and q.shed_transitions == 0


class TestWouldShed:
    def test_reflects_shed_state_and_class(self, sim):
        handled = []
        q = make_queue(
            sim, handled, capacity=10, service_time=0.01, high_watermark=0.5
        )
        assert not q.would_shed(CLASS_TELEMETRY)
        for i in range(5):
            q.offer(CLASS_MONITOR, i)
        assert q.shedding
        # Only telemetry is sheddable; higher classes always pass.
        assert q.would_shed(CLASS_TELEMETRY)
        assert not q.would_shed(CLASS_MONITOR)
        assert not q.would_shed(CLASS_ENFORCING)
        sim.run()
        assert not q.would_shed(CLASS_TELEMETRY)

    def test_false_when_shedding_disabled(self, sim):
        handled = []
        q = make_queue(sim, handled, capacity=2, service_time=1.0, shed=False)
        q.offer(CLASS_TELEMETRY, "t1")
        q.offer(CLASS_TELEMETRY, "t2")
        assert not q.would_shed(CLASS_TELEMETRY)

    def test_offer_uses_the_same_predicate(self, sim):
        """``offer`` refuses telemetry exactly when ``would_shed`` says so
        -- the defer-to-buffer consumer relies on this equivalence."""
        handled = []
        q = make_queue(
            sim, handled, capacity=10, service_time=0.01, high_watermark=0.5
        )
        for i in range(5):
            q.offer(CLASS_MONITOR, i)
        assert q.would_shed(CLASS_TELEMETRY)
        assert not q.offer(CLASS_TELEMETRY, "t")


class TestClear:
    def test_clear_discards_and_cancels_service(self, sim):
        handled = []
        q = make_queue(sim, handled, capacity=8, service_time=0.5)
        q.offer(CLASS_ENFORCING, "e1")
        q.offer(CLASS_TELEMETRY, "t1")
        assert q.clear() == 2
        sim.run()
        assert handled == [] and q.depth() == 0
