"""Tests for the global view and the event bus."""

from repro.core.events import EventBus
from repro.core.view import GlobalView


class TestGlobalView:
    def test_set_get(self, sim):
        view = GlobalView(sim)
        assert view.get("ctx:cam") is None
        assert view.set("ctx:cam", "normal") is True
        assert view.get("ctx:cam") == "normal"

    def test_set_same_value_returns_false(self, sim):
        view = GlobalView(sim)
        view.set("k", "v")
        assert view.set("k", "v") is False
        assert view.set("k", "w") is True

    def test_change_notification(self, sim):
        view = GlobalView(sim)
        changes = []
        view.subscribe(lambda k, old, new: changes.append((k, old, new)))
        view.set("k", "a")
        view.set("k", "a")  # no change -> no event
        view.set("k", "b")
        assert changes == [("k", None, "a"), ("k", "a", "b")]

    def test_age_tracks_refresh(self, sim):
        view = GlobalView(sim)
        view.set("k", "v")
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert view.age("k") == 10.0
        view.set("k", "v")  # refresh without change
        assert view.age("k") == 0.0
        assert view.age("ghost") is None

    def test_system_state_with_defaults(self, sim):
        view = GlobalView(sim)
        view.set("ctx:cam", "suspicious")
        state = view.system_state(
            ["ctx:cam", "env:smoke"], defaults={"env:smoke": "clear"}
        )
        assert state["ctx:cam"] == "suspicious"
        assert state["env:smoke"] == "clear"

    def test_missing_key_without_default_is_unknown(self, sim):
        view = GlobalView(sim)
        state = view.system_state(["env:ghost"])
        assert state["env:ghost"] == "unknown"

    def test_snapshot(self, sim):
        view = GlobalView(sim)
        view.set("a", "1")
        view.set("b", "2")
        assert view.snapshot() == {"a": "1", "b": "2"}


class TestEventBus:
    def test_kind_subscription(self, sim):
        bus = EventBus(sim)
        got = []
        bus.subscribe("alert", got.append)
        bus.publish("alert", source="mbox", device="cam", detail=1)
        bus.publish("context", source="sensors")
        assert len(got) == 1
        assert got[0].device == "cam"
        assert got[0].body == {"detail": 1}

    def test_wildcard_subscription(self, sim):
        bus = EventBus(sim)
        got = []
        bus.subscribe("*", got.append)
        bus.publish("alert", source="a")
        bus.publish("context", source="b")
        assert len(got) == 2

    def test_events_query(self, sim):
        bus = EventBus(sim)
        bus.publish("alert", source="m", device="cam")
        bus.publish("alert", source="m", device="plug")
        bus.publish("context", source="s")
        assert len(bus.events(kind="alert")) == 2
        assert len(bus.events(device="cam")) == 1
        assert len(bus.events()) == 3

    def test_timestamps(self, sim):
        bus = EventBus(sim)
        sim.schedule(5.0, lambda: bus.publish("alert", source="m"))
        sim.run()
        assert bus.events()[0].at == 5.0

    def test_history_bounded(self, sim):
        bus = EventBus(sim, history_limit=10)
        for i in range(25):
            bus.publish("x", source=str(i))
        assert len(bus.history) <= 11
        assert bus.published == 25
