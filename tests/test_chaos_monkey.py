"""Chaos-monkey integration tests (the §4.2 "monkeying" idea, concrete).

A seeded monkey drives a *protected* home with hundreds of random actions
-- attacker packets to random ports, hub commands, occupancy flips, link
flaps -- and afterwards we check the security invariants held throughout:

- no device ever executed an unauthenticated attacker command;
- the occupancy-gated oven plug was never on while the house was empty
  (unless the gate's view was legitimately stale);
- the simulation itself stayed healthy (no stuck queues, no exceptions).

This is not a statistical claim -- it is a randomized search for invariant
violations, run at several seeds.
"""

from __future__ import annotations

import random

import pytest

from repro.core.deployment import SecuredDeployment
from repro.core.orchestrator import build_recommended_posture
from repro.devices import protocol
from repro.devices.library import (
    WEMO_BACKDOOR_PORT,
    smart_camera,
    smart_plug,
    window_actuator,
)
from repro.netsim.packet import Packet
from repro.policy.posture import MboxSpec, Posture

COMMANDS = ["on", "off", "open", "close", "record", "stop", "go", "__pivot__"]
PORTS = [80, 8080, 53, WEMO_BACKDOOR_PORT, 1234, 31337]
DEVICES = ["cam", "oven_plug", "window"]


def build_protected_home():
    dep = SecuredDeployment.build()
    dep.add_device(smart_camera, "cam")
    dep.add_device(smart_plug, "oven_plug", load={"hazard": 1.0})
    dep.add_device(window_actuator, "window")
    attacker = dep.add_attacker()
    dep.finalize()
    trusted = (dep.HUB, dep.CONTROLLER)
    dep.secure(
        "cam",
        build_recommended_posture("password_proxy", "cam", new_password="S3c!"),
    )
    dep.secure(
        "oven_plug",
        Posture.make(
            "gate+fw",
            MboxSpec.make(
                "stateful_firewall", trusted_sources=sorted(trusted), default="drop"
            ),
        ),
    )
    dep.secure(
        "window",
        build_recommended_posture("stateful_firewall", "window", trusted_sources=trusted),
    )
    return dep, attacker


def monkey_run(seed: int, actions: int = 300):
    rng = random.Random(seed)
    dep, attacker = build_protected_home()
    cluster_link = next(
        link
        for link in dep.topology.links
        if {link.a.name, link.b.name} == {"edge", "cluster"}
    )
    t = 1.0
    for __ in range(actions):
        t += rng.uniform(0.05, 1.0)
        roll = rng.random()
        if roll < 0.5:
            # attacker noise: random payloads at random ports
            packet = Packet(
                src="attacker",
                dst=rng.choice(DEVICES),
                protocol=rng.choice(["http", "iot", "udp", "dns"]),
                dport=rng.choice(PORTS),
                payload={
                    "cmd": rng.choice(COMMANDS),
                    "action": rng.choice(["login", "get", "zzz"]),
                    "username": "admin",
                    "password": rng.choice(["admin", "guess", "S3c!"]),
                },
            )
            dep.sim.schedule(t, attacker.fire_and_forget, packet)
        elif roll < 0.75:
            # the hub legitimately drives a device
            device = rng.choice(DEVICES)
            command = rng.choice(["on", "off", "record", "stop"])
            session = dep.devices[device].sessions and next(
                iter(dep.devices[device].sessions)
            )

            def hub_send(device=device, command=command, session=session):
                dep.hub.send(
                    protocol.command("hub", device, command, session=session),
                    next(iter(dep.hub.ports)),
                )

            dep.sim.schedule(t, hub_send)
        elif roll < 0.9:
            level = rng.choice(["absent", "present"])
            dep.sim.schedule(
                t, lambda lvl=level: dep.env.discrete("occupancy").set(lvl)
            )
        else:
            # flap the cluster link briefly
            dep.sim.schedule(t, cluster_link.fail)
            dep.sim.schedule(t + rng.uniform(0.1, 0.5), cluster_link.restore)
    dep.run(until=t + 30.0)
    return dep


@pytest.mark.parametrize("seed", [1, 7, 23, 99])
def test_monkey_never_breaches_protected_devices(seed):
    dep = monkey_run(seed)
    for name, device in dep.devices.items():
        # no unauthenticated attacker command ever executed
        breaches = [
            r
            for r in device.command_log
            if r.accepted
            and r.src == "attacker"
            and r.via in ("backdoor", "noauth", "open")
        ]
        assert breaches == [], (name, breaches)
        assert "attacker" not in device.compromised_by, name
    # no loot either
    assert dep.attackers["attacker"].loot == []


@pytest.mark.parametrize("seed", [1, 7, 23, 99])
def test_monkey_simulation_stays_healthy(seed):
    dep = monkey_run(seed)
    # only the environment's periodic tick may remain scheduled
    assert dep.sim.events_pending() <= 1
    assert dep.sim.events_processed > 300
    # benign hub traffic kept flowing despite the chaos
    hub_accepted = sum(
        1
        for device in dep.devices.values()
        for r in device.command_log
        if r.accepted and r.src == "hub"
    )
    assert hub_accepted > 0
