"""Unit tests for the SLO plane (:mod:`repro.obs.slo`).

Covers the declaration contract, the multiwindow burn-rate math (fast
AND slow must both exceed their thresholds to breach; recovery needs
only the fast window to cool), the journaled breach->recover chains
with their shared trace id, and the null-instrument guarantee under
``observe=False``.
"""

import pytest

from repro.netsim.simulator import Simulator
from repro.obs.slo import DEFAULT_PERIOD, SLO, SloMonitor


def make_slo(**over):
    base = dict(
        name="reaction-latency",
        subsystem="pipeline",
        objective="95% of reactions within 2s",
        target=0.95,
        fast_window=10.0,
        slow_window=60.0,
        fast_burn=4.0,
        slow_burn=1.0,
        signal=lambda: (0, 0),
    )
    base.update(over)
    return SLO(**base)


def tracked(slo):
    """A tracker for ``slo`` on a fresh observed simulator."""
    sim = Simulator()
    monitor = SloMonitor(sim, period=1.0)
    tracker = monitor.add(slo)
    return sim, monitor, tracker


class TestDeclaration:
    @pytest.mark.parametrize(
        "over",
        [
            {"target": 0.0},
            {"target": 1.0},
            {"target": -0.5},
            {"fast_window": 0.0},
            {"slow_window": -1.0},
            {"fast_window": 120.0},  # fast > slow
            {"severity": "meltdown"},
            {"signal": None},  # neither signal nor check
            {"check": lambda: True},  # both signal and check
        ],
    )
    def test_invalid_declarations_rejected(self, over):
        with pytest.raises(ValueError):
            make_slo(**over)

    def test_budget_is_one_minus_target(self):
        assert make_slo(target=0.95).budget == pytest.approx(0.05)
        assert make_slo(target=0.5).budget == pytest.approx(0.5)


class TestBurnMath:
    def test_burn_is_error_fraction_over_budget(self):
        # target 0.9 -> budget 0.1; an observed 10% error rate burns at
        # exactly 1.0 (consuming the budget), 20% burns at 2.0.
        counts = {"good": 0, "bad": 0}
        __, __, t = tracked(
            make_slo(target=0.9, signal=lambda: (counts["good"], counts["bad"]))
        )
        t.evaluate(0.0)
        counts.update(good=90, bad=10)
        t.evaluate(1.0)
        assert t.burn_fast() == pytest.approx(1.0)
        counts.update(good=160, bad=40)
        t.evaluate(2.0)
        assert t.burn_fast() == pytest.approx(2.0)

    def test_fast_window_forgets_but_slow_window_remembers(self):
        # All the errors land early; once the fast window slides past
        # them its burn drops to zero while the slow window still sees
        # the full delta.
        counts = {"good": 0, "bad": 0}
        __, __, t = tracked(
            make_slo(
                target=0.9,
                fast_window=5.0,
                slow_window=100.0,
                signal=lambda: (counts["good"], counts["bad"]),
            )
        )
        t.evaluate(0.0)
        counts.update(good=50, bad=50)
        t.evaluate(1.0)
        assert t.burn_fast() > 0
        for at in range(2, 12):
            counts["good"] += 10  # clean traffic from here on
            t.evaluate(float(at))
        assert t.burn_fast() == pytest.approx(0.0)
        assert t.burn_slow() > 0

    def test_counter_reset_clamped_to_zero(self):
        # A source that rebinds after failover may restart its cumulative
        # counters from zero; the negative delta must clamp, not explode.
        counts = {"good": 1000, "bad": 100}
        __, __, t = tracked(
            make_slo(target=0.9, signal=lambda: (counts["good"], counts["bad"]))
        )
        t.evaluate(0.0)
        counts.update(good=5, bad=0)
        t.evaluate(1.0)
        assert t.burn_fast() == 0.0
        assert t.state == "ok"

    def test_check_style_counts_ticks_and_records_last_ok(self):
        flags = iter([True, True, True, False, False])
        __, __, t = tracked(
            make_slo(target=0.5, signal=None, check=lambda: next(flags))
        )
        for at in range(5):
            t.evaluate(float(at))
        # Deltas past the baseline sample: 2 good + 2 bad ticks -> 50%
        # errors; budget 0.5 -> burn 1.0.
        assert t.burn_fast() == pytest.approx(1.0)
        assert t.last_ok is False

    def test_burn_gauges_track_the_trackers(self):
        counts = {"good": 0, "bad": 0}
        sim, __, t = tracked(
            make_slo(target=0.9, signal=lambda: (counts["good"], counts["bad"]))
        )
        counts.update(good=0, bad=0)
        t.evaluate(0.0)
        counts.update(good=80, bad=20)
        t.evaluate(1.0)
        fast = sim.metrics.value(
            "slo_burn_rate", slo="reaction-latency", window="fast"
        )
        slow = sim.metrics.value(
            "slo_burn_rate", slo="reaction-latency", window="slow"
        )
        assert fast == pytest.approx(t.burn_fast())
        assert slow == pytest.approx(t.burn_slow())
        assert sim.metrics.value("slo_breached", slo="reaction-latency") == 0


class TestBreachStateMachine:
    def test_fast_alone_does_not_breach(self):
        # Multiwindow AND: a short error burst trips the fast window but
        # not the slow one, so no breach fires (blip suppression).
        counts = {"good": 0, "bad": 0}
        __, __, t = tracked(
            make_slo(
                target=0.5,
                fast_window=2.0,
                slow_window=200.0,
                fast_burn=1.0,
                slow_burn=1.0,
                signal=lambda: (counts["good"], counts["bad"]),
            )
        )
        for at in range(100):  # long clean history fills the slow window
            counts["good"] += 10
            t.evaluate(float(at))
        counts["bad"] += 10  # one all-bad sample: fast=2.0, slow ~0
        t.evaluate(100.0)
        assert t.burn_fast() >= 1.0
        assert t.burn_slow() < 1.0
        assert t.state == "ok" and t.breaches == 0

    def test_breach_and_recovery_are_journaled_with_one_trace(self):
        sim = Simulator()
        monitor = SloMonitor(sim, period=1.0)
        window = {"bad": False}
        tracker = monitor.add(
            make_slo(
                name="control-reachability",
                target=0.99,
                fast_window=5.0,
                slow_window=30.0,
                fast_burn=10.0,
                slow_burn=2.0,
                signal=None,
                check=lambda: not window["bad"],
            )
        )
        monitor.start()
        sim.schedule_at(10.0, lambda: window.update(bad=True))
        sim.schedule_at(20.0, lambda: window.update(bad=False))
        sim.run(until=60.0)

        assert tracker.breaches == 1 and tracker.recoveries == 1
        assert tracker.state == "ok" and tracker.breached_at is None
        breach = sim.journal.entries(kind="slo-breach")
        recover = sim.journal.entries(kind="slo-recover")
        assert len(breach) == len(recover) == 1
        assert 10.0 <= breach[0].at <= 20.0 < recover[0].at
        assert breach[0].trace_id is not None
        assert breach[0].trace_id == recover[0].trace_id
        assert breach[0].fields["subsystem"] == "pipeline"
        assert breach[0].fields["burn_fast"] >= 10.0
        assert recover[0].fields["breach_s"] == pytest.approx(
            recover[0].at - breach[0].at
        )
        stages = [s.stage for s in sim.tracer.spans(breach[0].trace_id)]
        assert stages == ["slo-breach", "slo-recover"]
        assert sim.metrics.value(
            "slo_breaches", slo="control-reachability"
        ) == 1

    def test_status_reports_burns_state_and_value(self):
        counts = {"good": 0, "bad": 0}
        __, __, t = tracked(
            make_slo(
                target=0.9,
                signal=lambda: (counts["good"], counts["bad"]),
                value=lambda: 3.25,
                unit="s",
            )
        )
        t.evaluate(0.0)
        counts.update(good=90, bad=10)
        t.evaluate(1.0)
        status = t.status()
        assert status["state"] == "ok"
        assert status["burn_fast"] == pytest.approx(1.0)
        assert status["value"] == 3.25 and status["unit"] == "s"
        assert status["breaches"] == 0 and status["recoveries"] == 0


class TestMonitor:
    def test_default_period_matches_catalog_minimum_fast_window(self):
        assert DEFAULT_PERIOD == 5.0
        assert SloMonitor(Simulator()).period == DEFAULT_PERIOD

    def test_duplicate_names_rejected(self):
        __, monitor, __ = tracked(make_slo())
        with pytest.raises(ValueError, match="duplicate"):
            monitor.add(make_slo())

    def test_tick_evaluates_every_tracker(self):
        sim = Simulator()
        monitor = SloMonitor(sim, period=2.0)
        a = monitor.add(make_slo(name="a"))
        b = monitor.add(make_slo(name="b", subsystem="streams"))
        seen = []
        monitor.on_tick = seen.append
        monitor.start()
        sim.run(until=10.0)
        assert monitor.ticks == 5
        assert len(a._fast_samples) == len(b._fast_samples) == 5
        assert seen == [2.0, 4.0, 6.0, 8.0, 10.0]
        monitor.stop()
        sim.run(until=20.0)
        assert monitor.ticks == 5

    def test_disabled_monitor_is_inert(self):
        sim = Simulator(observe=False)
        monitor = SloMonitor(sim)
        assert monitor.enabled is False
        assert monitor.add(make_slo()) is None
        monitor.start()
        sim.run(until=100.0)
        assert sim.events_processed == 0
        assert monitor.snapshot() == {"enabled": False}
        assert monitor.breach_total() == 0 and monitor.breached() == []

    def test_snapshot_shape(self):
        sim, monitor, __ = tracked(make_slo())
        snap = monitor.snapshot()
        assert snap["enabled"] is True
        assert snap["period_s"] == 1.0
        assert [s["name"] for s in snap["slos"]] == ["reaction-latency"]
