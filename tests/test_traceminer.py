"""Tests for mining signatures from attack traces."""

import pytest

from repro.learning.traceminer import (
    LabelledTrace,
    MiningError,
    mine_and_publish,
    mine_signature,
)
from repro.netsim.packet import Packet


def attack_login(password="admin", src="attacker"):
    return Packet(
        src=src,
        dst="cam",
        protocol="http",
        dport=80,
        payload={"action": "login", "username": "admin", "password": password},
    )


def benign_get(src="owner"):
    return Packet(
        src=src,
        dst="cam",
        protocol="http",
        dport=80,
        payload={"action": "get", "resource": "status", "session": "tok"},
    )


def test_mines_exact_constant_attack():
    trace = LabelledTrace.make(
        attack=[attack_login(), attack_login()],
        benign=[benign_get()],
    )
    signature = mine_signature(trace, sku="dlink:cam:1.0", flaw_class="exposed-credentials")
    assert signature.match.matches(attack_login(src="someone-else"))
    assert not signature.match.matches(benign_get())
    contains = dict(signature.match.payload_contains)
    assert contains["action"] == "login"
    assert contains["password"] == "admin"


def test_varying_fields_become_presence_tests():
    trace = LabelledTrace.make(
        attack=[attack_login("guess1"), attack_login("guess2"), attack_login("guess3")],
    )
    signature = mine_signature(trace, sku="s")
    contains = dict(signature.match.payload_contains)
    assert "password" not in contains           # value varies across packets
    assert "password" in signature.match.payload_keys
    assert contains["action"] == "login"
    assert signature.match.matches(attack_login("another-guess"))


def test_sensitive_values_never_shipped():
    attack = Packet(
        src="attacker", dst="cam", dport=80,
        payload={"action": "get", "session": "stolen-token-123"},
    )
    trace = LabelledTrace.make(attack=[attack, attack.copy()])
    signature = mine_signature(trace, sku="s")
    contains = dict(signature.match.payload_contains)
    assert "session" not in contains
    assert "session" in signature.match.payload_keys


def test_precision_guard_relaxes_when_possible():
    # attack and benign share action=login; attack distinguished by dport
    attack = Packet(src="a", dst="cam", protocol="iot", dport=49153, payload={"cmd": "on"})
    benign = Packet(src="hub", dst="cam", protocol="iot", dport=8080, payload={"cmd": "on"})
    trace = LabelledTrace.make(attack=[attack, attack.copy()], benign=[benign])
    signature = mine_signature(trace, sku="s")
    assert signature.match.dport == 49153
    assert not signature.match.matches(benign)


def test_mining_fails_rather_than_overmatching():
    same = Packet(src="x", dst="cam", dport=80, payload={"action": "get"})
    trace = LabelledTrace.make(attack=[same], benign=[same.copy()])
    with pytest.raises(MiningError):
        mine_signature(trace, sku="s")


def test_empty_attack_rejected():
    with pytest.raises(ValueError):
        LabelledTrace.make(attack=[])


def test_mine_and_publish_roundtrip(sim):
    from repro.learning.repository import CrowdRepository

    repo = CrowdRepository(sim)
    got = []
    repo.subscribe("site-b", "dlink:cam:1.0", got.append)
    trace = LabelledTrace.make(
        attack=[attack_login(), attack_login()], benign=[benign_get()]
    )
    sig_id = mine_and_publish(
        repo, trace, sku="dlink:cam:1.0", reporter="site-a",
        flaw_class="exposed-credentials", recommended_posture="password_proxy",
    )
    assert sig_id is not None
    sim.run()
    assert len(got) == 1
    assert got[0].recommended_posture == "password_proxy"
    # and the delivered (anonymized) signature still catches the attack
    assert got[0].match.matches(attack_login())
