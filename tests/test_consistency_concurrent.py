"""Regression tests: overlapping two-phase updates.

The original implementation captured each switch's active version at
*scheduling* time; overlapping pushes then garbage-collected the wrong
epoch and could flip a switch backwards.  These tests pin the fixed
semantics: versions are monotone, stale epochs are collected, and the
final state is always the newest pushed configuration.
"""

from repro.netsim.switch import Switch
from repro.sdn.channel import ControlChannel
from repro.sdn.consistency import ConsistentUpdater
from repro.sdn.flowrule import Action, FlowMatch, FlowRule


def setup(sim, latency=0.01):
    channel = ControlChannel(sim, latency=latency)
    updater = ConsistentUpdater(sim, channel)
    switch = Switch("sw", sim)
    return updater, switch


def rules(tag):
    return [
        FlowRule(match=FlowMatch(dst=tag), actions=(Action.drop(),))
    ]


def test_overlapping_pushes_converge_to_newest(sim):
    updater, switch = setup(sim)
    r1 = updater.push_two_phase({switch: rules("epoch1")})
    # second push starts before the first commits
    sim.run(until=0.005)
    r2 = updater.push_two_phase({switch: rules("epoch2")})
    sim.run()
    assert switch.active_version == r2.version
    live = [r for r in switch.flow_table if r.version == switch.active_version]
    assert [r.match.dst for r in live] == ["epoch2"]
    # no stale epochs left behind
    assert all(r.version == r2.version for r in switch.flow_table)
    assert r1.version < r2.version


def test_version_never_steps_backwards(sim):
    updater, switch = setup(sim, latency=0.01)
    updater.push_two_phase({switch: rules("a")})
    updater.push_two_phase({switch: rules("b")})
    updater.push_two_phase({switch: rules("c")})
    observed = []

    orig = switch.set_active_version

    def spy(version):
        observed.append(version)
        orig(version)

    switch.set_active_version = spy
    sim.run()
    assert observed == sorted(observed)
    assert switch.active_version == max(observed)


def test_three_way_interleaving_many_switches(sim):
    channel = ControlChannel(sim, latency=0.01)
    updater = ConsistentUpdater(sim, channel)
    switches = [Switch(f"sw{i}", sim) for i in range(5)]
    # different per-switch latencies make the flips land out of order
    for i, sw in enumerate(switches):
        channel.set_latency_to(sw.name, 0.005 * (i + 1))
    last = None
    for tag in ("a", "b", "c"):
        last = updater.push_two_phase({sw: rules(tag) for sw in switches})
        sim.run(until=sim.now + 0.004)
    sim.run()
    for sw in switches:
        assert sw.active_version == last.version
        assert all(r.version == last.version for r in sw.flow_table)
        assert [r.match.dst for r in sw.flow_table] == ["c"]


def test_reports_all_commit(sim):
    updater, switch = setup(sim)
    updater.push_two_phase({switch: rules("a")})
    updater.push_two_phase({switch: rules("b")})
    sim.run()
    assert all(r.committed_at is not None for r in updater.reports)
