"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learning.reputation import ReputationSystem
from repro.netsim.packet import Packet
from repro.netsim.simulator import Simulator
from repro.policy.builder import PolicyBuilder
from repro.policy.context import SystemState
from repro.policy.fsm import PolicyFSM, StatePredicate
from repro.policy.posture import MboxSpec, Posture
from repro.policy.pruning import PrunedPolicy
from repro.sdn.flowrule import FlowMatch


# ----------------------------------------------------------------------
# Simulator: event ordering is total and time never goes backwards
# ----------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=50))
def test_simulator_fires_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), st.integers()),
        max_size=30,
    )
)
def test_simultaneous_events_preserve_schedule_order(items):
    sim = Simulator()
    fired = []
    for delay, tag in items:
        sim.schedule(round(delay, 1), fired.append, (round(delay, 1), tag))
    sim.run()
    # stable: among equal times, original order preserved
    for t in {time for time, __ in fired}:
        same_t = [tag for time, tag in fired if time == t]
        expected = [tag for time, tag in ((round(d, 1), g) for d, g in items) if time == t]
        assert same_t == expected


# ----------------------------------------------------------------------
# FlowMatch: overlap and subsumption laws
# ----------------------------------------------------------------------
field_strategy = st.one_of(st.none(), st.sampled_from(["a", "b", "c"]))
port_strategy = st.one_of(st.none(), st.sampled_from([80, 8080, 53]))


@st.composite
def flow_matches(draw):
    return FlowMatch(
        src=draw(field_strategy),
        dst=draw(field_strategy),
        protocol=draw(st.one_of(st.none(), st.sampled_from(["tcp", "udp"]))),
        dport=draw(port_strategy),
    )


@st.composite
def packets(draw):
    return Packet(
        src=draw(st.sampled_from(["a", "b", "c"])),
        dst=draw(st.sampled_from(["a", "b", "c"])),
        protocol=draw(st.sampled_from(["tcp", "udp"])),
        dport=draw(st.sampled_from([80, 8080, 53])),
    )


@given(flow_matches(), flow_matches(), packets())
def test_subsumption_implies_match_containment(general, specific, packet):
    if general.subsumes(specific) and specific.matches(packet):
        assert general.matches(packet)


@given(flow_matches(), flow_matches(), packets())
def test_shared_match_implies_overlap(a, b, packet):
    if a.matches(packet) and b.matches(packet):
        assert a.overlaps(b)
        assert b.overlaps(a)


@given(flow_matches(), flow_matches())
def test_overlap_symmetric(a, b):
    assert a.overlaps(b) == b.overlaps(a)


@given(flow_matches())
def test_wildcard_subsumes_everything(match):
    assert FlowMatch().subsumes(match)


# ----------------------------------------------------------------------
# StatePredicate: same laws at the policy level
# ----------------------------------------------------------------------
VAR_KEYS = ["ctx:a", "ctx:b", "env:x"]
VALUES = ["0", "1", "2"]


@st.composite
def predicates(draw):
    keys = draw(st.lists(st.sampled_from(VAR_KEYS), unique=True, max_size=3))
    return StatePredicate.make({k: draw(st.sampled_from(VALUES)) for k in keys})


@st.composite
def states(draw):
    return SystemState({k: draw(st.sampled_from(VALUES)) for k in VAR_KEYS})


@given(predicates(), predicates(), states())
def test_predicate_subsumption_law(general, specific, state):
    if general.subsumes(specific) and specific.matches(state):
        assert general.matches(state)


@given(predicates(), predicates(), states())
def test_predicate_shared_match_implies_overlap(a, b, state):
    if a.matches(state) and b.matches(state):
        assert a.overlaps(b)


# ----------------------------------------------------------------------
# Pruning soundness: projected lookup == brute-force lookup, always
# ----------------------------------------------------------------------
POSTURES = [
    Posture.make("p0"),
    Posture.make("p1", MboxSpec.make("command_filter", deny=["open"])),
    Posture.make("p2", MboxSpec.make("stateful_firewall", default="drop")),
]


@st.composite
def random_policies(draw):
    n_devices = draw(st.integers(min_value=1, max_value=4))
    n_env = draw(st.integers(min_value=0, max_value=2))
    builder = PolicyBuilder()
    devices = [f"d{i}" for i in range(n_devices)]
    for name in devices:
        builder.device(name, contexts=("n", "s"))
    for i in range(n_env):
        builder.env(f"e{i}", ("0", "1"))
    variables = [f"ctx:{d}" for d in devices] + [f"env:e{i}" for i in range(n_env)]
    n_rules = draw(st.integers(min_value=0, max_value=6))
    for __ in range(n_rules):
        keys = draw(st.lists(st.sampled_from(variables), unique=True, min_size=1, max_size=3))
        requirements = {}
        for key in keys:
            domain = ("n", "s") if key.startswith("ctx:") else ("0", "1")
            requirements[key] = draw(st.sampled_from(domain))
        scope = builder.when(keys[0], requirements[keys[0]])
        for key in keys[1:]:
            scope.also(key, requirements[key])
        scope.give(
            draw(st.sampled_from(devices)),
            draw(st.sampled_from(POSTURES)),
            priority=draw(st.sampled_from([100, 200, 300])),
        )
    return builder.build()


@settings(max_examples=40, deadline=None)
@given(random_policies())
def test_pruned_policy_sound_for_random_policies(policy):
    pruned = PrunedPolicy(policy)
    for state in policy.enumerate_states(limit=256):
        for device in policy.devices:
            assert pruned.posture_for(state, device) == policy.posture_for(
                state, device
            )


@settings(max_examples=40, deadline=None)
@given(random_policies())
def test_incremental_pruned_updates_match_rebuild(policy):
    """Adding rules one by one through ``PrunedPolicy.add_rule`` must land
    in exactly the state a from-scratch projection of the full rule set
    produces -- same winning posture everywhere, same reverse index."""
    empty = PolicyFSM(
        policy.space.domains,
        rules=(),
        default_posture=policy.default_posture,
        devices=policy.devices,
    )
    incremental = PrunedPolicy(empty)
    for rule in policy.rules:
        incremental.add_rule(rule)
    rebuilt = PrunedPolicy(policy)
    for state in policy.enumerate_states(limit=256):
        for device in policy.devices:
            expected = rebuilt.posture_for(state, device)
            assert incremental.posture_for(state, device) == expected
            assert policy.posture_for(state, device) == expected
    for device in policy.devices:
        assert (
            incremental.tables[device].variables == rebuilt.tables[device].variables
        )
        assert incremental.devices_affected_by(f"ctx:{device}") == (
            rebuilt.devices_affected_by(f"ctx:{device}")
        )


# ----------------------------------------------------------------------
# Reputation: scores bounded, monotone under feedback
# ----------------------------------------------------------------------
@given(st.lists(st.booleans(), max_size=60))
def test_reputation_score_bounded(feedback):
    system = ReputationSystem()
    for validated in feedback:
        system.feedback("c", validated)
        assert 0.0 < system.score_of("c") < 1.0


@given(st.integers(min_value=0, max_value=40), st.integers(min_value=0, max_value=40))
def test_reputation_more_validations_never_lower(good, extra_good):
    a = ReputationSystem()
    b = ReputationSystem()
    for __ in range(good):
        a.feedback("c", True)
        b.feedback("c", True)
    for __ in range(extra_good):
        b.feedback("c", True)
    assert b.score_of("c") >= a.score_of("c")


# ----------------------------------------------------------------------
# Token bucket: never passes more than burst + rate * elapsed
# ----------------------------------------------------------------------
@given(
    st.lists(st.floats(min_value=0.0, max_value=5.0, allow_nan=False), min_size=1, max_size=60),
    st.floats(min_value=0.5, max_value=10.0),
    st.floats(min_value=1.0, max_value=10.0),
)
def test_rate_limiter_conservation(gaps, rate, burst):
    from repro.mboxes.base import MboxContext, Verdict
    from repro.mboxes.ratelimit import RateLimiter

    sim = Simulator()
    ctx = MboxContext(
        sim=sim, mbox_name="m", device="d",
        view=lambda k: None, emit_alert=lambda a: None,
    )
    limiter = RateLimiter(rate=rate, burst=burst)
    passed = 0
    now = 0.0
    for gap in gaps:
        now += gap
        sim.schedule_at(now, lambda: None)
        sim.run()
        pkt = Packet(src="s", dst="d", dport=80)
        pkt.meta["direction"] = "to_device"
        verdict, __ = limiter.process(pkt, ctx)
        if verdict is Verdict.PASS:
            passed += 1
    assert passed <= burst + rate * now + 1


# ----------------------------------------------------------------------
# SystemState determinism
# ----------------------------------------------------------------------
@given(st.dictionaries(st.sampled_from(VAR_KEYS), st.sampled_from(VALUES), max_size=3))
def test_system_state_hash_stable_across_insertion_orders(assignment):
    items = list(assignment.items())
    rng = random.Random(0)
    for __ in range(3):
        rng.shuffle(items)
        assert SystemState(dict(items)) == SystemState(assignment)
        assert hash(SystemState(dict(items))) == hash(SystemState(assignment))
