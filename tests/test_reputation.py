"""Tests for the reputation/voting system."""

from repro.learning.reputation import ContributorRecord, ReputationSystem


def test_fresh_contributor_starts_neutral():
    system = ReputationSystem()
    assert system.score_of("newbie") == 0.5


def test_score_rises_with_validated_reports():
    system = ReputationSystem()
    for __ in range(10):
        system.feedback("good", validated=True)
    assert system.score_of("good") > 0.9


def test_score_falls_with_invalidated_reports():
    system = ReputationSystem()
    for __ in range(10):
        system.feedback("bad", validated=False)
    assert system.score_of("bad") < 0.1


def test_confidence_shifts_with_votes():
    system = ReputationSystem()
    base = system.confidence(1, "reporter")
    # build up two credible voters first
    for __ in range(10):
        system.feedback("voter1", validated=True)
        system.feedback("voter2", validated=True)
    system.vote(1, "voter1", helpful=True)
    system.vote(1, "voter2", helpful=True)
    assert system.confidence(1, "reporter") > base


def test_downvotes_can_block_acceptance():
    system = ReputationSystem(accept_threshold=0.6)
    for __ in range(10):
        system.feedback("reporter", validated=True)  # trusted reporter
    assert system.accepted(1, "reporter")
    for i in range(6):
        voter = f"v{i}"
        for __ in range(10):
            system.feedback(voter, validated=True)
        system.vote(1, voter, helpful=False)
    assert not system.accepted(1, "reporter")


def test_revote_ignored():
    system = ReputationSystem()
    system.vote(1, "voter", helpful=True)
    tally_after_first = system.tallies[1].up_weight
    system.vote(1, "voter", helpful=True)
    system.vote(1, "voter", helpful=False)
    assert system.tallies[1].up_weight == tally_after_first
    assert system.tallies[1].down_weight == 0.0


def test_sybil_swarm_has_little_pull():
    """Fresh identities (score 0.5 each) cannot outweigh an established
    reporter as effectively as established voters can."""
    system = ReputationSystem(accept_threshold=0.6, vote_weight=0.05)
    for __ in range(20):
        system.feedback("veteran", validated=True)
    for i in range(5):
        system.vote(42, f"sybil{i}", helpful=False)
    # 5 sybils x 0.5 weight x 0.05 = 0.125 shift; veteran ~0.95
    assert system.accepted(42, "veteran")


def test_confidence_clamped_to_unit_interval():
    system = ReputationSystem(vote_weight=10.0)
    for i in range(3):
        system.vote(7, f"v{i}", helpful=True)
    assert system.confidence(7, "x") <= 1.0
    for i in range(3, 9):
        system.vote(8, f"v{i}", helpful=False)
    assert system.confidence(8, "x") >= 0.0


def test_top_contributors():
    system = ReputationSystem()
    for __ in range(5):
        system.feedback("star", validated=True)
    system.feedback("meh", validated=False)
    ranked = system.top_contributors(2)
    assert ranked[0][0] == "star"


def test_contributor_record_math():
    record = ContributorRecord()
    assert record.score == 0.5
    record.record_validated()
    assert record.score == 2 / 3
    record.record_invalidated()
    assert record.score == 0.5
