"""Tests for traffic generators."""

import random

import pytest

from repro.netsim.link import Link
from repro.netsim.node import Host
from repro.netsim.packet import Packet
from repro.netsim.traffic import BurstSender, PeriodicSender, TraceRecorder


def wire(sim):
    a, b = Host("a", sim), Host("b", sim)
    Link(sim, a, b, latency=0.001)
    return a, b


def test_periodic_sender_cadence(sim):
    a, b = wire(sim)
    sender = PeriodicSender(
        sim, a, lambda: Packet(src="a", dst="b"), period=1.0
    ).start(initial_delay=0.0)
    sim.run(until=5.5)
    assert sender.stats.packets == 6  # t=0,1,2,3,4,5
    assert len(b.inbox) == 6


def test_periodic_sender_stop(sim):
    a, __ = wire(sim)
    sender = PeriodicSender(sim, a, lambda: Packet(src="a", dst="b"), period=1.0)
    sender.start(initial_delay=0.0)
    sim.run(until=2.5)
    sender.stop()
    sim.run(until=10.0)
    assert sender.stats.packets == 3


def test_periodic_jitter_deterministic_with_seed(sim):
    a, __ = wire(sim)
    times_1 = []
    s = PeriodicSender(
        sim, a, lambda: Packet(src="a", dst="b"), period=1.0, jitter=0.3,
        rng=random.Random(7),
    )
    orig = s._fire

    def spy():
        times_1.append(sim.now)
        orig()

    s._fire = spy
    s.start()
    sim.run(until=5.0)
    assert len(times_1) >= 3
    # deterministic: same seed, same schedule
    assert times_1 == sorted(times_1)


def test_periodic_validation(sim):
    a, __ = wire(sim)
    with pytest.raises(ValueError):
        PeriodicSender(sim, a, lambda: Packet(src="a", dst="b"), period=0)
    with pytest.raises(ValueError):
        PeriodicSender(sim, a, lambda: Packet(src="a", dst="b"), period=1, jitter=1.0)


def test_burst_sender_rate(sim):
    a, b = wire(sim)
    BurstSender(
        sim, a, lambda i: Packet(src="a", dst="b", payload={"i": i}), count=10, rate=100.0
    ).start()
    sim.run()
    assert len(b.inbox) == 10
    # 10 packets at 100/s -> last sent at 0.09, delivered at 0.091
    assert sim.now == pytest.approx(0.091)
    assert [p.payload["i"] for p in b.inbox] == list(range(10))


def test_burst_validation(sim):
    a, __ = wire(sim)
    with pytest.raises(ValueError):
        BurstSender(sim, a, lambda i: Packet(src="a", dst="b"), count=-1, rate=1)
    with pytest.raises(ValueError):
        BurstSender(sim, a, lambda i: Packet(src="a", dst="b"), count=1, rate=0)


def test_trace_recorder():
    rec = TraceRecorder()
    rec.record(1.0, Packet(src="a", dst="b"), label="benign")
    rec.record(2.0, Packet(src="x", dst="b"), label="attack")
    assert len(rec) == 2
    assert len(rec.labelled("attack")) == 1
    assert rec.labelled("attack")[0].packet.src == "x"
