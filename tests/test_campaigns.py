"""Tests for the campaign engine, library, scorecard, and CLI
(:mod:`repro.faults.campaign`, :mod:`repro.faults.campaign_library`)."""

import json

import pytest

from repro.faults.campaign import (
    CAMPAIGN_CLASSES,
    STAGE_KINDS,
    Campaign,
    CampaignRunner,
    CampaignStage,
    ContainmentTracker,
    journal_digest,
)
from repro.faults.campaign_library import (
    CAMPAIGNS,
    ENFORCING_CLASSES,
    build_home,
    campaigns_by_class,
    get_campaign,
    run_campaign,
)


def S(name, at, kind, params, **kw):
    return CampaignStage(name, at, kind, params, **kw)


class TestStageValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            S("s", 1.0, "teleport", {})

    def test_missing_required_param_rejected(self):
        with pytest.raises(ValueError, match="command"):
            S("s", 1.0, "command", {}, target="cam")

    def test_unknown_exploit_rejected(self):
        with pytest.raises(ValueError, match="unknown exploit"):
            S("s", 1.0, "exploit", {"exploit": "nope"}, target="cam")

    def test_exploit_requires_target(self):
        with pytest.raises(ValueError, match="target"):
            S("s", 1.0, "exploit", {"exploit": "brute_force_login"})

    def test_bad_routing_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            S("s", 1.0, "routing-attack", {"mode": "wormhole"})

    def test_bad_precondition_kind_rejected(self):
        with pytest.raises(ValueError, match="precondition"):
            S("s", 1.0, "command", {"command": "on"}, target="cam",
              precondition={"kind": "moon-phase"})

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            S("s", -1.0, "command", {"command": "on"}, target="cam")
        with pytest.raises(ValueError):
            S("s", 1.0, "command", {"command": "on"}, target="cam", jitter=-0.5)


class TestCampaignValidation:
    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError, match="campaign class"):
            Campaign("x", "zero-day")

    def test_duplicate_stage_names_rejected(self):
        stage = S("a", 1.0, "command", {"command": "on"}, target="cam")
        with pytest.raises(ValueError, match="duplicate"):
            Campaign("x", "single-flaw", stages=(stage, stage))

    def test_forward_dependency_rejected(self):
        early = S("a", 1.0, "command", {"command": "on"}, target="cam",
                  depends_on=("b",))
        late = S("b", 2.0, "command", {"command": "on"}, target="cam")
        with pytest.raises(ValueError, match="earlier stage"):
            Campaign("x", "single-flaw", stages=(early, late))


class TestFromJson:
    """Satellite: strict validation naming the offending stage."""

    def test_error_names_the_offending_stage(self):
        doc = {
            "name": "x",
            "class": "single-flaw",
            "stages": [
                {"name": "ok", "at": 1.0, "kind": "command",
                 "params": {"command": "on"}, "target": "cam"},
                {"name": "broken", "at": 2.0, "kind": "exploit",
                 "params": {"exploit": "nope"}, "target": "cam"},
            ],
        }
        with pytest.raises(ValueError, match=r"stage #1 \('broken'\)"):
            Campaign.from_json(json.dumps(doc))

    def test_missing_field_named(self):
        doc = {"name": "x", "class": "single-flaw",
               "stages": [{"name": "s", "kind": "command"}]}
        with pytest.raises(ValueError, match=r"stage #0 \('s'\)"):
            Campaign.from_json(json.dumps(doc))

    def test_campaign_level_error_names_campaign(self):
        with pytest.raises(ValueError, match="campaign 'x'"):
            Campaign.from_json(json.dumps({"name": "x", "class": "bogus"}))

    def test_invalid_json_wrapped(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            Campaign.from_json("{nope")


class TestRoundTrip:
    """Satellite: to_json/from_json equality for the full library."""

    def test_full_library_round_trips(self):
        for campaign in CAMPAIGNS.values():
            assert Campaign.from_json(campaign.to_json()) == campaign

    def test_as_dict_omits_defaults(self):
        stage = S("s", 1.0, "command", {"command": "on"}, target="cam")
        d = stage.as_dict()
        assert "jitter" not in d and "depends_on" not in d
        assert "precondition" not in d

    def test_round_trip_preserves_stage_structure(self):
        c = CAMPAIGNS["plug-unlock-chain"]
        r = Campaign.from_json(c.to_json())
        assert [s.name for s in r.stages] == [s.name for s in c.stages]
        assert r.stages[1].precondition == c.stages[1].precondition
        assert r.stages[1].depends_on == c.stages[1].depends_on


class TestLibrary:
    def test_corpus_size_and_classes(self):
        assert len(CAMPAIGNS) >= 15
        for cls in CAMPAIGN_CLASSES:
            assert len(campaigns_by_class(cls)) >= 3, cls

    def test_enforcing_classes_subset(self):
        assert set(ENFORCING_CLASSES) < set(CAMPAIGN_CLASSES)
        assert "fabric-degradation" not in ENFORCING_CLASSES

    def test_get_campaign_unknown_names_known(self):
        with pytest.raises(KeyError, match="no campaign named"):
            get_campaign("nope")
        assert get_campaign("cam-default-creds").campaign_class == "single-flaw"

    def test_every_campaign_declares_expectations(self):
        for campaign in CAMPAIGNS.values():
            assert campaign.expect_contained, campaign.name
            assert campaign.stages, campaign.name


class TestRunnerGating:
    def test_failed_dependency_skips_stage(self):
        dep = build_home(health=False)
        campaign = Campaign(
            "t", "single-flaw", expect_contained=("cam",), horizon=10.0,
            stages=(
                S("a", 1.0, "env-set", {"variable": "no-such-var", "value": 1}),
                S("b", 2.0, "command", {"command": "on"}, target="cam",
                  depends_on=("a",)),
            ),
        )
        runner = CampaignRunner(campaign, dep).start()
        dep.run(until=5.0)
        statuses = runner.stage_statuses()
        assert statuses["a"] == "error"
        assert statuses["b"] == "skipped-dep"

    def test_unmet_precondition_skips_stage(self):
        dep = build_home(health=False)
        campaign = Campaign(
            "t", "single-flaw", expect_contained=("cam",), horizon=10.0,
            stages=(
                S("a", 1.0, "command", {"command": "on"}, target="cam",
                  precondition={"kind": "loot", "target": "cam"}),
            ),
        )
        runner = CampaignRunner(campaign, dep).start()
        dep.run(until=5.0)
        assert runner.stage_statuses()["a"] == "skipped-precondition"

    def test_stage_results_journaled_with_trace(self):
        dep = build_home(health=False)
        campaign = CAMPAIGNS["plug-backdoor-blast"]
        CampaignRunner(campaign, dep).start()
        dep.run(until=campaign.horizon)
        stages = dep.sim.journal.entries(kind="campaign-stage")
        assert stages and all(e.trace_id is not None for e in stages)
        start = dep.sim.journal.entries(kind="campaign-start")
        assert len(start) == 1
        assert start[0].fields["campaign"] == "plug-backdoor-blast"

    def test_seeded_jitter_is_deterministic(self):
        fire_times = []
        for _ in range(2):
            dep = build_home(health=False)
            campaign = CAMPAIGNS["cam-default-creds"]  # cred-wave has jitter
            runner = CampaignRunner(campaign, dep).start()
            dep.run(until=campaign.horizon)
            fire_times.append(
                {name: r.fired_at for name, r in runner.results.items()}
            )
        assert fire_times[0] == fire_times[1]
        # Jitter actually moved the stage off its nominal time.
        assert fire_times[0]["cred-wave"] != 4.0


class TestScorecard:
    def test_detection_and_containment_fields(self):
        score = run_campaign(CAMPAIGNS["cam-default-creds"], health=False)
        assert score["attacked"] == ["cam"]
        assert score["detection_recall"] == 1.0
        assert score["detection_precision"] == 1.0
        assert score["containment_misses"] == []
        assert score["time_to_containment_s"]["cam"] > 0
        assert score["exposure_s"]["cam"] == score["time_to_containment_s"]["cam"]

    def test_pre_pinned_device_has_zero_exposure(self):
        # heat-vent-entry attacks the lock, which was pinned at setup:
        # containment predates the attack, so ttc and exposure are 0.
        score = run_campaign(CAMPAIGNS["heat-vent-entry"], health=False)
        assert score["containment_misses"] == []
        assert score["time_to_containment_s"]["lock"] == 0.0
        assert score["exposure_s"]["lock"] == 0.0

    def test_uncontained_attack_is_a_miss_with_full_exposure(self):
        dep = build_home(health=False)
        campaign = Campaign(
            "t", "single-flaw", expect_contained=("stb",), horizon=6.0,
            stages=(
                # One quiet open-port poke: below every escalation window,
                # sent to the *unsignatured* port -- never contained.
                S("poke", 1.0, "command",
                  {"command": "play", "dport": 80}, target="stb"),
            ),
        )
        runner = CampaignRunner(campaign, dep).start()
        dep.run(until=campaign.horizon)
        from repro.faults.campaign import score_campaign

        score = score_campaign(dep, runner)
        assert score["containment_misses"] == ["stb"]
        assert score["exposure_s"]["stb"] == pytest.approx(5.0)

    def test_automation_abuse_chain_fires_recipe(self):
        score = run_campaign(CAMPAIGNS["plug-unlock-chain"], keep_dep=True)
        # The recipe chain really ran: the lock ended up unlocked by the
        # hub (trusted through the pinned firewall), and the follow-on
        # stage was not precondition-skipped.
        assert score["stage_statuses"]["burgle-cam"] == "ok"
        assert score["dep"].devices["lock"].state == "unlocked"
        assert score["containment_misses"] == []


class TestFabricDegradation:
    def test_sinkhole_breaches_containment_slo(self):
        score = run_campaign(CAMPAIGNS["sinkhole-blackout"])
        assert score["fabric_degraded"]
        assert score["containment_breaches"] >= 1
        assert score["containment_misses"] == []  # contained after recovery
        assert score["time_to_containment_s"]["cam"] > 8.0  # degradation cost

    def test_selective_forward_smuggles_past_containment(self):
        score = run_campaign(CAMPAIGNS["selective-forward-smuggle"])
        routing = score["routing"][0]
        assert routing["mode"] == "selective-forward"
        assert routing["bypassed"] > 0
        assert score["containment_misses"] == []

    def test_mbox_crash_yields_outage_and_repin_evidence(self):
        score = run_campaign(CAMPAIGNS["mbox-crash-cover"])
        graceful = score["graceful_degradation"]
        assert graceful["outages"] >= 1 and graceful["recovered"] >= 1
        assert graceful["ok"]
        assert score["repin_count"] >= 1
        assert score["down_drops"] >= 1  # fail-closed held during the outage


class TestDeterminism:
    """Satellite: same seed -> byte-identical journal digests, per campaign."""

    @pytest.mark.parametrize("name", sorted(CAMPAIGNS))
    def test_two_runs_identical_digests(self, name):
        a = run_campaign(CAMPAIGNS[name])
        b = run_campaign(CAMPAIGNS[name])
        assert a["journal_digest"] == b["journal_digest"], name
        assert a["events"] == b["events"]

    def test_different_seed_changes_jittered_campaign(self):
        a = run_campaign(CAMPAIGNS["cam-default-creds"], seed=1)
        b = run_campaign(CAMPAIGNS["cam-default-creds"], seed=2)
        assert a["journal_digest"] != b["journal_digest"]


class TestContainmentTracker:
    def test_tracker_counts_miss_ticks_past_deadline(self):
        dep = build_home(health=False)
        tracker = ContainmentTracker(dep, expected=("victim-x",), deadline=2.0)
        tracker.note_attack("victim-x", 0.0)  # never contained (not a device)
        dep.run(until=6.0)
        assert tracker.miss_ticks > 0
        assert "victim-x" in tracker.current_misses

    def test_tracker_idle_without_expectations(self):
        dep = build_home(health=False)
        tracker = ContainmentTracker(dep, expected=())
        dep.run(until=3.0)
        assert tracker.miss_ticks == 0 and tracker.ok_ticks == 0


class TestCli:
    def _main(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_list_exits_zero(self, capsys):
        assert self._main("campaign", "--list") == 0
        out = capsys.readouterr().out
        assert "cam-default-creds" in out and "fabric-degradation" in out

    def test_unknown_name_exit_2(self, capsys):
        assert self._main("campaign", "--name", "nope") == 2
        assert "no campaign named" in capsys.readouterr().err

    def test_malformed_file_exit_2_one_line_stderr(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({
            "name": "x", "class": "single-flaw",
            "stages": [{"name": "s", "at": 1.0, "kind": "exploit",
                        "params": {"exploit": "nope"}, "target": "cam"}],
        }))
        assert self._main("campaign", "--file", str(bad)) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and len(err.strip().splitlines()) == 1
        assert "stage #0" in err

    def test_unreadable_file_exit_2(self, capsys):
        assert self._main("campaign", "--file", "/no/such/file.json") == 2
        assert "error:" in capsys.readouterr().err

    def test_named_run_json_scorecard(self, capsys):
        assert self._main("campaign", "--name", "plug-backdoor-blast", "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["campaign"] == "plug-backdoor-blast"
        assert payload[0]["containment_misses"] == []

    def test_file_run_round_trips_through_cli(self, tmp_path, capsys):
        doc = tmp_path / "c.json"
        doc.write_text(CAMPAIGNS["window-bruteforce"].to_json())
        assert self._main("campaign", "--file", str(doc)) == 0
        assert "fully contained" in capsys.readouterr().out

    def test_class_run(self, capsys):
        assert self._main("campaign", "--class", "automation-abuse") == 0
        out = capsys.readouterr().out
        assert out.count("campaign:") == len(campaigns_by_class("automation-abuse"))


class TestStageKinds:
    def test_registry_is_complete(self):
        assert set(STAGE_KINDS) == {
            "exploit", "command", "login", "fault", "routing-attack", "env-set"
        }

    def test_journal_digest_ignores_process_global_ids(self):
        dep = build_home(health=False)
        dep.sim.journal.record("attack-step", device="cam", pkt=1, proto="x")
        d1 = journal_digest(dep.sim.journal)
        dep2 = build_home(health=False)
        dep2.sim.journal.record("attack-step", device="cam", pkt=999, proto="x")
        d2 = journal_digest(dep2.sim.journal)
        assert d1 == d2
