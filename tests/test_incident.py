"""Incident forensics: reconstructing the full detection chain from evidence.

The acceptance property: ``reconstruct(sim, device)`` rebuilds the paper's
Figure 2 loop -- detect -> ingest-alert -> escalate -> evaluate -> actuate
-> flow-install (direct mode) / epoch-commit (consistent updates) -- for
the Fig. 4 password-proxy scenario and the Fig. 3 FSM (signature IDS)
scenario, by joining the journal, trace and metrics planes, with honest
per-stage simulated latencies.
"""

import json

from repro.core.deployment import SecuredDeployment
from repro.core.orchestrator import build_recommended_posture
from repro.devices import protocol
from repro.devices.library import smart_camera, window_actuator
from repro.netsim.simulator import Simulator
from repro.obs.incident import STAGE_ORDER, reconstruct
from repro.obs.journal import Journal
from repro.policy.builder import PolicyBuilder
from repro.policy.context import SUSPICIOUS
from repro.policy.posture import block_commands


def _cross_device_deployment(**build_kwargs):
    """``win`` hardens when the camera turns suspicious (Fig. 4 shape)."""
    dep = SecuredDeployment.build(**build_kwargs)
    builder = PolicyBuilder()
    builder.device("cam0")
    builder.device("win")
    builder.when("ctx:cam0", SUSPICIOUS).give("win", block_commands("open"))
    dep.policy = builder.build()
    dep.add_device(smart_camera, "cam0")
    dep.add_device(window_actuator, "win")
    dep.add_attacker()
    dep.finalize()
    return dep


def _brute_force(dep, target: str, n: int = 3) -> None:
    attacker = dep.attackers["attacker"]
    for i in range(n):
        dep.sim.schedule(
            1.0 + 0.2 * i,
            attacker.fire_and_forget,
            protocol.login("attacker", target, "admin", "wrong"),
        )


def _password_proxy_incident(**build_kwargs):
    """Run the Fig. 4 scenario and reconstruct both endpoints."""
    dep = _cross_device_deployment(**build_kwargs)
    dep.secure(
        "cam0",
        build_recommended_posture("password_proxy", "cam0", new_password="S3c!"),
    )
    _brute_force(dep, "cam0", n=3)
    dep.run(until=30.0)
    assert dep.orchestrator.posture_of("win").name == "block-commands"
    return dep


def _full_chain(incident, terminal: str):
    """The chain holding every stage through ``terminal``, or None."""
    wanted = STAGE_ORDER[: STAGE_ORDER.index("actuate") + 1] + (terminal,)
    for chain in incident.chains:
        if all(stage in chain.stage_names for stage in wanted):
            return chain
    return None


class TestPasswordProxyScenario:
    """Fig. 4: brute-forced camera escalates, the window actuator hardens."""

    def test_full_chain_reconstructed_direct_mode(self):
        dep = _password_proxy_incident()
        incident = reconstruct(dep.sim, "cam0")

        chain = _full_chain(incident, "flow-install")
        assert chain is not None, [c.stage_names for c in incident.chains]
        # Per-stage simulated latencies: honest, ordered, non-negative.
        by_stage = {s["stage"]: s for s in chain.stages}
        assert by_stage["ingest-alert"]["latency"] > 0  # crossed the channel
        assert all(s["latency"] >= 0 for s in chain.stages)
        assert by_stage["detect"]["start"] <= by_stage["actuate"]["start"]
        assert chain.total_latency > 0
        # Causality edges follow stage order within the chain.
        edges = chain.edges()
        assert ("detect", "ingest-alert") in edges
        # Journal evidence joined onto the chain by trace id.
        assert chain.journal_seqs, "no journal entries joined to the chain"

        # The journal plane aggregated the device's evidence.
        assert incident.alerts_by_kind.get("login-rejected", 0) >= 3
        assert incident.context == SUSPICIOUS
        timeline_kinds = {e["kind"] for e in incident.timeline}
        assert {"alert", "alert-ingest", "escalation", "context"} <= timeline_kinds
        # Timeline is ordered by simulated time, seq breaking ties.
        stamps = [(e["at"], e["seq"]) for e in incident.timeline]
        assert stamps == sorted(stamps)

    def test_epoch_commit_variant_under_consistent_updates(self):
        dep = _password_proxy_incident(consistent_updates=True)
        incident = reconstruct(dep.sim, "cam0")
        chain = _full_chain(incident, "epoch-commit")
        assert chain is not None, [c.stage_names for c in incident.chains]
        assert "flow-install" not in chain.stage_names
        assert chain.stages[-1]["attrs"].get("rules", 0) > 0
        # The data-plane commit paid two phases of switch RTTs.
        assert {s["stage"]: s for s in chain.stages}["epoch-commit"]["latency"] > 0

    def test_actuated_device_view_with_policy_explainer(self):
        dep = _password_proxy_incident()
        state = dep.controller.pipeline.system_state()
        incident = reconstruct(dep.sim, "win", policy=dep.policy, state=state)

        # The posture transition is journaled on win's own timeline...
        assert incident.posture == "block-commands"
        assert incident.applies >= 1
        postures = [e for e in incident.timeline if e["kind"] == "posture"]
        assert postures and postures[-1]["detail"]["posture"] == "block-commands"
        # ...and the policy plane explains *why*.
        assert incident.winning_rule is not None
        assert incident.winning_rule["posture"] == "block-commands"
        assert "cam0" in incident.winning_rule["predicate"]

    def test_incident_survives_json_roundtrip(self):
        dep = _password_proxy_incident()
        state = dep.controller.pipeline.system_state()
        incident = reconstruct(dep.sim, "cam0", policy=dep.policy, state=state)
        payload = incident.as_dict()
        assert json.loads(json.dumps(payload)) == payload

    def test_render_is_operator_readable(self):
        dep = _password_proxy_incident()
        text = reconstruct(dep.sim, "cam0").render()
        assert "incident report: cam0" in text
        assert "detect" in text and "actuate" in text
        assert "ms)" in text  # per-stage latencies
        assert "login-rejected" in text


class TestFsmSignatureScenario:
    """Fig. 3: a crowd-learned signature fires, the FSM hardens the window."""

    def _run(self):
        from repro.learning.repository import CrowdRepository
        from repro.learning.signatures import default_credential_signature

        dep = _cross_device_deployment()
        cam = dep.devices["cam0"]
        repo = CrowdRepository(dep.sim)
        repo.publish(default_credential_signature(cam.sku), reporter="other-site")
        dep.attach_repository(repo)
        dep.secure("cam0", build_recommended_posture("monitor", "cam0", sku=cam.sku))
        dep.run(until=0.5)
        dep.attackers["attacker"].fire_and_forget(
            protocol.login("attacker", "cam0", "admin", "admin")
        )
        dep.run(until=30.0)
        assert dep.controller.context_of("cam0") == SUSPICIOUS
        return dep

    def test_signature_match_chain_reconstructed(self):
        dep = self._run()
        incident = reconstruct(dep.sim, "cam0")
        assert incident.alerts_by_kind.get("signature-match", 0) >= 1
        chain = _full_chain(incident, "flow-install")
        assert chain is not None, [c.stage_names for c in incident.chains]
        assert incident.context == SUSPICIOUS

    def test_fsm_rule_explains_the_hardening(self):
        dep = self._run()
        state = dep.controller.pipeline.system_state()
        incident = reconstruct(dep.sim, "win", policy=dep.policy, state=state)
        assert incident.winning_rule is not None
        assert incident.winning_rule["posture"] == "block-commands"
        assert incident.posture == "block-commands"


class TestJournalBoundedUnderLoad:
    def test_retention_bounded_while_chain_evidence_survives(self):
        """A tiny ring under sustained attack stays bounded; reconstruction
        degrades gracefully to whatever evidence is retained."""
        sim = Simulator()
        sim.journal = Journal(clock=lambda: sim.now, segment_size=8, max_segments=2)
        dep = _cross_device_deployment(sim=sim)
        dep.secure(
            "cam0",
            build_recommended_posture("password_proxy", "cam0", new_password="S3c!"),
        )
        attacker = dep.attackers["attacker"]
        for i in range(120):
            sim.schedule(
                1.0 + 0.5 * i,
                attacker.fire_and_forget,
                protocol.login("attacker", "cam0", "admin", "wrong"),
            )
        dep.run(until=90.0)

        journal = sim.journal
        assert journal.recorded > journal.segment_size * journal.max_segments
        assert len(journal) <= journal.segment_size * (journal.max_segments + 1)
        assert journal.evicted == journal.recorded - len(journal)
        # The lazy gauges follow the swapped-in journal.
        assert sim.metrics.value("journal_retained") == len(journal)
        # Reconstruction still works over the surviving ring.
        incident = reconstruct(sim, "cam0")
        assert incident.timeline, "retained evidence should still reconstruct"
        assert all(
            e["seq"] > journal.evicted - journal.segment_size
            for e in incident.timeline
        )
