"""The perf-regression gate (``benchmarks/regression.py``) as a pure function.

The gate's ``compare`` takes plain dicts, so every CI-failure mode --
including the acceptance criterion's synthetic >20% E9 throughput drop --
is exercised here without running a single benchmark (the bench imports
inside ``measure()`` are lazy for exactly this reason).
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_GATE_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "regression.py"


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("regression_gate", _GATE_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("regression_gate", module)
    spec.loader.exec_module(module)
    return module


def _baseline():
    return {
        "e9": [
            {
                "devices": 80,
                "events": 13_530,
                "events_per_s": 100_000.0,
                "pipeline_rounds": 30,
                "pipeline_applies": 160,
            }
        ],
        "obs_overhead": 0.01,
    }


def _current(events_per_s=100_000.0, **overrides):
    row = dict(_baseline()["e9"][0], events_per_s=events_per_s, **overrides)
    return {"e9": [row], "obs_overhead": 0.01}


class TestThroughputGate:
    def test_synthetic_25pct_drop_fails(self, gate):
        """Acceptance: a synthetic >20% E9 throughput drop trips the gate."""
        violations = gate.compare(
            _current(events_per_s=75_000.0), _baseline(), throughput_regression=0.20
        )
        assert len(violations) == 1
        assert "e9@80dev" in violations[0]
        assert "throughput dropped 25.0%" in violations[0]

    def test_10pct_drop_passes(self, gate):
        violations = gate.compare(
            _current(events_per_s=90_000.0), _baseline(), throughput_regression=0.20
        )
        assert violations == []

    def test_speedup_never_fails(self, gate):
        assert gate.compare(_current(events_per_s=250_000.0), _baseline()) == []

    def test_sizes_missing_from_baseline_are_skipped(self, gate):
        current = _current(events_per_s=10.0)
        current["e9"][0]["devices"] = 160  # no such baseline row
        assert gate.compare(current, _baseline()) == []


class TestDeterminismGate:
    def test_event_count_drift_fails(self, gate):
        violations = gate.compare(
            _current(events=14_000), _baseline(), event_count_drift=0.02
        )
        assert len(violations) == 1
        assert "events" in violations[0]
        assert "re-record the baselines" in violations[0]

    def test_pipeline_counter_drift_fails(self, gate):
        violations = gate.compare(
            _current(pipeline_applies=200), _baseline(), event_count_drift=0.02
        )
        assert any("pipeline_applies" in v for v in violations)

    def test_within_drift_tolerance_passes(self, gate):
        assert gate.compare(_current(events=13_531), _baseline()) == []


class TestOverheadGate:
    def test_excessive_obs_overhead_fails(self, gate):
        current = _current()
        current["obs_overhead"] = 0.15
        violations = gate.compare(current, _baseline(), obs_overhead_limit=0.10)
        assert len(violations) == 1
        assert "obs-overhead" in violations[0]

    def test_missing_overhead_is_not_a_violation(self, gate):
        current = _current()
        current["obs_overhead"] = None
        assert gate.compare(current, _baseline()) == []


def _e12(resilient_exposure=3.0, baseline_exposure=24.0, **overrides):
    arms = {
        "baseline": {
            "exposure_s": baseline_exposure,
            "attack_attempts": 167,
            "attack_successes": 90,
            "events": 1162,
        },
        "resilient": {
            "exposure_s": resilient_exposure,
            "attack_attempts": 167,
            "attack_successes": 7,
            "events": 1088,
        },
    }
    arms["resilient"].update(overrides)
    return arms


class TestResilienceGate:
    def test_unbounded_exposure_fails(self, gate):
        """If the resilient arm no longer beats the no-resilience arm,
        the resilience machinery is broken, whatever the baseline says."""
        current = _current()
        current["e12"] = _e12(resilient_exposure=25.0)
        baseline = _baseline()
        baseline["e12"] = _e12()
        violations = gate.compare(current, baseline)
        assert any("no longer bounds" in v for v in violations)

    def test_exposure_growth_beyond_threshold_fails(self, gate):
        current = _current()
        current["e12"] = _e12(resilient_exposure=3.9)  # +30%
        baseline = _baseline()
        baseline["e12"] = _e12()
        violations = gate.compare(current, baseline, resilience_regression=0.20)
        assert any("exposure window grew 30.0%" in v for v in violations)

    def test_exposure_within_threshold_passes(self, gate):
        current = _current()
        current["e12"] = _e12(resilient_exposure=3.3)  # +10%
        baseline = _baseline()
        baseline["e12"] = _e12()
        assert gate.compare(current, baseline, resilience_regression=0.20) == []

    def test_deterministic_counter_drift_fails(self, gate):
        current = _current()
        current["e12"] = _e12(attack_successes=20)
        baseline = _baseline()
        baseline["e12"] = _e12()
        violations = gate.compare(current, baseline)
        assert any("e12/resilient" in v and "attack_successes" in v for v in violations)

    def test_missing_e12_baseline_is_not_a_violation(self, gate):
        current = _current()
        current["e12"] = _e12()
        assert gate.compare(current, _baseline()) == []


class TestThresholdConfig:
    def test_thresholds_pinned_in_one_config_block(self, gate):
        # Tightened from 0.20 once the hot-path refactor recovered the
        # PR-5 regression: throughput is now guarded at 10%.
        assert gate.THROUGHPUT_REGRESSION == 0.10
        assert gate.OBS_OVERHEAD_LIMIT == 0.10
        assert gate.OBS_PROFILE_FRAC == 0.10
        assert gate.EVENT_COUNT_DRIFT == 0.02
        assert gate.RESILIENCE_REGRESSION == 0.20
        assert set(gate.DETERMINISTIC_KEYS) == {
            "events",
            "pipeline_rounds",
            "pipeline_applies",
        }

    def test_env_overrides(self, gate, monkeypatch):
        monkeypatch.setenv("REPRO_REGRESSION_THROUGHPUT", "0.5")
        violations = gate.compare(_current(events_per_s=60_000.0), _baseline())
        assert violations == []  # 40% drop allowed under the override


class TestTrajectory:
    def test_appends_entries_in_order(self, gate, tmp_path):
        path = tmp_path / "BENCH_TRAJECTORY.json"
        gate.append_trajectory({"git_sha": "aaa"}, path)
        history = gate.append_trajectory({"git_sha": "bbb"}, path)
        assert [e["git_sha"] for e in history] == ["aaa", "bbb"]
        on_disk = json.loads(path.read_text())
        assert on_disk == history

    def test_corrupt_history_starts_fresh(self, gate, tmp_path):
        path = tmp_path / "BENCH_TRAJECTORY.json"
        path.write_text("{not json")
        history = gate.append_trajectory({"git_sha": "ccc"}, path)
        assert [e["git_sha"] for e in history] == ["ccc"]

    def test_repo_trajectory_has_at_least_one_entry(self, gate):
        """The gate has run at least once on this commit's baselines."""
        history = json.loads(gate.TRAJECTORY_PATH.read_text())
        assert isinstance(history, list) and history
        entry = history[-1]
        assert {"git_sha", "recorded_at", "e9", "obs_overhead", "violations"} <= set(
            entry
        )


class TestBaselines:
    def test_committed_baselines_load(self, gate):
        baseline = gate.load_baseline()
        assert baseline["e9"], "E9 baseline missing from benchmarks/results/"
        assert {row["devices"] for row in baseline["e9"]} >= set(gate.SWEEP)
        assert baseline["obs_overhead"] is not None
        assert set(baseline["e12"]) == {"baseline", "resilient"}, (
            "E12 baseline missing from benchmarks/results/"
        )


def _e13(blind_standby=1.5, blind_crash=20.0, enforcing_frac=1.0, **overrides):
    arms = {
        "failover": {
            "crash": {
                "attack_attempts": 59,
                "blind_window_s": blind_crash,
                "events": 1014,
            },
            "standby": {
                "attack_attempts": 59,
                "blind_window_s": blind_standby,
                "events": 571,
            },
        },
        "storm": {
            "fifo": {"enforcing_processed_frac": 0.05, "events": 12796},
            "shed": {"enforcing_processed_frac": enforcing_frac, "events": 12717},
        },
    }
    arms["failover"]["standby"].update(overrides)
    return arms


class TestSurvivabilityGate:
    def test_thresholds_pinned(self, gate):
        assert gate.FAILOVER_BLIND_RATIO == 0.20
        assert gate.STORM_MIN_ENFORCING_FRAC == 0.90

    def test_blind_ratio_beyond_threshold_fails(self, gate):
        """A standby blind window at 25% of the outage trips the gate --
        this is the issue's acceptance bound, not a baseline delta."""
        current = _current()
        current["e13"] = _e13(blind_standby=5.0)  # 25% of 20s
        violations = gate.compare(current, _baseline(), failover_blind_ratio=0.20)
        assert any("blind window" in v for v in violations)

    def test_storm_fraction_below_floor_fails(self, gate):
        current = _current()
        current["e13"] = _e13(enforcing_frac=0.8)
        violations = gate.compare(
            current, _baseline(), storm_min_enforcing_frac=0.90
        )
        assert any("enforcing" in v for v in violations)

    def test_within_bounds_passes(self, gate):
        current = _current()
        current["e13"] = _e13()
        baseline = _baseline()
        baseline["e13"] = _e13()
        assert gate.compare(current, baseline) == []

    def test_deterministic_counter_drift_fails(self, gate):
        current = _current()
        current["e13"] = _e13(events=700)  # standby arm drifted
        baseline = _baseline()
        baseline["e13"] = _e13()
        violations = gate.compare(current, baseline)
        assert any(
            "e13/failover/standby" in v and "events" in v for v in violations
        )

    def test_missing_e13_baseline_is_not_a_violation(self, gate):
        current = _current()
        current["e13"] = _e13()
        assert gate.compare(current, _baseline()) == []

    def test_committed_e13_baseline_loads(self, gate):
        baseline = gate.load_baseline()
        assert set(baseline["e13"]) == {"failover", "storm"}, (
            "E13 baseline missing from benchmarks/results/"
        )
        assert set(baseline["e13"]["failover"]) == {"crash", "standby"}
        assert set(baseline["e13"]["storm"]) == {"fifo", "shed"}


def _e14(loss=0, lossy_loss=1812, peak_depth=1803, **overrides):
    arms = {
        "lossy": {
            "emitted": 1923,
            "received": 111,
            "telemetry_loss": lossy_loss,
            "delivered": 0,
            "peak_depth": 0,
            "events": 19372,
        },
        "durable": {
            "emitted": 1890,
            "received": 1890,
            "telemetry_loss": loss,
            "delivered": 1890,
            "peak_depth": peak_depth,
            "events": 24576,
        },
    }
    arms["durable"].update(overrides)
    return arms


class TestDurabilityGate:
    def test_threshold_pinned(self, gate):
        assert gate.E14_PEAK_BUFFER_LIMIT == 2048

    def test_any_durable_loss_fails(self, gate):
        """Zero loss is absolute: one lost record trips the gate, no
        baseline delta or drift tolerance applies."""
        current = _current()
        current["e14"] = _e14(loss=1)
        violations = gate.compare(current, _baseline())
        assert any("lost 1 records" in v for v in violations)

    def test_peak_depth_beyond_ceiling_fails(self, gate):
        current = _current()
        current["e14"] = _e14(peak_depth=3000)
        violations = gate.compare(current, _baseline(), e14_peak_buffer_limit=2048)
        assert any("memory budget" in v for v in violations)

    def test_lossless_lossy_arm_fails(self, gate):
        """If the lossy arm stops losing records, the scenario no longer
        exercises the partition and the durable gate proves nothing."""
        current = _current()
        current["e14"] = _e14(lossy_loss=0)
        violations = gate.compare(current, _baseline())
        assert any("lossy arm" in v for v in violations)

    def test_within_bounds_passes(self, gate):
        current = _current()
        current["e14"] = _e14()
        baseline = _baseline()
        baseline["e14"] = _e14()
        assert gate.compare(current, baseline) == []

    def test_deterministic_counter_drift_fails(self, gate):
        current = _current()
        current["e14"] = _e14(delivered=1700)  # durable arm drifted
        baseline = _baseline()
        baseline["e14"] = _e14()
        violations = gate.compare(current, baseline)
        assert any("e14/durable" in v and "delivered" in v for v in violations)

    def test_committed_e14_baseline_loads(self, gate):
        baseline = gate.load_baseline()
        assert set(baseline["e14"]) == {"lossy", "durable"}, (
            "E14 baseline missing from benchmarks/results/"
        )
        assert baseline["e14"]["durable"]["telemetry_loss"] == 0


class TestHealthGate:
    """The SLO/health verdicts: steady must be green, chaos must breach
    AND recover (matched by trace id)."""

    def _health(self, steady=None, chaos=None):
        current = _current()
        current["health"] = {
            "steady": steady
            if steady is not None
            else {"plan": "none", "rollup": "ok", "slo_breaches": 0},
            "chaos": chaos
            if chaos is not None
            else {
                "plan": "standard",
                "rollup": "ok",
                "slo_breaches": 2,
                "matched_recoveries": 2,
            },
        }
        return current

    def test_green_steady_and_breaching_chaos_pass(self, gate):
        assert gate.compare(self._health(), _baseline()) == []

    def test_degraded_steady_rollup_fails(self, gate):
        current = self._health(
            steady={"plan": "none", "rollup": "degraded", "slo_breaches": 0}
        )
        violations = gate.compare(current, _baseline())
        assert any("health/steady" in v and "rollup" in v for v in violations)

    def test_steady_breach_fails(self, gate):
        current = self._health(
            steady={"plan": "none", "rollup": "ok", "slo_breaches": 3}
        )
        violations = gate.compare(current, _baseline())
        assert any("health/steady" in v and "breach" in v for v in violations)

    def test_blind_chaos_plan_fails(self, gate):
        current = self._health(
            chaos={"plan": "standard", "slo_breaches": 0, "matched_recoveries": 0}
        )
        violations = gate.compare(current, _baseline())
        assert any("health/chaos" in v and "no SLO breach" in v for v in violations)

    def test_unmatched_recovery_fails(self, gate):
        current = self._health(
            chaos={"plan": "standard", "slo_breaches": 1, "matched_recoveries": 0}
        )
        violations = gate.compare(current, _baseline())
        assert any("health/chaos" in v and "trace id" in v for v in violations)

    def test_missing_health_section_is_not_a_violation(self, gate):
        assert gate.compare(_current(), _baseline()) == []
