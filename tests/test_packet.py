"""Tests for packets and flows."""

from repro.netsim.packet import Flow, Packet


def test_flow_from_packet():
    pkt = Packet(src="a", dst="b", protocol="http", sport=1234, dport=80)
    assert pkt.flow == Flow("a", "b", "http", 1234, 80)


def test_flow_reversed():
    flow = Flow("a", "b", "tcp", 10, 20)
    assert flow.reversed() == Flow("b", "a", "tcp", 20, 10)
    assert flow.reversed().reversed() == flow


def test_packet_ids_unique():
    a, b = Packet(src="x", dst="y"), Packet(src="x", dst="y")
    assert a.pkt_id != b.pkt_id


def test_copy_is_independent():
    pkt = Packet(src="a", dst="b", payload={"cmd": "on"})
    clone = pkt.copy()
    clone.payload["cmd"] = "off"
    clone.trace.append("sw1")
    clone.meta["verdict"] = "drop"
    assert pkt.payload == {"cmd": "on"}
    assert pkt.trace == [] and pkt.meta == {}
    assert clone.pkt_id != pkt.pkt_id


def test_copy_with_overrides():
    pkt = Packet(src="a", dst="b", size=100)
    clone = pkt.copy(dst="c", size=50)
    assert (clone.src, clone.dst, clone.size) == ("a", "c", 50)
    assert (pkt.dst, pkt.size) == ("b", 100)


def test_reply_reverses_flow():
    pkt = Packet(src="client", dst="cam", protocol="http", sport=5555, dport=80)
    rep = pkt.reply({"status": "ok"})
    assert rep.src == "cam" and rep.dst == "client"
    assert rep.sport == 80 and rep.dport == 5555
    assert rep.protocol == "http"
    assert rep.payload == {"status": "ok"}


def test_reply_payload_copied():
    payload = {"status": "ok"}
    pkt = Packet(src="a", dst="b")
    rep = pkt.reply(payload)
    payload["status"] = "mutated"
    assert rep.payload == {"status": "ok"}
