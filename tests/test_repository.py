"""Tests for the crowdsourced signature repository."""

from repro.learning.repository import CrowdRepository
from repro.learning.signatures import (
    backdoor_signature,
    default_credential_signature,
)


def test_publish_and_subscribe_delivery(sim):
    repo = CrowdRepository(sim, free_rider_delay=300.0, base_delay=1.0)
    got = []
    repo.subscribe("site-b", "dlink:cam:1.0", got.append)
    sig_id = repo.publish(default_credential_signature("dlink:cam:1.0"), reporter="site-a")
    assert sig_id is not None
    sim.run()
    assert len(got) == 1
    assert got[0].sku == "dlink:cam:1.0"


def test_sku_isolation(sim):
    repo = CrowdRepository(sim)
    got = []
    repo.subscribe("site-b", "other:sku:1.0", got.append)
    repo.publish(default_credential_signature("dlink:cam:1.0"), reporter="site-a")
    sim.run()
    assert got == []


def test_contributor_priority_notification(sim):
    repo = CrowdRepository(sim, free_rider_delay=300.0, base_delay=1.0)
    times = {}
    sig_id = repo.publish(
        backdoor_signature("belkin:wemo:1.0", 49153), reporter="contrib-site"
    )
    sim.run()
    contributor = repo.signatures[sig_id].reporter  # the stored pseudonym
    repo.subscribe(
        contributor, "dlink:cam:1.0", lambda s: times.setdefault("contrib", sim.now)
    )
    repo.subscribe(
        "freeloader", "dlink:cam:1.0", lambda s: times.setdefault("free", sim.now)
    )
    start = sim.now
    repo.publish(default_credential_signature("dlink:cam:1.0"), reporter="another-site")
    sim.run()
    assert times["contrib"] - start < times["free"] - start
    assert times["free"] - start >= 300.0


def test_deduplication_counts_as_validation(sim):
    repo = CrowdRepository(sim)
    first = default_credential_signature("dlink:cam:1.0")
    sig_id = repo.publish(first, reporter="site-a")
    reporter_pseudo = repo.signatures[sig_id].reporter
    score_before = repo.reputation.score_of(reporter_pseudo)
    assert repo.publish(default_credential_signature("dlink:cam:1.0"), reporter="site-b") is None
    assert repo.duplicates == 1
    assert repo.reputation.score_of(reporter_pseudo) > score_before


def test_votes_can_revoke(sim):
    repo = CrowdRepository(sim)
    sig = default_credential_signature("dlink:cam:1.0")
    sig_id = repo.publish(sig, reporter="site-a")
    sim.run()
    for i in range(8):
        voter = f"v{i}"
        for __ in range(10):
            repo.reputation.feedback(voter, validated=True)
        repo.vote(sig_id, voter, helpful=False)
    assert repo.is_revoked(sig_id)
    assert repo.signatures_for("dlink:cam:1.0") == []
    assert repo.signatures_for("dlink:cam:1.0", include_revoked=True)


def test_revoked_not_delivered_to_new_subscribers(sim):
    repo = CrowdRepository(sim)
    sig_id = repo.publish(default_credential_signature("dlink:cam:1.0"), reporter="a")
    for i in range(8):
        voter = f"v{i}"
        for __ in range(10):
            repo.reputation.feedback(voter, validated=True)
        repo.vote(sig_id, voter, helpful=False)
    got = []
    repo.subscribe("late-site", "dlink:cam:1.0", got.append)
    sim.run()
    assert got == []


def test_low_reputation_publisher_withheld(sim):
    repo = CrowdRepository(sim)
    # poison the reporter's record first
    sig0 = default_credential_signature("z:z:1.0")
    sig0_id = repo.publish(sig0, reporter="poisoner")
    pseudo = repo.signatures[sig0_id].reporter
    for __ in range(10):
        repo.reputation.feedback(pseudo, validated=False)
    got = []
    repo.subscribe("victim", "belkin:wemo:1.0", got.append)
    repo.publish(backdoor_signature("belkin:wemo:1.0", 49153), reporter="poisoner")
    sim.run()
    assert got == []
    assert repo.withheld == 1


def test_covered_skus(sim):
    repo = CrowdRepository(sim)
    repo.publish(default_credential_signature("a:a:1"), reporter="r1")
    repo.publish(backdoor_signature("b:b:1", 1234), reporter="r2")
    assert repo.covered_skus() == {"a:a:1", "b:b:1"}


def test_replay_to_late_subscriber(sim):
    repo = CrowdRepository(sim, base_delay=1.0, free_rider_delay=10.0)
    repo.publish(default_credential_signature("dlink:cam:1.0"), reporter="site-a")
    sim.run()
    got = []
    repo.subscribe("late", "dlink:cam:1.0", got.append)
    sim.run()
    assert len(got) == 1


def test_stats(sim):
    repo = CrowdRepository(sim)
    repo.publish(default_credential_signature("a:a:1"), reporter="r")
    repo.publish(default_credential_signature("a:a:1"), reporter="r2")
    stats = repo.stats()
    assert stats["published"] == 1
    assert stats["duplicates"] == 1
    assert stats["skus"] == 1
