"""Tests for topology construction and routing."""

import pytest

from repro.netsim.node import Host
from repro.netsim.packet import Packet
from repro.netsim.switch import Switch
from repro.netsim.topology import Topology


def test_smart_home_shape():
    topo = Topology.smart_home(["cam", "plug"])
    assert set(topo.nodes) == {"edge", "cluster", "internet", "cam", "plug"}
    assert isinstance(topo["edge"], Switch)
    assert len(topo.links) == 4


def test_duplicate_node_rejected():
    topo = Topology()
    topo.add_host("a")
    with pytest.raises(ValueError):
        topo.add_host("a")


def test_connect_by_name_and_reference():
    topo = Topology()
    a = topo.add_host("a")
    topo.add_host("b")
    link = topo.connect(a, "b", latency=0.5)
    assert link.latency == 0.5
    assert topo["a"].port_to("b") is not None


def test_unknown_node_lookup_raises():
    topo = Topology()
    with pytest.raises(KeyError):
        topo["ghost"]
    with pytest.raises(KeyError):
        topo.connect("ghost", "ghost2")


def test_contains():
    topo = Topology()
    topo.add_host("a")
    assert "a" in topo and "b" not in topo


def test_next_hop_port_shortest_path():
    topo = Topology.smart_home(["cam"])
    # edge -> cam directly
    port = topo.next_hop_port("edge", "cam")
    assert port == topo["edge"].port_to("cam")
    # cam -> internet goes through edge
    assert topo.next_hop_port("cam", "internet") == topo["cam"].port_to("edge")


def test_next_hop_port_no_path():
    topo = Topology()
    topo.add_host("a")
    topo.add_host("b")
    assert topo.next_hop_port("a", "b") is None
    assert topo.next_hop_port("a", "a") is None


def test_next_hop_avoids_failed_links():
    topo = Topology()
    for name in ("a", "m1", "m2", "b"):
        topo.add_host(name)
    l1 = topo.connect("a", "m1", latency=0.001)
    topo.connect("m1", "b", latency=0.001)
    topo.connect("a", "m2", latency=0.01)
    topo.connect("m2", "b", latency=0.01)
    assert topo.next_hop_port("a", "b") == topo["a"].port_to("m1")
    l1.fail()
    assert topo.next_hop_port("a", "b") == topo["a"].port_to("m2")


def test_replace_node_preserves_links(sim):
    topo = Topology.smart_home(["cam"], sim=sim)
    replacement = Host("cam", sim)
    topo.replace_node("cam", replacement)
    assert topo["cam"] is replacement
    # traffic still flows over the preserved link
    def forwarder(sw, pkt, in_port):
        port = topo.next_hop_port(sw.name, pkt.dst)
        if port is not None:
            sw.send(pkt, port)

    topo["edge"].packet_in_handler = forwarder  # type: ignore[attr-defined]
    topo["internet"].send(Packet(src="internet", dst="cam"))
    topo.run()
    assert len(replacement.inbox) == 1


def test_replace_node_name_must_match(sim):
    topo = Topology.smart_home(["cam"], sim=sim)
    with pytest.raises(ValueError):
        topo.replace_node("cam", Host("other", sim))


def test_switches_listing():
    topo = Topology.smart_home([])
    assert [s.name for s in topo.switches()] == ["edge"]
