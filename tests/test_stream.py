"""Tests for the durable telemetry plane (:mod:`repro.obs.stream`).

Covers the three cooperating parts -- host-side store-and-forward lanes,
the controller-side in-order consumer, and the dead-letter queue -- plus
the property that matters: after any seeded drop/partition pattern, every
buffered record is delivered exactly once, in order, per lane.
"""

import pytest

from repro.netsim.simulator import Simulator
from repro.obs.stream import (
    LANE_BULK,
    LANE_URGENT,
    DeadLetterQueue,
    HostStream,
    StreamConfig,
    StreamConsumer,
    _Lane,
    lane_for,
    validate_record,
)
from repro.sdn.channel import ControlChannel, FaultModel


def wire(offset=1, at=0.0, device="cam", kind="port-scan", **over):
    body = {"device": device, "kind": kind, "mbox": "m1", "detail": {}, "trace": None}
    body.update(over.pop("body", {}))
    record = {"offset": offset, "at": at, "body": body}
    record.update(over)
    return record


class TestValidateRecord:
    def test_valid_record_passes(self):
        assert validate_record(wire()) is None
        assert validate_record(wire(trace=None)) is None

    @pytest.mark.parametrize(
        ("record", "reason"),
        [
            ("nope", "not-a-record"),
            (wire(offset="1"), "bad-offset"),
            (wire(offset=0), "bad-offset"),
            (wire(offset=True), "bad-offset"),
            (wire(at="soon"), "bad-timestamp"),
            (wire(at=-1.0), "bad-timestamp"),
            ({"offset": 1, "at": 0.0, "body": []}, "no-body"),
            (wire(body={"device": ""}), "bad-device"),
            (wire(body={"device": 7}), "bad-device"),
            (wire(body={"kind": ""}), "bad-kind"),
            (wire(body={"kind": "x" * 65}), "bad-kind"),
            (wire(body={"detail": [1, 2]}), "bad-detail"),
            (wire(body={"detail": {1: "x"}}), "bad-detail"),
            (wire(body={"mbox": 9}), "bad-mbox"),
            (wire(body={"trace": "t7"}), "bad-trace"),
        ],
    )
    def test_malformed_records_named(self, record, reason):
        assert validate_record(record) == reason

    def test_lane_for(self):
        assert lane_for("telemetry") == LANE_BULK
        assert lane_for("port-scan") == LANE_URGENT
        assert lane_for("login-rejected") == LANE_URGENT


class TestLane:
    def test_offsets_monotonic_from_one(self):
        lane = _Lane("bulk", segment_size=2, max_segments=4, evict_unacked=True)
        offsets = [lane.append({"i": i}, 0.0)[0].offset for i in range(5)]
        assert offsets == [1, 2, 3, 4, 5]
        assert lane.replay_lag() == 5 and lane.depth() == 5

    def test_ack_is_cumulative_and_idempotent(self):
        lane = _Lane("bulk", segment_size=2, max_segments=4, evict_unacked=True)
        for i in range(6):
            lane.append({"i": i}, 0.0)
        lane.ack(4)
        assert lane.acked == 4 and lane.replay_lag() == 2
        lane.ack(2)  # stale: must not regress
        assert lane.acked == 4
        lane.ack(99)  # clamped to what exists
        assert lane.acked == 6 and lane.replay_lag() == 0
        assert lane.depth() == 0  # everything acked: segments freed

    def test_ack_frees_only_fully_covered_segments(self):
        lane = _Lane("bulk", segment_size=2, max_segments=8, evict_unacked=True)
        for i in range(6):
            lane.append({"i": i}, 0.0)
        lane.ack(3)  # covers segment [1,2] fully, [3,4] partially
        assert lane.depth() == 4
        assert lane.oldest_unacked().offset == 4

    def test_window_after_returns_consecutive_records(self):
        lane = _Lane("bulk", segment_size=2, max_segments=8, evict_unacked=True)
        for i in range(7):
            lane.append({"i": i}, 0.0)
        window = lane.window_after(2, limit=3)
        assert [r.offset for r in window] == [3, 4, 5]

    def test_bulk_lane_evicts_oldest_unacked_over_capacity(self):
        lane = _Lane("bulk", segment_size=2, max_segments=2, evict_unacked=True)
        for i in range(7):  # capacity 4
            lane.append({"i": i}, 0.0)
        assert lane.lost > 0
        assert lane.depth() <= 2 * (2 + 1)
        # The survivors are the newest records, still in offset order.
        offsets = [r.offset for r in lane.window_after(0, limit=99)]
        assert offsets == sorted(offsets)
        assert offsets[-1] == 7

    def test_urgent_lane_never_evicts_unacked(self):
        lane = _Lane("urgent", segment_size=2, max_segments=2, evict_unacked=False)
        for i in range(20):
            lane.append({"i": i}, 0.0)
        assert lane.lost == 0
        assert lane.overflow > 0
        assert lane.depth() == 20  # retained past capacity: evidence kept

    def test_peak_depth_tracked(self):
        lane = _Lane("bulk", segment_size=4, max_segments=8, evict_unacked=True)
        for i in range(9):
            lane.append({"i": i}, 0.0)
        lane.ack(9)
        assert lane.depth() == 0 and lane.peak_depth == 9


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"segment_size": 0},
            {"max_segments": 0},
            {"batch_max": 0},
            {"flush_delay": -1.0},
            {"retransmit_timeout": 0.0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            StreamConfig(**kwargs)

    def test_lane_capacity(self):
        assert StreamConfig(segment_size=8, max_segments=4).lane_capacity == 32


class TestDeadLetterQueue:
    def test_bounded_rotation_keeps_newest(self, sim):
        dlq = DeadLetterQueue(sim, max_records=3)
        for i in range(5):
            dlq.quarantine(wire(offset=i + 1), "bad-kind", "h")
        stats = dlq.stats()
        assert stats["depth"] == 3 and stats["rotated"] == 2
        assert stats["quarantined"] == 5
        assert [e["offset"] for e in dlq.entries()] == [3, 4, 5]

    def test_every_quarantine_journaled(self, sim):
        dlq = DeadLetterQueue(sim, max_records=2)
        for i in range(4):
            dlq.quarantine(wire(offset=i + 1), "reputation", "rogue")
        journaled = sim.journal.entries(kind="dlq")
        # The journal outlives DLQ rotation: all 4 refusals recorded.
        assert len(journaled) == 4
        assert journaled[0].fields["reason"] == "reputation"
        assert journaled[0].fields["host"] == "rogue"

    def test_filters_and_export(self, sim, tmp_path):
        dlq = DeadLetterQueue(sim)
        dlq.quarantine(wire(device="cam"), "bad-kind", "h1")
        dlq.quarantine(wire(device="plug"), "reputation", "h2")
        assert [e["host"] for e in dlq.for_device("cam")] == ["h1"]
        assert [e["device"] for e in dlq.entries(reason="reputation")] == ["plug"]
        out = tmp_path / "dlq.jsonl"
        assert dlq.export_jsonl(str(out)) == 2
        assert len(out.read_text().splitlines()) == 2

    def test_hostile_payload_stored_json_safe(self, sim):
        dlq = DeadLetterQueue(sim)
        entry = dlq.quarantine({"offset": 1, "body": {"device": object()}}, "bad-device", "h")
        assert isinstance(entry["record"]["body"]["device"], str)

    def test_rejects_bad_bound(self, sim):
        with pytest.raises(ValueError):
            DeadLetterQueue(sim, max_records=0)


class Rig:
    """One host stream wired to one consumer over a real control channel."""

    def __init__(self, sim, config=None, defer=None, latency=0.001):
        self.sim = sim
        self.channel = ControlChannel(sim, latency=latency)
        self.delivered: list[tuple[dict, float]] = []
        self.dlq = DeadLetterQueue(sim)
        self.consumer = StreamConsumer(
            sim,
            self.channel,
            "ctrl",
            deliver=lambda body, at: self.delivered.append((body, at)),
            dlq=self.dlq,
            defer=defer,
        )
        self.channel.register("ctrl", self._dispatch)
        self.stream = HostStream(
            sim,
            "host",
            self.channel,
            "ctrl",
            config=config
            or StreamConfig(
                segment_size=4,
                max_segments=8,
                batch_max=8,
                flush_delay=0.001,
                retransmit_timeout=0.5,
            ),
        )

    def _dispatch(self, message):
        if message.kind == "stream":
            self.consumer.on_batch(message)

    def bodies(self, kind=None):
        return [
            b for b, __ in self.delivered if kind is None or b.get("kind") == kind
        ]


def body(i, kind="port-scan", device="cam"):
    return {"device": device, "kind": kind, "mbox": "m1", "detail": {"i": i}, "trace": None}


class TestEndToEnd:
    def test_in_order_delivery_and_drain(self, sim):
        rig = Rig(sim)
        for i in range(6):
            rig.stream.offer("port-scan", body(i))
        for i in range(6, 9):
            rig.stream.offer("telemetry", body(i, kind="telemetry"))
        sim.run(until=5.0)
        assert [b["detail"]["i"] for b in rig.bodies("port-scan")] == [0, 1, 2, 3, 4, 5]
        assert [b["detail"]["i"] for b in rig.bodies("telemetry")] == [6, 7, 8]
        assert rig.stream.outstanding() == 0
        # Fully acked: both lanes drained back to zero retained records.
        assert all(lane.depth() == 0 for lane in rig.stream.lanes.values())
        assert rig.consumer.duplicates == 0 and rig.consumer.gaps == 0

    def test_delivery_keeps_birth_timestamp(self, sim):
        rig = Rig(sim)
        sim.schedule(1.5, rig.stream.offer, "port-scan", body(0))
        sim.run(until=5.0)
        ((__, sent_at),) = rig.delivered
        assert sent_at == pytest.approx(1.5)

    def test_partition_replays_late_but_in_order(self, sim):
        rig = Rig(sim)
        rig.channel.partition(0.0, 10.0)  # whole channel dark
        for i in range(12):
            sim.schedule(0.5 * i, rig.stream.offer, "port-scan", body(i))
        sim.run(until=10.0)
        assert rig.delivered == []  # nothing crossed the partition
        assert rig.stream.skipped_unreachable > 0
        assert rig.stream.outstanding() == 12
        sim.run(until=30.0)
        assert [b["detail"]["i"] for b in rig.bodies()] == list(range(12))
        assert rig.stream.outstanding() == 0
        # Replayed records keep their pre-partition birth stamps.
        assert all(at < 10.0 for __, at in rig.delivered)
        # The catch-up batch is journaled as a replay, not a silent gap.
        replays = sim.journal.entries(kind="stream-replay")
        assert replays and replays[0].fields["lag"] >= 5.0

    def test_partition_send_suppression(self, sim):
        """During the outage the stream probes timers, not the wire."""
        rig = Rig(sim)
        rig.channel.partition(0.0, 200.0)
        rig.stream.offer("port-scan", body(0))
        sim.run(until=100.0)
        # No stream batch ever hit the channel while dark (sent counts
        # only the probe-free buffering path: zero "stream" sends).
        assert rig.stream.batches_sent == 0
        assert rig.stream.skipped_unreachable > 0

    def test_shed_defers_bulk_to_buffer_then_replays(self, sim):
        shed = {"on": True}
        rig = Rig(sim, defer=lambda: shed["on"])
        for i in range(4):
            rig.stream.offer("telemetry", body(i, kind="telemetry"))
        rig.stream.offer("port-scan", body(99))
        sim.run(until=3.0)
        # Urgent records flow during shed; bulk is deferred, not dropped.
        assert [b["detail"]["i"] for b in rig.bodies()] == [99]
        assert rig.consumer.deferred > 0
        assert rig.stream.lanes[LANE_BULK].replay_lag() == 4
        shed["on"] = False
        sim.run(until=10.0)
        assert [b["detail"]["i"] for b in rig.bodies("telemetry")] == [0, 1, 2, 3]
        assert rig.stream.outstanding() == 0

    def test_flagged_host_quarantined_but_stream_advances(self, sim):
        rig = Rig(sim)
        rig.consumer.flag_host("host")
        for i in range(3):
            rig.stream.offer("port-scan", body(i))
        sim.run(until=5.0)
        assert rig.delivered == []
        assert rig.dlq.stats()["by_reason"] == {"reputation": 3}
        # Quarantine still acks: the host's buffer drains, no wedge.
        assert rig.stream.outstanding() == 0

    def test_low_trust_host_quarantined(self, sim):
        channel = ControlChannel(sim, latency=0.001)
        delivered = []
        dlq = DeadLetterQueue(sim)
        consumer = StreamConsumer(
            sim,
            channel,
            "ctrl",
            deliver=lambda b, at: delivered.append(b),
            dlq=dlq,
            host_trust=lambda host: 0.1,
        )
        channel.register("ctrl", lambda m: consumer.on_batch(m))
        channel.send("h", "ctrl", "stream", {"host": "h", "lane": "bulk", "records": [wire()]})
        sim.run()
        assert delivered == []
        assert dlq.stats()["by_reason"] == {"reputation": 1}

    def test_poison_record_does_not_wedge_the_lane(self, sim):
        rig = Rig(sim)
        records = [
            wire(offset=1, body={"device": ""}),  # malformed
            wire(offset=2, at=0.0, body={"detail": {"i": 2}}),
        ]
        rig.channel.send(
            "h2", "ctrl", "stream", {"host": "h2", "lane": "bulk", "records": records}
        )
        sim.run(until=1.0)
        # The poison record is quarantined AND the cursor moved past it.
        assert rig.dlq.stats()["by_reason"] == {"bad-device": 1}
        assert [b["detail"]["i"] for b in rig.bodies()] == [2]
        assert rig.consumer.offset_of("h2", "bulk") == 2

    def test_record_without_offset_quarantined_without_advancing(self, sim):
        rig = Rig(sim)
        records = [{"at": 0.0, "body": body(0)}, wire(offset=1, body={"detail": {"i": 1}})]
        rig.channel.send(
            "h3", "ctrl", "stream", {"host": "h3", "lane": "bulk", "records": records}
        )
        sim.run(until=1.0)
        assert rig.dlq.stats()["by_reason"] == {"bad-offset": 1}
        assert rig.consumer.offset_of("h3", "bulk") == 1

    def test_malformed_batch_envelope_quarantined(self, sim):
        rig = Rig(sim)
        rig.channel.send("h4", "ctrl", "stream", {"host": "h4", "lane": "nope", "records": []})
        rig.channel.send("h5", "ctrl", "stream", {"records": "zzz"})
        sim.run(until=1.0)
        reasons = rig.dlq.stats()["by_reason"]
        assert reasons == {"malformed-batch": 2}

    def test_bulk_eviction_under_long_partition_is_journaled(self, sim):
        config = StreamConfig(
            segment_size=2, max_segments=2, batch_max=8, flush_delay=0.001,
            retransmit_timeout=0.5,
        )
        rig = Rig(sim, config=config)
        # Record 0 crosses before the partition, giving the consumer a
        # cursor; the flood during the outage overflows the tiny buffer.
        rig.channel.partition(0.5, 20.0)
        rig.stream.offer("telemetry", body(0, kind="telemetry"))
        for i in range(1, 20):  # capacity 4: most must be evicted
            sim.schedule(
                0.5 + 0.1 * i, rig.stream.offer, "telemetry", body(i, kind="telemetry")
            )
        sim.run(until=40.0)
        lane = rig.stream.lanes[LANE_BULK]
        assert lane.lost > 0
        evicts = sim.journal.entries(kind="stream-evict")
        assert evicts and sum(e.fields["evicted"] for e in evicts) == lane.lost
        # Survivors arrive in order, exactly once, ending at the newest.
        seen = [b["detail"]["i"] for b in rig.bodies()]
        assert seen == sorted(seen) and len(seen) == len(set(seen))
        assert seen[-1] == 19
        assert len(seen) + lane.lost == 20
        # The consumer knows exactly how many records the host shed.
        assert rig.consumer.skipped_unavailable == lane.lost

    def test_urgent_overflows_but_loses_nothing(self, sim):
        config = StreamConfig(
            segment_size=2, max_segments=2, batch_max=8, flush_delay=0.001,
            retransmit_timeout=0.5,
        )
        rig = Rig(sim, config=config)
        rig.channel.partition(0.0, 20.0)
        for i in range(20):
            sim.schedule(0.1 * i, rig.stream.offer, "port-scan", body(i))
        sim.run(until=40.0)
        lane = rig.stream.lanes[LANE_URGENT]
        assert lane.lost == 0 and lane.overflow > 0
        assert [b["detail"]["i"] for b in rig.bodies()] == list(range(20))

    def test_heartbeat_journals_backlog_rate_limited(self, sim):
        rig = Rig(sim)
        rig.channel.partition(0.0, 300.0)
        rig.stream.offer("port-scan", body(0))
        sim.run(until=1.0)
        rig.stream.heartbeat()
        rig.stream.heartbeat()  # within min interval: elided
        sim.run(until=100.0)
        rig.stream.heartbeat()
        depths = sim.journal.entries(kind="stream-depth")
        assert len(depths) == 2
        assert depths[0].fields["replay_lag"] == 1
        assert depths[0].fields["oldest_at"] == pytest.approx(0.0)

    def test_heartbeat_silent_when_drained(self, sim):
        rig = Rig(sim)
        rig.stream.offer("port-scan", body(0))
        sim.run(until=5.0)
        rig.stream.heartbeat()
        assert sim.journal.entries(kind="stream-depth") == []

    def test_buffer_gauges_registered(self, sim):
        rig = Rig(sim)
        rig.channel.partition(0.0, 50.0)
        rig.stream.offer("telemetry", body(0, kind="telemetry"))
        sim.run(until=1.0)
        labels = dict(rig.stream.metric_labels, lane=LANE_BULK)
        assert sim.metrics.value("stream_buffer_depth", **labels) == 1
        assert sim.metrics.value("stream_replay_lag", **labels) == 1
        assert sim.metrics.value("dlq_depth", dlq=rig.dlq.metric_labels["dlq"]) == 0


class TestReplayProperty:
    """After *any* seeded drop/partition pattern: exactly once, in order."""

    @pytest.mark.parametrize("seed", range(8))
    def test_exactly_once_in_order_per_lane(self, seed):
        sim = Simulator()
        rig = Rig(sim)
        model = FaultModel(seed=seed, drop_prob=0.3, jitter=0.01)
        model.add_partition(5.0, 15.0)
        model.add_partition(20.0, 24.0)
        rig.channel.inject_faults(model)
        total = 40
        for i in range(total):
            kind = "telemetry" if i % 3 == 0 else "port-scan"
            sim.schedule(0.6 * i, rig.stream.offer, kind, body(i, kind=kind))
        sim.run(until=240.0)
        # Zero loss: every record shows up despite drops and partitions...
        assert rig.stream.outstanding() == 0, f"seed {seed} left a backlog"
        urgent = [b["detail"]["i"] for b in rig.bodies("port-scan")]
        bulk = [b["detail"]["i"] for b in rig.bodies("telemetry")]
        assert len(urgent) + len(bulk) == total, f"seed {seed} lost records"
        # ...exactly once (no duplicate delivery past the dedup cursor)...
        assert len(set(urgent)) == len(urgent)
        assert len(set(bulk)) == len(bulk)
        # ...and in per-lane offer order.
        assert urgent == sorted(urgent)
        assert bulk == sorted(bulk)


class TestDeploymentIntegration:
    def test_durable_home_replays_across_outage(self):
        from repro.attacks.exploits import EXPLOITS
        from repro.core.deployment import SecuredDeployment
        from repro.devices.library import smart_camera
        from repro.faults import long_partition_plan

        dep = SecuredDeployment.build(durable_telemetry=True)
        dep.add_device(smart_camera, "cam")
        attacker = dep.add_attacker()
        dep.finalize()
        dep.enforce_baseline()
        # A multi-hour blackout starting just after the attack begins.
        long_partition_plan(start=10.0, hours=2.0).apply(dep)
        EXPLOITS["brute_force_login"].launch(attacker, "cam", dep.sim)
        dep.run(until=10.0 + 2.0 * 3600.0 + 120.0)
        consumer = dep.controller.stream
        assert consumer is not None
        assert consumer.delivered > 0
        assert dep.host_stream is not None
        assert dep.host_stream.outstanding() == 0  # fully drained post-heal
        assert dep.host_stream.lanes[LANE_URGENT].lost == 0

    def test_default_deployment_has_no_stream(self):
        from repro.core.deployment import SecuredDeployment

        dep = SecuredDeployment.build()
        dep.finalize()
        assert dep.host_stream is None
        assert dep.controller.stream is None and dep.controller.dlq is None


class TestStreamGauges:
    """Per-(host, lane) exposition: depth, replay lag, and ack lag."""

    def test_labels_carry_stable_host_and_lane(self, sim):
        rig = Rig(sim)
        assert rig.stream.metric_labels["host"] == "host"
        for lane in (LANE_URGENT, LANE_BULK):
            for name in (
                "stream_buffer_depth",
                "stream_replay_lag",
                "stream_ack_lag_seconds",
            ):
                assert (
                    sim.metrics.value(name, lane=lane, **rig.stream.metric_labels)
                    == 0.0
                )

    def test_ack_lag_ages_under_partition_and_clears_on_ack(self, sim):
        rig = Rig(sim)
        rig.channel.partition(0.0, 20.0)
        rig.stream.offer("port-scan", body(1))
        sim.run(until=15.0)
        labels = dict(rig.stream.metric_labels, lane=LANE_URGENT)
        lag = sim.metrics.value("stream_ack_lag_seconds", **labels)
        # The record was born at t=0 and is still unacked at t=15.
        assert lag == pytest.approx(15.0)
        assert sim.metrics.value("stream_replay_lag", **labels) == 1
        sim.run(until=30.0)  # heal: batch ships, ack returns
        assert sim.metrics.value("stream_ack_lag_seconds", **labels) == 0.0
        assert sim.metrics.value("stream_replay_lag", **labels) == 0

    def test_dlq_size_and_quarantine_counters_exported(self, sim):
        rig = Rig(sim)
        rig.stream.offer("port-scan", body(1, kind="x" * 65))
        rig.stream.offer("port-scan", body(2))
        sim.run(until=5.0)
        labels = rig.dlq.metric_labels
        assert sim.metrics.value("dlq_depth", **labels) == 1
        assert sim.metrics.value("dlq_quarantined", **labels) == 1
        assert rig.bodies() and rig.bodies()[0]["detail"]["i"] == 2
