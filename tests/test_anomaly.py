"""Tests for behavioural anomaly profiles."""

from repro.learning.anomaly import (
    BehaviorEvent,
    BehaviorProfile,
    ProfileBank,
    RateProfile,
)


def benign(n=50, context="occupancy=present"):
    return [
        BehaviorEvent(device="thermo", command="heat", source="hub", context=context)
        for __ in range(n)
    ]


class TestBehaviorProfile:
    def test_untrained_profile_abstains(self):
        profile = BehaviorProfile("thermo", min_training=20)
        event = BehaviorEvent("thermo", "heat", "attacker", "")
        assert not profile.is_anomalous(event)

    def test_known_event_not_anomalous(self):
        profile = BehaviorProfile("thermo")
        for event in benign():
            profile.observe(event)
        assert not profile.is_anomalous(benign(1)[0])

    def test_novel_source_is_anomalous(self):
        profile = BehaviorProfile("thermo")
        for event in benign():
            profile.observe(event)
        attack = BehaviorEvent("thermo", "heat", "attacker", "occupancy=present")
        assert profile.is_anomalous(attack)

    def test_context_conditioning(self):
        """The same command is normal occupied and anomalous when empty."""
        profile = BehaviorProfile("thermo", threshold=0.05)
        for event in benign(100, context="occupancy=present"):
            profile.observe(event)
        occupied = BehaviorEvent("thermo", "heat", "hub", "occupancy=present")
        empty = BehaviorEvent("thermo", "heat", "hub", "occupancy=absent")
        assert not profile.is_anomalous(occupied)
        assert profile.is_anomalous(empty)

    def test_score_ordering(self):
        profile = BehaviorProfile("thermo")
        for event in benign():
            profile.observe(event)
        common = profile.score(benign(1)[0])
        novel = profile.score(BehaviorEvent("thermo", "reboot", "attacker", "x"))
        assert novel > common
        assert 0.0 <= common <= 1.0 and 0.0 <= novel <= 1.0


class TestRateProfile:
    def test_learns_then_flags_spike(self):
        profile = RateProfile("cam", min_windows=5, deviation_factor=4.0)
        for __ in range(10):
            assert not profile.observe_window(100.0)
        assert profile.observe_window(1000.0)
        assert profile.alerts

    def test_anomalous_window_not_absorbed(self):
        profile = RateProfile("cam", min_windows=5, deviation_factor=4.0)
        for __ in range(10):
            profile.observe_window(100.0)
        mean_before = profile.mean
        profile.observe_window(10_000.0)
        assert profile.mean == mean_before

    def test_slow_drift_tracked(self):
        profile = RateProfile("cam", min_windows=5, deviation_factor=4.0)
        for i in range(50):
            assert not profile.observe_window(100.0 + i)  # gentle growth


class TestProfileBank:
    def test_bank_separates_devices(self):
        bank = ProfileBank()
        for event in benign():
            bank.observe(event)
        # the camera's profile is untrained, so it abstains
        cam_event = BehaviorEvent("cam", "record", "attacker", "")
        assert not bank.is_anomalous(cam_event)
        # thermo's profile flags the novel source
        attack = BehaviorEvent("thermo", "heat", "attacker", "occupancy=present")
        assert bank.is_anomalous(attack)
