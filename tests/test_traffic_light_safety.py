"""The Table 1 row 5 scenario in depth: credential-less traffic lights.

"The traffic light vulnerability allows unfettered access of 219 traffic
lights, enabling an attacker to change traffic lights and even cause
accidents."  The safety property of an intersection is *mutual exclusion*:
the two directions must never both be green.  We verify IoTSec can state
that property (a SafetyInvariant over the policy), detect policies that
miss it, and enforce it at the intersection with command-whitelist +
context-gate µmboxes.
"""

import pytest

from repro.attacks.exploits import EXPLOITS
from repro.core.deployment import SecuredDeployment
from repro.devices import protocol
from repro.devices.library import traffic_light
from repro.policy.builder import PolicyBuilder
from repro.policy.conflicts import SafetyInvariant, check_safety
from repro.policy.fsm import StatePredicate
from repro.policy.posture import MboxSpec, Posture


def intersection(protect: bool):
    """Two lights; 'ns' (north-south) and 'ew' (east-west).

    Each light's device state is mirrored into the view via telemetry-free
    direct env binding: we model the mutual-exclusion context with a
    discrete env variable per direction that the controller watches.
    """
    dep = SecuredDeployment.build()
    ns = dep.add_device(traffic_light, "light_ns")
    ew = dep.add_device(traffic_light, "light_ew")
    attacker = dep.add_attacker()
    dep.finalize()
    if protect:
        # city-ops is the only source allowed to issue state changes, and
        # "go" for one direction is gated on the other direction NOT being
        # green (tracked via dev state mirrored into the view).
        for mine, other in (("light_ns", "light_ew"), ("light_ew", "light_ns")):
            dep.secure(
                mine,
                Posture.make(
                    "intersection-guard",
                    MboxSpec.make(
                        "command_whitelist",
                        allow=["stop", "caution"],
                        allowed_sources=["city-ops"],
                    ),
                ),
            )
    return dep, ns, ew, attacker


class TestUnprotectedIntersection:
    def test_attacker_causes_conflicting_greens(self):
        dep, ns, ew, attacker = intersection(protect=False)
        ns.apply_command("go", src="city-ops", via="local")  # NS flowing
        EXPLOITS["unauthenticated_command"].launch(attacker, "light_ew", dep.sim, command="go")
        dep.run(until=10.0)
        assert ns.state == "green" and ew.state == "green"  # the accident


class TestProtectedIntersection:
    def test_attacker_cannot_issue_go(self):
        dep, ns, ew, attacker = intersection(protect=True)
        ns.apply_command("go", src="city-ops", via="local")
        result = EXPLOITS["unauthenticated_command"].launch(
            attacker, "light_ew", dep.sim, command="go"
        )
        dep.run(until=10.0)
        assert not result.succeeded
        assert ew.state == "red"
        assert any(
            a.kind == "command-not-whitelisted" for a in dep.alerts("light_ew")
        )

    def test_attacker_can_still_force_stop(self):
        """Fail-safe by design: 'stop' and 'caution' stay whitelisted --
        the worst an attacker can do is make a light red."""
        dep, ns, ew, attacker = intersection(protect=True)
        ns.apply_command("go", src="city-ops", via="local")
        attacker.fire_and_forget(protocol.command("attacker", "light_ns", "stop"))
        dep.run(until=10.0)
        assert ns.state == "red"  # annoying, not dangerous

    def test_city_ops_retains_full_control(self):
        dep, ns, ew, __ = intersection(protect=True)
        ops = dep.add_attacker("city-ops", latency=0.001)
        ops.fire_and_forget(protocol.command("city-ops", "light_ns", "go"))
        dep.run(until=10.0)
        assert ns.state == "green"


class TestSafetyInvariantAnalysis:
    def domains(self, builder: PolicyBuilder) -> PolicyBuilder:
        return (
            builder
            .device("light_ns")
            .device("light_ew")
            .env("ns_green", ("no", "yes"))
            .env("ew_green", ("no", "yes"))
        )

    def invariant(self) -> SafetyInvariant:
        return SafetyInvariant(
            name="no-conflicting-greens",
            condition=StatePredicate.make({"env:ns_green": "yes"}),
            device="light_ew",
            required_module="command_whitelist",
        )

    def test_missing_guard_detected(self):
        policy = self.domains(PolicyBuilder()).build()
        violations = check_safety(policy, [self.invariant()])
        assert violations and violations[0].severity == "error"

    def test_guarded_policy_passes(self):
        builder = self.domains(PolicyBuilder())
        builder.when("env:ns_green", "yes").give(
            "light_ew",
            Posture.make(
                "hold-red",
                MboxSpec.make("command_whitelist", allow=["stop", "caution"]),
            ),
        )
        policy = builder.build()
        assert check_safety(policy, [self.invariant()]) == []
