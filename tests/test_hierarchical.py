"""Tests for hierarchical control."""

import pytest

from repro.core.hierarchical import (
    ControllerQueue,
    FlatControl,
    HierarchicalControl,
    crossing_devices,
    latency_percentiles,
    partition_by_independence,
)
from repro.policy.builder import PolicyBuilder
from repro.policy.context import SUSPICIOUS, ctx
from repro.policy.posture import block_commands


def clustered_policy():
    """Two clusters: (alarm->window) and (sensor->oven); bulb standalone."""
    return (
        PolicyBuilder()
        .device("alarm")
        .device("window")
        .device("sensor")
        .device("oven")
        .device("bulb")
        .when(ctx("alarm"), SUSPICIOUS).give("window", block_commands("open"))
        .when(ctx("sensor"), SUSPICIOUS).give("oven", block_commands("on"))
        .when(ctx("bulb"), SUSPICIOUS).give("bulb", block_commands("on"))
        .build()
    )


class TestControllerQueue:
    def test_fifo_service(self, sim):
        queue = ControllerQueue(sim, "q", service_time=0.01, channel_latency=0.001)
        t1 = queue.submit(sim.now)
        t2 = queue.submit(sim.now)
        assert t1 == pytest.approx(0.011)
        assert t2 == pytest.approx(0.021)  # queued behind the first

    def test_idle_queue_resets(self, sim):
        queue = ControllerQueue(sim, "q", 0.01, 0.001)
        queue.submit(sim.now)
        sim.schedule(1.0, lambda: None)
        sim.run()
        t = queue.submit(sim.now)
        assert t == pytest.approx(1.011)

    def test_utilization(self, sim):
        queue = ControllerQueue(sim, "q", 0.01, 0.0)
        for __ in range(10):
            queue.submit(sim.now)
        assert queue.utilization(1.0) == pytest.approx(0.1)

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            ControllerQueue(sim, "q", -0.1, 0.0)


class TestPartitioning:
    def test_partition_groups_coupled_devices(self):
        policy = clustered_policy()
        partition = partition_by_independence(policy)
        assert partition["alarm"] == partition["window"]
        assert partition["sensor"] == partition["oven"]
        assert partition["alarm"] != partition["sensor"]

    def test_no_crossing_devices_in_clean_partition(self):
        policy = clustered_policy()
        partition = partition_by_independence(policy)
        assert crossing_devices(policy, partition) == set()

    def test_crossing_detected_for_forced_split(self):
        policy = clustered_policy()
        partition = partition_by_independence(policy)
        # force alarm and window apart
        partition["window"] = max(partition.values()) + 1
        crossing = crossing_devices(policy, partition)
        assert "window" in crossing or "alarm" in crossing


class TestFlatVsHierarchical:
    def test_local_events_faster_in_hierarchy(self, sim):
        policy = clustered_policy()
        partition = partition_by_independence(policy)
        crossing = crossing_devices(policy, partition)
        flat = FlatControl(sim, service_time=0.0005, global_latency=0.02)
        hier = HierarchicalControl(
            sim, partition, crossing,
            service_time=0.0005, local_latency=0.001, global_latency=0.02,
        )
        flat_rec = flat.emit("window")
        hier_rec = hier.emit("window")
        assert hier_rec.latency < flat_rec.latency
        assert not hier_rec.escalated

    def test_hierarchy_offloads_global_controller(self, sim):
        policy = clustered_policy()
        partition = partition_by_independence(policy)
        crossing = crossing_devices(policy, partition)
        flat = FlatControl(sim)
        hier = HierarchicalControl(sim, partition, crossing)
        for __ in range(100):
            for device in policy.devices:
                flat.emit(device)
                hier.emit(device)
        assert flat.global_load() == 500
        assert hier.global_load() == 0  # no crossing devices
        assert hier.local_load() == 500

    def test_crossing_devices_escalate(self, sim):
        partition = {"a": 0, "b": 1}
        hier = HierarchicalControl(sim, partition, crossing={"a"})
        record = hier.emit("a")
        assert record.escalated and record.handled_by == "global"
        assert hier.global_load() == 1

    def test_unknown_device_escalates(self, sim):
        hier = HierarchicalControl(sim, {"a": 0}, crossing=set())
        record = hier.emit("mystery")
        assert record.escalated


def test_latency_percentiles():
    from repro.core.hierarchical import HandledEvent

    records = [
        HandledEvent(i, "d", emitted_at=0.0, handled_at=float(i + 1), handled_by="g", escalated=False)
        for i in range(100)
    ]
    stats = latency_percentiles(records)
    assert stats["p50"] == pytest.approx(51.0)
    assert stats["p99"] == pytest.approx(100.0)
    assert stats["max"] == 100.0
    assert latency_percentiles([]) == {"p50": 0.0, "p99": 0.0, "max": 0.0}
