"""Tests for hierarchical control."""

import pytest

from repro.core.hierarchical import (
    ControllerQueue,
    FlatControl,
    HierarchicalControl,
    crossing_devices,
    latency_percentiles,
    partition_by_independence,
)
from repro.policy.builder import PolicyBuilder
from repro.policy.context import SUSPICIOUS, ctx
from repro.policy.posture import block_commands


def clustered_policy():
    """Two clusters: (alarm->window) and (sensor->oven); bulb standalone."""
    return (
        PolicyBuilder()
        .device("alarm")
        .device("window")
        .device("sensor")
        .device("oven")
        .device("bulb")
        .when(ctx("alarm"), SUSPICIOUS).give("window", block_commands("open"))
        .when(ctx("sensor"), SUSPICIOUS).give("oven", block_commands("on"))
        .when(ctx("bulb"), SUSPICIOUS).give("bulb", block_commands("on"))
        .build()
    )


class TestControllerQueue:
    def test_fifo_service(self, sim):
        queue = ControllerQueue(sim, "q", service_time=0.01, channel_latency=0.001)
        t1 = queue.submit(sim.now)
        t2 = queue.submit(sim.now)
        assert t1 == pytest.approx(0.011)
        assert t2 == pytest.approx(0.021)  # queued behind the first

    def test_idle_queue_resets(self, sim):
        queue = ControllerQueue(sim, "q", 0.01, 0.001)
        queue.submit(sim.now)
        sim.schedule(1.0, lambda: None)
        sim.run()
        t = queue.submit(sim.now)
        assert t == pytest.approx(1.011)

    def test_utilization(self, sim):
        queue = ControllerQueue(sim, "q", 0.01, 0.0)
        for __ in range(10):
            queue.submit(sim.now)
        assert queue.utilization(1.0) == pytest.approx(0.1)

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            ControllerQueue(sim, "q", -0.1, 0.0)

    def test_submit_honors_emitted_at(self, sim):
        """The arrival time comes from the event's emission, not from
        whenever the caller happens to run (`sim.now`)."""
        queue = ControllerQueue(sim, "q", service_time=0.01, channel_latency=0.001)
        # A forwarded event that left its source at t=5.0 arrives at
        # 5.001 and completes at 5.011 even though sim.now is still 0.
        assert sim.now == 0.0
        assert queue.submit(5.0) == pytest.approx(5.011)
        # A second hop chained off that completion queues behind it.
        assert queue.submit(5.0) == pytest.approx(5.021)


class TestPartitioning:
    def test_partition_groups_coupled_devices(self):
        policy = clustered_policy()
        partition = partition_by_independence(policy)
        assert partition["alarm"] == partition["window"]
        assert partition["sensor"] == partition["oven"]
        assert partition["alarm"] != partition["sensor"]

    def test_no_crossing_devices_in_clean_partition(self):
        policy = clustered_policy()
        partition = partition_by_independence(policy)
        assert crossing_devices(policy, partition) == set()

    def test_crossing_detected_for_forced_split(self):
        policy = clustered_policy()
        partition = partition_by_independence(policy)
        # force alarm and window apart
        partition["window"] = max(partition.values()) + 1
        crossing = crossing_devices(policy, partition)
        assert "window" in crossing or "alarm" in crossing

    def test_ruleless_devices_get_singleton_partitions(self):
        """Devices with no rules interact with nothing: each must own an
        isolated partition, not share one catch-all bucket."""
        policy = (
            PolicyBuilder()
            .device("alarm")
            .device("window")
            .device("idle1")
            .device("idle2")
            .device("idle3")
            .when(ctx("alarm"), SUSPICIOUS).give("window", block_commands("open"))
            .build()
        )
        partition = partition_by_independence(policy)
        assert partition["alarm"] == partition["window"]
        idle_parts = {partition["idle1"], partition["idle2"], partition["idle3"]}
        # all distinct, and none shared with the coupled pair
        assert len(idle_parts) == 3
        assert partition["alarm"] not in idle_parts

    def test_crossing_devices_tolerates_missing_partition_entries(self):
        """A device present in the policy but absent from the partition
        map must not crash the computation; its variables simply have no
        owning partition, so coupled peers are flagged as crossing."""
        policy = clustered_policy()
        partition = partition_by_independence(policy)
        del partition["alarm"]  # alarm is unplaced
        crossing = crossing_devices(policy, partition)
        # alarm's context drives window, which lives in a (different,
        # non-None) partition -> the unplaced alarm must escalate.
        assert "alarm" in crossing
        # unrelated pairs stay local
        assert "sensor" not in crossing and "oven" not in crossing


class TestFlatVsHierarchical:
    def test_local_events_faster_in_hierarchy(self, sim):
        policy = clustered_policy()
        partition = partition_by_independence(policy)
        crossing = crossing_devices(policy, partition)
        flat = FlatControl(sim, service_time=0.0005, global_latency=0.02)
        hier = HierarchicalControl(
            sim, partition, crossing,
            service_time=0.0005, local_latency=0.001, global_latency=0.02,
        )
        flat_rec = flat.emit("window")
        hier_rec = hier.emit("window")
        assert hier_rec.latency < flat_rec.latency
        assert not hier_rec.escalated

    def test_hierarchy_offloads_global_controller(self, sim):
        policy = clustered_policy()
        partition = partition_by_independence(policy)
        crossing = crossing_devices(policy, partition)
        flat = FlatControl(sim)
        hier = HierarchicalControl(sim, partition, crossing)
        for __ in range(100):
            for device in policy.devices:
                flat.emit(device)
                hier.emit(device)
        assert flat.global_load() == 500
        assert hier.global_load() == 0  # no crossing devices
        assert hier.local_load() == 500

    def test_crossing_devices_escalate(self, sim):
        partition = {"a": 0, "b": 1}
        hier = HierarchicalControl(sim, partition, crossing={"a"})
        record = hier.emit("a")
        assert record.escalated and record.handled_by == "global"
        assert hier.global_load() == 1

    def test_unknown_device_escalates(self, sim):
        hier = HierarchicalControl(sim, {"a": 0}, crossing=set())
        record = hier.emit("mystery")
        assert record.escalated

    def test_escalation_chains_off_local_completion(self, sim):
        """The global hop starts when local triage *completes*: total
        escalated latency = local (channel + service) + global (channel +
        service), not just the global leg."""
        hier = HierarchicalControl(
            sim, {"a": 0}, crossing={"a"},
            service_time=0.0005, local_latency=0.001, global_latency=0.020,
        )
        record = hier.emit("a")
        # local: 0 + 0.001 + 0.0005 = 0.0015; global: 0.0015 + 0.020 + 0.0005
        assert record.handled_at == pytest.approx(0.022)
        assert record.latency == pytest.approx(0.022)
        # An unplaced device has no local triage stage: global leg only.
        fresh = HierarchicalControl(
            sim, {"a": 0}, crossing=set(),
            service_time=0.0005, local_latency=0.001, global_latency=0.020,
        )
        unplaced = fresh.emit("mystery")
        assert unplaced.latency == pytest.approx(0.020 + 0.0005)

    def test_escalated_queueing_carries_across_hops(self, sim):
        """Back-to-back escalations queue at *both* tiers: the second
        event's global hop starts after its own local triage, and then
        waits behind the first event in the global queue."""
        hier = HierarchicalControl(
            sim, {"a": 0}, crossing={"a"},
            service_time=0.01, local_latency=0.001, global_latency=0.020,
        )
        first = hier.emit("a")
        second = hier.emit("a")
        # first: local done 0.011, global done 0.011+0.020+0.01 = 0.041
        assert first.handled_at == pytest.approx(0.041)
        # second: local done 0.021 (queued), global arrival 0.041, but the
        # global server is busy until 0.041 -> done 0.051
        assert second.handled_at == pytest.approx(0.051)


def _events(latencies):
    from repro.core.hierarchical import HandledEvent

    return [
        HandledEvent(i, "d", emitted_at=0.0, handled_at=float(v), handled_by="g", escalated=False)
        for i, v in enumerate(latencies)
    ]


def test_latency_percentiles():
    """Nearest-rank percentiles: element ceil(p*n), 1-based.

    With latencies 1..100, p99 is the 99th value (99.0), *not* the max --
    ``int(p*n)`` was off by one -- and p50 is the 50th value (50.0), not
    biased up to the 51st on an even-length sample.
    """
    stats = latency_percentiles(_events(range(1, 101)))
    assert stats["p50"] == pytest.approx(50.0)
    assert stats["p99"] == pytest.approx(99.0)
    assert stats["max"] == 100.0
    assert latency_percentiles([]) == {"p50": 0.0, "p99": 0.0, "max": 0.0}


def test_latency_percentiles_small_samples():
    # n=1: every percentile is the single observation
    stats = latency_percentiles(_events([7.0]))
    assert stats["p50"] == stats["p99"] == stats["max"] == 7.0
    # n=2: p50 is the lower value (ceil(1.0)-1 = index 0), p99 the upper
    stats = latency_percentiles(_events([1.0, 9.0]))
    assert stats["p50"] == 1.0
    assert stats["p99"] == 9.0
    # n=4 even length: p50 = ceil(2)-1 = index 1, the 2nd value
    stats = latency_percentiles(_events([1.0, 2.0, 3.0, 4.0]))
    assert stats["p50"] == 2.0
