"""Tests for tunneling."""

import pytest

from repro.netsim.packet import Packet
from repro.sdn.tunnel import (
    TUNNEL_OVERHEAD_BYTES,
    TunnelTable,
    detunnel,
    is_tunnelled,
    tunnel_packet,
)


def test_roundtrip():
    inner = Packet(src="a", dst="cam", payload={"cmd": "on"}, size=100)
    outer = tunnel_packet(inner, ingress="edge", target="cam")
    assert is_tunnelled(outer)
    assert outer.size == 100 + TUNNEL_OVERHEAD_BYTES
    unwrapped, ingress = detunnel(outer)
    assert unwrapped is inner
    assert ingress == "edge"


def test_detunnel_rejects_plain_packet():
    with pytest.raises(ValueError):
        detunnel(Packet(src="a", dst="b"))


def test_tunnel_table():
    table = TunnelTable()
    table.bind("cam", "mbox-1")
    table.bind("plug", "mbox-2")
    table.bind("bulb", "mbox-1")
    assert table.mbox_for("cam") == "mbox-1"
    assert table.mbox_for("ghost") is None
    assert sorted(table.devices_of("mbox-1")) == ["bulb", "cam"]
    assert len(table) == 3
    assert "cam" in table
    table.unbind("cam")
    assert "cam" not in table
    table.unbind("cam")  # idempotent
