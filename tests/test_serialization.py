"""Tests for policy/posture JSON serialization."""

import json

import pytest

from repro.policy.builder import PolicyBuilder
from repro.policy.context import SUSPICIOUS
from repro.policy.posture import MboxSpec, Posture, block_commands, quarantine
from repro.policy.serialization import (
    dumps,
    load,
    loads,
    posture_from_dict,
    posture_to_dict,
    save,
)


def sample_policy():
    return (
        PolicyBuilder()
        .device("cam")
        .device("wemo")
        .env("occupancy", ("absent", "present"))
        .when("ctx:cam", SUSPICIOUS)
        .give("cam", quarantine("cam"), priority=300)
        .when("env:occupancy", "absent")
        .give(
            "wemo",
            Posture.make(
                "gate",
                MboxSpec.make(
                    "context_gate", commands=["on"], require={"env:occupancy": "present"}
                ),
            ),
            priority=150,
        )
        .build()
    )


class TestPostureSerialization:
    def test_round_trip(self):
        posture = block_commands("open", "close", name="blocky")
        restored = posture_from_dict(posture_to_dict(posture))
        assert restored == posture

    def test_complex_config_round_trip(self):
        posture = Posture.make(
            "complex",
            MboxSpec.make(
                "context_gate",
                commands=["on", "off"],
                require={"env:occupancy": "present", "env:smoke": "clear"},
            ),
            MboxSpec.make("rate_limiter", rate=0.5, burst=3.0, match_dport=80),
            description="both gates",
        )
        restored = posture_from_dict(posture_to_dict(posture))
        assert restored == posture


class TestPolicySerialization:
    def test_json_is_valid_and_stable(self):
        text = dumps(sample_policy())
        data = json.loads(text)
        assert "domains" in data and "rules" in data
        assert dumps(loads(text)) == text  # stable fixpoint

    def test_round_trip_semantics(self):
        original = sample_policy()
        restored = loads(dumps(original))
        assert restored.state_count() == original.state_count()
        assert set(restored.devices) == set(original.devices)
        for state in original.enumerate_states():
            for device in original.devices:
                assert restored.posture_for(state, device) == original.posture_for(
                    state, device
                ), (state, device)

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "policy.json"
        original = sample_policy()
        save(original, str(path))
        restored = load(str(path))
        state = next(original.enumerate_states())
        assert restored.posture_for(state, "cam") == original.posture_for(state, "cam")

    def test_restored_policy_enforceable(self):
        """A deserialized policy drives a live deployment."""
        from repro.core.deployment import SecuredDeployment
        from repro.devices.library import smart_camera, smart_plug

        restored = loads(dumps(sample_policy()))
        dep = SecuredDeployment.build(policy=restored)
        dep.add_device(smart_camera, "cam")
        dep.add_device(smart_plug, "wemo")
        dep.finalize()
        dep.controller.set_context("cam", SUSPICIOUS)
        assert dep.orchestrator.posture_of("cam").name == "quarantine"

    def test_invalid_rule_values_rejected_on_load(self):
        data = {
            "domains": {"ctx:cam": ["normal"]},
            "rules": [
                {"when": {"ctx:cam": "bogus"}, "device": "cam",
                 "posture": {"name": "x", "modules": []}}
            ],
        }
        with pytest.raises(ValueError):
            loads(json.dumps(data))
