"""Dedicated tests for the policy-builder DSL."""

import pytest

from repro.policy.builder import PolicyBuilder
from repro.policy.context import SUSPICIOUS, SystemState, ctx, env
from repro.policy.fsm import PostureRule, StatePredicate
from repro.policy.posture import ALLOW_ALL, Posture, block_commands, quarantine


def test_device_and_env_declarations():
    policy = (
        PolicyBuilder()
        .device("cam")
        .device("plug", contexts=("normal", "weird"))
        .env("smoke", ("clear", "detected"))
        .build()
    )
    assert policy.space.domain_of("ctx:cam").size == 3
    assert policy.space.domain_of("ctx:plug").values == ("normal", "weird")
    assert policy.space.domain_of("env:smoke").size == 2
    assert set(policy.devices) == {"cam", "plug"}


def test_when_give_round_trip():
    policy = (
        PolicyBuilder()
        .device("cam")
        .when(ctx("cam"), SUSPICIOUS)
        .give("cam", quarantine("cam"))
        .build()
    )
    bad = SystemState({"ctx:cam": SUSPICIOUS})
    good = SystemState({"ctx:cam": "normal"})
    assert policy.posture_for(bad, "cam").name == "quarantine"
    assert policy.posture_for(good, "cam") is ALLOW_ALL


def test_also_builds_conjunctions():
    policy = (
        PolicyBuilder()
        .device("oven")
        .env("occupancy", ("absent", "present"))
        .env("smoke", ("clear", "detected"))
        .when("env:occupancy", "absent")
        .also("env:smoke", "detected")
        .give("oven", block_commands("on"))
        .build()
    )
    rule = policy.rules[0]
    assert rule.predicate.specificity == 2
    both = SystemState(
        {"ctx:oven": "normal", "env:occupancy": "absent", "env:smoke": "detected"}
    )
    one = SystemState(
        {"ctx:oven": "normal", "env:occupancy": "absent", "env:smoke": "clear"}
    )
    assert not policy.posture_for(both, "oven").is_permissive
    assert policy.posture_for(one, "oven").is_permissive


def test_always_rule_applies_everywhere():
    policy = (
        PolicyBuilder()
        .device("cam")
        .always()
        .give("cam", block_commands("stop", name="everywhere"))
        .build()
    )
    for state in policy.enumerate_states():
        assert policy.posture_for(state, "cam").name == "everywhere"


def test_default_posture_override():
    fallback = Posture.make("observe")
    policy = (
        PolicyBuilder().device("cam").default_posture(fallback).build()
    )
    state = next(policy.enumerate_states())
    assert policy.posture_for(state, "cam") is fallback


def test_raw_rule_injection():
    rule = PostureRule(
        predicate=StatePredicate.make({"env:smoke": "detected"}),
        device="cam",
        posture=quarantine("cam"),
    )
    policy = (
        PolicyBuilder()
        .device("cam")
        .env("smoke", ("clear", "detected"))
        .rule(rule)
        .build()
    )
    assert policy.rules_for("cam") == [rule]


def test_string_variable_keys_accepted():
    policy = (
        PolicyBuilder()
        .device("cam")
        .env("smoke", ("clear", "detected"))
        .when("env:smoke", "detected")
        .give("cam", quarantine("cam"))
        .build()
    )
    assert policy.rules[0].predicate.variables() == {"env:smoke"}


def test_invalid_rule_values_rejected_at_build():
    builder = (
        PolicyBuilder()
        .device("cam")
        .when(ctx("cam"), "bogus-context")
        .give("cam", quarantine("cam"))
    )
    with pytest.raises(ValueError):
        builder.build()


def test_variable_objects_and_env_helper():
    v = env("smoke")
    assert v.key == "env:smoke"
    policy = (
        PolicyBuilder()
        .device("cam")
        .env("smoke", ("clear", "detected"))
        .when(v, "detected")
        .give("cam", quarantine("cam"))
        .build()
    )
    assert policy.rules[0].predicate.matches(
        SystemState({"env:smoke": "detected", "ctx:cam": "normal"})
    )
