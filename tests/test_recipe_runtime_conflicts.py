"""Runtime demonstration of section 3.1's recipe-conflict problem.

Static analysis (tests/test_conflicts.py) finds conflicting recipes; this
module shows what they *do* at runtime -- the actuator receives
contradictory commands and its final state depends on network timing --
and that the FSM guard translation resolves the ambiguity deterministically.
"""

from repro.core.deployment import SecuredDeployment
from repro.devices.library import smart_plug, window_actuator
from repro.policy.conflicts import find_recipe_conflicts
from repro.policy.ifttt import Recipe, recipe_to_guard_rules


def build_home(recipes, with_iotsec=False, policy=None):
    dep = SecuredDeployment.build(with_iotsec=with_iotsec, policy=policy)
    window = dep.add_device(window_actuator, "window")
    dep.add_device(smart_plug, "plug")
    for recipe in recipes:
        dep.hub.add_recipe(recipe)
    dep.finalize()
    return dep, window


CONFLICTING = [
    # smoke -> open the window (ventilation)
    Recipe("ventilate", "env:smoke", "detected", "window", "open"),
    # smoke -> close the window (keep oxygen from the fire)
    Recipe("starve-fire", "env:smoke", "detected", "window", "close"),
]


def test_static_analysis_flags_the_pair():
    conflicts = find_recipe_conflicts(CONFLICTING)
    assert len(conflicts) == 1
    assert conflicts[0].severity == "error"


def test_runtime_conflict_sends_contradictory_commands():
    dep, window = build_home(CONFLICTING)
    dep.env.continuous("smoke").set(0.9)
    dep.run(until=10.0)
    commands = [r.cmd for r in window.command_log if r.accepted]
    # both commands arrived; the final state is an accident of ordering
    assert "open" in commands and "close" in commands
    assert len(dep.hub.firings) == 2


def test_runtime_conflict_outcome_depends_on_recipe_order():
    dep_a, window_a = build_home(CONFLICTING)
    dep_b, window_b = build_home(list(reversed(CONFLICTING)))
    dep_a.env.continuous("smoke").set(0.9)
    dep_b.env.continuous("smoke").set(0.9)
    dep_a.run(until=10.0)
    dep_b.run(until=10.0)
    # identical homes, identical trigger -- opposite outcomes
    assert window_a.state != window_b.state


def test_reactive_posture_loses_the_race_to_instant_automation():
    """A posture that only deploys *after* the controller senses the smoke
    arrives ~50 ms too late: the hub's recipe fires on the same event and
    its command crosses the (not-yet-guarded) path first.  This race is
    why context conditions belong in an always-on gate, not in a reactive
    posture swap (next test)."""
    from repro.policy.builder import PolicyBuilder
    from repro.policy.fsm import PostureRule, StatePredicate
    from repro.policy.posture import block_commands

    builder = (
        PolicyBuilder()
        .device("window")
        .device("plug")
        .env("smoke", ("clear", "detected"))
        .env("occupancy", ("absent", "present"))
    )
    builder.rule(
        PostureRule(
            predicate=StatePredicate.make({"env:smoke": "detected"}),
            device="window",
            posture=block_commands("open", name="no-open-during-smoke"),
            priority=400,
        )
    )
    policy = builder.build()
    dep, window = build_home(CONFLICTING, with_iotsec=True, policy=policy)
    dep.enforce_baseline(monitor=False)
    dep.run(until=0.5)
    dep.env.continuous("smoke").set(0.9)
    dep.run(until=10.0)
    accepted = [r.cmd for r in window.command_log if r.accepted]
    assert "open" in accepted  # the race was lost
    # ...but the posture did engage, just late:
    assert dep.orchestrator.posture_of("window").name == "no-open-during-smoke"


def test_always_on_context_gate_resolves_the_ambiguity():
    """The race-free form: the window is *always* tunnelled through a gate
    that admits 'open' only while the view says smoke=clear.  With the
    controller sensing at zero latency (on-premise), the gate's view is
    fresh before any recipe command can cross the network."""
    from repro.policy.posture import MboxSpec, Posture

    dep, window = build_home(CONFLICTING, with_iotsec=True)
    dep.finalize()
    # on-premise sensing: the view updates in the same instant as the event
    dep.controller.watch_environment(dep.env, sensing_latency=0.0)
    dep.secure(
        "window",
        Posture.make(
            "smoke-gate",
            MboxSpec.make(
                "context_gate", commands=["open"], require={"env:smoke": "clear"}
            ),
        ),
    )
    dep.run(until=0.5)
    dep.env.continuous("smoke").set(0.9)
    dep.run(until=10.0)
    accepted = [r.cmd for r in window.command_log if r.accepted]
    assert accepted == ["close"]  # deterministic, safe outcome
    assert window.state == "closed"
    assert any(a.kind == "context-gate-blocked" for a in dep.alerts("window"))


def test_guard_translation_matches_hand_written_rule():
    recipe = Recipe("safety", "env:smoke", "clear", "window", "open")
    rules = recipe_to_guard_rules(recipe, ("clear", "detected"))
    assert len(rules) == 1
    predicate = rules[0].predicate
    assert dict(predicate.requirements) == {"env:smoke": "detected"}
