"""Tests for the signature format."""

from repro.learning.signatures import (
    AttackSignature,
    SignatureMatch,
    backdoor_signature,
    default_credential_signature,
    dns_amplification_signature,
)
from repro.netsim.packet import Packet


def login_pkt(username="admin", password="admin"):
    return Packet(
        src="attacker",
        dst="cam",
        protocol="http",
        dport=80,
        payload={"action": "login", "username": username, "password": password},
    )


class TestSignatureMatch:
    def test_payload_contains(self):
        match = SignatureMatch.make(
            protocol="http", dport=80, payload_contains={"action": "login"}
        )
        assert match.matches(login_pkt())
        assert not match.matches(Packet(src="a", dst="b", protocol="http", dport=80))

    def test_payload_keys_presence(self):
        match = SignatureMatch.make(payload_keys=("cmd",))
        assert match.matches(Packet(src="a", dst="b", payload={"cmd": "anything"}))
        assert not match.matches(Packet(src="a", dst="b", payload={"other": 1}))

    def test_header_wildcards(self):
        match = SignatureMatch.make(dport=53)
        assert match.matches(Packet(src="a", dst="b", protocol="dns", dport=53))
        assert match.matches(Packet(src="a", dst="b", protocol="udp", dport=53))
        assert not match.matches(Packet(src="a", dst="b", dport=80))

    def test_min_size(self):
        match = SignatureMatch.make(min_size=100)
        assert match.matches(Packet(src="a", dst="b", size=100))
        assert not match.matches(Packet(src="a", dst="b", size=99))


class TestAttackSignature:
    def test_key_identity_for_dedup(self):
        a = default_credential_signature("dlink:cam:1.0")
        b = default_credential_signature("dlink:cam:1.0")
        c = default_credential_signature("other:cam:1.0")
        assert a.key() == b.key()
        assert a.key() != c.key()
        assert a.sig_id != b.sig_id

    def test_dict_roundtrip(self):
        original = backdoor_signature("belkin:wemo:1.0", 49153)
        data = original.to_dict()
        restored = AttackSignature.from_dict(data)
        assert restored.key() == original.key()
        assert restored.recommended_posture == original.recommended_posture
        assert restored.match.matches(
            Packet(src="a", dst="b", dport=49153, payload={"cmd": "on"})
        )

    def test_canned_signatures_match_their_attacks(self):
        cred = default_credential_signature("sku")
        assert cred.match.matches(login_pkt())
        assert not cred.match.matches(login_pkt(password="other"))

        dns = dns_amplification_signature("sku")
        assert dns.match.matches(
            Packet(src="a", dst="b", protocol="dns", dport=53, payload={"query": "x"})
        )
