"""Tests for the deployment harness."""

import pytest

from repro.core.deployment import SecuredDeployment, default_home_environment
from repro.devices import protocol
from repro.devices.library import smart_camera, smart_plug
from repro.policy.context import SUSPICIOUS


def test_default_home_environment_variables(sim):
    env = default_home_environment(sim)
    assert set(env.variables) == {
        "temperature",
        "smoke",
        "illuminance",
        "occupancy",
        "window",
        "door",
    }
    assert env.level("temperature") == "normal"
    assert len(env.processes) == 3


def test_standard_nodes_present():
    dep = SecuredDeployment.build()
    for name in ("edge", "internet", "hub", "cluster"):
        assert name in dep.topology


def test_without_iotsec_has_no_cluster():
    dep = SecuredDeployment.build(with_iotsec=False)
    assert dep.cluster is None
    assert dep.orchestrator is None
    dep.add_device(smart_camera, "cam")
    dep.finalize()
    assert dep.controller is None
    assert dep.alerts() == []


def test_without_iotsec_traffic_flows():
    dep = SecuredDeployment.build(with_iotsec=False)
    dep.add_device(smart_camera, "cam")
    attacker = dep.add_attacker()
    dep.finalize()
    replies = []
    attacker.request(
        protocol.login("attacker", "cam", "admin", "admin"), replies.append
    )
    dep.run(until=2.0)
    assert len(replies) == 1 and protocol.is_ok(replies[0])


def test_add_device_registers_attachment_and_pairing():
    dep = SecuredDeployment.build()
    cam = dep.add_device(smart_camera, "cam")
    assert "cam" in dep.orchestrator.attachments
    assert any(user == "owner" for user in cam.sessions.values())


def test_add_device_unpaired():
    dep = SecuredDeployment.build()
    cam = dep.add_device(smart_camera, "cam", pair_with_hub=False)
    assert cam.sessions == {}


def test_default_policy_covers_all_devices():
    dep = SecuredDeployment.build()
    dep.add_device(smart_camera, "cam")
    dep.add_device(smart_plug, "plug")
    dep.finalize()
    assert set(dep.policy.devices) == {"cam", "plug"}
    # suspicious -> firewall; compromised -> quarantine for each device
    assert len(dep.policy.rules) == 4


def test_enforce_baseline_gives_every_device_a_posture():
    dep = SecuredDeployment.build()
    dep.add_device(smart_camera, "cam")
    dep.add_device(smart_plug, "plug")
    dep.finalize()
    dep.enforce_baseline()
    for name in ("cam", "plug"):
        posture = dep.orchestrator.posture_of(name)
        assert posture is not None and not posture.is_permissive


def test_secure_before_finalize_autofinalizes():
    dep = SecuredDeployment.build()
    dep.add_device(smart_camera, "cam")
    from repro.policy.posture import block_commands

    dep.secure("cam", block_commands("stop"))
    assert dep.controller is not None


def test_secure_without_iotsec_raises():
    dep = SecuredDeployment.build(with_iotsec=False)
    dep.add_device(smart_camera, "cam")
    from repro.policy.posture import block_commands

    with pytest.raises(RuntimeError):
        dep.secure("cam", block_commands("stop"))


def test_attach_repository_feeds_ids(sim):
    from repro.core.orchestrator import build_recommended_posture
    from repro.learning.repository import CrowdRepository
    from repro.learning.signatures import default_credential_signature

    dep = SecuredDeployment.build(sim=sim)
    cam = dep.add_device(smart_camera, "cam")
    attacker = dep.add_attacker()
    dep.finalize()
    repo = CrowdRepository(sim)
    repo.publish(default_credential_signature(cam.sku), reporter="other-site")
    dep.attach_repository(repo)
    dep.secure("cam", build_recommended_posture("monitor", "cam", sku=cam.sku))
    dep.run(until=0.5)
    attacker.fire_and_forget(protocol.login("attacker", "cam", "admin", "admin"))
    dep.run(until=2.0)
    assert any(a.kind == "signature-match" for a in dep.alerts("cam"))
    assert dep.controller.context_of("cam") == SUSPICIOUS


def test_alert_flows_over_control_channel_with_latency():
    dep = SecuredDeployment.build(channel_latency=0.05)
    dep.add_device(smart_plug, "plug")
    attacker = dep.add_attacker()
    dep.finalize()
    from repro.policy.posture import block_commands

    dep.secure("plug", block_commands("on"))
    dep.run(until=0.2)
    attacker.fire_and_forget(protocol.command("attacker", "plug", "on", dport=8080))
    dep.run(until=5.0)
    events = dep.controller.bus.events(kind="alert", device="plug")
    assert len(events) == 1


def test_finalize_idempotent():
    dep = SecuredDeployment.build()
    dep.add_device(smart_camera, "cam")
    dep.finalize()
    controller = dep.controller
    dep.finalize()
    assert dep.controller is controller


def test_repository_pushes_live_signatures_to_running_ids(sim):
    """A signature published *after* the µmbox is running still lands."""
    from repro.core.orchestrator import build_recommended_posture
    from repro.devices import protocol as proto
    from repro.devices.library import smart_camera as cam_factory
    from repro.learning.repository import CrowdRepository
    from repro.learning.signatures import default_credential_signature

    dep = SecuredDeployment.build(sim=sim)
    cam = dep.add_device(cam_factory, "cam")
    attacker = dep.add_attacker()
    dep.finalize()
    repo = CrowdRepository(sim, free_rider_delay=5.0)
    dep.attach_repository(repo)
    dep.secure("cam", build_recommended_posture("monitor", "cam", sku=cam.sku))
    dep.run(until=1.0)
    # mbox is live with zero signatures; now the crowd learns the attack
    repo.publish(default_credential_signature(cam.sku), reporter="remote-site")
    dep.run(until=20.0)  # past the free-rider delay
    attacker.fire_and_forget(proto.login("attacker", "cam", "admin", "admin"))
    dep.run(until=30.0)
    assert any(a.kind == "signature-match" for a in dep.alerts("cam"))
    assert cam.login_log == []  # dropped before reaching the device
