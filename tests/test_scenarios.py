"""Integration tests for the paper's narrative attack campaigns."""

import pytest

from repro.attacks.scenarios import fig3_break_in, oven_arson, thermal_break_in
from repro.core.deployment import SecuredDeployment
from repro.devices.library import (
    fire_alarm,
    smart_plug,
    window_actuator,
)
from repro.environment.physics import ThermalProcess
from repro.learning.repository import CrowdRepository
from repro.learning.signatures import backdoor_signature
from repro.policy.ifttt import Recipe


def hot_summer(dep):
    """Re-park the home in a heat wave: without AC the room overheats."""
    for i, process in enumerate(dep.env.processes):
        if isinstance(process, ThermalProcess):
            dep.env.processes[i] = ThermalProcess(outside=35.0)
    dep.env.continuous("temperature").set(21.0)


class TestThermalBreakIn:
    """Section 2.1: plug off -> heat -> cool-down recipe opens the window."""

    def build(self, protect):
        dep = SecuredDeployment.build()
        ac = dep.add_device(smart_plug, "ac_plug", load={"cool_watts": 700.0})
        win = dep.add_device(window_actuator, "window")
        attacker = dep.add_attacker()
        dep.finalize()
        hot_summer(dep)
        ac.apply_command("on", src="hub", via="local")  # AC running
        dep.hub.add_recipe(
            Recipe("cool-down", "env:temperature", "high", "window", "open")
        )
        if protect:
            repo = CrowdRepository(dep.sim)
            repo.publish(
                backdoor_signature(ac.sku, ac.firmware.backdoor_port),
                reporter="another-site",
            )
            dep.attach_repository(repo)
            dep.enforce_baseline()
        campaign = thermal_break_in(
            attacker,
            dep.sim,
            ac_plug="ac_plug",
            window_is_open=lambda: win.state == "open",
        )
        campaign.launch(dep.sim, until=1200.0)
        return dep, campaign, ac, win

    def test_current_world_breached_without_touching_the_window(self):
        dep, campaign, ac, win = self.build(protect=False)
        dep.run(until=1200.0)
        assert ac.state == "off"           # stage 1 landed
        assert win.state == "open"         # physics + automation did the rest
        assert campaign.succeeded()
        # the attacker never sent a packet to the window
        assert all(r.src != "attacker" for r in win.command_log)

    def test_iotsec_blocks_the_backdoor_stage(self):
        dep, campaign, ac, win = self.build(protect=True)
        dep.run(until=1200.0)
        assert ac.state == "on"            # backdoor command dropped
        assert win.state == "closed"
        assert not campaign.succeeded()
        assert any(a.kind == "signature-match" for a in dep.alerts("ac_plug"))


class TestOvenArson:
    """Fig. 5's hazard: oven powered remotely while nobody is home."""

    def build(self, protect):
        dep = SecuredDeployment.build()
        oven_plug = dep.add_device(
            smart_plug, "oven_plug", load={"hazard": 1.0, "heat_watts": 2000.0}
        )
        alarm = dep.add_device(fire_alarm, "alarm", with_backdoor=False)
        attacker = dep.add_attacker()
        dep.finalize()
        if protect:
            from repro.policy.posture import MboxSpec, Posture

            dep.secure(
                "oven_plug",
                Posture.make(
                    "occupancy-gate",
                    MboxSpec.make(
                        "context_gate",
                        commands=["on"],
                        require={"env:occupancy": "present"},
                    ),
                ),
            )
        campaign = oven_arson(
            attacker,
            dep.sim,
            oven_plug="oven_plug",
            smoke_detected=lambda: dep.env.level("smoke") == "detected",
        )
        campaign.launch(dep.sim, until=600.0)
        return dep, campaign, oven_plug, alarm

    def test_current_world_smoke_and_alarm(self):
        dep, campaign, plug, alarm = self.build(protect=False)
        dep.run(until=600.0)
        assert plug.state == "on"
        assert campaign.succeeded()
        assert alarm.state == "alarm"  # the physical cascade tripped it

    def test_iotsec_context_gate_blocks_when_absent(self):
        dep, campaign, plug, alarm = self.build(protect=True)
        dep.run(until=600.0)
        assert plug.state == "off"
        assert not campaign.succeeded()
        assert alarm.state == "ok"


class TestFig3Campaign:
    def test_stage_bookkeeping(self, sim):
        from repro.attacks.attacker import Attacker

        attacker = Attacker("attacker", sim)
        campaign = fig3_break_in(attacker, sim, window_is_open=lambda: False)
        assert [s.label for s in campaign.stages] == [
            "firealarm_backdoor",
            "window_brute_force",
        ]
        campaign.launch(sim, until=60.0)
        sim.run(until=60.0)
        assert not campaign.succeeded()
        results = campaign.stage_results()
        # stages ran (results recorded), but with no network they failed
        assert set(results) == {"firealarm_backdoor", "window_brute_force"}


def test_campaign_goal_timestamp(sim):
    from repro.attacks.attacker import Attacker
    from repro.attacks.scenarios import Campaign

    flag = {"open": False}
    campaign = Campaign(
        name="x", attacker=Attacker("a", sim), goal=lambda: flag["open"]
    )
    campaign.launch(sim, goal_poll=1.0, until=100.0)
    sim.schedule(5.5, lambda: flag.update(open=True))
    sim.run(until=20.0)
    assert campaign.succeeded()
    assert campaign.goal_reached_at == pytest.approx(6.0)
