"""Tests for the µmbox host node (tunnel termination, boot queue)."""

import pytest

from repro.mboxes.base import Mbox, MboxHost, Verdict
from repro.mboxes.elements import CommandFilter
from repro.netsim.link import Link
from repro.netsim.node import Host
from repro.netsim.packet import Packet
from repro.sdn.tunnel import tunnel_packet


@pytest.fixture
def rig(sim):
    host = MboxHost("cluster", sim)
    switch_side = Host("edge", sim)
    Link(sim, switch_side, host, latency=0.001)
    return host, switch_side


def send_tunnelled(sim, switch_side, payload=None, target="dev", dport=8080):
    inner = Packet(src="attacker", dst=target, dport=dport, payload=payload or {})
    outer = tunnel_packet(inner, ingress="edge", target=target)
    switch_side.send(outer)
    return inner


def test_non_tunnel_traffic_ignored(sim, rig):
    host, switch_side = rig
    switch_side.send(Packet(src="edge", dst="cluster", payload={"x": 1}))
    sim.run()
    assert host.tunnelled_in == 0


def test_unbound_device_fail_closed_by_default(sim, rig):
    host, switch_side = rig
    send_tunnelled(sim, switch_side)
    sim.run()
    assert host.unbound_drops == 1
    assert host.returned == 0


def test_unbound_device_pass_mode(sim, rig):
    host, switch_side = rig
    host.default_verdict = Verdict.PASS
    send_tunnelled(sim, switch_side)
    sim.run()
    assert host.returned == 1
    outer = switch_side.inbox[-1]
    assert outer.payload["inspected"] is True
    assert outer.dst == "edge"


def test_bound_mbox_processes_and_returns(sim, rig):
    host, switch_side = rig
    host.bind("dev", Mbox("m1", "dev", [CommandFilter(deny=["on"])]))
    send_tunnelled(sim, switch_side, {"cmd": "off"})
    sim.run()
    assert host.returned == 1
    inner = switch_side.inbox[-1].payload["inner"]
    assert inner.meta["inspected_devices"] == ["dev"]


def test_bound_mbox_drop_verdict(sim, rig):
    host, switch_side = rig
    host.bind("dev", Mbox("m1", "dev", [CommandFilter(deny=["on"])]))
    send_tunnelled(sim, switch_side, {"cmd": "on"})
    sim.run()
    assert host.returned == 0
    assert len(host.alerts_for("dev")) == 1


def test_direction_annotation(sim, rig):
    host, switch_side = rig
    seen = []

    class Spy(CommandFilter):
        def process(self, packet, ctx):
            seen.append(packet.meta.get("direction"))
            return super().process(packet, ctx)

    host.bind("dev", Mbox("m1", "dev", [Spy(deny=[])]))
    # to the device
    send_tunnelled(sim, switch_side, {"cmd": "x"})
    # from the device
    inner = Packet(src="dev", dst="cloud", payload={})
    switch_side.send(tunnel_packet(inner, ingress="edge", target="dev"))
    sim.run()
    assert seen == ["to_device", "from_device"]


def test_boot_queue_holds_packets_until_ready(sim, rig):
    host, switch_side = rig
    mbox = Mbox("m1", "dev", [])
    mbox.ready = False
    host.bind("dev", mbox)
    send_tunnelled(sim, switch_side, {"cmd": "a"})
    send_tunnelled(sim, switch_side, {"cmd": "b"})
    sim.run()
    assert host.returned == 0
    host.mark_ready("dev")
    sim.run()
    assert host.returned == 2


def test_boot_queue_overflow_drops(sim, rig):
    host, switch_side = rig
    host.boot_queue_limit = 3
    mbox = Mbox("m1", "dev", [])
    mbox.ready = False
    host.bind("dev", mbox)
    for i in range(5):
        send_tunnelled(sim, switch_side, {"cmd": str(i)})
    sim.run()
    assert host.unbound_drops == 2
    host.mark_ready("dev")
    sim.run()
    assert host.returned == 3


def test_unbind_clears_queue(sim, rig):
    host, switch_side = rig
    mbox = Mbox("m1", "dev", [])
    mbox.ready = False
    host.bind("dev", mbox)
    send_tunnelled(sim, switch_side, {"cmd": "x"})
    sim.run()
    host.unbind("dev")
    host.mark_ready("dev")  # no-op after unbind
    sim.run()
    assert host.returned == 0


def test_inner_packet_not_mutated_across_inspection(sim, rig):
    host, switch_side = rig
    host.bind("dev", Mbox("m1", "dev", []))
    inner = send_tunnelled(sim, switch_side, {"cmd": "x"})
    sim.run()
    # the original inner packet is untouched; the returned copy carries meta
    assert "direction" not in inner.meta
    returned = switch_side.inbox[-1].payload["inner"]
    assert returned.pkt_id != inner.pkt_id


def test_processing_latency_defers_inspection(sim, rig):
    host, switch_side = rig
    host.processing_latency = 0.010
    host.bind("dev", Mbox("m1", "dev", []))
    send_tunnelled(sim, switch_side, {"cmd": "x"})
    sim.run(until=0.005)
    assert host.returned == 0  # still "computing"
    sim.run()
    assert host.returned == 1
    # one-way: link (1ms) + processing (10ms) + link back (1ms)
    assert sim.now == pytest.approx(0.012)


def test_processing_latency_validation(sim):
    with pytest.raises(ValueError):
        MboxHost("c", sim, processing_latency=-0.1)


class TestBackpressureWindow:
    """Shed-mode sampling journals what it elided, per device, per window."""

    def _telemetry(self, host, device, n):
        from repro.mboxes.base import Alert

        for i in range(n):
            host._on_alert(
                Alert(at=host.sim.now, mbox="m1", device=device, kind="telemetry")
            )

    def test_window_release_journals_elided_counts(self, sim, rig):
        host, __ = rig
        host.backpressure_sample = 4
        host.set_backpressure(True)
        self._telemetry(host, "cam", 8)   # 1-in-4 forwarded: 6 elided
        self._telemetry(host, "plug", 4)  # continues the same 1-in-4 stream
        host.set_backpressure(False)
        elided = sim.journal.entries(kind="telemetry-elided")
        assert [(e.device, e.fields["count"]) for e in elided] == [
            ("cam", 6),
            ("plug", 3),
        ]
        assert all(e.fields["since"] == 0.0 for e in elided)
        assert host.telemetry_suppressed == 9

    def test_each_window_journals_separately(self, sim, rig):
        host, __ = rig
        host.backpressure_sample = 2
        for __unused in range(2):
            host.set_backpressure(True)
            self._telemetry(host, "cam", 4)
            host.set_backpressure(False)
        elided = sim.journal.entries(kind="telemetry-elided")
        assert len(elided) == 2
        assert all(e.device == "cam" for e in elided)

    def test_clean_window_journals_nothing(self, sim, rig):
        host, __ = rig
        host.set_backpressure(True)
        host.set_backpressure(False)
        assert sim.journal.entries(kind="telemetry-elided") == []

    def test_sampling_skipped_when_stream_attached(self, sim, rig):
        """With a durable stream, nothing is sampled away locally: the
        consumer defers bulk records into the buffer instead."""
        host, __ = rig
        forwarded = []
        host.alert_sink = forwarded.append
        host.attach_stream(object())  # any attached stream disables sampling
        host.set_backpressure(True)
        self._telemetry(host, "cam", 8)
        host.set_backpressure(False)
        assert len(forwarded) == 8
        assert host.telemetry_suppressed == 0
        assert sim.journal.entries(kind="telemetry-elided") == []
