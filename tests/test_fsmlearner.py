"""Tests for FSM learning by systematic actuation."""

import pytest

from repro.core.deployment import default_home_environment
from repro.devices.library import (
    FACTORIES,
    smart_bulb,
    smart_plug,
    thermostat,
)
from repro.learning.fsmlearner import (
    FsmLearner,
    behaviourally_equivalent,
)


def test_learns_plug_fsm(sim):
    plug = smart_plug("plug", sim)
    learner = FsmLearner(plug.model.commands)
    report = learner.learn(plug)
    assert report.states == {"off", "on"}
    assert report.transitions == {("off", "on"): "on", ("on", "off"): "off"}
    assert plug.state == "off"  # restored


def test_learns_thermostat_fsm(sim):
    thermo = thermostat("t", sim)
    learner = FsmLearner(thermo.model.commands)
    report = learner.learn(thermo)
    model = learner.to_model(report, initial="idle")
    assert behaviourally_equivalent(model, thermo.model, thermo.model.commands)


def test_all_library_devices_learnable(sim):
    """The learned command-core of every library device matches the
    declared model -- the section 4.2 future-work loop, closed."""
    for name, factory in FACTORIES.items():
        device = factory(f"learn-{name}", sim)
        vocabulary = device.model.commands
        if not vocabulary:
            continue  # pure sensors have no command core to learn
        learner = FsmLearner(vocabulary)
        report = learner.learn(device)
        model = learner.to_model(report, initial=device.model.initial)
        assert behaviourally_equivalent(model, device.model, vocabulary), name


def test_learns_effects_with_environment(sim):
    env = default_home_environment(sim)
    heater = smart_plug("heater", sim, env=env, load={"heat_watts": 1500.0})
    learner = FsmLearner(heater.model.commands)
    report = learner.learn(heater, env=env)
    assert report.effects.get("on", {}).get("heat_watts") == 1500.0
    assert "off" not in report.effects
    model = learner.to_model(report, initial="off")
    assert model.effect_inputs("on") == {"heat_watts": 1500.0}


def test_unknown_commands_discover_nothing_extra(sim):
    bulb = smart_bulb("b", sim)
    learner = FsmLearner(tuple(bulb.model.commands) + ("frobnicate", "explode"))
    report = learner.learn(bulb)
    assert report.states == set(bulb.model.states)
    assert all(cmd != "frobnicate" for (__, cmd) in report.transitions)


def test_empty_vocabulary_rejected():
    with pytest.raises(ValueError):
        FsmLearner([])


def test_probe_count_bounded(sim):
    thermo = thermostat("t", sim)
    learner = FsmLearner(thermo.model.commands)
    report = learner.learn(thermo)
    assert report.probes == len(report.states) * len(learner.vocabulary)
