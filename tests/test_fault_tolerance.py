"""Property-style tests for control-plane fault tolerance.

Two invariants carry this PR:

- **at-least-once on the wire, exactly-once to the application**: under
  any seeded drop pattern, every reliable control message is eventually
  delivered to its handler exactly once (retries cover the losses,
  receiver-side dedup swallows the duplicates);
- **fail-closed means closed**: while an enforcement µmbox is down, not
  one packet crosses it -- the device is unreachable, not unprotected.

Everything is deterministic: the seeds below pin exact drop patterns, so
these are replayable counterexample searches, not flaky statistics.
"""

import json

import pytest

from repro.faults import ChaosGenerator, FaultEvent, FaultPlan
from repro.sdn.channel import ControlChannel, FaultModel, RetryPolicy


def lossy_channel(sim, seed, drop_prob, max_retries=16, timeout=0.02):
    chan = ControlChannel(
        sim,
        latency=0.002,
        retry_policy=RetryPolicy(timeout=timeout, max_retries=max_retries),
    )
    chan.inject_faults(FaultModel(seed=seed, drop_prob=drop_prob))
    return chan


# ---------------------------------------------------------------------------
# At-least-once delivery
# ---------------------------------------------------------------------------
class TestAtLeastOnce:
    @pytest.mark.parametrize("seed", range(8))
    def test_exactly_once_to_app_under_seeded_loss(self, sim, seed):
        """Every reliable message lands exactly once, whatever the wire
        eats -- the property, checked against 8 distinct drop patterns."""
        chan = lossy_channel(sim, seed=seed, drop_prob=0.35)
        got = []
        chan.register("ctrl", lambda m: got.append(m.body["n"]))
        for n in range(25):
            sim.schedule(n * 0.01, chan.send, "sw", "ctrl", "alert", {"n": n}, True)
        sim.run()
        assert sorted(got) == list(range(25))  # all delivered, none twice
        assert chan.giveups == 0
        assert chan.retries > 0  # the pattern actually exercised retries

    def test_unreliable_messages_stay_lossy(self, sim):
        """Fire-and-forget is untouched by the retry machinery: what the
        fault model drops stays dropped."""
        chan = lossy_channel(sim, seed=1, drop_prob=0.5)
        got = []
        chan.register("ctrl", lambda m: got.append(m.body["n"]))
        for n in range(40):
            sim.schedule(n * 0.01, chan.send, "sw", "ctrl", "alert", {"n": n})
        sim.run()
        assert 0 < len(got) < 40  # this seed drops some, not all
        assert chan.retries == 0 and chan.dropped == 40 - len(got)

    def test_lost_ack_causes_duplicate_which_dedup_swallows(self, sim):
        """Partition only the *sender*: data gets through, acks do not.
        The sender retransmits, the receiver dedups and re-acks."""
        chan = ControlChannel(
            sim, latency=0.002, retry_policy=RetryPolicy(timeout=0.02)
        )
        chan.partition(0.0, 0.2, endpoints=("sw",))  # acks travel to "sw"
        got = []
        chan.register("ctrl", lambda m: got.append(m.body))
        chan.send("sw", "ctrl", "alert", {"n": 1}, reliable=True)
        sim.run()
        assert got == [{"n": 1}]  # app saw exactly one copy
        assert chan.duplicates > 0  # the wire saw more
        assert chan.acked == 1  # the re-ack landed after the heal

    def test_give_up_after_retry_cap(self, sim):
        chan = ControlChannel(
            sim, latency=0.002, retry_policy=RetryPolicy(timeout=0.01, max_retries=3)
        )
        chan.partition(0.0, 1e9, endpoints=("ctrl",))
        chan.register("ctrl", lambda m: pytest.fail("must never deliver"))
        chan.send("sw", "ctrl", "alert", {"n": 1}, reliable=True)
        sim.run()
        assert chan.giveups == 1
        assert chan.retries == 3
        assert [e.fields["retries"] for e in sim.journal.entries(kind="ctrl-giveup")] == [3]

    def test_message_sent_inside_partition_arrives_after_heal(self, sim):
        chan = ControlChannel(sim, latency=0.002, retry_policy=RetryPolicy(timeout=0.05))
        chan.partition(0.0, 0.4)
        arrivals = []
        chan.register("ctrl", lambda m: arrivals.append(sim.now))
        sim.schedule(0.1, chan.send, "sw", "ctrl", "alert", {}, True)
        sim.run()
        assert len(arrivals) == 1 and arrivals[0] > 0.4

    @pytest.mark.parametrize("seed", (0, 3, 5))
    def test_two_phase_commit_correct_over_lossy_channel(self, sim, seed):
        """Consistent updates ride the reliable channel: the epoch still
        installs and flips exactly once per switch under loss."""
        from repro.netsim.switch import Switch
        from repro.sdn.consistency import ConsistentUpdater
        from repro.sdn.flowrule import Action, FlowMatch, FlowRule

        chan = lossy_channel(sim, seed=seed, drop_prob=0.3)
        updater = ConsistentUpdater(sim, chan, reliable=True)
        switches = [Switch(f"sw{i}", sim) for i in range(3)]
        rules = {
            sw: [FlowRule(match=FlowMatch(), actions=(Action.drop(),))]
            for sw in switches
        }
        report = updater.push_two_phase(rules)
        sim.run()
        assert report.committed_at is not None
        for sw in switches:
            assert sw.active_version == report.version
            assert sw.table_size() == 1  # retransmissions did not re-apply


# ---------------------------------------------------------------------------
# µmbox failure semantics
# ---------------------------------------------------------------------------
def plug_under_attack(health_check_period=None):
    """A secured plug whose command filter we can crash, plus a steady
    stream of benign-shaped attacker commands to probe reachability."""
    from repro.core.deployment import SecuredDeployment
    from repro.devices import protocol
    from repro.devices.library import WEMO_BACKDOOR_PORT, smart_plug
    from repro.policy.posture import block_commands

    dep = SecuredDeployment.build(health_check_period=health_check_period)
    dep.add_device(smart_plug, "plug")
    attacker = dep.add_attacker()
    dep.finalize()
    dep.secure("plug", block_commands("on"))  # enforcing -> fail-closed
    for i in range(100):
        # "off" is NOT blocked by the filter: in healthy operation these
        # reach the device, so any gap in arrivals is the µmbox's doing.
        sim_t = 0.5 + i * 0.1
        dep.sim.schedule_at(
            sim_t,
            attacker.fire_and_forget,
            protocol.command("attacker", "plug", "off", dport=WEMO_BACKDOOR_PORT),
        )
    return dep


class TestFailureModes:
    def test_fail_closed_passes_nothing_while_down(self, sim):
        """The invariant: no packet reaches the device between crash and
        recovery.  In-flight packets (sent before the crash) get a small
        grace window equal to the path latency."""
        dep = plug_under_attack(health_check_period=0.5)
        dep.sim.schedule_at(3.0, dep.manager.crash, "plug")
        dep.run(until=10.0)
        outage = dep.manager.outages[0]
        assert outage.fail_mode == "closed"
        assert outage.restored_at is not None
        arrivals = [r.at for r in dep.devices["plug"].command_log]
        in_flight_margin = 0.05
        gap = [
            t
            for t in arrivals
            if outage.down_at + in_flight_margin <= t < outage.restored_at
        ]
        assert gap == []  # closed means closed
        assert dep.cluster.down_drops > 0
        # ...and traffic resumed after recovery: the outage is an
        # availability blip, not a permanent black hole.
        assert any(t > outage.restored_at for t in arrivals)

    def test_fail_open_keeps_passing_but_uninspected(self, sim):
        dep = plug_under_attack()  # no health checks: stays down
        dep.cluster.mboxes["plug"].fail_mode = "open"
        dep.sim.schedule_at(3.0, dep.manager.crash, "plug")
        dep.run(until=10.0)
        arrivals = [r.at for r in dep.devices["plug"].command_log]
        assert any(t > 3.1 for t in arrivals)  # still flowing
        assert dep.cluster.fail_open_passes > 0
        assert dep.manager.restarts == 0  # nobody noticed

    def test_enforcement_restored_after_recovery(self, sim):
        """The filter is back after crash -> sweep -> reboot -> repin:
        blocked commands stay blocked post-recovery."""
        from repro.devices import protocol
        from repro.devices.library import WEMO_BACKDOOR_PORT

        dep = plug_under_attack(health_check_period=0.5)
        attacker = dep.attackers["attacker"]
        dep.sim.schedule_at(3.0, dep.manager.crash, "plug")
        dep.sim.schedule_at(
            8.0,
            attacker.fire_and_forget,
            protocol.command("attacker", "plug", "on", dport=WEMO_BACKDOOR_PORT),
        )
        dep.run(until=10.0)
        assert dep.manager.restarts == 1
        plug = dep.devices["plug"]
        assert not any(r.cmd == "on" and r.accepted for r in plug.command_log)
        assert plug.state != "on"
        # the recovery chain is journaled end to end
        kinds = [e.kind for e in dep.sim.journal.entries(device="plug")]
        for kind in ("mbox-crash", "mbox-restart", "mbox-recovered", "chain-repin"):
            assert kind in kinds
        # downtime is bounded by detection (one period) + boot latency
        outage = dep.manager.outages[0]
        assert outage.downtime <= 0.5 + dep.manager.boot_latency + 1e-9

    def test_monitor_only_postures_derive_fail_open(self, sim):
        from repro.core.orchestrator import build_recommended_posture
        from repro.policy.posture import block_commands

        monitor = build_recommended_posture("monitor", "cam")
        assert monitor.failure_mode() == "open"
        assert block_commands("on").failure_mode() == "closed"

    def test_explicit_fail_mode_overrides_derivation(self, sim):
        from repro.policy.posture import MboxSpec, Posture
        from repro.policy.serialization import posture_from_dict, posture_to_dict

        posture = Posture.make(
            "audit-tap", MboxSpec.make("telemetry_tap"), fail_mode="closed"
        )
        assert posture.failure_mode() == "closed"
        assert posture_from_dict(posture_to_dict(posture)).failure_mode() == "closed"

    def test_crash_of_unbound_device_is_a_noop(self, sim):
        dep = plug_under_attack()
        assert dep.manager.crash("ghost") is False
        assert dep.manager.crash("plug") is True
        assert dep.manager.crash("plug") is False  # already down
        assert dep.manager.crashes == 1


# ---------------------------------------------------------------------------
# Fault plans and the chaos generator
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_events_validate(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, "meteor-strike", "plug")
        with pytest.raises(ValueError):
            FaultEvent(-1.0, "mbox-crash", "plug")
        with pytest.raises(ValueError):
            FaultEvent(1.0, "partition", "*", duration=-2.0)
        with pytest.raises(ValueError):
            FaultEvent(1.0, "mbox-crash", "")

    def test_plan_sorts_and_serializes(self):
        plan = FaultPlan(
            [
                FaultEvent(5.0, "mbox-crash", "plug"),
                FaultEvent(1.0, "partition", "*", 3.0),
            ]
        )
        assert [e.at for e in plan] == [1.0, 5.0]
        assert plan.horizon() == 5.0
        assert plan.counts() == {"partition": 1, "mbox-crash": 1}
        assert FaultPlan.from_dict(plan.as_dict()).as_dict() == plan.as_dict()

    def test_apply_rejects_unknown_targets(self, sim):
        from repro.core.deployment import SecuredDeployment
        from repro.devices.library import smart_plug

        dep = SecuredDeployment.build(sim=sim)
        dep.add_device(smart_plug, "plug")
        dep.finalize()
        with pytest.raises(KeyError):
            FaultPlan([FaultEvent(1.0, "mbox-crash", "ghost")]).apply(dep)
        with pytest.raises(KeyError):
            FaultPlan([FaultEvent(1.0, "link-flap", "edge:ghost")]).apply(dep)
        with pytest.raises(ValueError):
            FaultPlan([FaultEvent(1.0, "link-flap", "not-a-link")]).apply(dep)

    def test_applied_faults_fire_and_are_journaled(self, sim):
        from repro.core.deployment import SecuredDeployment
        from repro.devices.library import smart_plug
        from repro.policy.posture import block_commands

        dep = SecuredDeployment.build(sim=sim)
        dep.add_device(smart_plug, "plug")
        dep.finalize()
        dep.secure("plug", block_commands("on"))
        plan = FaultPlan(
            [
                FaultEvent(1.0, "partition", "*", 2.0),
                FaultEvent(2.0, "mbox-crash", "plug"),
                FaultEvent(3.0, "link-flap", "edge:plug", 1.0),
            ]
        )
        assert plan.apply(dep) == 3
        dep.run(until=10.0)
        assert dep.manager.crashes == 1
        faults = sim.journal.entries(kind="fault")
        assert {e.fields["fault"] for e in faults} == set(plan.counts())


class TestChaosGenerator:
    def test_same_seed_same_plan(self):
        kwargs = dict(
            duration=30.0, endpoints=("*",), devices=("cam", "plug"), links=("a:b",)
        )
        plan_a = ChaosGenerator(seed=42).generate(**kwargs)
        plan_b = ChaosGenerator(seed=42).generate(**kwargs)
        assert plan_a.as_dict() == plan_b.as_dict()
        assert plan_a.as_dict() != ChaosGenerator(seed=43).generate(**kwargs).as_dict()

    def test_counts_follow_the_requested_shape(self):
        plan = ChaosGenerator(seed=1).generate(
            duration=60.0,
            links=("a:b",),
            devices=("cam",),
            link_flaps=3,
            partitions=2,
            crashes=4,
        )
        assert plan.counts() == {"link-flap": 3, "partition": 2, "mbox-crash": 4}
        assert all(1.0 <= e.at < 60.0 for e in plan)  # warmup respected

    def test_empty_target_pools_contribute_nothing(self):
        plan = ChaosGenerator(seed=1).generate(duration=10.0, endpoints=(), devices=())
        assert plan.counts() == {}

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            ChaosGenerator().generate(duration=0.5)  # <= warmup
        with pytest.raises(ValueError):
            ChaosGenerator().generate(duration=10.0, min_fault=5.0, max_fault=1.0)


class TestFaultPlanParsing:
    """``from_json``/``from_dict`` reject malformed plans with an error
    that names the offending event -- parse time, not mid-run."""

    def test_unknown_kind_names_the_event(self):
        with pytest.raises(ValueError, match=r"fault event #1 .*meteor-strike"):
            FaultPlan.from_dict(
                {
                    "events": [
                        {"at": 1.0, "kind": "partition", "target": "*"},
                        {"at": 2.0, "kind": "meteor-strike", "target": "plug"},
                    ]
                }
            )

    def test_missing_field_names_the_event(self):
        with pytest.raises(ValueError, match=r"fault event #0 .*'target'"):
            FaultPlan.from_dict({"events": [{"at": 1.0, "kind": "partition"}]})

    def test_malformed_window_names_the_event(self):
        with pytest.raises(ValueError, match=r"fault event #0 "):
            FaultPlan.from_dict(
                {
                    "events": [
                        {
                            "at": 1.0,
                            "kind": "partition",
                            "target": "*",
                            "duration": "soon",
                        }
                    ]
                }
            )
        with pytest.raises(ValueError, match=r"fault event #0 .*duration"):
            FaultPlan.from_dict(
                {
                    "events": [
                        {"at": 1.0, "kind": "partition", "target": "*", "duration": -3}
                    ]
                }
            )

    def test_rejects_non_object_plans(self):
        with pytest.raises(ValueError, match="events"):
            FaultPlan.from_dict([{"at": 1.0}])
        with pytest.raises(ValueError, match="events"):
            FaultPlan.from_dict({"events": "partition"})

    def test_from_json_rejects_invalid_json(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.from_json("{not json")

    def test_from_json_round_trips_intensity(self):
        plan = FaultPlan(
            [FaultEvent(5.0, "alert-storm", "cam", 8.0, intensity=500.0)]
        )
        clone = FaultPlan.from_json(json.dumps(plan.as_dict()))
        assert clone.as_dict() == plan.as_dict()
        assert clone.events[0].intensity == 500.0
