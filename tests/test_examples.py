"""Smoke tests: every shipped example must run clean and tell its story."""

import pathlib
import runpy

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # it narrated something


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "smart_home_gateway",
        "cross_device_policy",
        "crowdsourced_defense",
        "attack_graph_audit",
        "enterprise_deployment",
    } <= names


def test_quickstart_story(capsys):
    script = next(p for p in EXAMPLES if p.stem == "quickstart")
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert "CURRENT WORLD" in out and "WITH IoTSec" in out
    assert "camera hijacked:        True" in out
    assert "camera hijacked:        False" in out


def test_enterprise_story(capsys):
    script = next(p for p in EXAMPLES if p.stem == "enterprise_deployment")
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.count("blocked") >= 3
    assert "EXPLOITED" not in out
