"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.core.deployment import SecuredDeployment, default_home_environment
from repro.netsim.simulator import Simulator
from repro.netsim.topology import Topology


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def env(sim: Simulator):
    return default_home_environment(sim)


@pytest.fixture
def home() -> Topology:
    """A small plain home topology with reactive forwarding installed."""
    topo = Topology.smart_home(["dev_a", "dev_b"])

    def forwarder(switch, packet, in_port):
        port = topo.next_hop_port(switch.name, packet.dst)
        if port is not None and port != in_port:
            switch.send(packet, port)

    topo["edge"].packet_in_handler = forwarder  # type: ignore[attr-defined]
    return topo


@pytest.fixture
def deployment() -> SecuredDeployment:
    return SecuredDeployment.build()
