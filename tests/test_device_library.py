"""Tests for the concrete device library and Table 1 registry."""

import pytest

from repro.devices.library import (
    FACTORIES,
    MODEL_LIBRARY,
    WEMO_BACKDOOR_PORT,
    fire_alarm,
    smart_camera,
    smart_plug,
    traffic_light,
    window_actuator,
)
from repro.devices.vulnerabilities import (
    TABLE1,
    by_flaw_class,
    total_affected_devices,
)


def test_every_factory_builds(sim):
    for name, factory in FACTORIES.items():
        device = factory(f"dev-{name}", sim)
        assert device.name == f"dev-{name}"
        assert device.state == device.model.initial


def test_model_library_covers_major_kinds():
    expected = {
        "camera",
        "smart_plug",
        "thermostat",
        "fire_alarm",
        "window_actuator",
        "door_lock",
        "smart_bulb",
        "motion_sensor",
        "smart_oven",
        "traffic_light",
    }
    assert expected <= set(MODEL_LIBRARY)


def test_models_are_valid():
    for kind, model in MODEL_LIBRARY.items():
        model.validate_deterministic()
        assert model.initial in model.states


def test_camera_hardcoded_credential(sim):
    cam = smart_camera("cam", sim)
    assert cam.firmware.check_login("admin", "admin")
    assert cam.firmware.patch_credentials("admin", "better") is False
    assert "exposed-credentials" in cam.firmware.flaw_classes()


def test_wemo_flaw_set(sim):
    plug = smart_plug("plug", sim)
    flaws = plug.firmware.flaw_classes()
    assert {"backdoor", "open-dns-resolver", "exposed-access"} <= flaws
    assert plug.firmware.backdoor_port == WEMO_BACKDOOR_PORT


def test_wemo_options_disable_flaws(sim):
    plug = smart_plug(
        "plug", sim, with_backdoor=False, with_open_dns=False, internet_exposed=False
    )
    assert plug.firmware.flaw_classes() == set()


def test_plug_load_parameterizes_effects(sim):
    heater = smart_plug("heater", sim, load={"heat_watts": 1500.0})
    assert heater.model.effect_inputs("on") == {"heat_watts": 1500.0}
    bare = smart_plug("bare", sim)
    assert bare.model.effect_inputs("on") == {}


def test_traffic_light_no_credentials(sim):
    light = traffic_light("tl", sim)
    assert not light.firmware.requires_auth_for_control
    assert "no-credentials" in light.firmware.flaw_classes()


def test_fire_alarm_smoke_trigger(sim, env):
    alarm = fire_alarm("alarm", sim, env=env)
    assert alarm.state == "ok"
    env.continuous("smoke").set(0.9)
    assert alarm.state == "alarm"


def test_window_binds_environment_variable(sim, env):
    window = window_actuator("win", sim, env=env)
    assert env.level("window") == "closed"
    window.apply_command("open", src="test", via="local")
    assert env.level("window") == "open"


class TestTable1:
    def test_seven_rows(self):
        assert len(TABLE1) == 7
        assert [r.row for r in TABLE1] == [1, 2, 3, 4, 5, 6, 7]

    def test_rows_reference_real_factories_and_exploits(self):
        from repro.attacks.exploits import EXPLOITS

        for record in TABLE1:
            assert record.factory in FACTORIES, record.factory
            assert record.exploit in EXPLOITS, record.exploit

    def test_devices_exhibit_their_flaw(self, sim):
        for record in TABLE1:
            device = FACTORIES[record.factory](f"t1-{record.row}", sim)
            assert record.flaw_class in device.firmware.flaw_classes(), record

    def test_device_counts_parse(self):
        counts = {r.row: r.device_count_numeric() for r in TABLE1}
        assert counts[1] == 130_000
        assert counts[3] == 146
        assert counts[5] == 219
        assert counts[6] == 500_000

    def test_total_affected(self):
        assert total_affected_devices() > 1_000_000

    def test_by_flaw_class(self):
        assert len(by_flaw_class("exposed-access")) == 2
        assert by_flaw_class("nonexistent") == []
