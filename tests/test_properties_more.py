"""Additional property-based tests: abstract world, miner, anonymizer."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.library import (
    BULB_MODEL,
    FIRE_ALARM_MODEL,
    MOTION_SENSOR_MODEL,
    WINDOW_MODEL,
    smart_plug_model,
)
from repro.learning.abstract_env import AbstractWorld
from repro.learning.anonymize import Anonymizer, leaks_identity
from repro.learning.signatures import AttackSignature, SignatureMatch
from repro.learning.traceminer import LabelledTrace, MiningError, mine_signature
from repro.netsim.packet import Packet

WORLD_DEVICES = {
    "alarm": FIRE_ALARM_MODEL,
    "window": WINDOW_MODEL,
    "plug": smart_plug_model(hazard=1.0),
    "bulb": BULB_MODEL,
    "motion": MOTION_SENSOR_MODEL,
}
WORLD = AbstractWorld(WORLD_DEVICES)
ACTIONS = WORLD.actions()


@st.composite
def action_sequences(draw):
    indices = draw(st.lists(st.integers(0, len(ACTIONS) - 1), max_size=25))
    return [ACTIONS[i] for i in indices]


@given(action_sequences())
@settings(max_examples=60, deadline=None)
def test_abstract_world_deterministic(seq):
    a = WORLD.initial_state()
    b = WORLD.initial_state()
    for action in seq:
        a = WORLD.step(a, action)
        b = WORLD.step(b, action)
    assert a == b


@given(action_sequences())
@settings(max_examples=60, deadline=None)
def test_abstract_world_states_are_closed(seq):
    """After any step, no enabled trigger remains unfired (fixpoint)."""
    state = WORLD.initial_state()
    for action in seq:
        state = WORLD.step(state, action)
    devices = state.devices()
    env = state.env()
    for name, model in WORLD.devices.items():
        for trigger in model.triggers:
            if env.get(trigger.variable) == trigger.level:
                assert (
                    model.next_state(devices[name], trigger.command)
                    == devices[name]
                ), f"{name} has an unfired enabled trigger"


@given(action_sequences())
@settings(max_examples=40, deadline=None)
def test_abstract_world_window_binding_invariant(seq):
    """The window env variable always mirrors the window device state."""
    state = WORLD.initial_state()
    for action in seq:
        state = WORLD.step(state, action)
        assert state.env()["window"] == (
            "open" if state.devices()["window"] == "open" else "closed"
        )


# ----------------------------------------------------------------------
# Trace miner
# ----------------------------------------------------------------------
payload_values = st.sampled_from(["on", "off", "open", "login", "admin", "x"])


@st.composite
def attack_packets(draw):
    n = draw(st.integers(1, 6))
    base_port = draw(st.sampled_from([80, 8080, 49153]))
    packets = []
    for __ in range(n):
        payload = {
            "cmd": draw(payload_values),
            "action": draw(payload_values),
        }
        packets.append(
            Packet(src="attacker", dst="dev", protocol="iot", dport=base_port, payload=payload)
        )
    return packets


@given(attack_packets())
@settings(max_examples=60, deadline=None)
def test_mined_signature_matches_every_attack_packet(packets):
    trace = LabelledTrace.make(attack=packets)
    signature = mine_signature(trace, sku="s")
    assert all(signature.match.matches(p) for p in packets)


@given(attack_packets(), attack_packets())
@settings(max_examples=60, deadline=None)
def test_mined_signature_never_matches_given_benign(attack, benign):
    trace = LabelledTrace.make(attack=attack, benign=benign)
    try:
        signature = mine_signature(trace, sku="s")
    except MiningError:
        return  # refusing is always acceptable
    assert all(signature.match.matches(p) for p in attack)
    assert not any(signature.match.matches(p) for p in benign)


# ----------------------------------------------------------------------
# Anonymizer
# ----------------------------------------------------------------------
@st.composite
def signatures(draw):
    contains = {}
    for key in draw(
        st.lists(
            st.sampled_from(["action", "username", "password", "session", "cmd"]),
            unique=True,
            max_size=4,
        )
    ):
        contains[key] = draw(st.sampled_from(["admin", "secret-thing", "login", "on"]))
    return AttackSignature(
        sku="v:m:1",
        flaw_class="x",
        match=SignatureMatch.make(
            protocol=draw(st.sampled_from([None, "http", "iot"])),
            dport=draw(st.sampled_from([None, 80, 8080])),
            payload_contains=contains,
        ),
        reporter=draw(st.sampled_from(["acme-corp", "site-77", "alice"])),
    )


@given(signatures())
@settings(max_examples=80, deadline=None)
def test_scrub_never_leaks(sig):
    identities = {sig.reporter}
    scrubbed = Anonymizer().scrub(sig)
    assert not leaks_identity(scrubbed, identities)


@given(signatures())
@settings(max_examples=80, deadline=None)
def test_scrub_idempotent_on_match(sig):
    anonymizer = Anonymizer()
    once = anonymizer.scrub(sig)
    twice = anonymizer.scrub(once)
    assert once.match == twice.match
    assert once.sku == twice.sku


@given(signatures())
@settings(max_examples=80, deadline=None)
def test_scrub_only_generalizes_never_narrows(sig):
    """Any packet the scrubbed signature matches with extra keys present,
    plus: every packet matching the original *with its sensitive fields*
    still matches the scrubbed version (detection power preserved)."""
    scrubbed = Anonymizer().scrub(sig)
    packet = Packet(
        src="a",
        dst="b",
        protocol=sig.match.protocol or "http",
        dport=sig.match.dport or 80,
        payload=dict(sig.match.payload_contains),
    )
    if sig.match.matches(packet):
        assert scrubbed.match.matches(packet)


# ----------------------------------------------------------------------
# Serialization: random policies round-trip losslessly
# ----------------------------------------------------------------------
from repro.policy import serialization as policy_serialization  # noqa: E402


def _random_policies_strategy():
    from tests.test_properties import random_policies

    return random_policies()


@given(_random_policies_strategy())
@settings(max_examples=30, deadline=None)
def test_policy_serialization_round_trip(policy):
    restored = policy_serialization.loads(policy_serialization.dumps(policy))
    assert restored.state_count() == policy.state_count()
    for state in policy.enumerate_states(limit=128):
        for device in policy.devices:
            assert restored.posture_for(state, device) == policy.posture_for(
                state, device
            )
