"""Tests for the OpenFlow-style switch."""

from repro.netsim.link import Link
from repro.netsim.node import Host
from repro.netsim.packet import Packet
from repro.netsim.switch import Switch
from repro.sdn.flowrule import Action, FlowMatch, FlowRule
from repro.sdn.tunnel import tunnel_packet


def build(sim):
    """switch with hosts a (port of a), b, c attached."""
    sw = Switch("sw", sim)
    hosts = {}
    for name in ("a", "b", "c"):
        host = Host(name, sim)
        Link(sim, sw, host, latency=0.001)
        hosts[name] = host
    return sw, hosts


def port_of(sw, name):
    return sw.port_to(name)


def test_miss_without_handler_drops(sim):
    sw, hosts = build(sim)
    hosts["a"].send(Packet(src="a", dst="b"))
    sim.run()
    assert hosts["b"].inbox == []
    assert sw.miss_drops == 1


def test_forward_rule(sim):
    sw, hosts = build(sim)
    sw.install(
        FlowRule(match=FlowMatch(dst="b"), actions=(Action.forward(port_of(sw, "b")),))
    )
    hosts["a"].send(Packet(src="a", dst="b"))
    sim.run()
    assert len(hosts["b"].inbox) == 1


def test_drop_rule_beats_lower_priority_forward(sim):
    sw, hosts = build(sim)
    sw.install(
        FlowRule(match=FlowMatch(dst="b"), actions=(Action.forward(port_of(sw, "b")),), priority=100)
    )
    sw.install(
        FlowRule(match=FlowMatch(src="a", dst="b"), actions=(Action.drop(),), priority=500)
    )
    hosts["a"].send(Packet(src="a", dst="b"))
    hosts["c"].send(Packet(src="c", dst="b"))
    sim.run()
    assert len(hosts["b"].inbox) == 1
    assert hosts["b"].inbox[0].src == "c"
    assert sw.dropped == 1


def test_packet_in_handler_called_on_miss(sim):
    sw, hosts = build(sim)
    punted = []
    sw.packet_in_handler = lambda s, p, ip: punted.append((p.dst, ip))
    hosts["a"].send(Packet(src="a", dst="b"))
    sim.run()
    assert punted == [("b", port_of(sw, "a"))]
    assert sw.punted == 1


def test_in_port_match(sim):
    sw, hosts = build(sim)
    sw.install(
        FlowRule(
            match=FlowMatch(dst="b", in_port=port_of(sw, "a")),
            actions=(Action.forward(port_of(sw, "b")),),
            priority=500,
        )
    )
    sw.install(FlowRule(match=FlowMatch(dst="b"), actions=(Action.drop(),), priority=100))
    hosts["a"].send(Packet(src="a", dst="b"))
    hosts["c"].send(Packet(src="c", dst="b"))
    sim.run()
    assert [p.src for p in hosts["b"].inbox] == ["a"]


def test_version_filtering(sim):
    sw, hosts = build(sim)
    old = FlowRule(
        match=FlowMatch(dst="b"), actions=(Action.drop(),), priority=100, version=1
    )
    new = FlowRule(
        match=FlowMatch(dst="b"),
        actions=(Action.forward(port_of(sw, "b")),),
        priority=100,
        version=2,
    )
    sw.install(old)
    sw.install(new)
    sw.set_active_version(1)
    hosts["a"].send(Packet(src="a", dst="b"))
    sim.run()
    assert hosts["b"].inbox == []
    sw.set_active_version(2)
    hosts["a"].send(Packet(src="a", dst="b"))
    sim.run()
    assert len(hosts["b"].inbox) == 1


def test_remove_version(sim):
    sw, __ = build(sim)
    sw.install(FlowRule(match=FlowMatch(), actions=(Action.drop(),), version=1))
    sw.install(FlowRule(match=FlowMatch(), actions=(Action.drop(),), version=2))
    assert sw.remove_version(1) == 1
    assert sw.table_size() == 1


def test_tunnel_action_encapsulates(sim):
    sw, hosts = build(sim)
    sw.install(
        FlowRule(
            match=FlowMatch(dst="b"),
            actions=(Action.tunnel("b", port_of(sw, "c")),),
        )
    )
    hosts["a"].send(Packet(src="a", dst="b", payload={"cmd": "on"}))
    sim.run()
    assert len(hosts["c"].inbox) == 1
    outer = hosts["c"].inbox[0]
    assert outer.protocol == "iotsec-tunnel"
    assert outer.payload["inner"].payload == {"cmd": "on"}
    assert outer.payload["target"] == "b"


def test_inspected_tunnel_return_decapsulated_and_reprocessed(sim):
    sw, hosts = build(sim)
    # bypass rule: inspected traffic from c's port toward b is forwarded
    sw.install(
        FlowRule(
            match=FlowMatch(dst="b", in_port=port_of(sw, "c")),
            actions=(Action.forward(port_of(sw, "b")),),
            priority=900,
        )
    )
    inner = Packet(src="a", dst="b", payload={"cmd": "on"})
    outer = tunnel_packet(inner, ingress="sw", target="b")
    outer.dst = "sw"
    outer.payload["inspected"] = True
    hosts["c"].send(outer)
    sim.run()
    assert len(hosts["b"].inbox) == 1
    assert hosts["b"].inbox[0].payload == {"cmd": "on"}
    assert hosts["b"].inbox[0].meta.get("inspected") is True


def test_rules_for_device(sim):
    sw, __ = build(sim)
    sw.install(FlowRule(match=FlowMatch(dst="cam"), actions=(Action.drop(),)))
    sw.install(FlowRule(match=FlowMatch(src="cam"), actions=(Action.drop(),)))
    sw.install(FlowRule(match=FlowMatch(dst="other"), actions=(Action.drop(),)))
    assert len(sw.rules_for("cam")) == 2
