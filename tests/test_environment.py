"""Tests for environment variables, physics, and the engine."""

import pytest

from repro.environment.engine import Environment
from repro.environment.physics import (
    LightProcess,
    OccupancySchedule,
    SmokeProcess,
    ThermalProcess,
)
from repro.environment.variables import ContinuousVariable, DiscreteVariable


class TestDiscreteVariable:
    def test_initial_defaults_to_first(self):
        var = DiscreteVariable("window", ("closed", "open"))
        assert var.level == "closed"

    def test_set_and_domain_enforcement(self):
        var = DiscreteVariable("window", ("closed", "open"))
        var.set("open")
        assert var.value == "open"
        with pytest.raises(ValueError):
            var.set("ajar")

    def test_observer_fires_only_on_change(self):
        var = DiscreteVariable("window", ("closed", "open"))
        events = []
        var.observe(lambda v: events.append(v.level))
        var.set("open")
        var.set("open")
        var.set("closed")
        assert events == ["open", "closed"]

    def test_validation(self):
        with pytest.raises(ValueError):
            DiscreteVariable("x", ())
        with pytest.raises(ValueError):
            DiscreteVariable("x", ("a", "a"))
        with pytest.raises(ValueError):
            DiscreteVariable("x", ("a",), initial="b")


class TestContinuousVariable:
    def make_temp(self, initial=21.0):
        return ContinuousVariable(
            "temperature",
            initial=initial,
            thresholds=(10.0, 26.0),
            level_names=("low", "normal", "high"),
        )

    def test_discretization(self):
        temp = self.make_temp()
        assert temp.level == "normal"
        temp.set(5.0)
        assert temp.level == "low"
        temp.set(30.0)
        assert temp.level == "high"

    def test_boundary_belongs_to_upper_level(self):
        # a value exactly at a threshold counts as having crossed it
        temp = self.make_temp()
        temp.set(26.0)
        assert temp.level == "high"
        temp.set(25.9999)
        assert temp.level == "normal"

    def test_observer_on_level_crossing_only(self):
        temp = self.make_temp()
        events = []
        temp.observe(lambda v: events.append(v.level))
        temp.set(22.0)  # still normal
        temp.set(27.0)  # -> high
        temp.add(1.0)   # still high
        assert events == ["high"]

    def test_clamping(self):
        var = ContinuousVariable("smoke", initial=0.0, minimum=0.0, maximum=1.0)
        var.add(-5.0)
        assert var.value == 0.0
        var.set(9.0)
        assert var.value == 1.0

    def test_history(self):
        var = ContinuousVariable("x", initial=0.0)
        var.set(1.0, at=10.0)
        var.add(1.0, at=20.0)
        assert var.history == [(10.0, 1.0), (20.0, 2.0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            ContinuousVariable("x", thresholds=(2.0, 1.0))
        with pytest.raises(ValueError):
            ContinuousVariable("x", thresholds=(1.0,), level_names=("only",))


class TestEngine:
    def test_input_contributions_sum_per_source(self, sim):
        env = Environment(sim)
        env.set_input("heat_watts", 1000.0, source="heater1")
        env.set_input("heat_watts", 500.0, source="heater2")
        assert env.inputs["heat_watts"] == 1500.0
        env.set_input("heat_watts", 0.0, source="heater1")
        assert env.inputs["heat_watts"] == 500.0
        env.clear_input("heat_watts", source="heater2")
        assert env.inputs["heat_watts"] == 0.0

    def test_snapshot_levels(self, sim):
        env = Environment(sim)
        env.add_discrete("occupancy", ("absent", "present"))
        env.add_continuous(
            "temperature", initial=21.0, thresholds=(26.0,), level_names=("ok", "hot")
        )
        assert env.snapshot() == {"occupancy": "absent", "temperature": "ok"}

    def test_duplicate_variable_rejected(self, sim):
        env = Environment(sim)
        env.add_discrete("x", ("a",))
        with pytest.raises(ValueError):
            env.add_discrete("x", ("b",))

    def test_typed_accessors(self, sim):
        env = Environment(sim)
        env.add_discrete("d", ("a",))
        env.add_continuous("c", initial=0.0)
        with pytest.raises(TypeError):
            env.continuous("d")
        with pytest.raises(TypeError):
            env.discrete("c")

    def test_level_change_subscription(self, sim):
        env = Environment(sim)
        env.add_discrete("occupancy", ("absent", "present"))
        seen = []
        env.on_level_change(lambda name, level: seen.append((name, level)))
        env.discrete("occupancy").set("present")
        assert seen == [("occupancy", "present")]

    def test_ticker_runs_on_simulator(self, sim):
        env = Environment(sim, tick=1.0)
        env.add_continuous("temperature", initial=20.0)
        env.add_process(ThermalProcess(outside=20.0))
        env.set_input("heat_watts", 1000.0)
        env.start()
        sim.run(until=10.0)
        assert env.continuous("temperature").value > 20.0
        env.stop()

    def test_tick_validation(self, sim):
        with pytest.raises(ValueError):
            Environment(sim, tick=0.0)


class TestPhysics:
    def test_thermal_heats_toward_equilibrium(self, sim):
        env = Environment(sim)
        env.add_continuous("temperature", initial=20.0)
        process = ThermalProcess(outside=10.0)
        env.add_process(process)
        env.set_input("heat_watts", 1500.0)
        for __ in range(5000):
            env.step_once(1.0)
        # equilibrium = outside + heat*gain/leak = 10 + 1500*0.00004/0.002 = 40
        assert env.continuous("temperature").value == pytest.approx(40.0, abs=1.0)

    def test_thermal_cools_to_outside_without_input(self, sim):
        env = Environment(sim)
        env.add_continuous("temperature", initial=30.0)
        env.add_process(ThermalProcess(outside=10.0))
        for __ in range(5000):
            env.step_once(1.0)
        assert env.continuous("temperature").value == pytest.approx(10.0, abs=0.5)

    def test_open_window_accelerates_cooling(self, sim):
        def run(window_level):
            env = Environment(sim)
            env.add_continuous("temperature", initial=30.0)
            env.add_discrete("window", ("closed", "open"), initial=window_level)
            env.add_process(ThermalProcess(outside=10.0))
            for __ in range(60):
                env.step_once(1.0)
            return env.continuous("temperature").value

        assert run("open") < run("closed")

    def test_smoke_accumulates_under_hazard_and_decays(self, sim):
        env = Environment(sim)
        env.add_continuous("smoke", initial=0.0, minimum=0.0)
        env.add_process(SmokeProcess())
        env.set_input("hazard", 1.0)
        for __ in range(60):
            env.step_once(1.0)
        peak = env.continuous("smoke").value
        assert peak > 0.5
        env.set_input("hazard", 0.0)
        for __ in range(600):
            env.step_once(1.0)
        assert env.continuous("smoke").value < peak / 2

    def test_light_follows_lamp(self, sim):
        env = Environment(sim)
        env.add_continuous("illuminance", initial=0.0)
        env.add_process(LightProcess())
        env.set_input("lamp_lux", 400.0)
        for __ in range(10):
            env.step_once(1.0)
        assert env.continuous("illuminance").value == pytest.approx(400.0, abs=1.0)
        env.set_input("lamp_lux", 0.0)
        for __ in range(10):
            env.step_once(1.0)
        assert env.continuous("illuminance").value == pytest.approx(0.0, abs=1.0)

    def test_occupancy_schedule(self, sim):
        env = Environment(sim, tick=1.0)
        env.add_discrete("occupancy", ("absent", "present"))
        env.add_process(
            OccupancySchedule([(5.0, "present"), (10.0, "absent")])
        )
        env.start()
        sim.run(until=4.0)
        assert env.level("occupancy") == "absent"
        sim.run(until=6.0)
        assert env.level("occupancy") == "present"
        sim.run(until=11.0)
        assert env.level("occupancy") == "absent"


def test_continuous_history_bounded():
    var = ContinuousVariable("x", initial=0.0)
    var.history_limit = 100
    for i in range(1000):
        var.set(float(i), at=float(i))
    assert len(var.history) <= 100
    # the most recent samples are retained
    assert var.history[-1] == (999.0, 999.0)
