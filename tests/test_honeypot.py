"""Tests for the honeypot baseline."""

import random

from repro.learning.honeypot import HoneypotFarm


def test_covers_most_popular_skus():
    population = {"sku-a": 1000, "sku-b": 500, "sku-c": 10, "sku-d": 5}
    farm = HoneypotFarm.covering_most_popular(population, n_honeypots=2)
    assert set(farm.skus) == {"sku-a", "sku-b"}


def test_campaign_against_emulated_sku_learned_after_delay():
    farm = HoneypotFarm(skus=("sku-a",), detection_delay=100.0)
    rng = random.Random(0)
    assert farm.observe_campaign("sku-a", at=10.0, rng=rng)
    assert farm.covered_skus(now=50.0) == set()     # still analyzing
    assert farm.covered_skus(now=110.0) == {"sku-a"}


def test_campaign_against_unemulated_sku_missed():
    farm = HoneypotFarm(skus=("sku-a",))
    rng = random.Random(0)
    assert not farm.observe_campaign("sku-z", at=10.0, rng=rng)
    assert farm.covered_skus(now=1e9) == set()


def test_hit_probability():
    farm = HoneypotFarm(skus=("sku-a",), hit_probability=0.0)
    assert not farm.observe_campaign("sku-a", at=0.0, rng=random.Random(0))


def test_already_learned_is_idempotent():
    farm = HoneypotFarm(skus=("sku-a",), detection_delay=10.0)
    rng = random.Random(0)
    farm.observe_campaign("sku-a", at=0.0, rng=rng)
    first_ready = farm.learned["sku-a"]
    farm.observe_campaign("sku-a", at=100.0, rng=rng)
    assert farm.learned["sku-a"] == first_ready


def test_coverage_fraction():
    farm = HoneypotFarm(skus=("a", "b"), detection_delay=0.0)
    rng = random.Random(0)
    farm.observe_campaign("a", at=0.0, rng=rng)
    assert farm.coverage(["a", "b", "c", "d"], now=1.0) == 0.25
    assert farm.coverage([], now=1.0) == 1.0
