"""Tests for the IoT protocol message constructors."""

from repro.devices import protocol
from repro.devices.protocol import CTRL_PORT, DNS_PORT, MGMT_PORT, TELEMETRY_PORT


def test_login_shape():
    pkt = protocol.login("a", "cam", "admin", "secret")
    assert pkt.dport == MGMT_PORT
    assert pkt.protocol == "http"
    assert pkt.payload == {"action": "login", "username": "admin", "password": "secret"}


def test_get_resource_with_and_without_session():
    anon = protocol.get_resource("a", "cam", "image")
    assert "session" not in anon.payload
    authed = protocol.get_resource("a", "cam", "image", session="tok")
    assert authed.payload["session"] == "tok"
    assert authed.payload["resource"] == "image"


def test_command_defaults_and_params():
    pkt = protocol.command("a", "plug", "on")
    assert pkt.dport == CTRL_PORT and pkt.protocol == "iot"
    assert pkt.payload == {"cmd": "on"}
    custom = protocol.command("a", "plug", "set", session="t", dport=9999, level=5)
    assert custom.dport == 9999
    assert custom.payload == {"cmd": "set", "level": 5, "session": "t"}


def test_telemetry_copies_readings():
    readings = {"person": "present"}
    pkt = protocol.telemetry("cam", "hub", "recording", readings)
    readings["person"] = "absent"
    assert pkt.payload["readings"] == {"person": "present"}
    assert pkt.dport == TELEMETRY_PORT


def test_dns_query_spoofing():
    honest = protocol.dns_query("attacker", "plug", "x.com")
    assert honest.src == "attacker" and honest.dport == DNS_PORT
    spoofed = protocol.dns_query("attacker", "plug", "x.com", spoofed_src="victim")
    assert spoofed.src == "victim"


def test_status_helpers():
    from repro.netsim.packet import Packet

    ok = Packet(src="a", dst="b", payload={"status": "ok"})
    denied = Packet(src="a", dst="b", payload={"status": "denied"})
    other = Packet(src="a", dst="b", payload={})
    assert protocol.is_ok(ok) and not protocol.is_ok(denied)
    assert protocol.is_denied(denied) and not protocol.is_denied(other)
