"""Tests for attack-graph generation and analysis."""

from repro.devices.library import (
    fire_alarm,
    smart_camera,
    smart_plug,
    thermostat,
    window_actuator,
)
from repro.learning.attackgraph import (
    ATTACKER,
    AttackGraphBuilder,
    control,
    envfact,
    state,
)
from repro.netsim.simulator import Simulator
from repro.policy.ifttt import Recipe


def make_devices(sim, **overrides):
    devices = {
        "heater_plug": smart_plug("heater_plug", sim, load={"heat_watts": 1500.0}),
        "alarm": fire_alarm("alarm", sim),
        "window": window_actuator("window", sim),
        "thermo": thermostat("thermo", sim),
    }
    devices.update(overrides)
    return {d.name: (d.model, d.firmware) for d in devices.values()}


def test_flaws_grant_control(sim):
    builder = AttackGraphBuilder(make_devices(sim))
    assert builder.graph.has_edge(ATTACKER, control("heater_plug"))
    assert builder.graph.has_edge(ATTACKER, control("window"))  # weak password
    # thermostat has strong creds and patchable firmware: no direct control
    assert not builder.graph.has_edge(ATTACKER, control("thermo"))


def test_direct_attack_path(sim):
    builder = AttackGraphBuilder(make_devices(sim))
    goal = envfact("window", "open")
    paths = builder.paths_to(goal)
    direct = [p for p in paths if p.facts[1] == control("window")]
    assert direct
    assert direct[0].stages == 3
    assert "brute_force_login" in direct[0].exploits


def test_multistage_physical_path_requires_recipe(sim):
    devices = make_devices(sim)
    goal = envfact("window", "open")
    no_recipe = AttackGraphBuilder(devices)
    paths = [
        p for p in no_recipe.paths_to(goal) if control("heater_plug") in p.facts
    ]
    assert paths == []  # without the automation there is no thermal path

    with_recipe = AttackGraphBuilder(
        devices,
        recipes=[Recipe("cool-down", "env:temperature", "high", "window", "open")],
    )
    paths = [
        p for p in with_recipe.paths_to(goal) if control("heater_plug") in p.facts
    ]
    assert len(paths) == 1
    assert envfact("temperature", "high") in paths[0].facts
    assert "recipe" in paths[0].exploits


def test_trigger_edges(sim):
    builder = AttackGraphBuilder(make_devices(sim))
    # oven-style hazard is absent here, but smoke trigger edge exists from
    # env fact to alarm state regardless of who can produce the fact.
    assert builder.graph.has_edge(
        envfact("smoke", "detected"), state("alarm", "alarm")
    )


def test_unreachable_goal(sim):
    builder = AttackGraphBuilder(make_devices(sim))
    assert not builder.can_reach(envfact("door", "unlocked"))
    assert builder.paths_to(envfact("door", "unlocked")) == []
    assert builder.shortest_attack(envfact("door", "unlocked")) is None
    assert builder.cut_devices(envfact("door", "unlocked")) == []


def test_cut_devices_identify_single_chokepoint(sim):
    sim2 = Simulator()
    devices = {
        "cam": smart_camera("cam", sim2),
    }
    mapped = {d: (m, f) for d, (m, f) in ((k, v) for k, v in (
        (name, (dev.model, dev.firmware)) for name, dev in devices.items()
    ))}
    builder = AttackGraphBuilder(mapped)
    goal = state("cam", "idle")  # attacker stops the recording
    assert builder.can_reach(goal)
    assert builder.cut_devices(goal) == ["cam"]


def test_report(sim):
    builder = AttackGraphBuilder(
        make_devices(sim),
        recipes=[Recipe("cool-down", "env:temperature", "high", "window", "open")],
    )
    report = builder.report(envfact("window", "open"))
    assert report.paths_to_goal == 2
    assert report.shortest_depth == 3
    assert report.nodes > 10
    assert report.cut_devices == []  # two disjoint paths -> no single cut


def test_shortest_attack_is_minimal(sim):
    builder = AttackGraphBuilder(
        make_devices(sim),
        recipes=[Recipe("cool-down", "env:temperature", "high", "window", "open")],
    )
    shortest = builder.shortest_attack(envfact("window", "open"))
    assert shortest is not None
    assert shortest.stages == 3  # the brute-force path, not the thermal one


def test_paths_bounded(sim):
    builder = AttackGraphBuilder(
        make_devices(sim),
        recipes=[Recipe("cool-down", "env:temperature", "high", "window", "open")],
    )
    assert len(builder.paths_to(envfact("window", "open"), max_paths=1)) == 1


def test_devices_touched(sim):
    builder = AttackGraphBuilder(make_devices(sim))
    path = builder.shortest_attack(envfact("window", "open"))
    assert path.devices_touched() == {"window"}
