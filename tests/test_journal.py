"""Unit tests for the flight recorder (:mod:`repro.obs.journal`)."""

import json

import pytest

from repro.netsim.simulator import Simulator
from repro.obs.journal import UNJOURNALED_ALERT_KINDS, Journal


def _clocked(start: float = 0.0):
    """A journal with a mutable clock the test advances by hand."""
    state = {"now": start}
    journal = Journal(clock=lambda: state["now"], segment_size=4, max_segments=2)
    return journal, state


class TestRecording:
    def test_entries_are_stamped_and_sequenced(self):
        journal, state = _clocked()
        journal.record("alert", device="cam", trace=7, alert_kind="login-rejected")
        state["now"] = 2.5
        journal.record("verdict", device="cam", verdict="drop")
        a, b = list(journal)
        assert (a.seq, a.at, a.kind, a.device, a.trace_id) == (1, 0.0, "alert", "cam", 7)
        assert a.fields == {"alert_kind": "login-rejected"}
        assert (b.seq, b.at) == (2, 2.5)
        assert journal.recorded == 2 and len(journal) == 2

    def test_record_does_not_touch_the_clock_when_disabled(self):
        """Zero-cost contract: a disabled journal must not even read time."""
        calls = []

        def clock() -> float:
            calls.append(1)
            return 0.0

        journal = Journal(clock=clock, enabled=False)
        journal.record("alert", device="cam")
        assert calls == []

    def test_sequence_numbers_strictly_monotonic_across_eviction(self):
        journal, __ = _clocked()
        for i in range(30):
            journal.record("e")
        seqs = [e.seq for e in journal]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        assert journal.recorded == 30

    def test_disabled_journal_is_a_noop(self):
        journal = Journal(clock=lambda: 0.0, enabled=False)
        assert journal.record("alert", device="cam") is None
        assert journal.recorded == 0 and len(journal) == 0
        assert list(journal) == []

    def test_telemetry_is_excluded_by_convention(self):
        assert "telemetry" in UNJOURNALED_ALERT_KINDS

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            Journal(clock=lambda: 0.0, segment_size=0)
        with pytest.raises(ValueError):
            Journal(clock=lambda: 0.0, max_segments=0)


class TestBoundedRetention:
    def test_oldest_whole_segment_evicted(self):
        journal, __ = _clocked()  # segment_size=4, max_segments=2
        for i in range(13):
            journal.record("e", i=i)
        # Ring holds at most 2 full segments + the open head segment.
        assert len(journal) <= 4 * 2 + 4
        assert journal.evicted == journal.recorded - len(journal)
        # Survivors are the most recent entries, in order.
        retained = [e.fields["i"] for e in journal]
        assert retained == list(range(13 - len(retained), 13))

    def test_long_run_memory_is_bounded(self):
        journal = Journal(clock=lambda: 0.0, segment_size=8, max_segments=3)
        for i in range(10_000):
            journal.record("e")
        assert len(journal) <= 8 * (3 + 1)
        assert journal.recorded == 10_000

    def test_eviction_spills_to_jsonl(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        journal = Journal(
            clock=lambda: 1.0, segment_size=2, max_segments=1, spill_path=str(spill)
        )
        for i in range(7):
            journal.record("e", i=i)
        assert journal.spilled == journal.evicted > 0
        lines = [json.loads(line) for line in spill.read_text().splitlines()]
        assert len(lines) == journal.spilled
        # Spilled entries are the *oldest*; their seqs precede all retained.
        assert max(e["seq"] for e in lines) < min(e.seq for e in journal)

    def test_spill_failure_still_bounds_retention(self):
        journal = Journal(
            clock=lambda: 0.0,
            segment_size=2,
            max_segments=1,
            spill_path="/nonexistent-dir/never/spill.jsonl",
        )
        for i in range(20):
            journal.record("e")
        assert journal.spilled == 0
        assert journal.evicted > 0
        assert len(journal) <= 2 * 2

    def test_spill_lines_are_always_complete_json(self, tmp_path):
        """Atomicity: every spilled line parses, even mid-run."""
        spill = tmp_path / "spill.jsonl"
        journal = Journal(
            clock=lambda: 0.0, segment_size=3, max_segments=2, spill_path=str(spill)
        )
        for i in range(50):
            journal.record("e", i=i)
            if spill.exists():
                for line in spill.read_text().splitlines():
                    json.loads(line)  # must never raise

    def test_unserializable_segment_skips_spill_keeps_bound(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        journal = Journal(
            clock=lambda: 0.0, segment_size=2, max_segments=1, spill_path=str(spill)
        )
        # default=str covers most objects; a recursive structure defeats it.
        loop: list = []
        loop.append(loop)
        for i in range(8):
            journal.record("e", payload=loop)
        assert journal.spilled == 0  # nothing half-written
        assert journal.evicted > 0  # in-memory contract intact
        assert not spill.exists() or spill.read_text() == ""


class TestSpillRoundTrip:
    def test_spill_then_reload_recovers_evicted_entries(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        journal = Journal(
            clock=lambda: 2.5, segment_size=2, max_segments=2, spill_path=str(spill)
        )
        for i in range(11):
            journal.record("e", device=f"d{i % 3}", trace=i, i=i)
        reloaded = Journal.load_spill(str(spill))
        assert len(reloaded) == journal.spilled == journal.evicted
        # Spilled + retained together reconstruct the full record stream:
        # contiguous seqs from 1, no gaps, no overlap.
        seqs = [e.seq for e in reloaded] + [e.seq for e in journal]
        assert seqs == list(range(1, journal.recorded + 1))
        first = reloaded[0]
        assert (first.at, first.kind, first.trace_id) == (2.5, "e", 0)
        assert first.fields == {"i": 0}

    def test_reload_export_jsonl(self, tmp_path):
        journal = Journal(clock=lambda: 1.0, segment_size=8, max_segments=2)
        journal.record("alert", device="cam", alert_kind="x")
        out = tmp_path / "dump.jsonl"
        journal.export_jsonl(str(out))
        (entry,) = Journal.load_spill(str(out))
        assert entry.kind == "alert" and entry.device == "cam"

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "spill.jsonl"
        path.write_text(
            '{"seq": 1, "at": 0.0, "kind": "e", "device": "", '
            '"trace_id": null, "fields": {}}\n\n\n'
        )
        assert len(Journal.load_spill(str(path))) == 1

    def test_corrupt_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "spill.jsonl"
        path.write_text(
            '{"seq": 1, "at": 0.0, "kind": "e", "device": "", '
            '"trace_id": null, "fields": {}}\n{"seq": 2, "at": 0.0, "kind"\n'
        )
        with pytest.raises(ValueError, match="line 2"):
            Journal.load_spill(str(path))

    def test_missing_field_raises(self, tmp_path):
        path = tmp_path / "spill.jsonl"
        path.write_text('{"seq": 1, "at": 0.0}\n')
        with pytest.raises(ValueError, match="line 1"):
            Journal.load_spill(str(path))


class TestQueries:
    def _populated(self):
        journal, state = _clocked()
        journal.record("alert", device="cam", alert_kind="login-rejected")
        state["now"] = 5.0
        journal.record("verdict", device="win", verdict="drop")
        journal.record("alert", device="win", src="cam", alert_kind="insider")
        state["now"] = 9.0
        journal.record("posture", device="win", posture="block-commands")
        return journal

    def test_filter_by_since_kind_device(self):
        journal = self._populated()
        assert [e.kind for e in journal.entries(since=5.0)] == [
            "verdict",
            "alert",
            "posture",
        ]
        assert [e.device for e in journal.entries(kind="alert")] == ["cam", "win"]
        assert [e.kind for e in journal.entries(device="win")] == [
            "verdict",
            "alert",
            "posture",
        ]

    def test_device_filter_matches_src_field(self):
        """An insider alert *sourced from* cam belongs to cam's trail."""
        journal = self._populated()
        kinds = [e.kind for e in journal.for_device("cam")]
        assert kinds == ["alert", "alert"]

    def test_tail_and_kinds(self):
        journal = self._populated()
        assert [e.seq for e in journal.tail(2)] == [3, 4]
        assert journal.tail(0) == []
        assert journal.kinds() == {"alert": 2, "verdict": 1, "posture": 1}

    def test_stats_and_export(self, tmp_path):
        journal = self._populated()
        stats = journal.stats()
        assert stats["recorded"] == 4 and stats["retained"] == 4
        out = tmp_path / "dump.jsonl"
        assert journal.export_jsonl(str(out)) == 4
        dumped = [json.loads(line) for line in out.read_text().splitlines()]
        assert [d["seq"] for d in dumped] == [1, 2, 3, 4]
        assert dumped[3]["fields"]["posture"] == "block-commands"


class TestSimulatorIntegration:
    def test_simulator_owns_a_simtime_journal(self):
        sim = Simulator()
        sim.schedule(3.0, lambda: sim.journal.record("tick"))
        sim.run()
        (entry,) = list(sim.journal)
        assert entry.at == 3.0

    def test_observe_false_disables_journal(self):
        sim = Simulator(observe=False)
        assert sim.journal.enabled is False
        assert sim.journal.record("tick") is None

    def test_journal_gauges_registered(self):
        sim = Simulator()
        sim.journal.record("tick")
        assert sim.metrics.value("journal_recorded") == 1
        assert sim.metrics.value("journal_retained") == 1
        assert sim.metrics.value("journal_evicted") == 0
        assert sim.metrics.value("journal_spill_rotations") == 0
        assert sim.metrics.value("journal_spill_dropped_files") == 0
        assert sim.metrics.value("journal_spill_dropped_bytes") == 0


class TestSpillRotation:
    """The bounded spill: rotation, the file/byte caps, and reload."""

    def _rotating(self, tmp_path, max_files=3, max_bytes=256):
        spill = tmp_path / "spill.jsonl"
        journal = Journal(
            clock=lambda: 1.0,
            segment_size=2,
            max_segments=1,
            spill_path=str(spill),
            spill_max_bytes=max_bytes,
            spill_max_files=max_files,
        )
        return journal, spill

    def test_rotation_shifts_files_and_counts(self, tmp_path):
        journal, spill = self._rotating(tmp_path)
        for i in range(40):
            journal.record("alert", device="cam", i=i)
        assert journal.spill_rotations > 0
        files = journal.spill_files()
        # Oldest-first order, active file last, never above the cap.
        assert files[-1] == str(spill)
        assert len(files) <= journal.spill_max_files
        for path in files:
            for line in open(path, encoding="utf-8"):
                json.loads(line)  # every retained line is complete JSON

    def test_file_cap_drops_oldest_and_counts_loss(self, tmp_path):
        journal, spill = self._rotating(tmp_path, max_files=2, max_bytes=128)
        for i in range(80):
            journal.record("alert", device="cam", i=i)
        assert journal.spill_dropped_files > 0
        assert journal.spill_dropped_bytes > 0
        assert len(journal.spill_files()) <= 2
        # The registry (when attached to a simulator) sees the same loss.
        stats = journal.stats()
        assert stats["spill_rotations"] == journal.spill_rotations
        assert stats["spill_dropped_files"] == journal.spill_dropped_files
        assert stats["spill_dropped_bytes"] == journal.spill_dropped_bytes
        assert stats["spill_max_files"] == 2

    def test_rotated_reload_is_in_seq_order(self, tmp_path):
        journal, spill = self._rotating(tmp_path, max_files=4, max_bytes=256)
        for i in range(40):
            journal.record("alert", device="cam", i=i)
        entries = Journal.load_spill_rotated(str(spill))
        assert entries, "rotation must not lose the surviving spill"
        seqs = [e.seq for e in entries]
        assert seqs == sorted(seqs)
        # Contiguous across the file boundary: rotation never tears a
        # segment, so the surviving seqs form one gap-free run.
        assert seqs == list(range(seqs[0], seqs[-1] + 1))
        assert entries[-1].fields["i"] == seqs[-1] - 1

    def test_single_file_cap_discards_active_file(self, tmp_path):
        journal, spill = self._rotating(tmp_path, max_files=1, max_bytes=128)
        for i in range(40):
            journal.record("alert", device="cam", i=i)
        assert journal.spill_rotations > 0
        assert journal.spill_dropped_files == journal.spill_rotations
        assert journal.spill_files() in ([], [str(spill)])

    def test_unbounded_spill_never_rotates(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        journal = Journal(
            clock=lambda: 1.0,
            segment_size=2,
            max_segments=1,
            spill_path=str(spill),
        )
        for i in range(80):
            journal.record("alert", device="cam", i=i)
        assert journal.spill_rotations == 0
        assert journal.spill_files() == [str(spill)]
        assert len(Journal.load_spill(str(spill))) == journal.spilled

    def test_bad_caps_rejected(self):
        with pytest.raises(ValueError):
            Journal(clock=lambda: 0.0, spill_max_files=0)


class TestSpillErrors:
    """Spill write failures are counted and journaled, not swallowed."""

    def test_write_failure_counts_and_journals(self):
        journal = Journal(
            clock=lambda: 3.0,
            segment_size=4,
            max_segments=1,
            spill_path="/nonexistent-dir/never/spill.jsonl",
        )
        for i in range(12):
            journal.record("e", i=i)
        assert journal.spill_errors > 0
        assert journal.stats()["spill_errors"] == journal.spill_errors
        errors = journal.entries(kind="spill-error")
        assert errors, "each failed spill must leave a spill-error entry"
        entry = errors[-1]
        assert entry.fields["reason"] == "write"
        assert entry.fields["lost_entries"] == 4
        assert "OSError" in entry.fields["error"] or "Error" in entry.fields["error"]

    def test_serialize_failure_counts_with_reason(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        journal = Journal(
            clock=lambda: 0.0, segment_size=4, max_segments=8, spill_path=str(spill)
        )
        loop: list = []
        loop.append(loop)  # defeats json.dumps(default=str)
        journal.record("bad", payload=loop)
        for i in range(40):
            journal.record("e", i=i)
        assert journal.spill_errors >= 1
        reasons = {e.fields["reason"] for e in journal.entries(kind="spill-error")}
        assert "serialize" in reasons
        # Later, healthy segments still spill.
        assert journal.spilled > 0

    def test_spill_error_record_does_not_recurse(self):
        # Tiny segments: the spill-error record itself rolls segments and
        # re-triggers eviction, whose failure must not re-enter the
        # journaling path (one counter bump per failed segment is enough).
        journal = Journal(
            clock=lambda: 0.0,
            segment_size=1,
            max_segments=1,
            spill_path="/nonexistent-dir/never/spill.jsonl",
        )
        for i in range(50):
            journal.record("e", i=i)
        assert journal.spill_errors > 0
        assert journal.recorded < 200  # no runaway self-feeding

    def test_healthy_spill_has_no_errors(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        journal = Journal(
            clock=lambda: 0.0, segment_size=2, max_segments=1, spill_path=str(spill)
        )
        for i in range(20):
            journal.record("e", i=i)
        assert journal.spill_errors == 0
        assert journal.entries(kind="spill-error") == []

    def test_simulator_exports_spill_error_gauge(self):
        sim = Simulator()
        snapshot = sim.metrics.snapshot()
        assert "journal_spill_errors" in snapshot["gauges"]
