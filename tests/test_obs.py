"""Unit tests for the observability subsystem (repro.obs)."""

import json

import pytest

from repro.obs import (
    COUNT_BUCKETS,
    MetricsRegistry,
    Tracer,
    to_prometheus,
    trace_as_dicts,
)


# ----------------------------------------------------------------------
# MetricsRegistry: instruments
# ----------------------------------------------------------------------
class TestCounter:
    def test_starts_at_zero_and_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("requests")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a="1") is reg.counter("x", a="1")

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        c1 = reg.counter("x", a="1", b="2")
        c2 = reg.counter("x", b="2", a="1")
        assert c1 is c2

    def test_different_labels_different_series(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a="1") is not reg.counter("x", a="2")


class TestGauge:
    def test_settable_gauge(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(7.0)
        assert g.value == 7.0

    def test_callback_gauge_samples_lazily(self):
        reg = MetricsRegistry()
        state = {"n": 0}
        g = reg.gauge("live", fn=lambda: state["n"])
        state["n"] = 42
        assert g.value == 42


class TestHistogram:
    def test_bucket_placement_and_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 55.5
        assert h.min == 0.5 and h.max == 50.0
        assert h.bucket_counts == [1, 1, 1]

    def test_boundary_value_lands_in_lower_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=(1.0, 10.0))
        h.observe(1.0)  # bisect_left: exactly-at-bound goes to that bucket
        assert h.bucket_counts == [1, 0, 0]

    def test_quantiles_are_bucket_resolution(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=COUNT_BUCKETS)
        for v in (1, 1, 1, 400):
            h.observe(v)
        assert h.quantile(0.5) == 1
        assert h.quantile(1.0) == 400
        assert h.quantile(0.0) == 1

    def test_empty_histogram_quantile_none(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        assert h.quantile(0.5) is None
        assert h.mean is None

    def test_unsorted_bounds_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("bad", bounds=(2.0, 1.0))


class TestRegistry:
    def test_unique_first_caller_keeps_clean_name(self):
        reg = MetricsRegistry()
        assert reg.unique("edge") == "edge"
        assert reg.unique("edge") == "edge#2"
        assert reg.unique("edge") == "edge#3"
        assert reg.unique("core") == "core"

    def test_series_and_value(self):
        reg = MetricsRegistry()
        reg.counter("alerts", kind="a").inc(2)
        reg.counter("alerts", kind="b").inc(3)
        assert len(reg.series("alerts")) == 2
        assert reg.value("alerts", kind="a") == 2
        assert reg.value("alerts", kind="missing") is None

    def test_len_and_iter(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.gauge("b")
        assert len(reg) == 2
        assert {i.name for i in reg} == {"a", "b"}

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("c", x="1").inc()
        reg.gauge("g", fn=lambda: 3.0)
        reg.histogram("h", bounds=(1.0, 2.0)).observe(1.5)
        snap = reg.snapshot()
        round_tripped = json.loads(json.dumps(snap))
        assert round_tripped["counters"]["c"][0]["value"] == 1
        assert round_tripped["gauges"]["g"][0]["value"] == 3.0
        hist = round_tripped["histograms"]["h"][0]
        assert hist["count"] == 1
        assert hist["buckets"]["2.0"] == 1
        assert hist["buckets"]["+Inf"] == 0

    def test_disabled_registry_hands_out_noops(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("c").inc()
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(2.0)
        assert len(reg) == 0
        snap = reg.snapshot()
        assert snap["enabled"] is False
        assert snap["counters"] == {}


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
class TestPrometheusExport:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("hits", site="a").inc(5)
        reg.gauge("depth", fn=lambda: 2.0, site="a")
        text = to_prometheus(reg)
        assert "# TYPE hits counter" in text
        assert 'hits{site="a"} 5' in text
        assert 'depth{site="a"} 2' in text

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        text = to_prometheus(reg)
        assert 'lat_bucket{le="1.0"} 1' in text
        assert 'lat_bucket{le="10.0"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 55.5" in text
        assert "lat_count 3" in text


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_spans_ordered_by_start(self):
        tracer = Tracer()
        t = tracer.start_trace(device="cam")
        tracer.span(t, "late", 2.0, 3.0)
        tracer.span(t, "early", 0.0, 1.0)
        assert [s.stage for s in tracer.spans(t)] == ["early", "late"]

    def test_span_latency(self):
        tracer = Tracer()
        t = tracer.start_trace()
        span = tracer.span(t, "s", 1.0, 1.5)
        assert span.latency == 0.5

    def test_device_index_and_last_trace(self):
        tracer = Tracer()
        t1 = tracer.start_trace(device="cam")
        t2 = tracer.start_trace(device="cam")
        tracer.start_trace(device="plug")
        assert tracer.traces_for("cam") == [t1, t2]
        assert tracer.last_trace("cam") == t2
        assert tracer.last_trace("missing") is None

    def test_bounded_retention_evicts_oldest(self):
        tracer = Tracer(max_traces=3)
        ids = [tracer.start_trace(device="cam") for _ in range(5)]
        assert tracer.trace_ids() == ids[-3:]
        assert tracer.evicted == 2
        # spans for evicted traces are silently dropped
        assert tracer.span(ids[0], "s", 0.0, 1.0) is None
        # the device index never returns evicted ids
        assert tracer.traces_for("cam") == ids[-3:]

    def test_push_pop_current_stack(self):
        tracer = Tracer()
        assert tracer.current() is None
        t = tracer.start_trace()
        tracer.push(t)
        assert tracer.current() == t
        tracer.push(None)  # nested untraced scope masks the outer trace
        assert tracer.current() is None
        tracer.pop()
        assert tracer.current() == t
        tracer.pop()
        assert tracer.current() is None
        tracer.pop()  # popping an empty stack is harmless

    def test_disabled_tracer_is_inert(self):
        tracer = Tracer(enabled=False)
        assert tracer.start_trace(device="cam") is None
        assert tracer.span(None, "s", 0.0, 1.0) is None
        assert tracer.started == 0
        assert tracer.traces_for("cam") == []

    def test_render_contains_stages_and_latencies(self):
        tracer = Tracer()
        t = tracer.start_trace(device="cam")
        tracer.span(t, "detect", 1.0, 1.01, device="cam", kind="probe")
        tracer.span(t, "actuate", 1.01, 1.04, device="cam")
        text = tracer.render(t)
        assert "detect" in text and "actuate" in text
        assert "kind=probe" in text
        assert "total=40.0ms" in text

    def test_trace_as_dicts_json_round_trip(self):
        tracer = Tracer()
        t = tracer.start_trace(device="cam")
        tracer.span(t, "detect", 1.0, 2.0, device="cam", n=3)
        data = json.loads(json.dumps(trace_as_dicts(tracer, t)))
        assert data[0]["stage"] == "detect"
        assert data[0]["latency"] == 1.0
        assert data[0]["attrs"] == {"n": 3}


# ----------------------------------------------------------------------
# Prometheus exposition conformance (PR 3 satellite)
# ----------------------------------------------------------------------
class TestPrometheusConformance:
    NASTY = 'line1\nline2 "quoted" back\\slash'

    def test_escape_unescape_round_trip(self):
        from repro.obs.exporters import _unescape_label_value, escape_label_value

        escaped = escape_label_value(self.NASTY)
        assert "\n" not in escaped  # newlines never leak into the exposition
        assert '\\"' in escaped and "\\\\" in escaped and "\\n" in escaped
        assert _unescape_label_value(escaped) == self.NASTY

    def test_nasty_label_values_survive_write_then_parse(self):
        from repro.obs import parse_exposition

        reg = MetricsRegistry()
        reg.counter("alerts", device=self.NASTY).inc(3)
        families = parse_exposition(to_prometheus(reg))
        ((__, labels, value),) = families["alerts"]["samples"]
        assert labels == {"device": self.NASTY}
        assert value == 3.0

    def test_help_and_type_exactly_once_per_family(self):
        reg = MetricsRegistry()
        # Three series of one family must share a single header pair.
        for host in ("a", "b", "c"):
            reg.counter("mbox_alerts", host=host).inc()
        reg.gauge("sim_now").set(5.0)
        text = to_prometheus(reg)
        lines = text.splitlines()
        for family in ("mbox_alerts", "sim_now"):
            assert lines.count(
                next(ln for ln in lines if ln.startswith(f"# TYPE {family} "))
            ) == 1
            assert sum(ln.startswith(f"# HELP {family} ") for ln in lines) == 1
            assert sum(ln.startswith(f"# TYPE {family} ") for ln in lines) == 1
            # Headers precede every sample of their family.
            type_at = next(
                i for i, ln in enumerate(lines) if ln.startswith(f"# TYPE {family} ")
            )
            samples_at = [
                i
                for i, ln in enumerate(lines)
                if ln.startswith(family) and not ln.startswith("#")
            ]
            assert samples_at and min(samples_at) > type_at

    def test_parser_rejects_duplicate_headers(self):
        from repro.obs import parse_exposition

        text = (
            "# HELP x one\n# TYPE x counter\nx 1\n"
            "# HELP x again\n# TYPE x counter\nx 2\n"
        )
        with pytest.raises(ValueError, match="duplicate"):
            parse_exposition(text)

    def test_histogram_family_round_trips(self):
        from repro.obs import parse_exposition

        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=(0.1, 1.0), site="edge")
        for v in (0.05, 0.5, 2.0):
            h.observe(v)
        families = parse_exposition(to_prometheus(reg))
        fam = families["lat"]
        assert fam["type"] == "histogram"
        by_name = {}
        for name, labels, value in fam["samples"]:
            by_name.setdefault(name, []).append((labels, value))
        # Cumulative buckets, then sum and count, all under the base family.
        bucket_values = {lbl["le"]: v for lbl, v in by_name["lat_bucket"]}
        assert bucket_values["0.1"] == 1.0
        assert bucket_values["1.0"] == 2.0
        assert bucket_values["+Inf"] == 3.0
        assert by_name["lat_sum"][0][1] == pytest.approx(2.55)
        assert by_name["lat_count"][0][1] == 3.0
        assert by_name["lat_sum"][0][0] == {"site": "edge"}


# ----------------------------------------------------------------------
# unique() label dedup across multi-site fleets (PR 3 satellite)
# ----------------------------------------------------------------------
class TestUniqueLabelDedup:
    def test_later_callers_get_numbered_names(self):
        reg = MetricsRegistry()
        assert reg.unique("edge") == "edge"
        assert reg.unique("edge") == "edge#2"
        assert reg.unique("edge") == "edge#3"
        assert reg.unique("core") == "core"  # independent per prefix

    def test_two_sites_sharing_one_simulator_never_alias(self):
        """Two deployments on one simulator: same component names, distinct
        series -- incrementing one site's counters must not move the other's."""
        from repro.core.deployment import SecuredDeployment
        from repro.netsim.simulator import Simulator

        sim = Simulator()
        site_a = SecuredDeployment.build(sim=sim)
        site_b = SecuredDeployment.build(sim=sim)
        site_a.finalize()
        site_b.finalize()

        a, b = site_a.controller, site_b.controller
        assert a.metric_labels != b.metric_labels
        assert a.metric_labels["controller"] == "controller"
        assert b.metric_labels["controller"] == "controller#2"
        pipelines = {
            tuple(p.metric_labels.items())
            for p in (a.pipeline, b.pipeline)
        }
        assert len(pipelines) == 2

        a.packet_ins += 10
        assert sim.metrics.value("controller_packet_ins", **a.metric_labels) == 10
        assert sim.metrics.value("controller_packet_ins", **b.metric_labels) == 0


# ----------------------------------------------------------------------
# observe=False hands out shared no-op instruments (PR 3 satellite)
# ----------------------------------------------------------------------
class TestDisabledRegistryIdentity:
    def test_noop_instruments_are_singletons(self):
        """Every disabled counter/gauge/histogram is the *same* object --
        instrument identity proves the no-op path allocates nothing per call."""
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a", x="1") is reg.counter("b", y="2")
        assert reg.gauge("a") is reg.gauge("b", z="3")
        assert reg.histogram("a") is reg.histogram("b", bounds=(1.0,))
        # ...and nothing was registered: the store stays empty.
        assert len(reg) == 0
        assert list(reg) == []
        reg.counter("a").inc(5)
        reg.gauge("a").set(5)
        reg.histogram("a").observe(5)
        assert reg.value("a") is None

    def test_gauge_callbacks_never_evaluated_when_disabled(self):
        """observe=False must not merely hide gauges -- the registered
        callback must never run (a lambda over live state could be
        arbitrarily expensive)."""
        reg = MetricsRegistry(enabled=False)
        calls = []
        reg.gauge("hot", fn=lambda: calls.append(1) or 0.0)
        assert reg.snapshot()["gauges"] == {}
        assert calls == []

    def test_null_instrument_methods_are_bytecode_noops(self):
        """The null path is *truly* zero-cost: each no-op method body is
        a bare return (no attribute writes, no calls) -- the bytecode-level
        equivalent of ``pass``."""
        import dis

        from repro.obs.registry import _NullCounter, _NullGauge, _NullHistogram

        def _pass(self, value=0):
            pass

        expected = [op.opname for op in dis.get_instructions(_pass)]
        for method in (_NullCounter.inc, _NullGauge.set, _NullHistogram.observe):
            ops = [op.opname for op in dis.get_instructions(method)]
            assert ops == expected, f"{method.__qualname__} is not a bare no-op"
