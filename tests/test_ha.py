"""Tests for controller survivability: checkpoint/restore and failover.

The contract under test:

- a checkpoint is a *deterministic* snapshot: the same seeded run always
  produces the same content digest, and a digest mismatch means the
  security state actually differs;
- restore + journal-tail replay reconstructs exactly the state the
  crashed controller held (view, escalation windows, postures) -- the
  journal is a WAL, not just evidence;
- hot-standby takeover re-adopts the data plane under the primary's
  endpoint name and never *lowers* a device's defenses while reconciling.
"""

import pytest

from repro.core.deployment import SecuredDeployment
from repro.core.ha import CHECKPOINT_VERSION, Checkpoint, CheckpointStore
from repro.devices.library import smart_camera, smart_plug
from repro.policy.posture import block_commands


def make_dep(sim=None, **kwargs):
    dep = SecuredDeployment.build(
        sim=sim,
        consistent_updates=True,
        reliable_control=True,
        checkpointing=True,
        checkpoint_period=1.0,
        **kwargs,
    )
    dep.add_device(smart_camera, "cam")
    dep.add_device(smart_plug, "plug", load={"hazard": 1.0})
    dep.finalize()
    dep.secure("plug", block_commands("on"))
    dep.enforce_baseline()
    return dep


def send_alert(dep, device, kind, at):
    dep.sim.schedule_at(
        at,
        dep.channel.send,
        dep.CLUSTER,
        dep.CONTROLLER,
        "alert",
        {"device": device, "kind": kind, "detail": {}},
    )


def drive(dep, horizon=8.0):
    """A small deterministic workload: enough alerts to escalate the cam.

    The last alert lands *after* the final checkpoint tick, so restoring
    requires the journal tail, not just the snapshot.
    """
    for i in range(5):
        send_alert(dep, "cam", "login-attempt", 1.0 + i * 0.5)
    send_alert(dep, "plug", "anomalous-command", 2.0)
    send_alert(dep, "cam", "login-attempt", horizon - 0.2)
    dep.run(until=horizon)
    return dep


# ---------------------------------------------------------------------------
# Checkpoint determinism
# ---------------------------------------------------------------------------
class TestCheckpointDeterminism:
    def test_same_seeded_run_same_digests(self):
        """Two independent runs of the same scenario checkpoint to
        byte-identical digests -- the cross-machine determinism CI relies
        on."""
        digests = []
        for __ in range(2):
            dep = drive(make_dep())
            digests.append([cp.digest() for cp in dep.checkpoint_store])
        assert digests[0] == digests[1]
        assert len(digests[0]) >= 4  # periodic ticks actually fired

    def test_digest_tracks_state(self):
        """The digest changes exactly when controller state changes."""
        dep = make_dep()
        dep.run(until=0.5)
        a = Checkpoint.capture(dep.controller).digest()
        assert Checkpoint.capture(dep.controller).digest() == a
        dep.controller.set_context("cam", "suspicious")
        assert Checkpoint.capture(dep.controller).digest() != a

    def test_round_trips_through_dict(self):
        dep = drive(make_dep())
        cp = Checkpoint.capture(dep.controller)
        clone = Checkpoint.from_dict(cp.as_dict())
        assert clone.digest() == cp.digest()
        assert clone.view == cp.view and clone.escalations == cp.escalations

    def test_rejects_unknown_version(self):
        dep = make_dep()
        data = Checkpoint.capture(dep.controller).as_dict()
        data["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(ValueError):
            Checkpoint.from_dict(data)


class TestCheckpointStore:
    def test_keeps_newest_n(self):
        dep = make_dep()
        store = CheckpointStore(keep=3)
        for t in (1.0, 2.0, 3.0, 4.0, 5.0):
            dep.run(until=t)
            store.add(Checkpoint.capture(dep.controller))
        assert store.captured == 5 and len(store) == 3
        assert store.latest().at == 5.0
        assert [cp.at for cp in store] == [3.0, 4.0, 5.0]

    def test_latest_empty(self):
        assert CheckpointStore().latest() is None


# ---------------------------------------------------------------------------
# Restore + WAL replay
# ---------------------------------------------------------------------------
class TestRestoreReplay:
    def test_restart_reconstructs_crashed_state(self):
        """Checkpoint + journal-tail replay equals the never-crashed
        state: view, escalation windows and installed postures all match
        what the controller held the instant it died."""
        dep = drive(make_dep(), horizon=7.3)
        before = {
            "view": dep.controller.view.snapshot(),
            "escalations": dep.controller.pipeline.escalator.snapshot(),
            "postures": {d: p.name for d, p in dep.orchestrator.current.items()},
        }
        assert before["view"].get("ctx:cam") == "suspicious"  # workload escalated

        dep.crash_controller()
        dep.restart_controller()

        after = {
            "view": dep.controller.view.snapshot(),
            "escalations": dep.controller.pipeline.escalator.snapshot(),
            "postures": {d: p.name for d, p in dep.orchestrator.current.items()},
        }
        assert after == before
        restart = dep.sim.journal.entries(kind="controller-restart")
        assert len(restart) == 1
        # The escalations that fired after the last checkpoint came back
        # through the WAL tail, not the (stale) checkpoint.
        assert restart[0].fields["replayed"] > 0

    def test_restart_requires_a_checkpoint(self):
        dep = SecuredDeployment.build()
        dep.add_device(smart_plug, "plug")
        dep.finalize()
        with pytest.raises(RuntimeError):
            dep.restart_controller()

    def test_crash_is_idempotent_and_detaches(self):
        dep = make_dep()
        dep.run(until=0.5)
        dep.crash_controller()
        crashed = dep.sim.journal.entries(kind="controller-crash")
        assert len(crashed) == 1
        # Alerts to the dead controller do not raise; they are retried or
        # dropped by the channel, never handled.
        send_alert(dep, "cam", "login-attempt", 0.6)
        dep.run(until=1.0)
        assert dep.sim.journal.entries(kind="alert-ingest") == []


# ---------------------------------------------------------------------------
# Hot-standby failover
# ---------------------------------------------------------------------------
class TestFailover:
    def make_ha_dep(self):
        dep = SecuredDeployment.build(
            consistent_updates=True,
            reliable_control=True,
            checkpointing=True,
            checkpoint_period=1.0,
            standby=True,
            heartbeat_period=0.25,
            failover_timeout=1.0,
            ha_seed=7,
        )
        dep.add_device(smart_camera, "cam")
        dep.add_device(smart_plug, "plug", load={"hazard": 1.0})
        dep.finalize()
        dep.secure("plug", block_commands("on"))
        dep.enforce_baseline()
        return dep

    def test_takeover_on_heartbeat_loss(self):
        dep = self.make_ha_dep()
        primary = dep.controller
        dep.sim.schedule_at(5.0, dep.crash_controller)
        dep.run(until=10.0)
        assert dep.controller is not primary
        assert dep.controller is dep.standby_controller.promoted
        failover = dep.sim.journal.entries(kind="failover")
        complete = dep.sim.journal.entries(kind="failover-complete")
        assert len(failover) == 1 and len(complete) == 1
        assert failover[0].fields["reason"] == "heartbeat-timeout"
        # Detection is heartbeat timeout + jitter + check quantum, not
        # minutes of silence.
        assert complete[0].fields["blind_s"] < 2.0

    def test_takeover_never_lowers_defenses(self):
        """Reconciliation keeps the stricter installed posture when the
        restored policy has no opinion (the out-of-band monitor baseline
        and the pinned block must both survive takeover)."""
        dep = self.make_ha_dep()
        before = {d: p.name for d, p in dep.orchestrator.current.items()}
        dep.sim.schedule_at(5.0, dep.crash_controller)
        dep.run(until=10.0)
        after = {d: p.name for d, p in dep.orchestrator.current.items()}
        assert after == before
        assert after["cam"] == "monitor" and after["plug"] == "block-commands"

    def test_new_primary_serves_alerts(self):
        """Post-takeover the standby runs the whole loop under the
        primary's endpoint name: alerts escalate and postures land."""
        dep = self.make_ha_dep()
        dep.sim.schedule_at(5.0, dep.crash_controller)
        for i in range(5):
            send_alert(dep, "cam", "login-attempt", 8.0 + i * 0.5)
        dep.run(until=15.0)
        assert dep.controller.view.get("ctx:cam") == "suspicious"

    def test_scenario_blind_window_ratio(self):
        """The E13 acceptance bound: failover's blind window is under 20%
        of the cold-restart outage, and nothing retried at the dead
        primary is abandoned."""
        from repro.faults.ha_scenario import run_failover_scenario

        crash = run_failover_scenario(standby=False)
        standby = run_failover_scenario(standby=True)
        assert standby["failovers"] == 1 and crash["restarts"] == 1
        assert standby["blind_window_s"] < 0.2 * crash["blind_window_s"]
        assert standby["ctrl_giveups"] == 0
