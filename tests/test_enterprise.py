"""Tests for multi-switch (enterprise) deployments.

Section 2.2's enterprise model: devices hang off per-room access switches,
all tunnelling to one on-premise security cluster behind the core.
"""

import pytest

from repro.attacks.exploits import EXPLOITS
from repro.core.deployment import SecuredDeployment
from repro.core.orchestrator import build_recommended_posture
from repro.devices import protocol
from repro.devices.library import smart_camera, smart_plug
from repro.policy.posture import block_commands


@pytest.fixture
def enterprise():
    dep = SecuredDeployment.build()
    dep.add_room("room1")
    dep.add_room("room2")
    dep.add_device(smart_camera, "cam1", room="room1")
    dep.add_device(smart_plug, "plug2", room="room2")
    dep.add_attacker()
    dep.finalize()
    return dep


def test_rooms_are_switches(enterprise):
    assert enterprise.rooms["room1"].name == "room1"
    assert enterprise.topology.next_hop_port("room1", "cluster") is not None


def test_traffic_flows_unprotected(enterprise):
    attacker = enterprise.attackers["attacker"]
    replies = []
    attacker.request(
        protocol.login("attacker", "cam1", "admin", "admin"), replies.append
    )
    enterprise.run(until=2.0)
    assert len(replies) == 1 and protocol.is_ok(replies[0])


def test_room_device_tunnel_traverses_core_to_cluster(enterprise):
    enterprise.secure(
        "cam1",
        build_recommended_posture("monitor", "cam1", sku="dlink:DCS-930L:1.0"),
    )
    enterprise.run(until=0.5)
    attacker = enterprise.attackers["attacker"]
    replies = []
    attacker.request(
        protocol.login("attacker", "cam1", "admin", "admin"), replies.append
    )
    enterprise.run(until=3.0)
    assert enterprise.cluster.tunnelled_in >= 2
    assert len(replies) == 1  # monitor posture observes but passes


def test_room_device_protected_across_core(enterprise):
    enterprise.secure(
        "cam1",
        build_recommended_posture(
            "password_proxy", "cam1", new_password="S3cure!gateway"
        ),
    )
    enterprise.run(until=0.5)
    attacker = enterprise.attackers["attacker"]
    result = EXPLOITS["default_credential_hijack"].launch(
        attacker, "cam1", enterprise.sim
    )
    enterprise.run(until=10.0)
    assert not result.succeeded
    assert enterprise.devices["cam1"].login_log == []


def test_cross_room_device_to_device_inspection(enterprise):
    enterprise.secure("plug2", block_commands("on"))
    enterprise.run(until=0.5)
    cam = enterprise.devices["cam1"]
    cam.send(
        protocol.command("cam1", "plug2", "on", dport=8080),
        next(iter(cam.ports)),
    )
    enterprise.run(until=3.0)
    assert enterprise.devices["plug2"].state == "off"
    assert any(a.kind == "command-blocked" for a in enterprise.alerts("plug2"))


def test_alerts_escalate_from_room_devices(enterprise):
    enterprise.secure("plug2", block_commands("on"))
    enterprise.run(until=0.5)
    attacker = enterprise.attackers["attacker"]
    attacker.fire_and_forget(protocol.command("attacker", "plug2", "on", dport=8080))
    enterprise.run(until=3.0)
    events = enterprise.controller.bus.events(kind="alert", device="plug2")
    assert len(events) == 1


def test_many_rooms_scale():
    dep = SecuredDeployment.build()
    for i in range(8):
        dep.add_room(f"room{i}")
        dep.add_device(smart_plug, f"plug{i}", room=f"room{i}")
    attacker = dep.add_attacker()
    dep.finalize()
    for i in range(8):
        dep.secure(f"plug{i}", block_commands("on"))
    dep.run(until=0.5)
    for i in range(8):
        attacker.fire_and_forget(
            protocol.command("attacker", f"plug{i}", "on", dport=8080)
        )
    dep.run(until=5.0)
    for i in range(8):
        assert dep.devices[f"plug{i}"].state == "off"
    assert dep.manager.active_count() == 8
