"""Tests for empirical model extraction."""

from repro.core.deployment import default_home_environment
from repro.devices.library import (
    smart_bulb,
    smart_plug,
    temperature_sensor,
    window_actuator,
)
from repro.learning.modelextract import (
    ModelExtractor,
    validate_against_model,
)


def test_extracts_thermal_effect(sim):
    env = default_home_environment(sim)
    heater = smart_plug("heater", sim, env=env, load={"heat_watts": 1500.0})
    extractor = ModelExtractor(env, settle_time=2000.0)
    report = extractor.extract(heater)
    assert "on" in report.states_probed
    effects = report.effects_for_state("on")
    assert any(e.variable == "temperature" and e.level == "high" for e in effects)
    # the off state matches baseline: no observed effect
    assert report.effects_for_state("off") == []


def test_extracts_binding_effect(sim):
    env = default_home_environment(sim)
    window = window_actuator("win", sim, env=env)
    report = ModelExtractor(env, settle_time=10.0).extract(window)
    assert any(
        e.state == "open" and e.variable == "window" and e.level == "open"
        for e in report.effects
    )


def test_extracts_light_effect(sim):
    env = default_home_environment(sim)
    bulb = smart_bulb("bulb", sim, env=env)
    report = ModelExtractor(env, settle_time=30.0).extract(bulb)
    assert any(
        e.state == "on" and e.variable == "illuminance" and e.level == "bright"
        for e in report.effects
    )


def test_pure_sensor_has_no_effects(sim):
    env = default_home_environment(sim)
    sensor = temperature_sensor("temp", sim, env=env)
    report = ModelExtractor(env, settle_time=30.0).extract(sensor)
    assert report.effects == []


def test_extraction_resets_device_and_environment(sim):
    env = default_home_environment(sim)
    heater = smart_plug("heater", sim, env=env, load={"heat_watts": 1500.0})
    ModelExtractor(env, settle_time=2000.0).extract(heater)
    assert heater.state == "off"
    assert env.level("temperature") in ("low", "normal")  # cooled back down


def test_validation_agrees_with_declared_model(sim):
    env = default_home_environment(sim)
    heater = smart_plug("heater", sim, env=env, load={"heat_watts": 1500.0})
    report = ModelExtractor(env, settle_time=2000.0).extract(heater)
    assert validate_against_model(report, heater) == []


def test_as_response_rules(sim):
    env = default_home_environment(sim)
    heater = smart_plug("heater", sim, env=env, load={"heat_watts": 1500.0})
    report = ModelExtractor(env, settle_time=2000.0).extract(heater)
    rules = report.as_response_rules()
    assert any(r.variable == "temperature" and r.level == "high" for r in rules)
