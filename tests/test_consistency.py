"""Tests for two-phase consistent updates."""

from repro.netsim.link import Link
from repro.netsim.node import Host
from repro.netsim.packet import Packet
from repro.netsim.switch import Switch
from repro.sdn.channel import ControlChannel
from repro.sdn.consistency import ConsistentUpdater
from repro.sdn.flowrule import Action, FlowMatch, FlowRule


def setup(sim, n_switches=2, latency=0.01):
    channel = ControlChannel(sim, latency=latency)
    updater = ConsistentUpdater(sim, channel)
    switches = [Switch(f"sw{i}", sim) for i in range(n_switches)]
    return updater, switches


def drop_rules():
    return [FlowRule(match=FlowMatch(), actions=(Action.drop(),))]


def test_two_phase_flips_all_switches(sim):
    updater, switches = setup(sim)
    report = updater.push_two_phase({sw: drop_rules() for sw in switches})
    sim.run()
    assert report.committed_at is not None
    for sw in switches:
        assert sw.active_version == report.version
        assert sw.table_size() == 1


def test_two_phase_duration_is_three_legs(sim):
    # install (1 latency) + ack (1) + flip (1) = 3 x one-way latency
    updater, switches = setup(sim, latency=0.01)
    report = updater.push_two_phase({sw: drop_rules() for sw in switches})
    sim.run()
    assert abs(report.duration - 0.03) < 1e-9


def test_rules_inactive_until_commit(sim):
    updater, (sw,) = setup(sim, n_switches=1, latency=0.01)
    host_a, host_b = Host("a", sim), Host("b", sim)
    Link(sim, sw, host_a)
    Link(sim, sw, host_b)
    b_port = sw.port_to("b")
    updater.push_two_phase(
        {sw: [FlowRule(match=FlowMatch(dst="b"), actions=(Action.forward(b_port),))]}
    )
    # Before commit (t < 0.03) the rule is installed but not active:
    sim.run(until=0.015)
    host_a.send(Packet(src="a", dst="b"))
    sim.run(until=0.02)
    assert host_b.inbox == []  # version not yet active -> miss -> drop
    sim.run()
    host_a.send(Packet(src="a", dst="b"))
    sim.run()
    assert len(host_b.inbox) == 1


def test_old_epoch_garbage_collected(sim):
    updater, (sw,) = setup(sim, n_switches=1)
    r1 = updater.push_two_phase({sw: drop_rules()})
    sim.run()
    r2 = updater.push_two_phase({sw: drop_rules()})
    sim.run()
    assert sw.active_version == r2.version
    assert all(rule.version == r2.version for rule in sw.flow_table)
    assert r2.rules_removed == 1
    assert r1.version != r2.version


def test_empty_assignment_commits_immediately(sim):
    updater, __ = setup(sim)
    report = updater.push_two_phase({})
    assert report.committed_at == sim.now


def test_on_committed_callback(sim):
    updater, switches = setup(sim)
    done = []
    updater.push_two_phase(
        {sw: drop_rules() for sw in switches}, on_committed=lambda r: done.append(r.version)
    )
    sim.run()
    assert len(done) == 1


def test_best_effort_installs_without_versioning(sim):
    updater, (sw,) = setup(sim, n_switches=1, latency=0.01)
    report = updater.push_best_effort({sw: drop_rules()})
    sim.run()
    assert report.mode == "best-effort"
    assert sw.flow_table[0].version is None
    assert sw.table_size() == 1


def test_best_effort_faster_than_two_phase(sim):
    updater, switches = setup(sim, latency=0.01)
    be = updater.push_best_effort({sw: drop_rules() for sw in switches})
    sim.run()
    tp = updater.push_two_phase({sw: drop_rules() for sw in switches})
    sim.run()
    assert be.duration < tp.duration
