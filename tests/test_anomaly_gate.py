"""Tests for the anomaly-detection µmbox element."""

import pytest

from repro.mboxes.anomaly_gate import AnomalyGate
from repro.mboxes.base import MboxContext, Verdict
from repro.netsim.packet import Packet


class _RecordingContext(MboxContext):
    """Regains ``__dict__`` (MboxContext is slotted) so the fixture can
    attach the captured alerts list."""


@pytest.fixture
def make_ctx(sim):
    def build(view_values=None):
        alerts = []
        ctx = _RecordingContext(
            sim=sim,
            mbox_name="m",
            device="thermo",
            view=lambda key: (view_values or {}).get(key),
            emit_alert=alerts.append,
        )
        ctx.alerts = alerts  # type: ignore[attr-defined]
        return ctx

    return build


def cmd(command="heat", src="hub"):
    pkt = Packet(src=src, dst="thermo", dport=8080, payload={"cmd": command})
    pkt.meta["direction"] = "to_device"
    return pkt


def train(gate, ctx, sim, n=30, command="heat", src="hub"):
    for __ in range(n):
        verdict, __p = gate.process(cmd(command, src), ctx)
        assert verdict is Verdict.PASS


class TestAnomalyGate:
    def test_training_window_never_blocks(self, sim, make_ctx):
        ctx = make_ctx({"env:occupancy": "present"})
        gate = AnomalyGate("thermo", training_window=100.0)
        verdict, __ = gate.process(cmd("weird", "attacker"), ctx)
        assert verdict is Verdict.PASS  # still in training

    def test_known_behaviour_passes_after_training(self, sim, make_ctx):
        ctx = make_ctx({"env:occupancy": "present"})
        gate = AnomalyGate("thermo", training_window=50.0)
        train(gate, ctx, sim)
        sim.schedule(100.0, lambda: None)
        sim.run()
        verdict, __ = gate.process(cmd(), ctx)
        assert verdict is Verdict.PASS
        assert gate.flagged == 0

    def test_novel_source_blocked_after_training(self, sim, make_ctx):
        ctx = make_ctx({"env:occupancy": "present"})
        gate = AnomalyGate("thermo", training_window=50.0)
        train(gate, ctx, sim)
        sim.schedule(100.0, lambda: None)
        sim.run()
        verdict, __ = gate.process(cmd("heat", src="attacker"), ctx)
        assert verdict is Verdict.DROP
        assert ctx.alerts[-1].kind == "anomalous-command"
        assert gate.flagged == 1

    def test_context_conditioning_blocks_empty_house_command(self, sim, make_ctx):
        """Same command, same source -- anomalous only because nobody is home."""
        present_ctx = make_ctx({"env:occupancy": "present"})
        gate = AnomalyGate("thermo", training_window=50.0)
        train(gate, present_ctx, sim, n=60)
        sim.schedule(100.0, lambda: None)
        sim.run()
        absent_ctx = make_ctx({"env:occupancy": "absent"})
        absent_ctx.mbox_name = gate.name
        verdict, __ = gate.process(cmd(), absent_ctx)
        assert verdict is Verdict.DROP

    def test_alert_only_mode(self, sim, make_ctx):
        ctx = make_ctx({})
        gate = AnomalyGate("thermo", training_window=0.0, min_training=1, enforce=False)
        for __ in range(25):  # post-training observations still refine
            gate.process(cmd(), ctx)
        verdict, __ = gate.process(cmd("weird", "attacker"), ctx)
        assert verdict is Verdict.PASS
        assert any(a.kind == "anomalous-command" for a in ctx.alerts)

    def test_non_command_traffic_ignored(self, sim, make_ctx):
        ctx = make_ctx({})
        gate = AnomalyGate("thermo", training_window=0.0, min_training=1)
        pkt = Packet(src="x", dst="thermo", dport=80, payload={"action": "login"})
        pkt.meta["direction"] = "to_device"
        assert gate.process(pkt, ctx)[0] is Verdict.PASS

    def test_validation(self):
        with pytest.raises(ValueError):
            AnomalyGate("d", training_window=-1.0)


class TestAnomalyGateIntegration:
    def test_gate_escalates_context_via_controller(self, sim):
        from repro.core.deployment import SecuredDeployment
        from repro.devices import protocol
        from repro.devices.library import thermostat
        from repro.policy.posture import MboxSpec, Posture

        dep = SecuredDeployment.build(sim=sim)
        dep.add_device(thermostat, "thermo")
        attacker = dep.add_attacker()
        dep.finalize()
        dep.secure(
            "thermo",
            Posture.make(
                "anomaly",
                MboxSpec.make(
                    "anomaly_gate",
                    device="thermo",
                    training_window=30.0,
                    min_training=5,
                ),
            ),
        )
        # benign traffic during training: the hub drives the thermostat
        hub = dep.hub
        thermo = dep.devices["thermo"]
        hub.pair(thermo)
        session = thermo.sessions and list(thermo.sessions)[0]
        for i in range(22):
            sim.schedule(
                1.0 + i * 1.2,
                lambda c=("heat" if i % 2 else "off"): hub.send(
                    protocol.command("hub", "thermo", c, session=session),
                    next(iter(hub.ports)),
                ),
            )
        dep.run(until=40.0)
        # after training, the attacker replays a command from outside
        for i in range(3):
            sim.schedule(
                1.0 + i,
                lambda: attacker.fire_and_forget(
                    protocol.command("attacker", "thermo", "heat", session=session)
                ),
            )
        dep.run(until=60.0)
        assert any(a.kind == "anomalous-command" for a in dep.alerts("thermo"))
        assert dep.controller.context_of("thermo") == "suspicious"
