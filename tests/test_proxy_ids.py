"""Tests for the password proxy and signature IDS elements."""

import pytest

from repro.learning.signatures import (
    backdoor_signature,
    default_credential_signature,
)
from repro.mboxes.base import MboxContext, Verdict
from repro.mboxes.ids import SignatureIDS
from repro.mboxes.proxy import PasswordProxy
from repro.netsim.packet import Packet


class _RecordingContext(MboxContext):
    """Regains ``__dict__`` (MboxContext is slotted) so the fixture can
    attach the captured alerts list."""


@pytest.fixture
def ctx(sim):
    alerts = []
    context = _RecordingContext(
        sim=sim,
        mbox_name="m",
        device="cam",
        view=lambda key: None,
        emit_alert=alerts.append,
    )
    context.alerts = alerts  # type: ignore[attr-defined]
    return context


def login(username, password, src="attacker"):
    pkt = Packet(
        src=src,
        dst="cam",
        protocol="http",
        dport=80,
        payload={"action": "login", "username": username, "password": password},
    )
    pkt.meta["direction"] = "to_device"
    return pkt


class TestPasswordProxy:
    def make(self):
        return PasswordProxy(
            new_password="S3cure!", device_username="admin", device_password="admin"
        )

    def test_good_login_rewritten_to_vendor_credential(self, ctx):
        proxy = self.make()
        verdict, out = proxy.process(login("admin", "S3cure!"), ctx)
        assert verdict is Verdict.PASS
        assert out.payload["password"] == "admin"  # what the device accepts
        assert proxy.rewritten == 1

    def test_vendor_default_rejected(self, ctx):
        proxy = self.make()
        verdict, __ = proxy.process(login("admin", "admin"), ctx)
        assert verdict is Verdict.DROP
        assert ctx.alerts[0].kind == "login-rejected"
        assert ctx.alerts[0].detail["used_vendor_default"] is True

    def test_wrong_password_rejected(self, ctx):
        proxy = self.make()
        assert proxy.process(login("admin", "guess"), ctx)[0] is Verdict.DROP

    def test_rewrite_does_not_mutate_original(self, ctx):
        proxy = self.make()
        original = login("admin", "S3cure!")
        __, out = proxy.process(original, ctx)
        assert original.payload["password"] == "S3cure!"
        assert out is not original

    def test_non_login_traffic_untouched(self, ctx):
        proxy = self.make()
        pkt = Packet(src="a", dst="cam", dport=8080, payload={"cmd": "on"})
        pkt.meta["direction"] = "to_device"
        assert proxy.process(pkt, ctx)[0] is Verdict.PASS

    def test_from_device_untouched(self, ctx):
        proxy = self.make()
        pkt = login("admin", "admin")
        pkt.meta["direction"] = "from_device"
        assert proxy.process(pkt, ctx)[0] is Verdict.PASS

    def test_same_password_rejected_at_construction(self):
        with pytest.raises(ValueError):
            PasswordProxy(new_password="admin", device_password="admin")


class TestSignatureIDS:
    def test_match_alerts_and_drops(self, ctx):
        ids = SignatureIDS([default_credential_signature("dlink:cam:1.0")])
        verdict, __ = ids.process(login("admin", "admin"), ctx)
        assert verdict is Verdict.DROP
        assert ctx.alerts[0].kind == "signature-match"
        assert ctx.alerts[0].detail["recommended_posture"] == "password_proxy"

    def test_alert_only_mode(self, ctx):
        ids = SignatureIDS(
            [default_credential_signature("x")], drop_on_match=False
        )
        verdict, __ = ids.process(login("admin", "admin"), ctx)
        assert verdict is Verdict.PASS
        assert len(ctx.alerts) == 1

    def test_no_match_passes_silently(self, ctx):
        ids = SignatureIDS([backdoor_signature("x", 49153)])
        assert ids.process(login("admin", "admin"), ctx)[0] is Verdict.PASS
        assert ctx.alerts == []

    def test_live_rule_management(self, ctx):
        ids = SignatureIDS()
        assert ids.rule_count() == 0
        signature = default_credential_signature("x")
        ids.add_signature(signature)
        assert ids.rule_count() == 1
        ids.remove_signature(signature.sig_id)
        assert ids.rule_count() == 0

    def test_min_confidence_gates_rules(self, ctx):
        ids = SignatureIDS(min_confidence=0.8)
        weak = default_credential_signature("x")
        weak.confidence = 0.3
        ids.add_signature(weak)
        assert ids.rule_count() == 0
        strong = default_credential_signature("y")
        strong.confidence = 0.9
        ids.add_signature(strong)
        assert ids.rule_count() == 1

    def test_hit_counters(self, ctx):
        signature = default_credential_signature("x")
        ids = SignatureIDS([signature], drop_on_match=False)
        ids.process(login("admin", "admin"), ctx)
        ids.process(login("admin", "admin"), ctx)
        assert ids.hits[signature.sig_id] == 2
