"""Tests for conflict, shadowing, and safety analysis."""

from repro.policy.builder import PolicyBuilder
from repro.policy.conflicts import (
    SafetyInvariant,
    check_safety,
    commands_oppose,
    find_recipe_conflicts,
    find_rule_ambiguities,
    find_shadowed_rules,
    full_report,
)
from repro.policy.context import SUSPICIOUS, ctx
from repro.policy.fsm import StatePredicate
from repro.policy.ifttt import Recipe
from repro.policy.posture import block_commands, quarantine


def test_commands_oppose():
    assert commands_oppose("on", "off")
    assert commands_oppose("close", "open")
    assert not commands_oppose("on", "red")


class TestRuleAmbiguity:
    def test_equal_precedence_overlap_flagged(self):
        policy = (
            PolicyBuilder()
            .device("win")
            .env("smoke", ("clear", "detected"))
            .when(ctx("win"), SUSPICIOUS).give("win", block_commands("open"))
            .when("env:smoke", "detected").give("win", quarantine("win"))
            .build()
        )
        conflicts = find_rule_ambiguities(policy)
        assert len(conflicts) == 1
        assert conflicts[0].severity == "error"

    def test_different_priorities_not_ambiguous(self):
        policy = (
            PolicyBuilder()
            .device("win")
            .env("smoke", ("clear", "detected"))
            .when(ctx("win"), SUSPICIOUS).give("win", block_commands("open"), priority=100)
            .when("env:smoke", "detected").give("win", quarantine("win"), priority=200)
            .build()
        )
        assert find_rule_ambiguities(policy) == []

    def test_same_posture_not_ambiguous(self):
        policy = (
            PolicyBuilder()
            .device("win")
            .env("smoke", ("clear", "detected"))
            .when(ctx("win"), SUSPICIOUS).give("win", block_commands("open"))
            .when("env:smoke", "detected").give("win", block_commands("open"))
            .build()
        )
        assert find_rule_ambiguities(policy) == []

    def test_disjoint_predicates_not_ambiguous(self):
        policy = (
            PolicyBuilder()
            .device("win")
            .when(ctx("win"), SUSPICIOUS).give("win", block_commands("open"))
            .when(ctx("win"), "compromised").give("win", quarantine("win"))
            .build()
        )
        assert find_rule_ambiguities(policy) == []


class TestShadowing:
    def test_general_high_priority_shadows_specific(self):
        policy = (
            PolicyBuilder()
            .device("win")
            .env("smoke", ("clear", "detected"))
            .when(ctx("win"), SUSPICIOUS)
            .give("win", quarantine("win"), priority=500)
            .when(ctx("win"), SUSPICIOUS)
            .also("env:smoke", "detected")
            .give("win", block_commands("open"), priority=100)
            .build()
        )
        shadows = find_shadowed_rules(policy)
        assert len(shadows) == 1
        assert "shadowed" in shadows[0].detail

    def test_no_false_shadow(self):
        policy = (
            PolicyBuilder()
            .device("win")
            .env("smoke", ("clear", "detected"))
            .when("env:smoke", "detected").give("win", quarantine("win"), priority=500)
            .when(ctx("win"), SUSPICIOUS).give("win", block_commands("open"))
            .build()
        )
        assert find_shadowed_rules(policy) == []


class TestRecipeConflicts:
    def test_opposing_commands_same_trigger_is_error(self):
        recipes = [
            Recipe("a", "env:smoke", "detected", "window", "open"),
            Recipe("b", "env:smoke", "detected", "window", "close"),
        ]
        conflicts = find_recipe_conflicts(recipes)
        assert len(conflicts) == 1
        assert conflicts[0].severity == "error"

    def test_different_variables_can_coincide(self):
        recipes = [
            Recipe("a", "env:smoke", "detected", "plug", "on"),
            Recipe("b", "env:occupancy", "absent", "plug", "off"),
        ]
        assert len(find_recipe_conflicts(recipes)) == 1

    def test_same_variable_different_values_cannot_coincide(self):
        recipes = [
            Recipe("a", "env:occupancy", "present", "plug", "on"),
            Recipe("b", "env:occupancy", "absent", "plug", "off"),
        ]
        assert find_recipe_conflicts(recipes) == []

    def test_non_opposing_disagreement_is_warning(self):
        recipes = [
            Recipe("a", "env:smoke", "detected", "bulb", "red"),
            Recipe("b", "env:occupancy", "absent", "bulb", "off"),
        ]
        conflicts = find_recipe_conflicts(recipes)
        assert len(conflicts) == 1
        assert conflicts[0].severity == "warning"

    def test_same_command_no_conflict(self):
        recipes = [
            Recipe("a", "env:smoke", "detected", "bulb", "red"),
            Recipe("b", "env:occupancy", "absent", "bulb", "red"),
        ]
        assert find_recipe_conflicts(recipes) == []


class TestSafety:
    def make_policy(self, protective=True):
        builder = (
            PolicyBuilder()
            .device("fire_alarm")
            .device("window")
        )
        if protective:
            builder.when(ctx("fire_alarm"), SUSPICIOUS).give(
                "window", block_commands("open")
            )
        return builder.build()

    def invariant(self):
        return SafetyInvariant(
            name="window-guarded-when-alarm-suspicious",
            condition=StatePredicate.make({"ctx:fire_alarm": SUSPICIOUS}),
            device="window",
            required_module="command_filter",
        )

    def test_satisfied_invariant(self):
        violations = check_safety(self.make_policy(True), [self.invariant()])
        assert violations == []

    def test_violated_invariant(self):
        violations = check_safety(self.make_policy(False), [self.invariant()])
        assert len(violations) == 1
        assert violations[0].severity == "error"

    def test_any_module_requirement(self):
        invariant = SafetyInvariant(
            name="some-protection",
            condition=StatePredicate.make({"ctx:fire_alarm": SUSPICIOUS}),
            device="window",
            required_module=None,
        )
        assert check_safety(self.make_policy(True), [invariant]) == []
        assert len(check_safety(self.make_policy(False), [invariant])) == 1


def test_full_report_aggregates():
    policy = (
        PolicyBuilder()
        .device("win")
        .env("smoke", ("clear", "detected"))
        .when(ctx("win"), SUSPICIOUS).give("win", block_commands("open"))
        .when("env:smoke", "detected").give("win", quarantine("win"))
        .build()
    )
    report = full_report(policy)
    assert any(c.kind == "ambiguity" for c in report)
