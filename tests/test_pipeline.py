"""Tests for the staged reactive pipeline (repro.core.pipeline).

Covers the escalation engine's sliding-window edges and memory bound, and
the evaluate stage's same-instant coalescing guarantee: N simultaneous view
changes cost one evaluation round and at most one posture apply per
affected device.
"""

from repro.core.deployment import SecuredDeployment
from repro.core.pipeline import EscalationEngine, EscalationRule
from repro.devices.library import smart_camera, window_actuator
from repro.policy.builder import PolicyBuilder
from repro.policy.context import COMPROMISED, SUSPICIOUS
from repro.policy.posture import block_commands


# ----------------------------------------------------------------------
# Stage 2: escalation window edges
# ----------------------------------------------------------------------
class TestEscalationWindows:
    def test_alert_exactly_at_window_boundary_counts(self):
        engine = EscalationEngine([EscalationRule("probe", SUSPICIOUS, count=2, window=60.0)])
        assert engine.observe("cam", "probe", 0.0) is None
        # the alert at t=0 sits exactly at 60 - window: boundary-inclusive
        assert engine.observe("cam", "probe", 60.0) == SUSPICIOUS

    def test_alert_just_outside_window_does_not_count(self):
        engine = EscalationEngine([EscalationRule("probe", SUSPICIOUS, count=2, window=60.0)])
        assert engine.observe("cam", "probe", 0.0) is None
        assert engine.observe("cam", "probe", 60.5) is None

    def test_count_threshold_fires_on_nth_not_before(self):
        engine = EscalationEngine([EscalationRule("probe", SUSPICIOUS, count=3, window=60.0)])
        assert engine.observe("cam", "probe", 1.0) is None
        assert engine.observe("cam", "probe", 2.0) is None
        assert engine.observe("cam", "probe", 3.0) == SUSPICIOUS

    def test_interleaved_kinds_tracked_independently(self):
        engine = EscalationEngine(
            [
                EscalationRule("a", SUSPICIOUS, count=2, window=60.0),
                EscalationRule("b", COMPROMISED, count=2, window=60.0),
            ]
        )
        assert engine.observe("cam", "a", 0.0) is None
        assert engine.observe("cam", "b", 1.0) is None
        # neither kind has reached its own count yet, despite 2 alerts total
        assert engine.observe("cam", "a", 2.0) == SUSPICIOUS
        assert engine.observe("cam", "b", 3.0) == COMPROMISED

    def test_interleaved_devices_tracked_independently(self):
        engine = EscalationEngine([EscalationRule("a", SUSPICIOUS, count=2, window=60.0)])
        assert engine.observe("cam", "a", 0.0) is None
        assert engine.observe("plug", "a", 0.0) is None
        assert engine.observe("cam", "a", 1.0) == SUSPICIOUS

    def test_most_severe_triggered_rule_wins(self):
        engine = EscalationEngine(
            [
                EscalationRule("probe", SUSPICIOUS, count=1, window=60.0),
                EscalationRule("probe", COMPROMISED, count=3, window=60.0),
            ]
        )
        assert engine.observe("cam", "probe", 0.0) == SUSPICIOUS
        assert engine.observe("cam", "probe", 1.0) == SUSPICIOUS
        assert engine.observe("cam", "probe", 2.0) == COMPROMISED

    def test_alert_times_pruned_to_widest_window(self):
        engine = EscalationEngine(
            [
                EscalationRule("probe", SUSPICIOUS, count=3, window=10.0),
                EscalationRule("probe", COMPROMISED, count=50, window=60.0),
            ]
        )
        # A long slow stream: only the last 60 seconds (the widest window
        # for this kind) may ever be retained, no matter the run length.
        for i in range(10_000):
            engine.observe("cam", "probe", float(i))
        counts = engine.pending_counts()
        assert counts[("cam", "probe")] <= 61

    def test_boundary_timestamp_survives_pruning(self):
        engine = EscalationEngine([EscalationRule("probe", SUSPICIOUS, count=2, window=60.0)])
        engine.observe("cam", "probe", 0.0)
        engine.observe("cam", "probe", 60.0)
        # t=0 is exactly at the horizon (60 - 60) and must be retained
        assert engine.pending_counts()[("cam", "probe")] == 2


# ----------------------------------------------------------------------
# Stages 1+3+4: same-instant coalescing
# ----------------------------------------------------------------------
def _fan_in_deployment(n_cams: int = 4):
    """``win`` hardens when any of N cameras turns suspicious."""
    dep = SecuredDeployment.build()
    builder = PolicyBuilder()
    cams = [f"cam{i}" for i in range(n_cams)]
    for cam in cams:
        builder.device(cam)
    builder.device("win")
    for cam in cams:
        builder.when(f"ctx:{cam}", SUSPICIOUS).give("win", block_commands("open"))
    dep.policy = builder.build()
    for cam in cams:
        dep.add_device(smart_camera, cam)
    dep.add_device(window_actuator, "win")
    dep.finalize()
    return dep, cams


class TestSameInstantCoalescing:
    def test_simultaneous_view_changes_one_round_one_apply(self):
        dep, cams = _fan_in_deployment(n_cams=4)
        ctrl = dep.controller
        stats = ctrl.pipeline.stats
        rounds_before = stats.rounds
        applies_before = len([r for r in dep.orchestrator.records if r.device == "win"])
        # all four cameras turn suspicious at the same simulated instant
        for cam in cams:
            dep.sim.schedule(1.0, ctrl.set_context, cam, SUSPICIOUS)
        dep.run(until=2.0)
        assert dep.orchestrator.posture_of("win").name == "block-commands"
        win_applies = len([r for r in dep.orchestrator.records if r.device == "win"])
        assert win_applies - applies_before == 1
        assert stats.rounds - rounds_before == 1
        # three of the four same-instant marks were absorbed into the round
        assert stats.coalesced >= 3

    def test_coalesced_round_records_one_reaction_per_device(self):
        dep, cams = _fan_in_deployment(n_cams=3)
        ctrl = dep.controller
        before = len(ctrl.reactions)
        for cam in cams:
            dep.sim.schedule(1.0, ctrl.set_context, cam, SUSPICIOUS)
        dep.run(until=2.0)
        new = [r for r in ctrl.reactions[before:] if r.device == "win"]
        assert len(new) == 1
        record = new[0]
        assert record.trigger_at == 1.0
        assert record.applied_at >= record.trigger_at

    def test_changes_at_different_instants_run_separate_rounds(self):
        dep, cams = _fan_in_deployment(n_cams=2)
        ctrl = dep.controller
        stats = ctrl.pipeline.stats
        rounds_before = stats.rounds
        dep.sim.schedule(1.0, ctrl.set_context, cams[0], SUSPICIOUS)
        dep.sim.schedule(2.0, ctrl.set_context, cams[1], SUSPICIOUS)
        dep.run(until=3.0)
        assert stats.rounds - rounds_before == 2

    def test_direct_call_flushes_synchronously(self):
        dep, cams = _fan_in_deployment(n_cams=2)
        ctrl = dep.controller
        # outside the event loop the round must run inline: posture visible
        # immediately, with no sim.run() in between
        ctrl.set_context(cams[0], SUSPICIOUS)
        assert dep.orchestrator.posture_of("win").name == "block-commands"

    def test_unreferenced_keys_never_mark_devices(self):
        dep, __ = _fan_in_deployment(n_cams=2)
        stats = dep.controller.pipeline.stats
        ingested_before = stats.ingested
        dep.controller.view.set("dev:cam0", "recording")
        dep.controller.view.set("unrelated:key", "x")
        assert stats.ingested == ingested_before
