"""Tests for attack-graph hardening plans and the disclosure feed."""

import pytest

from repro.devices.library import (
    fire_alarm,
    smart_camera,
    smart_plug,
    window_actuator,
)
from repro.learning.attackgraph import ATTACKER, AttackGraphBuilder, control, envfact
from repro.learning.disclosure import DisclosureFeed
from repro.policy.ifttt import Recipe


class TestHardeningPlan:
    def build(self, sim, with_recipe=True):
        devices = {
            d.name: (d.model, d.firmware)
            for d in (
                smart_plug("heater_plug", sim, load={"heat_watts": 1500.0}),
                fire_alarm("alarm", sim),
                window_actuator("window", sim),
            )
        }
        recipes = (
            [Recipe("cool-down", "env:temperature", "high", "window", "open")]
            if with_recipe
            else []
        )
        return AttackGraphBuilder(devices, recipes=recipes)

    def test_plan_severs_all_paths(self, sim):
        builder = self.build(sim)
        goal = envfact("window", "open")
        assert builder.can_reach(goal)
        plan = builder.hardening_plan(goal)
        assert plan  # something to do
        g = builder.graph.copy()
        for device, __mitigation in plan:
            g.remove_node(control(device))
        import networkx as nx

        assert not (goal in g and nx.has_path(g, ATTACKER, goal))

    def test_plan_names_sensible_mitigations(self, sim):
        builder = self.build(sim)
        plan = dict(builder.hardening_plan(envfact("window", "open")))
        # the window's weak password needs the proxy; the plug's exposed
        # access needs the firewall
        if "window" in plan:
            assert plan["window"] == "password_proxy"
        if "heater_plug" in plan:
            assert plan["heater_plug"] == "stateful_firewall"
        assert len(plan) >= 2  # two disjoint paths here

    def test_single_path_needs_single_fix(self, sim):
        builder = self.build(sim, with_recipe=False)
        plan = builder.hardening_plan(envfact("window", "open"))
        assert len(plan) == 1
        assert plan[0][0] == "window"

    def test_unreachable_goal_empty_plan(self, sim):
        builder = self.build(sim)
        assert builder.hardening_plan(envfact("door", "unlocked")) == []


class TestDisclosureFeed:
    def test_publish_and_delayed_delivery(self, sim):
        feed = DisclosureFeed(sim, propagation_delay=60.0)
        got = []
        feed.subscribe(got.append)
        feed.publish("dlink:DCS-930L:1.0", "exposed-credentials")
        sim.run(until=30.0)
        assert got == []
        sim.run(until=61.0)
        assert len(got) == 1
        assert got[0].sku == "dlink:DCS-930L:1.0"

    def test_backlog_replayed_to_late_subscribers(self, sim):
        feed = DisclosureFeed(sim, propagation_delay=1.0)
        feed.publish("a:b:1", "backdoor")
        sim.run()
        got = []
        feed.subscribe(got.append)
        sim.run()
        assert len(got) == 1

    def test_disclosures_for(self, sim):
        feed = DisclosureFeed(sim)
        feed.publish("a:b:1", "backdoor")
        feed.publish("c:d:1", "exposed-access")
        assert len(feed.disclosures_for("a:b:1")) == 1

    def test_controller_marks_devices_unpatched(self, sim):
        from repro.core.deployment import SecuredDeployment
        from repro.policy.builder import PolicyBuilder
        from repro.policy.context import UNPATCHED
        from repro.policy.posture import block_commands

        dep = SecuredDeployment.build(sim=sim)
        policy = (
            PolicyBuilder()
            .device("cam", contexts=("normal", "unpatched", "suspicious", "compromised"))
            .env("occupancy", ("absent", "present"))
            .when("ctx:cam", UNPATCHED)
            .give("cam", block_commands("record", name="harden-unpatched"))
            .build()
        )
        dep.policy = policy
        cam = dep.add_device(smart_camera, "cam")
        dep.finalize()
        feed = DisclosureFeed(sim, propagation_delay=10.0)
        dep.controller.watch_disclosures(feed)
        feed.publish(cam.sku, "exposed-credentials")
        dep.run(until=20.0)
        assert dep.controller.context_of("cam") == UNPATCHED
        assert dep.orchestrator.posture_of("cam").name == "harden-unpatched"

    def test_disclosure_for_other_sku_ignored(self, sim):
        from repro.core.deployment import SecuredDeployment

        dep = SecuredDeployment.build(sim=sim)
        dep.add_device(smart_camera, "cam")
        dep.finalize()
        feed = DisclosureFeed(sim, propagation_delay=1.0)
        dep.controller.watch_disclosures(feed)
        feed.publish("totally:different:sku", "backdoor")
        dep.run(until=5.0)
        assert dep.controller.context_of("cam") == "normal"

    def test_suspicious_not_downgraded_by_disclosure(self, sim):
        from repro.core.deployment import SecuredDeployment
        from repro.policy.context import SUSPICIOUS

        dep = SecuredDeployment.build(sim=sim)
        cam = dep.add_device(smart_camera, "cam")
        dep.finalize()
        feed = DisclosureFeed(sim, propagation_delay=1.0)
        dep.controller.watch_disclosures(feed)
        dep.controller.set_context("cam", SUSPICIOUS)
        feed.publish(cam.sku, "exposed-credentials")
        dep.run(until=5.0)
        assert dep.controller.context_of("cam") == SUSPICIOUS
