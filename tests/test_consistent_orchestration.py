"""Tests for the orchestrator's two-phase consistent-update mode."""

import pytest

from repro.core.deployment import SecuredDeployment
from repro.devices import protocol
from repro.devices.library import smart_camera, smart_plug
from repro.policy.posture import ALLOW_ALL, block_commands


@pytest.fixture
def dep():
    deployment = SecuredDeployment.build(consistent_updates=True)
    deployment.add_device(smart_camera, "cam")
    deployment.add_device(smart_plug, "plug")
    deployment.add_attacker()
    deployment.finalize()
    return deployment


def test_rules_installed_with_version_tags(dep):
    dep.secure("cam", block_commands("stop"))
    dep.run(until=1.0)
    rules = dep.edge.rules_for("cam")
    assert len(rules) == 4
    assert all(r.version is not None for r in rules)
    assert dep.edge.active_version == rules[0].version


def test_rules_inactive_before_commit(dep):
    dep.secure("cam", block_commands("stop"))
    # the two-phase commit needs 3 channel legs (2 ms each); before that,
    # the new epoch is installed but not active
    assert dep.edge.active_version is None
    assert dep.edge.lookup(
        protocol.command("attacker", "cam", "stop"), in_port=0
    ) is None
    dep.run(until=1.0)
    assert dep.edge.active_version is not None


def test_traffic_traverses_mbox_after_commit(dep):
    dep.secure("plug", block_commands("on"))
    dep.run(until=1.0)
    attacker = dep.attackers["attacker"]
    attacker.fire_and_forget(protocol.command("attacker", "plug", "on", dport=8080))
    dep.run(until=3.0)
    assert dep.devices["plug"].state == "off"
    assert len(dep.alerts("plug")) == 1


def test_second_device_epoch_keeps_first_devices_rules(dep):
    dep.secure("cam", block_commands("stop"))
    dep.run(until=1.0)
    dep.secure("plug", block_commands("on"))
    dep.run(until=2.0)
    assert len(dep.edge.rules_for("cam")) == 4
    assert len(dep.edge.rules_for("plug")) == 4
    # all live rules belong to the latest epoch (old one garbage-collected)
    versions = {r.version for r in dep.edge.flow_table}
    assert len(versions) == 1
    assert dep.edge.active_version in versions


def test_removal_epoch_drops_only_that_device(dep):
    dep.secure("cam", block_commands("stop"))
    dep.secure("plug", block_commands("on"))
    dep.run(until=1.0)
    dep.orchestrator.unpin("cam")
    dep.orchestrator.apply("cam", ALLOW_ALL)
    dep.run(until=2.0)
    assert dep.edge.rules_for("cam") == []
    assert len(dep.edge.rules_for("plug")) == 4


def test_both_devices_protected_end_to_end(dep):
    dep.secure("cam", block_commands("record"))
    dep.secure("plug", block_commands("on"))
    dep.run(until=1.0)
    attacker = dep.attackers["attacker"]
    attacker.fire_and_forget(protocol.command("attacker", "plug", "on", dport=8080))
    replies = []
    attacker.request(
        protocol.login("attacker", "cam", "admin", "admin"), replies.append
    )
    dep.run(until=3.0)
    assert dep.devices["plug"].state == "off"
    # cam's posture only blocks "record": login still flows through its mbox
    assert len(replies) == 1
