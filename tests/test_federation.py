"""Tests for the federated control plane (:mod:`repro.federation`).

Covers the versioned signature repository (contiguous versions, dedup,
poisoning quarantine through the DLQ), the site sync state machine
(first-sync requirement, autonomy journaling, in-order catch-up after a
WAN heal), the coordinator push/pull propagation paths, the federation
health probe, the parallel site runner, and the seeded coordinator
blackout scenario's zero-enforcement-gap guarantee.
"""

import pytest

from repro.devices.library import smart_camera, smart_plug
from repro.faults.scenario import run_federation_blackout_scenario
from repro.federation import Federation, SiteSpec, run_federation, shard_fleet
from repro.federation.repository import SignatureRepository
from repro.learning.signatures import (
    backdoor_signature,
    default_credential_signature,
)
from repro.netsim.simulator import Simulator
from repro.obs.health import HEALTH_CRITICAL, HEALTH_DEGRADED

SKU = "dlink:DCS-930L:1.0"


def make_federation(sites=2, sync_period=5.0, devices=("cam", "plug")):
    fed = Federation(sync_period=sync_period)

    def populate(dep):
        if "cam" in devices:
            dep.add_device(smart_camera, "cam", report_to="hub")
        if "plug" in devices:
            dep.add_device(smart_plug, "plug", report_to="hub")

    for i in range(sites):
        fed.add_site(f"site{i}", populate=populate)
    return fed


# ---------------------------------------------------------------------------
# SignatureRepository
# ---------------------------------------------------------------------------


class TestSignatureRepository:
    def test_versions_are_contiguous_from_one(self):
        repo = SignatureRepository(Simulator())
        u1 = repo.publish(default_credential_signature(SKU).to_dict(), origin="a")
        u2 = repo.publish(backdoor_signature(SKU, 4000).to_dict(), origin="b")
        assert (u1.version, u2.version) == (1, 2)
        assert repo.version == 2
        assert [u.version for u in repo.log] == [1, 2]

    def test_rediscovery_dedups_without_consuming_a_version(self):
        repo = SignatureRepository(Simulator())
        wire = default_credential_signature(SKU).to_dict()
        assert repo.publish(wire, origin="east") is not None
        assert repo.publish(wire, origin="west") is None
        assert repo.version == 1
        assert repo.duplicates == 1

    @pytest.mark.parametrize(
        "wire, reason_prefix",
        [
            ("not-a-dict", "malformed"),
            ({}, "malformed"),
            ({"sku": ""}, "malformed"),
        ],
    )
    def test_malformed_wires_are_quarantined(self, wire, reason_prefix):
        repo = SignatureRepository(Simulator())
        assert repo.publish(wire, origin="evil") is None
        assert repo.version == 0
        assert repo.dlq.quarantined == 1
        assert any(r.startswith(reason_prefix) for r in repo.dlq.by_reason)

    def test_poisoned_posture_never_enters_the_log(self):
        repo = SignatureRepository(Simulator())
        wire = default_credential_signature(SKU).to_dict()
        wire["recommended_posture"] = "open_all_ports"
        assert repo.publish(wire, origin="evil") is None
        assert repo.version == 0
        assert repo.rejected == 1
        assert any("poisoned" in r for r in repo.dlq.by_reason)

    def test_out_of_range_confidence_is_poisoned(self):
        repo = SignatureRepository(Simulator())
        wire = default_credential_signature(SKU).to_dict()
        wire["confidence"] = 5.0
        assert repo.publish(wire, origin="evil") is None
        assert repo.version == 0

    def test_updates_since_replays_the_exact_suffix(self):
        repo = SignatureRepository(Simulator())
        repo.publish(default_credential_signature(SKU).to_dict(), origin="a")
        repo.publish(backdoor_signature(SKU, 4000).to_dict(), origin="a")
        repo.publish(backdoor_signature(SKU, 4001).to_dict(), origin="a")
        assert [u.version for u in repo.updates_since(0)] == [1, 2, 3]
        assert [u.version for u in repo.updates_since(2)] == [3]
        assert repo.updates_since(3) == []
        assert repo.updates_since(99) == []

    def test_poisoned_update_cannot_wedge_a_replay_cursor(self):
        """A rejected wire consumes no version, so the suffix a site pulls
        after the poison attempt is exactly the clean log."""
        repo = SignatureRepository(Simulator())
        repo.publish(default_credential_signature(SKU).to_dict(), origin="a")
        bad = default_credential_signature(SKU).to_dict()
        bad["recommended_posture"] = "root_shell"
        bad["flaw_class"] = "bait"
        repo.publish(bad, origin="evil")
        update = repo.publish(backdoor_signature(SKU, 4000).to_dict(), origin="b")
        assert update.version == 2
        assert [u.version for u in repo.updates_since(1)] == [2]


# ---------------------------------------------------------------------------
# Sites + coordinator on the shared sim
# ---------------------------------------------------------------------------


class TestFederationSync:
    def test_mined_signature_reaches_every_site_in_one_wan_hop(self):
        fed = make_federation(sites=3)
        fed.start()
        sku = fed.sites["site0"].dep.devices["cam"].sku
        fed.sim.schedule(
            10.0,
            lambda: fed.sites["site0"].mined(
                default_credential_signature(sku).to_dict()
            ),
        )
        fed.run(until=20.0)
        assert fed.coordinator.repository.version == 1
        assert fed.coordinator.converged()
        assert all(s.version == 1 for s in fed.sites.values())
        # report hop + push hop, each one WAN latency
        assert fed.propagation_lag(1) == pytest.approx(0.040, abs=1e-6)

    def test_first_sync_required_before_autonomy(self):
        """A site partitioned from birth never completes its first sync,
        so it cannot claim autonomous enforcement -- it has no cached
        policy to enforce."""
        fed = make_federation(sites=2)
        fed.blackout(0.0, 30.0)
        fed.start()
        fed.run(until=20.0)
        site = fed.sites["site0"]
        assert not site.first_synced
        assert not site.autonomous
        assert not site.enforcing
        assert fed.sim.journal.entries(kind="site-autonomy-enter") == []

    def test_first_sync_completes_after_heal(self):
        fed = make_federation(sites=2)
        fed.blackout(0.0, 30.0)
        fed.start()
        fed.run(until=40.0)
        assert all(s.first_synced for s in fed.sites.values())

    def test_mined_while_presync_queues_until_first_sync(self):
        fed = make_federation(sites=2)
        fed.blackout(0.0, 30.0)
        fed.start()
        sku = fed.sites["site0"].dep.devices["cam"].sku
        fed.sim.schedule(
            5.0,
            lambda: fed.sites["site0"].mined(
                default_credential_signature(sku).to_dict()
            ),
        )
        fed.run(until=25.0)
        assert len(fed.sites["site0"].pending_reports) == 1
        assert fed.coordinator.repository.version == 0
        fed.run(until=45.0)
        assert fed.sites["site0"].pending_reports == []
        assert fed.coordinator.repository.version == 1
        assert fed.coordinator.converged()

    def test_autonomy_spell_is_journaled_with_duration(self):
        fed = make_federation(sites=2)
        fed.start()
        fed.blackout(20.0, 40.0)
        fed.run(until=60.0)
        enters = fed.sim.journal.entries(kind="site-autonomy-enter")
        exits = fed.sim.journal.entries(kind="site-autonomy-exit")
        assert len(enters) == 2 and len(exits) == 2
        for entry in exits:
            assert entry.fields["offline_s"] == pytest.approx(20.0, abs=1.0)
        assert all(s.autonomy_spells == 1 for s in fed.sites.values())
        assert all(not s.autonomous for s in fed.sites.values())

    def test_sites_keep_enforcing_during_blackout(self):
        fed = make_federation(sites=2)
        fed.start()
        fed.blackout(10.0, 50.0)
        seen = {}
        fed.sim.schedule(
            30.0,
            lambda: seen.update(
                {name: site.enforcing for name, site in fed.sites.items()}
            ),
        )
        fed.run(until=40.0)
        assert seen and all(seen.values())

    def test_heal_replays_missed_updates_in_order(self):
        """Updates published while a site is dark arrive on the first
        post-heal sync as a strictly ascending version suffix."""
        fed = make_federation(sites=2)
        fed.start()
        sku = fed.sites["site0"].dep.devices["cam"].sku
        # site1 alone goes dark; site0 keeps publishing.
        fed.wan.partition(10.0, 40.0, endpoints=[fed.sites["site1"].endpoint])
        wires = [
            default_credential_signature(sku).to_dict(),
            backdoor_signature(sku, 4000).to_dict(),
            backdoor_signature(sku, 4001).to_dict(),
        ]
        for i, wire in enumerate(wires):
            fed.sim.schedule(15.0 + 5.0 * i, fed.sites["site0"].mined, wire)
        fed.run(until=60.0)
        site1 = fed.sites["site1"]
        assert site1.version == 3
        assert site1.out_of_order == 0
        assert fed.coordinator.converged()
        syncs = [
            e
            for e in fed.sim.journal.entries(kind="signature-sync")
            if e.fields["site"] == "site1" and e.fields["applied"]
        ]
        assert syncs, "the catch-up sync must be journaled"
        assert syncs[-1].fields["to_version"] == 3

    def test_duplicate_site_name_rejected(self):
        fed = make_federation(sites=1)
        with pytest.raises(ValueError, match="duplicate"):
            fed.add_site("site0")


class TestFederationHealth:
    def test_probe_critical_until_first_sync(self):
        fed = make_federation(sites=2)
        fed.blackout(0.0, 30.0)
        fed.attach_health(period=1.0)
        fed.start()
        fed.run(until=10.0)
        assert fed.health_plane.health.state_of("federation") == HEALTH_CRITICAL

    def test_probe_degraded_during_autonomy_then_recovers(self):
        fed = make_federation(sites=2)
        fed.attach_health(period=1.0)
        fed.start()
        fed.blackout(20.0, 40.0)
        states = {}
        fed.sim.schedule(
            30.0,
            lambda: states.update(
                mid=fed.health_plane.health.state_of("federation")
            ),
        )
        fed.run(until=60.0)
        assert states["mid"] == HEALTH_DEGRADED
        assert fed.health_plane.health.state_of("federation") == "ok"
        transitions = [
            e.fields
            for e in fed.sim.journal.entries(kind="health")
            if e.fields.get("subsystem") == "federation"
        ]
        assert any(t["to_state"] == "degraded" for t in transitions)
        assert any(t["to_state"] == "ok" for t in transitions)


# ---------------------------------------------------------------------------
# The parallel runner
# ---------------------------------------------------------------------------


class TestRunner:
    def test_shard_fleet_splits_near_equal(self):
        specs = shard_fleet(10, 4, horizon=30.0)
        assert [s.devices for s in specs] == [3, 3, 2, 2]
        assert [s.name for s in specs] == ["site0", "site1", "site2", "site3"]
        assert sum(s.devices for s in specs) == 10

    def test_shard_fleet_rejects_zero_sites(self):
        with pytest.raises(ValueError):
            shard_fleet(10, 0)

    def test_serial_federation_aggregates_per_site_results(self):
        out = run_federation(shard_fleet(12, 3, horizon=30.0), workers=1)
        assert out["mode"] == "serial"
        assert out["sites"] == 3
        assert out["devices"] == 12
        assert out["events"] == sum(r["events"] for r in out["per_site"])
        assert out["attacks_launched"] == 6
        assert out["attacks_blocked"] == 6
        assert out["compromised"] == 0

    def test_parallel_workers_match_serial_results(self):
        specs = shard_fleet(8, 2, horizon=30.0)
        serial = run_federation(specs, workers=1)
        parallel = run_federation(specs, workers=2)
        assert parallel["mode"] != "serial"
        assert parallel["events"] == serial["events"]
        assert parallel["attacks_blocked"] == serial["attacks_blocked"]
        assert parallel["compromised"] == serial["compromised"]

    def test_seeded_signatures_ride_into_workers(self):
        wire = default_credential_signature(SKU).to_dict()
        specs = shard_fleet(4, 2, horizon=10.0, signatures=[wire])
        out = run_federation(specs, workers=1)
        assert all(r["cached_signatures"] == 1 for r in out["per_site"])


# ---------------------------------------------------------------------------
# The seeded coordinator-blackout scenario (satellite 5)
# ---------------------------------------------------------------------------


class TestBlackoutScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        return run_federation_blackout_scenario(sites=4)

    def test_zero_enforcement_gaps_during_blackout(self, scenario):
        assert scenario["enforcement_gaps"] == 0, scenario["gap_details"]

    def test_only_patient_zero_is_compromised(self, scenario):
        assert scenario["patient_zero_compromised"]
        assert scenario["attacks_launched"] == 4
        assert scenario["attacks_blocked"] == 3

    def test_signature_updates_replay_in_order_on_heal(self, scenario):
        assert scenario["out_of_order"] == 0
        assert scenario["pending_after"] == 0
        assert scenario["converged"]
        assert scenario["signatures_propagated"] == 2

    def test_poisoned_report_is_quarantined_not_versioned(self, scenario):
        assert scenario["dlq_quarantined"] == 1
        assert scenario["signatures_propagated"] == 2

    def test_every_site_journals_its_autonomy_spell(self, scenario):
        assert scenario["autonomy_enters"] == 4
        assert scenario["autonomy_exits"] == 4
        assert scenario["offline_s"] == pytest.approx(240.0, abs=2.0)

    def test_propagation_lag_is_two_wan_hops(self, scenario):
        assert scenario["propagation_lag_v1"] == pytest.approx(0.040, abs=1e-6)

    def test_scenario_is_deterministic(self, scenario):
        again = run_federation_blackout_scenario(sites=4)
        for key in (
            "events",
            "attacks_blocked",
            "enforcement_gaps",
            "signatures_propagated",
            "dlq_quarantined",
            "autonomy_enters",
            "autonomy_exits",
            "offline_s",
        ):
            assert again[key] == scenario[key], key

    def test_rejects_single_site(self):
        with pytest.raises(ValueError, match="at least 2"):
            run_federation_blackout_scenario(sites=1)
