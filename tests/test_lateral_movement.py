"""Tests for the launchpad threat (Figure 1) and insider escalation.

A compromised device attacking inward carries a *trusted internal* source
address.  Perimeter thinking fails completely here; the victim's own µmbox
plus the controller's insider escalation (flag the source device, not just
the target) is the IoTSec answer.
"""

import pytest

from repro.attacks.exploits import EXPLOITS
from repro.core.deployment import SecuredDeployment
from repro.core.orchestrator import build_recommended_posture
from repro.devices.library import WEMO_BACKDOOR_PORT, smart_camera, smart_plug
from repro.policy.context import SUSPICIOUS
from repro.policy.posture import block_commands


def build(protect_victim: bool):
    dep = SecuredDeployment.build()
    dep.add_device(smart_plug, "launchpad")      # has the Wemo backdoor
    dep.add_device(smart_plug, "victim_plug", with_backdoor=False,
                   with_open_dns=False)          # victim: only 8080 exposed
    attacker = dep.add_attacker()
    dep.finalize()
    if protect_victim:
        dep.secure(
            "victim_plug",
            build_recommended_posture(
                "stateful_firewall",
                "victim_plug",
                trusted_sources=(dep.HUB, dep.CONTROLLER),
            ),
            pin=False,
        )
    return dep, attacker


def launch(dep, attacker):
    return EXPLOITS["lateral_movement"].launch(
        attacker,
        "launchpad",
        dep.sim,
        backdoor_port=WEMO_BACKDOOR_PORT,
        victim="victim_plug",
        victim_port=8080,
        inner_payload={"cmd": "on"},
    )


def test_pivot_reaches_internal_victim_unprotected():
    dep, attacker = build(protect_victim=False)
    result = launch(dep, attacker)
    dep.run(until=10.0)
    assert result.succeeded
    assert dep.devices["victim_plug"].state == "on"
    # the victim's log shows the *launchpad* as the source, not the attacker
    record = dep.devices["victim_plug"].command_log[-1]
    assert record.src == "launchpad"
    assert dep.devices["launchpad"].compromised_by == ["attacker"]


def test_victim_mbox_blocks_pivot_despite_internal_source():
    dep, attacker = build(protect_victim=True)
    result = launch(dep, attacker)
    dep.run(until=10.0)
    assert result.succeeded  # the pivot itself worked...
    assert dep.devices["victim_plug"].state == "off"  # ...the attack did not
    alerts = dep.alerts("victim_plug")
    assert any(
        a.kind == "firewall-blocked" and a.detail.get("src") == "launchpad"
        for a in alerts
    )


def test_insider_escalation_flags_the_launchpad():
    dep, attacker = build(protect_victim=True)
    launch(dep, attacker)
    dep.run(until=10.0)
    # the *source* device is now suspicious, not just observed
    assert dep.controller.context_of("launchpad") == SUSPICIOUS
    # and the default policy therefore walls it off
    posture = dep.orchestrator.posture_of("launchpad")
    assert posture is not None and posture.name == "stateful_firewall"


def test_quarantined_launchpad_cannot_pivot_again():
    dep, attacker = build(protect_victim=True)
    launch(dep, attacker)
    dep.run(until=10.0)
    assert dep.controller.context_of("launchpad") == SUSPICIOUS
    second = launch(dep, attacker)
    dep.run(until=20.0)
    # the launchpad's new firewall posture eats the backdoor packet
    assert not second.succeeded


def test_external_attacker_source_does_not_trigger_insider_rule():
    dep, attacker = build(protect_victim=True)
    from repro.devices import protocol

    attacker.fire_and_forget(
        protocol.command("attacker", "victim_plug", "on", dport=8080)
    )
    dep.run(until=10.0)
    # "attacker" is not a registered device: no insider escalation happens
    assert dep.controller.context_of("launchpad") == "normal"
