"""Tests for postures and mbox specs."""

from repro.policy.posture import (
    ALLOW_ALL,
    MboxSpec,
    Posture,
    block_commands,
    quarantine,
    require_proxy,
)


def test_allow_all_is_permissive():
    assert ALLOW_ALL.is_permissive
    assert ALLOW_ALL.module_kinds() == ()


def test_spec_make_freezes_config():
    spec = MboxSpec.make("command_filter", deny=["open", "close"])
    assert isinstance(spec.config, tuple)
    hash(spec)  # must be hashable


def test_spec_config_roundtrip():
    spec = MboxSpec.make(
        "context_gate",
        commands=["on"],
        require={"env:occupancy": "present"},
        nested={"a": [1, 2], "b": {"c": 3}},
    )
    config = spec.config_dict()
    assert config["commands"] == ["on"]
    assert config["require"] == {"env:occupancy": "present"}
    assert config["nested"] == {"a": [1, 2], "b": {"c": 3}}


def test_spec_empty_config():
    assert MboxSpec.make("telemetry_tap").config_dict() == {}


def test_posture_structural_equality():
    a = Posture.make("x", MboxSpec.make("command_filter", deny=["open"]))
    b = Posture.make("x", MboxSpec.make("command_filter", deny=["open"]))
    c = Posture.make("x", MboxSpec.make("command_filter", deny=["close"]))
    assert a == b
    assert hash(a) == hash(b)
    assert a != c


def test_posture_order_of_kwargs_irrelevant():
    a = MboxSpec.make("f", x=1, y=2)
    b = MboxSpec.make("f", y=2, x=1)
    assert a == b


def test_block_commands_helper():
    posture = block_commands("open", "close")
    assert posture.module_kinds() == ("command_filter",)
    assert posture.modules[0].config_dict()["deny"] == ["close", "open"]


def test_quarantine_helper():
    posture = quarantine("cam")
    assert not posture.is_permissive
    assert "stateful_firewall" in posture.module_kinds()


def test_require_proxy_helper():
    posture = require_proxy("S3cret!")
    assert posture.module_kinds() == ("password_proxy",)


def test_posture_str_readable():
    text = str(block_commands("open"))
    assert "command_filter" in text and "open" in text
    assert "allow" in str(ALLOW_ALL)
