"""Tests for posture orchestration and the tunnel data path."""

import pytest

from repro.core.deployment import SecuredDeployment
from repro.core.orchestrator import build_recommended_posture
from repro.devices import protocol
from repro.devices.library import smart_camera, smart_plug
from repro.policy.posture import ALLOW_ALL, block_commands


@pytest.fixture
def dep():
    deployment = SecuredDeployment.build()
    deployment.add_device(smart_camera, "cam")
    deployment.add_device(smart_plug, "plug")
    deployment.add_attacker()
    deployment.finalize()
    return deployment


def test_apply_installs_tunnel_rules(dep):
    dep.secure("cam", block_commands("stop"))
    rules = dep.edge.rules_for("cam")
    priorities = sorted(r.priority for r in rules)
    assert priorities == [500, 500, 890, 900]
    assert dep.orchestrator.tunnels.mbox_for("cam") is not None


def test_apply_is_idempotent(dep):
    posture = block_commands("stop")
    dep.secure("cam", posture)
    n_rules = dep.edge.table_size()
    dep.secure("cam", posture)
    assert dep.edge.table_size() == n_rules
    assert dep.manager.reconfigs == 0


def test_posture_change_reconfigures_without_new_rules(dep):
    dep.secure("cam", block_commands("stop"))
    n_rules = dep.edge.table_size()
    dep.secure("cam", block_commands("record", name="other"))
    assert dep.edge.table_size() == n_rules
    assert dep.manager.reconfigs == 1


def test_permissive_posture_removes_tunnel(dep):
    dep.secure("cam", block_commands("stop"))
    dep.secure("cam", ALLOW_ALL)
    assert dep.edge.rules_for("cam") == []
    assert "cam" not in dep.cluster.mboxes


def test_unattached_device_rejected(dep):
    with pytest.raises(KeyError):
        dep.orchestrator.apply("ghost", block_commands("x"))


def test_tunnelled_traffic_traverses_mbox_and_returns(dep):
    """Benign traffic flows through the µmbox transparently."""
    dep.secure("cam", build_recommended_posture("monitor", "cam", sku="s"))
    dep.run(until=0.1)
    attacker = dep.attackers["attacker"]
    replies = []
    attacker.request(
        protocol.login("attacker", "cam", "admin", "admin"),
        lambda r: replies.append(r),
    )
    dep.run(until=2.0)
    assert len(replies) == 1  # monitor posture observes but passes
    assert dep.cluster.tunnelled_in >= 2  # request + reply both inspected
    assert dep.cluster.returned >= 2


def test_drop_verdict_stops_traffic(dep):
    dep.secure("plug", block_commands("on"))
    dep.run(until=0.1)
    attacker = dep.attackers["attacker"]
    attacker.fire_and_forget(protocol.command("attacker", "plug", "on", dport=8080))
    dep.run(until=2.0)
    assert dep.devices["plug"].state == "off"
    assert len(dep.alerts("plug")) == 1


def test_device_to_device_traffic_inspected_by_destination_mbox(dep):
    dep.secure("cam", block_commands("record"))
    dep.secure("plug", block_commands("on"))
    dep.run(until=0.1)
    cam = dep.devices["cam"]
    # cam sends a command to plug; plug's mbox blocks "on"
    cam.send(protocol.command("cam", "plug", "on", dport=8080), next(iter(cam.ports)))
    dep.run(until=2.0)
    assert dep.devices["plug"].state == "off"


class TestRecommendedPostures:
    def test_all_mitigations_build(self):
        for mitigation in (
            "password_proxy",
            "stateful_firewall",
            "command_whitelist",
            "dns_guard",
            "quarantine",
            "monitor",
        ):
            posture = build_recommended_posture(mitigation, "dev", sku="a:b:1")
            assert not posture.is_permissive

    def test_unknown_mitigation(self):
        with pytest.raises(KeyError):
            build_recommended_posture("wishful_thinking", "dev")
