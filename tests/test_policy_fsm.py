"""Tests for the FSM policy abstraction."""

import pytest

from repro.policy.builder import PolicyBuilder
from repro.policy.context import (
    COMPROMISED,
    NORMAL,
    SUSPICIOUS,
    ContextDomain,
    SystemState,
    ctx,
    env,
)
from repro.policy.fsm import PolicyFSM, PostureRule, StatePredicate
from repro.policy.posture import ALLOW_ALL, Posture, block_commands, quarantine


def fig3_policy():
    """The Fig. 3 policy: fire alarm + window."""
    return (
        PolicyBuilder()
        .device("fire_alarm")
        .device("window")
        .env("smoke", ("clear", "detected"))
        .when(ctx("fire_alarm"), SUSPICIOUS)
        .give("window", block_commands("open", name="block-open"))
        .when(ctx("window"), SUSPICIOUS)
        .give("window", block_commands("open", "close", name="robot-check"), priority=200)
        .build()
    )


def state(fa=NORMAL, win=NORMAL, smoke="clear"):
    return SystemState(
        {"ctx:fire_alarm": fa, "ctx:window": win, "env:smoke": smoke}
    )


class TestStatePredicate:
    def test_empty_matches_all(self):
        assert StatePredicate.make({}).matches(state())

    def test_conjunction(self):
        pred = StatePredicate.make({"ctx:fire_alarm": SUSPICIOUS, "env:smoke": "clear"})
        assert pred.matches(state(fa=SUSPICIOUS))
        assert not pred.matches(state(fa=SUSPICIOUS, smoke="detected"))
        assert not pred.matches(state())

    def test_overlaps(self):
        a = StatePredicate.make({"ctx:fire_alarm": SUSPICIOUS})
        b = StatePredicate.make({"ctx:window": SUSPICIOUS})
        c = StatePredicate.make({"ctx:fire_alarm": NORMAL})
        assert a.overlaps(b)
        assert not a.overlaps(c)
        assert a.overlaps(a)

    def test_subsumes(self):
        general = StatePredicate.make({"ctx:fire_alarm": SUSPICIOUS})
        specific = StatePredicate.make(
            {"ctx:fire_alarm": SUSPICIOUS, "env:smoke": "detected"}
        )
        assert general.subsumes(specific)
        assert not specific.subsumes(general)
        assert StatePredicate.make({}).subsumes(general)


class TestPolicyFSM:
    def test_state_count(self):
        policy = fig3_policy()
        assert policy.state_count() == 3 * 3 * 2

    def test_default_posture_when_no_rule(self):
        policy = fig3_policy()
        assert policy.posture_for(state(), "window") is ALLOW_ALL
        assert policy.posture_for(state(), "fire_alarm") is ALLOW_ALL

    def test_rule_fires_on_matching_state(self):
        policy = fig3_policy()
        posture = policy.posture_for(state(fa=SUSPICIOUS), "window")
        assert posture.name == "block-open"

    def test_priority_wins(self):
        policy = fig3_policy()
        # both rules match; robot-check has priority 200
        posture = policy.posture_for(state(fa=SUSPICIOUS, win=SUSPICIOUS), "window")
        assert posture.name == "robot-check"

    def test_specificity_breaks_priority_ties(self):
        domains = [
            ContextDomain(ctx("d"), ("n", "s")),
            ContextDomain(env("e"), ("0", "1")),
        ]
        general = PostureRule(
            StatePredicate.make({"ctx:d": "s"}), "d", Posture(name="general")
        )
        specific = PostureRule(
            StatePredicate.make({"ctx:d": "s", "env:e": "1"}),
            "d",
            Posture(name="specific"),
        )
        policy = PolicyFSM(domains, [general, specific])
        result = policy.posture_for(SystemState({"ctx:d": "s", "env:e": "1"}), "d")
        assert result.name == "specific"

    def test_postures_covers_all_devices(self):
        policy = fig3_policy()
        assignment = policy.postures(state(fa=SUSPICIOUS))
        assert set(assignment) == {"fire_alarm", "window"}

    def test_materialize_full_table(self):
        policy = fig3_policy()
        table = policy.materialize()
        assert len(table) == policy.state_count()
        blocked = sum(
            1 for postures in table.values() if postures["window"].name != "allow"
        )
        # window is non-allow whenever fire_alarm or window is suspicious/compromised?
        # block-open fires only on fa=suspicious; robot-check on win=suspicious.
        # states: fa=susp (1 of 3) x win(3) x smoke(2) = 6; win=susp: 3x1x2=6; overlap 2
        assert blocked == 10

    def test_rule_hit_counter(self):
        policy = fig3_policy()
        rule = policy.rules_for("window")[-1]
        before = rule.hits
        policy.posture_for(state(fa=SUSPICIOUS), "window")
        total_hits = sum(r.hits for r in policy.rules)
        assert total_hits > before

    def test_validation_unknown_variable(self):
        with pytest.raises(ValueError):
            PolicyFSM(
                [ContextDomain(ctx("a"), ("n",))],
                [
                    PostureRule(
                        StatePredicate.make({"ctx:ghost": "n"}), "a", ALLOW_ALL
                    )
                ],
            )

    def test_validation_unknown_value(self):
        with pytest.raises(ValueError):
            PolicyFSM(
                [ContextDomain(ctx("a"), ("n",))],
                [PostureRule(StatePredicate.make({"ctx:a": "zzz"}), "a", ALLOW_ALL)],
            )

    def test_add_rule_keeps_order(self):
        policy = fig3_policy()
        policy.add_rule(
            PostureRule(
                StatePredicate.make({"ctx:window": COMPROMISED}),
                "window",
                quarantine("window"),
                priority=500,
            )
        )
        posture = policy.posture_for(
            state(fa=SUSPICIOUS, win=COMPROMISED), "window"
        )
        assert posture.name == "quarantine"

    def test_referenced_variables(self):
        policy = fig3_policy()
        assert policy.referenced_variables() == {"ctx:fire_alarm", "ctx:window"}

    def test_devices_inferred_from_rules_and_domains(self):
        policy = fig3_policy()
        assert set(policy.devices) == {"fire_alarm", "window"}
