"""Tests for runtime policy updates and the graph-to-deployment loop."""

from repro.attacks.exploits import EXPLOITS
from repro.core.deployment import SecuredDeployment
from repro.devices import protocol
from repro.devices.library import smart_camera, smart_plug, window_actuator
from repro.learning.attackgraph import AttackGraphBuilder, envfact
from repro.policy.context import SUSPICIOUS
from repro.policy.fsm import PostureRule, StatePredicate
from repro.policy.ifttt import Recipe
from repro.policy.posture import block_commands


class TestLivePolicyUpdate:
    def test_new_rule_takes_effect_immediately(self):
        dep = SecuredDeployment.build()
        dep.add_device(window_actuator, "window")
        dep.add_device(smart_camera, "cam")
        dep.finalize()
        # context already suspicious, but no rule cares yet
        dep.controller.set_context("cam", SUSPICIOUS)
        current = dep.orchestrator.posture_of("window")
        assert current is None or current.is_permissive
        # the operator ships a new cross-device rule at runtime
        dep.controller.update_policy(
            PostureRule(
                predicate=StatePredicate.make({"ctx:cam": SUSPICIOUS}),
                device="window",
                posture=block_commands("open", name="late-rule"),
                priority=400,
            )
        )
        assert dep.orchestrator.posture_of("window").name == "late-rule"

    def test_pruned_structure_rebuilt(self):
        dep = SecuredDeployment.build()
        dep.add_device(window_actuator, "window")
        dep.add_device(smart_camera, "cam")
        dep.finalize()
        from repro.policy.pruning import relevant_variables

        assert "ctx:cam" not in relevant_variables(dep.controller.policy, "window")
        dep.controller.update_policy(
            PostureRule(
                predicate=StatePredicate.make({"ctx:cam": SUSPICIOUS}),
                device="window",
                posture=block_commands("open", name="late-rule"),
                priority=400,
            )
        )
        assert "ctx:cam" in relevant_variables(dep.controller.policy, "window")
        # the pruned lookup agrees with the updated brute-force lookup
        state = dep.controller.view.system_state(
            (v.key for v in dep.controller.policy.space.variables()),
            dep.controller._defaults,
        )
        assert dep.controller.pruned.posture_for(
            state, "window"
        ) == dep.controller.policy.posture_for(state, "window")


class TestGraphToDeploymentLoop:
    def build(self):
        dep = SecuredDeployment.build()
        dep.add_device(smart_plug, "heater_plug", load={"heat_watts": 1500.0})
        dep.add_device(window_actuator, "window")
        attacker = dep.add_attacker()
        dep.finalize()
        dep.hub.add_recipe(
            Recipe("cool-down", "env:temperature", "high", "window", "open")
        )
        return dep, attacker

    def test_plan_applies_and_blocks_the_paths(self):
        dep, attacker = self.build()
        builder = AttackGraphBuilder(
            {n: (d.model, d.firmware) for n, d in dep.devices.items()},
            recipes=[Recipe("cool-down", "env:temperature", "high", "window", "open")],
        )
        plan = builder.hardening_plan(envfact("window", "open"))
        hardened = dep.apply_hardening_plan(plan)
        assert set(hardened) == {d for d, __ in plan}
        dep.run(until=0.5)

        # path 1: brute-force the window directly -> blocked by the proxy
        brute = EXPLOITS["brute_force_login"].launch(
            attacker, "window", dep.sim, command="open"
        )
        # path 2: backdoor the plug to start the thermal chain -> firewall
        backdoor = EXPLOITS["backdoor_command"].launch(
            attacker, "heater_plug", dep.sim, backdoor_port=49153, command="on"
        )
        dep.run(until=60.0)
        assert not brute.succeeded
        assert not backdoor.succeeded
        assert dep.devices["window"].state == "closed"
        assert dep.devices["heater_plug"].state == "off"

    def test_owner_still_operates_hardened_window(self):
        dep, __ = self.build()
        builder = AttackGraphBuilder(
            {n: (d.model, d.firmware) for n, d in dep.devices.items()},
        )
        dep.apply_hardening_plan(
            builder.hardening_plan(envfact("window", "open")),
            new_password="Owner!pass",
        )
        dep.run(until=0.5)
        owner = dep.add_attacker("owner_phone", latency=0.001)
        replies = []
        owner.request(
            protocol.login("owner_phone", "window", "admin", "Owner!pass"),
            replies.append,
        )
        dep.run(until=10.0)
        assert len(replies) == 1 and protocol.is_ok(replies[0])

    def test_unknown_devices_in_plan_skipped(self):
        dep, __ = self.build()
        hardened = dep.apply_hardening_plan([("ghost", "quarantine")])
        assert hardened == []
