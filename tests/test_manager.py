"""Tests for the µmbox lifecycle manager and the monolithic baseline."""

import pytest

from repro.mboxes.base import MboxHost, Verdict
from repro.mboxes.manager import MBOX_KINDS, MboxManager, MonolithicMiddlebox
from repro.policy.posture import MboxSpec, Posture, block_commands


@pytest.fixture
def host(sim):
    return MboxHost("cluster", sim)


@pytest.fixture
def manager(sim, host):
    return MboxManager(sim, host, pool_size=2)


def test_all_registered_kinds_buildable(sim, host):
    manager = MboxManager(sim, host, signature_provider=lambda sku: [])
    config_for = {
        "password_proxy": {"new_password": "x"},
        "signature_ids": {"sku": "a:b:1"},
        "context_gate": {"commands": ["on"], "require": {"env:x": "y"}},
    }
    for kind in MBOX_KINDS:
        posture = Posture.make(
            f"p-{kind}", MboxSpec.make(kind, **config_for.get(kind, {}))
        )
        manager.deploy(f"dev-{kind}", posture)
        sim.run()
        assert host.mboxes[f"dev-{kind}"].elements, kind
        manager.teardown(f"dev-{kind}")


def test_unknown_kind_rejected(sim, host):
    manager = MboxManager(sim, host)
    with pytest.raises(KeyError):
        manager.deploy("dev", Posture.make("bad", MboxSpec.make("warp_drive")))


def test_pool_hit_is_fast_boot_is_slow(sim, host):
    manager = MboxManager(
        sim, host, pool_size=1, boot_latency=0.030, pool_attach_latency=0.001
    )
    r1 = manager.deploy("dev1", block_commands("open"))
    r2 = manager.deploy("dev2", block_commands("open"))
    assert r1.operation == "pool" and r1.latency == pytest.approx(0.001)
    assert r2.operation == "boot" and r2.latency == pytest.approx(0.030)
    assert manager.pool_hits == 1 and manager.boots == 1


def test_pool_replenishes(sim, host):
    manager = MboxManager(sim, host, pool_size=1, boot_latency=0.030)
    manager.deploy("dev1", block_commands("open"))
    sim.run()  # replenish happens after a boot cycle
    record = manager.deploy("dev2", block_commands("open"))
    assert record.operation == "pool"


def test_mbox_not_ready_until_latency_elapses(sim, host):
    manager = MboxManager(sim, host, pool_size=0, boot_latency=0.030)
    manager.deploy("dev", block_commands("open"))
    assert host.mboxes["dev"].ready is False
    sim.run()
    assert host.mboxes["dev"].ready is True


def test_reconfigure_in_place_no_downtime(sim, host):
    manager = MboxManager(sim, host, pool_size=1)
    manager.deploy("dev", block_commands("open"))
    sim.run()
    record = manager.deploy("dev", block_commands("close", name="other"))
    assert record.operation == "reconfigure"
    assert host.mboxes["dev"].ready is True  # stays serving during swap
    sim.run()
    assert host.mboxes["dev"].kind == "other"
    assert manager.reconfigs == 1


def test_capacity_limit(sim, host):
    manager = MboxManager(sim, host, capacity=2, pool_size=0)
    manager.deploy("a", block_commands("x"))
    manager.deploy("b", block_commands("x"))
    with pytest.raises(RuntimeError):
        manager.deploy("c", block_commands("x"))


def test_teardown_unbinds_and_recycles(sim, host):
    manager = MboxManager(sim, host, pool_size=1, boot_latency=1e6)
    manager.deploy("dev", block_commands("x"))  # consumes the only pooled VM
    manager.teardown("dev")
    assert "dev" not in host.mboxes
    sim.run(until=1.0)  # recycle completes; the slow re-boot has not
    record = manager.deploy("dev2", block_commands("x"))
    assert record.operation == "pool"  # the recycled VM


def test_latency_stats(sim, host):
    manager = MboxManager(sim, host, pool_size=1)
    manager.deploy("a", block_commands("x"))
    manager.deploy("b", block_commands("x"))
    manager.deploy("a", block_commands("y", name="y"))
    stats = manager.latency_stats()
    assert len(stats["pool"]) == 1
    assert len(stats["boot"]) == 1
    assert len(stats["reconfigure"]) == 1


class TestMonolithic:
    def test_restart_causes_downtime(self, sim):
        box = MonolithicMiddlebox(sim, restart_latency=5.0)
        box.apply_config({})
        assert box.ready is False
        sim.run()
        assert box.ready is True
        assert box.downtime_total == pytest.approx(5.0)

    def test_overlapping_restarts_extend_downtime(self, sim):
        box = MonolithicMiddlebox(sim, restart_latency=5.0)
        box.apply_config({})
        sim.schedule(2.0, lambda: box.apply_config({}))
        sim.run()
        assert box.ready is True
        assert box.downtime_total == pytest.approx(7.0)
        assert box.restarts == 2

    def test_downtime_dwarfs_mbox_reconfig(self, sim, host):
        manager = MboxManager(sim, host, pool_size=4)
        box = MonolithicMiddlebox(sim, restart_latency=5.0)
        mono = box.apply_config({})
        micro = manager.deploy("dev", block_commands("x"))
        assert mono.latency > micro.latency * 50
