"""Integration tests: tracing and metrics across the whole control loop.

The headline property: one attack produces one causal trace whose spans
walk the full chain -- attack packet (``detect``), control-channel ingest
(``ingest-alert``), context escalation (``escalate``), the pipeline's
evaluation round (``evaluate``), posture actuation (``actuate``) and the
data-plane commit (``epoch-commit`` under two-phase consistent updates) --
with honest per-stage simulated latencies.
"""

from repro.core.deployment import SecuredDeployment
from repro.core.metrics import summarize
from repro.core.orchestrator import build_recommended_posture
from repro.devices import protocol
from repro.devices.library import smart_camera, window_actuator
from repro.netsim.simulator import Simulator
from repro.policy.builder import PolicyBuilder
from repro.policy.context import SUSPICIOUS
from repro.policy.posture import block_commands


def _cross_device_deployment(n_cams: int = 1, **build_kwargs):
    """``win`` hardens when any camera turns suspicious."""
    dep = SecuredDeployment.build(**build_kwargs)
    builder = PolicyBuilder()
    cams = [f"cam{i}" for i in range(n_cams)]
    for cam in cams:
        builder.device(cam)
    builder.device("win")
    for cam in cams:
        builder.when(f"ctx:{cam}", SUSPICIOUS).give("win", block_commands("open"))
    dep.policy = builder.build()
    for cam in cams:
        dep.add_device(smart_camera, cam)
    dep.add_device(window_actuator, "win")
    dep.add_attacker()
    dep.finalize()
    return dep, cams


def _brute_force(dep, target: str, n: int = 3) -> None:
    attacker = dep.attackers["attacker"]
    for i in range(n):
        dep.sim.schedule(
            1.0 + 0.2 * i,
            attacker.fire_and_forget,
            protocol.login("attacker", target, "admin", "wrong"),
        )


class TestFullCausalChain:
    def test_attack_to_epoch_commit_single_trace(self):
        """The acceptance chain, under two-phase consistent updates."""
        dep, cams = _cross_device_deployment(consistent_updates=True)
        dep.secure(
            "cam0",
            build_recommended_posture("password_proxy", "cam0", new_password="S3c!"),
        )
        _brute_force(dep, "cam0", n=3)  # 3 rejected logins => suspicious
        dep.run(until=30.0)

        assert dep.controller.context_of("cam0") == SUSPICIOUS
        assert dep.orchestrator.posture_of("win").name == "block-commands"

        tracer = dep.sim.tracer
        trace_id = tracer.last_trace("win")
        assert trace_id is not None
        spans = tracer.spans(trace_id)
        stages = [s.stage for s in spans]
        for stage in (
            "detect",
            "ingest-alert",
            "escalate",
            "evaluate",
            "actuate",
            "epoch-commit",
        ):
            assert stage in stages, f"missing stage {stage!r} in {stages}"

        by_stage = {s.stage: s for s in spans}
        # The chain is causally ordered in simulated time...
        assert by_stage["detect"].start <= by_stage["ingest-alert"].start
        assert by_stage["ingest-alert"].end <= by_stage["escalate"].start
        assert by_stage["escalate"].start <= by_stage["evaluate"].end
        assert by_stage["evaluate"].end <= by_stage["epoch-commit"].end
        # ...with honest per-stage latencies: the alert crossed a real
        # control channel and the epoch needed two phases of switch RTTs.
        assert by_stage["ingest-alert"].latency > 0
        assert by_stage["epoch-commit"].latency > 0
        assert all(s.latency >= 0 for s in spans)
        # Stage attribution names the actors.
        assert by_stage["detect"].device == "cam0"
        assert by_stage["escalate"].attrs["context"] == SUSPICIOUS
        assert by_stage["actuate"].attrs["posture"] == "block-commands"
        assert by_stage["epoch-commit"].attrs["rules"] > 0

    def test_direct_mode_records_flow_install_stage(self):
        dep, cams = _cross_device_deployment()  # no consistent updates
        dep.secure(
            "cam0",
            build_recommended_posture("password_proxy", "cam0", new_password="S3c!"),
        )
        _brute_force(dep, "cam0", n=3)
        dep.run(until=30.0)
        trace_id = dep.sim.tracer.last_trace("win")
        assert trace_id is not None
        stages = {s.stage for s in dep.sim.tracer.spans(trace_id)}
        assert "flow-install" in stages
        assert "epoch-commit" not in stages

    def test_render_shows_whole_chain(self):
        dep, cams = _cross_device_deployment()
        dep.secure(
            "cam0",
            build_recommended_posture("password_proxy", "cam0", new_password="S3c!"),
        )
        _brute_force(dep, "cam0", n=3)
        dep.run(until=30.0)
        text = dep.sim.tracer.render(dep.sim.tracer.last_trace("win"))
        assert "detect" in text and "actuate" in text
        assert "ms)" in text  # per-stage latencies are printed


class TestCoalescingInRegistry:
    def test_same_instant_changes_one_round_one_apply_in_counters(self):
        """Satellite of PR 1's coalescing guarantee: the *registry* (not
        just PipelineStats) must show one round and <=1 apply per device."""
        dep, cams = _cross_device_deployment(n_cams=4)
        ctrl = dep.controller
        metrics = dep.sim.metrics
        labels = ctrl.pipeline.metric_labels

        def applies_by_device():
            return {
                inst.labels["device"]: inst.value
                for inst in metrics.series("pipeline_device_applies")
            }

        rounds_before = metrics.value("pipeline_rounds", **labels)
        applies_before = applies_by_device()
        for cam in cams:
            dep.sim.schedule(1.0, ctrl.set_context, cam, SUSPICIOUS)
        dep.run(until=2.0)

        assert metrics.value("pipeline_rounds", **labels) - rounds_before == 1
        assert metrics.value("pipeline_coalesced", **labels) >= 3
        # per-device apply counters: exactly one apply for win, none double
        deltas = {
            device: value - applies_before.get(device, 0)
            for device, value in applies_by_device().items()
        }
        assert deltas["win"] == 1
        assert all(delta <= 1 for delta in deltas.values())
        # the coalesced round observed its (single-device) batch
        batch = metrics.series("pipeline_batch_size")[0]
        assert batch.count >= 1 and batch.max >= 1


class TestRegistryBackedSummary:
    def test_summarize_matches_component_counters(self):
        dep, cams = _cross_device_deployment()
        dep.secure(
            "cam0",
            build_recommended_posture("password_proxy", "cam0", new_password="S3c!"),
        )
        _brute_force(dep, "cam0", n=3)
        dep.run(until=30.0)
        report = summarize(dep)
        assert report.alerts_by_kind.get("login-rejected", 0) >= 3
        assert report.packets_tunnelled == dep.cluster.tunnelled_in
        assert report.mbox_active == dep.manager.active_count()
        assert report.metrics["enabled"] is True
        assert "pipeline_rounds" in report.metrics["gauges"]

    def test_summarize_falls_back_when_observability_disabled(self):
        dep, cams = _cross_device_deployment(sim=Simulator(observe=False))
        dep.secure(
            "cam0",
            build_recommended_posture("password_proxy", "cam0", new_password="S3c!"),
        )
        _brute_force(dep, "cam0", n=3)
        dep.run(until=30.0)
        assert dep.sim.tracer.last_trace("win") is None  # tracing off too
        report = summarize(dep)
        # identical operator view, sourced from the component counters
        assert report.alerts_by_kind.get("login-rejected", 0) >= 3
        assert report.packets_tunnelled == dep.cluster.tunnelled_in
        assert report.mbox_active == dep.manager.active_count()
        assert report.metrics == {}

    def test_disabled_observability_identical_behaviour(self):
        """Instrumentation must never change simulation outcomes."""
        outcomes = []
        for sim in (Simulator(observe=True), Simulator(observe=False)):
            dep, cams = _cross_device_deployment(sim=sim)
            dep.secure(
                "cam0",
                build_recommended_posture("password_proxy", "cam0", new_password="S3c!"),
            )
            _brute_force(dep, "cam0", n=3)
            dep.run(until=30.0)
            outcomes.append(
                (
                    dep.sim.events_processed,
                    dep.controller.context_of("cam0"),
                    dep.orchestrator.posture_of("win").name,
                    dep.controller.pipeline.stats.rounds,
                )
            )
        assert outcomes[0] == outcomes[1]
