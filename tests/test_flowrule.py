"""Tests for flow matches, actions, and rules."""

import pytest

from repro.netsim.packet import Packet
from repro.sdn.flowrule import Action, FlowMatch, FlowRule


def pkt(**kw):
    defaults = dict(src="a", dst="b", protocol="tcp", sport=1, dport=80)
    defaults.update(kw)
    return Packet(**defaults)


class TestFlowMatch:
    def test_wildcard_matches_everything(self):
        assert FlowMatch().matches(pkt())

    def test_exact_fields(self):
        match = FlowMatch(src="a", dst="b", protocol="tcp", dport=80)
        assert match.matches(pkt())
        assert not match.matches(pkt(dst="c"))
        assert not match.matches(pkt(dport=81))
        assert not match.matches(pkt(protocol="udp"))

    def test_in_port(self):
        match = FlowMatch(in_port=3)
        assert match.matches(pkt(), in_port=3)
        assert not match.matches(pkt(), in_port=4)
        assert not match.matches(pkt(), in_port=None)

    def test_specificity(self):
        assert FlowMatch().specificity() == 0
        assert FlowMatch(src="a", dport=80).specificity() == 2

    def test_overlaps(self):
        assert FlowMatch(src="a").overlaps(FlowMatch(dst="b"))
        assert FlowMatch(src="a").overlaps(FlowMatch(src="a", dport=80))
        assert not FlowMatch(src="a").overlaps(FlowMatch(src="b"))

    def test_subsumes(self):
        general = FlowMatch(dst="b")
        specific = FlowMatch(src="a", dst="b", dport=80)
        assert general.subsumes(specific)
        assert not specific.subsumes(general)
        assert general.subsumes(general)


class TestAction:
    def test_factories(self):
        assert Action.forward(2).kind == "forward"
        assert Action.drop().kind == "drop"
        assert Action.controller().kind == "controller"
        tun = Action.tunnel("cam", 1)
        assert tun.target == "cam" and tun.port == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Action("bogus")
        with pytest.raises(ValueError):
            Action("forward")  # missing port
        with pytest.raises(ValueError):
            Action("tunnel", port=1)  # missing target


class TestFlowRule:
    def test_requires_actions(self):
        with pytest.raises(ValueError):
            FlowRule(match=FlowMatch(), actions=())

    def test_hit_counters(self):
        rule = FlowRule(match=FlowMatch(), actions=(Action.drop(),))
        rule.record_hit(pkt(size=100))
        rule.record_hit(pkt(size=50))
        assert rule.hits == 2 and rule.hit_bytes == 150

    def test_sort_key_priority_then_specificity_then_age(self):
        low = FlowRule(match=FlowMatch(), actions=(Action.drop(),), priority=10)
        high = FlowRule(match=FlowMatch(), actions=(Action.drop(),), priority=500)
        specific = FlowRule(
            match=FlowMatch(src="a", dst="b"), actions=(Action.drop(),), priority=10
        )
        ordered = sorted([low, high, specific], key=FlowRule.sort_key)
        assert ordered[0] is high
        assert ordered[1] is specific  # same priority, more specific wins
        assert ordered[2] is low
