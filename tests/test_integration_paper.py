"""End-to-end reproductions of the paper's Figures 3, 4 and 5 as tests.

Each test runs the "current world" arm and the "with IoTSec" arm and
asserts the qualitative outcome the paper's figures claim.  The benchmark
harness re-runs these scenarios with measurement; these tests pin the
*correctness* of the reproduction.
"""

import pytest

from repro.attacks.exploits import EXPLOITS
from repro.attacks.scenarios import fig3_break_in
from repro.core.deployment import SecuredDeployment
from repro.core.orchestrator import build_recommended_posture
from repro.devices import protocol
from repro.devices.library import (
    FIREALARM_BACKDOOR_PORT,
    WEMO_BACKDOOR_PORT,
    fire_alarm,
    smart_camera,
    smart_plug,
    window_actuator,
)
from repro.learning.repository import CrowdRepository
from repro.learning.signatures import backdoor_signature
from repro.policy.builder import PolicyBuilder
from repro.policy.context import SUSPICIOUS
from repro.policy.ifttt import Recipe
from repro.policy.posture import MboxSpec, Posture, block_commands


class TestFig4PasswordProxy:
    """Fig. 4: the camera ships admin/admin; the user cannot change it."""

    def build(self, protect):
        dep = SecuredDeployment.build()
        dep.add_device(smart_camera, "cam")
        attacker = dep.add_attacker()
        dep.finalize()
        if protect:
            dep.secure(
                "cam",
                build_recommended_posture(
                    "password_proxy", "cam", new_password="S3cure!gateway"
                ),
            )
        return dep, attacker

    def test_current_world_attacker_reads_images(self):
        dep, attacker = self.build(protect=False)
        result = EXPLOITS["default_credential_hijack"].launch(
            attacker, "cam", dep.sim, resource="image"
        )
        dep.run(until=30.0)
        assert result.succeeded
        assert attacker.loot_from("cam")
        assert dep.devices["cam"].login_log[-1][3] is True

    def test_iotsec_blocks_default_credentials(self):
        dep, attacker = self.build(protect=True)
        result = EXPLOITS["default_credential_hijack"].launch(
            attacker, "cam", dep.sim, resource="image"
        )
        dep.run(until=30.0)
        assert not result.succeeded
        assert attacker.loot_from("cam") == []
        # the attack never even reached the device
        assert dep.devices["cam"].login_log == []
        assert any(a.kind == "login-rejected" for a in dep.alerts("cam"))

    def test_administrator_retains_access_via_new_password(self):
        dep, __ = self.build(protect=True)
        admin = dep.add_attacker("admin_laptop", latency=0.001)
        replies = []
        admin.request(
            protocol.login("admin_laptop", "cam", "admin", "S3cure!gateway"),
            replies.append,
        )
        dep.run(until=10.0)
        assert len(replies) == 1 and protocol.is_ok(replies[0])

    def test_proxy_survives_brute_force(self):
        dep, attacker = self.build(protect=True)
        result = EXPLOITS["brute_force_login"].launch(attacker, "cam", dep.sim)
        dep.run(until=60.0)
        assert not result.succeeded


class TestFig5CrossDevicePolicy:
    """Fig. 5: 'ON' to the Wemo only while the camera sees a person."""

    def build(self, protect, occupied):
        dep = SecuredDeployment.build()
        dep.add_device(smart_camera, "cam")
        dep.add_device(smart_plug, "wemo", load={"hazard": 1.0})
        attacker = dep.add_attacker()
        dep.finalize()
        dep.env.discrete("occupancy").set("present" if occupied else "absent")
        if protect:
            dep.secure(
                "wemo",
                Posture.make(
                    "occupancy-gate",
                    MboxSpec.make(
                        "context_gate",
                        commands=["on"],
                        require={"env:occupancy": "present"},
                    ),
                ),
            )
        return dep, attacker

    def launch(self, dep, attacker, at=1.0):
        holder = {}
        dep.sim.schedule(
            at,
            lambda: holder.update(
                result=EXPLOITS["backdoor_command"].launch(
                    attacker,
                    "wemo",
                    dep.sim,
                    backdoor_port=WEMO_BACKDOOR_PORT,
                    command="on",
                )
            ),
        )
        return holder

    def test_current_world_remote_attacker_turns_oven_on(self):
        dep, attacker = self.build(protect=False, occupied=False)
        holder = self.launch(dep, attacker)
        dep.run(until=30.0)
        assert holder["result"].succeeded
        assert dep.devices["wemo"].state == "on"

    def test_iotsec_blocks_when_nobody_home(self):
        dep, attacker = self.build(protect=True, occupied=False)
        holder = self.launch(dep, attacker)
        dep.run(until=30.0)
        assert not holder["result"].succeeded
        assert dep.devices["wemo"].state == "off"
        assert any(a.kind == "context-gate-blocked" for a in dep.alerts("wemo"))

    def test_iotsec_allows_when_person_present(self):
        dep, attacker = self.build(protect=True, occupied=True)
        holder = self.launch(dep, attacker)
        dep.run(until=30.0)
        # the *policy* allows ON while occupied (the paper's exact rule);
        # the attack then only "succeeds" in doing something permitted.
        assert holder["result"].succeeded
        assert dep.devices["wemo"].state == "on"


def fig3_policy():
    return (
        PolicyBuilder()
        .device("fire_alarm")
        .device("window")
        .env("smoke", ("clear", "detected"))
        .env("occupancy", ("absent", "present"))
        .when("ctx:fire_alarm", SUSPICIOUS)
        .give("window", block_commands("open", name="block-open"), priority=200)
        .when("ctx:window", SUSPICIOUS)
        .give(
            "window",
            Posture.make(
                "robot-check",
                MboxSpec.make("source_filter", allowed_sources=["hub", "controller"]),
            ),
            priority=250,
        )
        .build()
    )


class TestFig3PolicyFsm:
    """Fig. 3: the two attack transitions and their posture responses."""

    def build(self, protect):
        dep = SecuredDeployment.build()
        dep.policy = fig3_policy()
        fa = dep.add_device(fire_alarm, "fire_alarm")
        win = dep.add_device(window_actuator, "window")
        attacker = dep.add_attacker()
        dep.finalize()
        dep.hub.add_recipe(Recipe("ventilate", "dev:fire_alarm", "alarm", "window", "open"))
        dep.hub.watch_devices(
            lambda name: dep.devices[name].state if name in dep.devices else None
        )
        if protect:
            repo = CrowdRepository(dep.sim)
            repo.publish(
                backdoor_signature(fa.sku, FIREALARM_BACKDOOR_PORT),
                reporter="another-site",
            )
            dep.attach_repository(repo)
            dep.enforce_baseline()
        campaign = fig3_break_in(
            attacker,
            dep.sim,
            fire_alarm="fire_alarm",
            window="window",
            window_is_open=lambda: win.state == "open",
        )
        campaign.launch(dep.sim, until=120.0)
        return dep, campaign, fa, win

    def test_current_world_both_transitions_breach(self):
        dep, campaign, fa, win = self.build(protect=False)
        dep.run(until=120.0)
        assert campaign.succeeded()
        assert fa.state == "alarm"
        assert campaign.stage_results() == {
            "firealarm_backdoor": True,
            "window_brute_force": True,
        }

    def test_iotsec_blocks_both_transitions(self):
        dep, campaign, fa, win = self.build(protect=True)
        dep.run(until=120.0)
        assert not campaign.succeeded()
        assert win.state == "closed"
        assert fa.state == "ok"  # backdoor command never reached it
        # context escalated and the cross-device posture engaged
        assert dep.controller.context_of("fire_alarm") == SUSPICIOUS
        posture = dep.orchestrator.posture_of("window")
        assert posture is not None and posture.name in ("block-open", "robot-check")
