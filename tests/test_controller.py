"""Tests for the IoTSec controller's policy loop."""

import pytest

from repro.core.deployment import SecuredDeployment
from repro.devices import protocol
from repro.devices.library import smart_camera, smart_plug, window_actuator
from repro.policy.builder import PolicyBuilder
from repro.policy.context import COMPROMISED, NORMAL, SUSPICIOUS
from repro.policy.posture import block_commands


@pytest.fixture
def dep():
    deployment = SecuredDeployment.build()
    deployment.add_device(smart_camera, "cam")
    deployment.add_device(smart_plug, "plug")
    deployment.add_attacker()
    deployment.finalize()
    return deployment


class TestContextEscalation:
    def test_contexts_start_normal(self, dep):
        assert dep.controller.context_of("cam") == NORMAL

    def test_set_context_never_silently_lowers(self, dep):
        ctrl = dep.controller
        ctrl.set_context("cam", COMPROMISED)
        ctrl.set_context("cam", SUSPICIOUS)  # lower severity: ignored
        assert ctrl.context_of("cam") == COMPROMISED
        ctrl.clear_context("cam")  # explicit admin reset works
        assert ctrl.context_of("cam") == NORMAL

    def test_threshold_escalation_via_alerts(self, dep):
        ctrl = dep.controller
        for i in range(4):
            ctrl._on_alert(
                {"device": "cam", "kind": "login-rejected", "detail": {}},
                sent_at=float(i),
            )
        # threshold is 3 within 60s -> suspicious after the 3rd
        assert ctrl.context_of("cam") == SUSPICIOUS

    def test_window_expiry(self, dep):
        ctrl = dep.controller
        ctrl._on_alert({"device": "cam", "kind": "login-rejected", "detail": {}}, 0.0)
        ctrl._on_alert({"device": "cam", "kind": "login-rejected", "detail": {}}, 100.0)
        ctrl._on_alert({"device": "cam", "kind": "login-rejected", "detail": {}}, 200.0)
        # never 3 within any 60s window
        assert ctrl.context_of("cam") == NORMAL

    def test_single_alert_rules(self, dep):
        ctrl = dep.controller
        ctrl._on_alert({"device": "plug", "kind": "signature-match", "detail": {}}, 0.0)
        assert ctrl.context_of("plug") == SUSPICIOUS


class TestPolicyLoop:
    def test_context_change_redeploys_posture(self, dep):
        ctrl = dep.controller
        initial = dep.orchestrator.posture_of("cam")
        assert initial is None or initial.is_permissive
        ctrl.set_context("cam", SUSPICIOUS)
        posture = dep.orchestrator.posture_of("cam")
        assert posture is not None and posture.name == "stateful_firewall"
        assert len(ctrl.reactions) >= 1
        assert ctrl.reactions[-1].device == "cam"

    def test_compromised_gets_quarantine(self, dep):
        dep.controller.set_context("cam", COMPROMISED)
        assert dep.orchestrator.posture_of("cam").name == "quarantine"

    def test_quarantine_actually_blocks(self, dep):
        dep.controller.set_context("cam", COMPROMISED)
        dep.run(until=0.2)
        attacker = dep.attackers["attacker"]
        replies = []
        attacker.request(
            protocol.login("attacker", "cam", "admin", "admin"), replies.append
        )
        dep.run(until=2.0)
        assert replies == []

    def test_reaction_latency_positive_and_small(self, dep):
        dep.controller.set_context("cam", SUSPICIOUS)
        record = dep.controller.reactions[-1]
        assert record.latency >= 0.0

    def test_unrelated_view_keys_ignored(self, dep):
        before = len(dep.controller.reactions)
        dep.controller.view.set("dev:cam", "recording")
        dep.controller.view.set("irrelevant:key", "x")
        assert len(dep.controller.reactions) == before


class TestTelemetryIngestion:
    def test_telemetry_updates_device_state_and_env(self, dep):
        ctrl = dep.controller
        ctrl._on_alert(
            {
                "device": "cam",
                "kind": "telemetry",
                "detail": {"state": "recording", "readings": {"person": "present"}},
            },
            0.0,
        )
        assert ctrl.view.get("dev:cam") == "recording"
        assert ctrl.view.get("env:occupancy") == "present"

    def test_environment_watch_feeds_view(self, dep):
        dep.env.discrete("occupancy").set("present")
        dep.run(until=1.0)
        assert dep.controller.view.get("env:occupancy") == "present"


class TestCustomPolicy:
    def test_cross_device_rule_fires(self):
        dep = SecuredDeployment.build()
        policy = (
            PolicyBuilder()
            .device("cam")
            .device("win")
            .env("occupancy", ("absent", "present"))
            .when("ctx:cam", SUSPICIOUS)
            .give("win", block_commands("open"))
            .build()
        )
        dep.policy = policy
        dep.add_device(smart_camera, "cam")
        dep.add_device(window_actuator, "win")
        dep.finalize()
        dep.controller.set_context("cam", SUSPICIOUS)
        assert dep.orchestrator.posture_of("win").name == "block-commands"

    def test_enforce_all_applies_current_state(self):
        dep = SecuredDeployment.build()
        dep.add_device(smart_camera, "cam")
        dep.finalize()
        dep.controller.view.set("ctx:cam", SUSPICIOUS)
        dep.controller.enforce_all()
        assert dep.orchestrator.posture_of("cam").name == "stateful_firewall"
