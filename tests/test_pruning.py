"""Tests for state-space pruning, including the soundness property."""

from repro.policy.builder import PolicyBuilder
from repro.policy.context import SUSPICIOUS, ctx
from repro.policy.posture import block_commands, quarantine
from repro.policy.pruning import (
    PrunedPolicy,
    analyze,
    collapse_classes,
    independence_groups,
    relevant_variables,
)


def two_group_policy(extra_devices=0):
    """Two independent clusters: (alarm, window) and (plug, oven);
    optionally extra unconstrained devices to inflate |S|."""
    builder = (
        PolicyBuilder()
        .device("alarm")
        .device("window")
        .device("plug")
        .device("oven")
        .env("smoke", ("clear", "detected"))
        .env("occupancy", ("absent", "present"))
        .when(ctx("alarm"), SUSPICIOUS)
        .give("window", block_commands("open"))
        .when("env:occupancy", "absent")
        .give("oven", block_commands("on"))
        .when(ctx("plug"), SUSPICIOUS)
        .give("plug", quarantine("plug"))
    )
    for i in range(extra_devices):
        builder.device(f"extra{i}")
    return builder.build()


def test_relevant_variables():
    policy = two_group_policy()
    assert relevant_variables(policy, "window") == {"ctx:alarm"}
    assert relevant_variables(policy, "oven") == {"env:occupancy"}
    assert relevant_variables(policy, "plug") == {"ctx:plug"}
    assert relevant_variables(policy, "alarm") == set()


def test_independence_groups_separate_clusters():
    policy = two_group_policy()
    groups = independence_groups(policy)
    by_member = {frozenset(g) for g in groups if len(g) > 1}
    assert frozenset({"ctx:alarm", "ctx:window"}) in by_member
    assert frozenset({"env:occupancy", "ctx:oven"}) in by_member
    # plug's rule references only its own context -> singleton group
    assert all("ctx:plug" not in g or len(g) == 1 for g in groups)


def test_pruned_policy_equals_brute_force_everywhere():
    policy = two_group_policy()
    pruned = PrunedPolicy(policy)
    for state in policy.enumerate_states():
        for device in policy.devices:
            assert pruned.posture_for(state, device) == policy.posture_for(
                state, device
            ), (state, device)


def test_projection_sizes_tiny_versus_naive():
    policy = two_group_policy(extra_devices=6)
    report = analyze(policy)
    # naive: 3^10 devices x 2 x 2 env
    assert report.naive_states == 3**10 * 4
    assert report.projected_entries <= 3  # one non-default entry per ruled device
    assert report.reduction_factor > 10_000


def test_collapse_classes_counts_distinct_assignments():
    policy = two_group_policy()
    classes = collapse_classes(policy)
    # 3 independent binary posture decisions -> at most 2^3 = 8 classes
    assert classes is not None
    assert 2 <= classes <= 8


def test_collapse_respects_limit():
    policy = two_group_policy(extra_devices=10)
    assert collapse_classes(policy, enumerate_limit=1000) is None


def test_report_fields():
    policy = two_group_policy()
    report = analyze(policy)
    assert report.devices == 4
    assert report.variables == 6
    assert report.independence_group_count >= 2
    assert report.per_device["window"] == 1
    assert report.per_device["alarm"] == 0


def test_unruled_device_always_default():
    policy = two_group_policy()
    pruned = PrunedPolicy(policy)
    state = next(policy.enumerate_states())
    assert pruned.posture_for(state, "alarm") is policy.default_posture
    assert pruned.posture_for(state, "not-a-device") is policy.default_posture
