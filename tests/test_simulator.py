"""Unit tests for the discrete-event engine."""

import pytest

from repro.netsim.simulator import Simulator


def test_time_starts_at_zero(sim):
    assert sim.now == 0.0


def test_schedule_and_run_advances_time(sim):
    fired = []
    sim.schedule(1.5, fired.append, "a")
    sim.run()
    assert fired == ["a"]
    assert sim.now == 1.5


def test_events_fire_in_time_order(sim):
    order = []
    sim.schedule(3.0, order.append, 3)
    sim.schedule(1.0, order.append, 1)
    sim.schedule(2.0, order.append, 2)
    sim.run()
    assert order == [1, 2, 3]


def test_simultaneous_events_fire_in_schedule_order(sim):
    order = []
    for i in range(10):
        sim.schedule(1.0, order.append, i)
    sim.run()
    assert order == list(range(10))


def test_negative_delay_rejected(sim):
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_absolute_time(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    fired = []
    sim.schedule_at(5.0, fired.append, "x")
    sim.run()
    assert sim.now == 5.0 and fired == ["x"]


def test_cancelled_event_does_not_fire(sim):
    fired = []
    event = sim.schedule(1.0, fired.append, "no")
    event.cancel()
    sim.run()
    assert fired == []


def test_run_until_stops_at_boundary(sim):
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(5.0, fired.append, 5)
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0
    sim.run()
    assert fired == [1, 5]


def test_event_at_exact_until_boundary_fires(sim):
    fired = []
    sim.schedule(2.0, fired.append, "edge")
    sim.run(until=2.0)
    assert fired == ["edge"]


def test_max_events_budget(sim):
    count = []

    def recurse():
        count.append(1)
        sim.schedule(0.1, recurse)

    sim.schedule(0.0, recurse)
    sim.run(max_events=25)
    assert len(count) == 25


def test_events_scheduled_during_execution_run(sim):
    order = []

    def outer():
        order.append("outer")
        sim.schedule(0.5, order.append, "inner")

    sim.schedule(1.0, outer)
    sim.run()
    assert order == ["outer", "inner"]
    assert sim.now == 1.5


def test_call_now_runs_after_current_event(sim):
    order = []

    def first():
        sim.call_now(order.append, "second")
        order.append("first")

    sim.schedule(1.0, first)
    sim.run()
    assert order == ["first", "second"]


def test_every_periodic_and_stop(sim):
    ticks = []
    stop = sim.every(1.0, lambda: ticks.append(sim.now))
    sim.run(until=3.5)
    assert ticks == [1.0, 2.0, 3.0]
    stop()
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0, 3.0]


def test_every_until_bound(sim):
    ticks = []
    sim.every(1.0, lambda: ticks.append(sim.now), until=3.0)
    sim.run()
    assert ticks == [1.0, 2.0, 3.0]


def test_every_rejects_nonpositive_period(sim):
    with pytest.raises(ValueError):
        sim.every(0.0, lambda: None)


def test_events_pending_and_processed(sim):
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.events_pending() == 2
    sim.run()
    assert sim.events_pending() == 0
    assert sim.events_processed == 2


def test_independent_simulators_do_not_interfere():
    a, b = Simulator(), Simulator()
    a.schedule(1.0, lambda: None)
    a.run()
    assert b.now == 0.0 and b.events_processed == 0


# ----------------------------------------------------------------------
# Time-semantics regressions (resilience PR)
# ----------------------------------------------------------------------
def test_schedule_at_clamps_float_drift(sim):
    """Rescheduling at a time computed from accumulated periods must not
    raise when float arithmetic lands an ulp before ``now``."""
    period = 0.1
    when = sum([period] * 10)  # 0.9999999999999999 < 1.0
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert when < sim.now  # the premise: accumulated float error
    fired = []
    sim.schedule_at(when, fired.append, "x")
    sim.run()
    assert fired == ["x"]
    assert sim.now == 1.0  # clamped to "this instant", not time travel


def test_schedule_at_rejects_genuinely_past_times(sim):
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(4.0, lambda: None)


def test_every_does_not_accumulate_dead_events(sim):
    """A long-running periodic task keeps exactly one live event pending."""
    stop = sim.every(1.0, lambda: None)
    sim.run(until=500.0)
    assert sim.events_pending() <= 1
    assert len(sim._heap) <= 1
    stop()
    sim.run()
    assert sim.events_pending() == 0


def test_run_until_advances_now_on_empty_heap(sim):
    sim.run(until=7.5)
    assert sim.now == 7.5
    # and the semantics are uniform: a second window continues from there
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_until_never_rewinds(sim):
    sim.schedule(5.0, lambda: None)
    sim.run()
    sim.run(until=2.0)  # window entirely in the past: no-op
    assert sim.now == 5.0


def test_run_drains_cancelled_heads_on_early_return(sim):
    """Cancelled garbage past the ``until`` boundary must not linger."""
    events = [sim.schedule(10.0, lambda: None) for __ in range(50)]
    for event in events:
        event.cancel()
    keeper = sim.schedule(20.0, lambda: None)
    sim.run(until=5.0)
    assert sim.now == 5.0
    assert len(sim._heap) == 1  # only the live far-future event remains
    keeper.cancel()
    sim.run()
    assert len(sim._heap) == 0
