"""Failure-injection tests: the system under partial failure.

A defence that only works on the happy path is not a defence.  These
tests break links, channels, and capacity mid-scenario and check the
system degrades the way it promises to (fail-closed where it matters).
"""

import pytest

from repro.core.deployment import SecuredDeployment
from repro.core.orchestrator import build_recommended_posture
from repro.devices import protocol
from repro.devices.library import smart_camera, smart_plug
from repro.mboxes.base import Verdict
from repro.policy.posture import block_commands


def find_link(dep, a, b):
    for link in dep.topology.links:
        names = {link.a.name, link.b.name}
        if names == {a, b}:
            return link
    raise AssertionError(f"no link {a}<->{b}")


class TestClusterLinkFailure:
    def test_tunnelled_device_fails_closed_when_cluster_unreachable(self):
        """With the cluster link down, tunnelled traffic is lost -- the
        device becomes unreachable rather than unprotected."""
        dep = SecuredDeployment.build()
        dep.add_device(smart_plug, "plug")
        attacker = dep.add_attacker()
        dep.finalize()
        dep.secure("plug", block_commands("on"))
        dep.run(until=0.5)
        find_link(dep, "edge", "cluster").fail()
        attacker.fire_and_forget(protocol.command("attacker", "plug", "on", dport=8080))
        dep.run(until=5.0)
        assert dep.devices["plug"].state == "off"  # attack never landed
        assert dep.cluster.tunnelled_in == 0

    def test_restored_link_resumes_protection(self):
        dep = SecuredDeployment.build()
        dep.add_device(smart_plug, "plug")
        attacker = dep.add_attacker()
        dep.finalize()
        dep.secure("plug", block_commands("on"))
        dep.run(until=0.5)
        link = find_link(dep, "edge", "cluster")
        link.fail()
        dep.run(until=1.0)
        link.restore()
        attacker.fire_and_forget(protocol.command("attacker", "plug", "off", dport=8080))
        dep.run(until=5.0)
        # benign-looking command traverses the restored tunnel
        assert dep.cluster.tunnelled_in >= 1


class TestControlChannelOutage:
    def test_alerts_lost_but_data_plane_still_blocks(self):
        """If the controller is unreachable, alerts go undelivered -- but
        the µmbox keeps enforcing its last posture."""
        dep = SecuredDeployment.build()
        dep.add_device(smart_plug, "plug")
        attacker = dep.add_attacker()
        dep.finalize()
        dep.secure("plug", block_commands("on"))
        dep.run(until=0.5)
        dep.channel.unregister(dep.CONTROLLER)  # controller "crashes"
        attacker.fire_and_forget(protocol.command("attacker", "plug", "on", dport=8080))
        dep.run(until=5.0)
        assert dep.devices["plug"].state == "off"
        assert dep.channel.undeliverable >= 1
        assert dep.controller.bus.events(kind="alert") == []


class TestCapacityExhaustion:
    def test_manager_capacity_raises_not_silently_unprotected(self):
        dep = SecuredDeployment.build()
        for i in range(3):
            dep.add_device(smart_plug, f"plug{i}")
        dep.finalize()
        dep.manager.capacity = 2
        dep.secure("plug0", block_commands("on"))
        dep.secure("plug1", block_commands("on"))
        with pytest.raises(RuntimeError):
            dep.secure("plug2", block_commands("on"))


class TestDeviceLinkFailure:
    def test_device_loss_does_not_wedge_the_controller(self):
        dep = SecuredDeployment.build()
        dep.add_device(smart_camera, "cam")
        dep.add_device(smart_plug, "plug")
        attacker = dep.add_attacker()
        dep.finalize()
        dep.secure("plug", block_commands("on"))
        dep.run(until=0.5)
        find_link(dep, "edge", "cam").fail()
        # traffic to the dead device goes nowhere; other devices unaffected
        attacker.fire_and_forget(protocol.login("attacker", "cam", "admin", "admin"))
        attacker.fire_and_forget(protocol.command("attacker", "plug", "on", dport=8080))
        dep.run(until=5.0)
        assert dep.devices["cam"].login_log == []
        assert dep.devices["plug"].state == "off"


class TestMboxHostFailClosed:
    def test_unbound_fail_closed_cluster_drops_everything(self, sim):
        """An operator can run the cluster fail-closed: traffic for devices
        with no µmbox is dropped instead of passed."""
        dep = SecuredDeployment.build(sim=sim)
        dep.add_device(smart_plug, "plug")
        attacker = dep.add_attacker()
        dep.finalize()
        dep.cluster.default_verdict = Verdict.DROP
        # install tunnel rules but rip out the mbox binding
        dep.secure("plug", block_commands("on"))
        dep.run(until=0.5)
        dep.cluster.unbind("plug")
        attacker.fire_and_forget(protocol.command("attacker", "plug", "off", dport=8080))
        dep.run(until=5.0)
        assert dep.cluster.unbound_drops == 1
        assert dep.devices["plug"].command_log == []


class TestEnvironmentSensorLoss:
    def test_context_gate_fails_closed_without_occupancy_data(self):
        """If the view has no occupancy information (sensor dead), the
        Fig. 5 gate refuses rather than guesses."""
        dep = SecuredDeployment.build()
        dep.add_device(smart_plug, "wemo")
        attacker = dep.add_attacker()
        dep.finalize()
        from repro.policy.posture import MboxSpec, Posture

        dep.secure(
            "wemo",
            Posture.make(
                "gate",
                MboxSpec.make(
                    "context_gate", commands=["on"], require={"env:nonexistent": "x"}
                ),
            ),
        )
        dep.run(until=0.5)
        attacker.fire_and_forget(protocol.command("attacker", "wemo", "on", dport=8080))
        dep.run(until=5.0)
        assert dep.devices["wemo"].state == "off"
