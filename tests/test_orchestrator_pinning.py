"""Dedicated tests for administrative posture pinning."""

from repro.core.deployment import SecuredDeployment
from repro.devices.library import smart_camera
from repro.policy.context import COMPROMISED, SUSPICIOUS
from repro.policy.posture import block_commands


def make():
    dep = SecuredDeployment.build()
    dep.add_device(smart_camera, "cam")
    dep.finalize()
    return dep


def test_pinned_posture_survives_escalation():
    dep = make()
    dep.secure("cam", block_commands("stop", name="admin-choice"))  # pins
    dep.controller.set_context("cam", COMPROMISED)
    assert dep.orchestrator.posture_of("cam").name == "admin-choice"


def test_unpinned_posture_follows_policy():
    dep = make()
    dep.secure("cam", block_commands("stop", name="admin-choice"), pin=False)
    dep.controller.set_context("cam", COMPROMISED)
    assert dep.orchestrator.posture_of("cam").name == "quarantine"


def test_unpin_reenables_policy_control():
    dep = make()
    dep.secure("cam", block_commands("stop", name="admin-choice"))
    dep.controller.set_context("cam", SUSPICIOUS)
    assert dep.orchestrator.posture_of("cam").name == "admin-choice"
    dep.orchestrator.unpin("cam")
    # next context change re-engages the policy
    dep.controller.set_context("cam", COMPROMISED)
    assert dep.orchestrator.posture_of("cam").name == "quarantine"


def test_enforce_all_respects_pins():
    dep = make()
    dep.secure("cam", block_commands("stop", name="admin-choice"))
    dep.controller.view.set("ctx:cam", COMPROMISED)
    dep.controller.enforce_all()
    assert dep.orchestrator.posture_of("cam").name == "admin-choice"


def test_pin_without_posture_change_is_allowed():
    dep = make()
    dep.orchestrator.pin("cam")
    dep.controller.set_context("cam", COMPROMISED)
    assert dep.orchestrator.posture_of("cam") is None or \
        dep.orchestrator.posture_of("cam").is_permissive
