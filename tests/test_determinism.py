"""Whole-stack determinism: the same scenario twice is bit-identical.

Every experiment's credibility rests on this: no wall clock, no global
RNG, FIFO tie-breaking for simultaneous events.  We run a full deployment
scenario twice and compare event counts, device logs, alerts, and view
snapshots.
"""

from repro.attacks.exploits import EXPLOITS
from repro.core.deployment import SecuredDeployment
from repro.core.orchestrator import build_recommended_posture
from repro.devices.library import smart_camera, smart_plug, window_actuator


def run_scenario() -> dict:
    dep = SecuredDeployment.build()
    dep.add_device(smart_camera, "cam")
    dep.add_device(smart_plug, "plug", load={"heat_watts": 1500.0})
    dep.add_device(window_actuator, "window")
    attacker = dep.add_attacker()
    dep.finalize()
    dep.secure("cam", build_recommended_posture("password_proxy", "cam"))
    dep.enforce_baseline()
    EXPLOITS["default_credential_hijack"].launch(attacker, "cam", dep.sim)
    EXPLOITS["backdoor_command"].launch(
        attacker, "plug", dep.sim, backdoor_port=49153, command="on"
    )
    EXPLOITS["brute_force_login"].launch(attacker, "window", dep.sim, command="open")
    dep.run(until=120.0)
    return {
        "events": dep.sim.events_processed,
        "now": dep.sim.now,
        "alerts": [(a.at, a.device, a.kind) for a in dep.alerts()],
        "contexts": {
            name: dep.controller.context_of(name) for name in dep.devices
        },
        "command_logs": {
            name: [
                (r.at, r.src, r.cmd, r.accepted, r.via)
                for r in device.command_log
            ]
            for name, device in dep.devices.items()
        },
        "view": dep.controller.view.snapshot(),
        "reactions": [
            (r.device, r.trigger_key, r.trigger_at, r.applied_at, r.posture)
            for r in dep.controller.reactions
        ],
        "tunnelled": dep.cluster.tunnelled_in,
    }


def test_identical_runs_produce_identical_traces():
    first = run_scenario()
    second = run_scenario()
    assert first == second


def test_event_counts_nontrivial():
    result = run_scenario()
    assert result["events"] > 150       # the scenario actually did things
    assert result["alerts"]             # and the defence actually reacted
