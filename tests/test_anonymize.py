"""Tests for the privacy scrubber."""

from repro.learning.anonymize import (
    Anonymizer,
    leaks_identity,
    pseudonym,
)
from repro.learning.signatures import AttackSignature, SignatureMatch


def make_signature(**match_kwargs):
    return AttackSignature(
        sku="dlink:cam:1.0",
        flaw_class="exposed-credentials",
        match=SignatureMatch.make(**match_kwargs),
        reporter="acme-corp-network-ops",
    )


def test_pseudonym_stable_per_salt():
    assert pseudonym("alice", "s1") == pseudonym("alice", "s1")
    assert pseudonym("alice", "s1") != pseudonym("alice", "s2")
    assert pseudonym("alice", "s1") != pseudonym("bob", "s1")
    assert pseudonym("alice", "s1").startswith("anon-")


def test_reporter_pseudonymized():
    scrubbed = Anonymizer().scrub(make_signature())
    assert scrubbed.reporter != "acme-corp-network-ops"
    assert scrubbed.reporter.startswith("anon-")


def test_vendor_default_credentials_survive():
    signature = make_signature(
        protocol="http",
        dport=80,
        payload_contains={"action": "login", "username": "admin", "password": "admin"},
    )
    scrubbed = Anonymizer().scrub(signature)
    contains = dict(scrubbed.match.payload_contains)
    assert contains.get("username") == "admin"
    assert contains.get("password") == "admin"


def test_user_chosen_secret_generalized_to_presence():
    signature = make_signature(
        protocol="http",
        dport=80,
        payload_contains={
            "action": "login",
            "username": "admin",
            "password": "alices-real-secret",
        },
    )
    scrubbed = Anonymizer().scrub(signature)
    contains = dict(scrubbed.match.payload_contains)
    assert "password" not in contains  # the literal never leaves the site
    assert "password" in scrubbed.match.payload_keys  # but presence is kept


def test_sensitive_keys_dropped():
    signature = make_signature(
        payload_contains={"session": "token-123", "action": "get"}
    )
    scrubbed = Anonymizer().scrub(signature)
    contains = dict(scrubbed.match.payload_contains)
    assert "session" not in contains
    assert contains.get("action") == "get"


def test_leaks_identity_audit():
    raw = make_signature(
        payload_contains={"password": "private-value"}
    )
    assert leaks_identity(raw, {"acme-corp-network-ops"})
    scrubbed = Anonymizer().scrub(raw)
    assert not leaks_identity(scrubbed, {"acme-corp-network-ops"})


def test_scrub_trace():
    anon = Anonymizer()
    trace = ["cam", "edge", "internet", "attacker"]
    out = anon.scrub_trace(trace, site_nodes={"cam", "edge"})
    assert out == ["site-node", "site-node", "internet", "attacker"]


def test_scrub_preserves_detection_power():
    """The scrubbed signature must still match the attack it describes."""
    from repro.netsim.packet import Packet

    signature = make_signature(
        protocol="http",
        dport=80,
        payload_contains={"action": "login", "username": "admin", "password": "admin"},
    )
    scrubbed = Anonymizer().scrub(signature)
    attack = Packet(
        src="attacker",
        dst="cam",
        protocol="http",
        dport=80,
        payload={"action": "login", "username": "admin", "password": "admin"},
    )
    assert scrubbed.match.matches(attack)
