"""Tests for the metrics module and the CLI."""

import json

import pytest

from repro.cli import main
from repro.core.deployment import SecuredDeployment
from repro.core.metrics import summarize
from repro.core.orchestrator import build_recommended_posture
from repro.devices import protocol
from repro.devices.library import smart_camera, smart_plug
from repro.policy.context import SUSPICIOUS


class TestMetrics:
    def make_dep(self):
        dep = SecuredDeployment.build()
        dep.add_device(smart_camera, "cam")
        dep.add_device(smart_plug, "plug")
        dep.add_attacker()
        dep.finalize()
        return dep

    def test_summarize_empty_deployment(self):
        dep = self.make_dep()
        report = summarize(dep)
        assert len(report.devices) == 2
        assert report.compromised_devices() == []
        assert report.alerts_by_kind == {}
        assert report.mbox_active == 0

    def test_summarize_after_attack_and_enforcement(self):
        dep = self.make_dep()
        dep.secure(
            "cam",
            build_recommended_posture("password_proxy", "cam", new_password="S3c!"),
        )
        attacker = dep.attackers["attacker"]
        attacker.fire_and_forget(protocol.login("attacker", "cam", "admin", "admin"))
        dep.run(until=5.0)
        report = summarize(dep)
        assert report.alerts_by_kind.get("login-rejected") == 1
        cam = next(d for d in report.devices if d.name == "cam")
        assert cam.posture == "password_proxy"
        assert cam.alerts == 1
        assert "exposed-credentials" in cam.flaws
        assert report.mbox_active == 1
        assert report.packets_tunnelled >= 1

    def test_summarize_context_and_reactions(self):
        dep = self.make_dep()
        dep.controller.set_context("cam", SUSPICIOUS)
        dep.run(until=1.0)
        report = summarize(dep)
        assert "cam" in report.devices_not_normal()
        assert report.reaction_p50_ms is not None

    def test_render_and_as_dict(self):
        dep = self.make_dep()
        dep.controller.set_context("plug", SUSPICIOUS)
        report = summarize(dep)
        text = report.render()
        assert "cam" in text and "plug" in text and "suspicious" in text
        data = report.as_dict()
        assert data["mbox"]["active"] == report.mbox_active
        assert len(data["devices"]) == 2

    def test_as_dict_json_round_trips(self):
        """Every value must be plain-serializable -- no tuples, no vars()
        leakage of non-JSON types."""
        dep = self.make_dep()
        dep.secure(
            "cam",
            build_recommended_posture("password_proxy", "cam", new_password="S3c!"),
        )
        attacker = dep.attackers["attacker"]
        attacker.fire_and_forget(protocol.login("attacker", "cam", "admin", "admin"))
        dep.run(until=5.0)
        data = summarize(dep).as_dict()
        round_tripped = json.loads(json.dumps(data))
        assert round_tripped == data
        cam = next(d for d in round_tripped["devices"] if d["name"] == "cam")
        assert isinstance(cam["flaws"], list) and "exposed-credentials" in cam["flaws"]
        assert round_tripped["metrics"]["enabled"] is True
        assert round_tripped["packets_dropped_unbound"] == 0

    def test_report_embeds_journal_and_incidents(self):
        dep = self.make_dep()
        dep.secure(
            "cam",
            build_recommended_posture("password_proxy", "cam", new_password="S3c!"),
        )
        attacker = dep.attackers["attacker"]
        for i in range(3):
            dep.sim.schedule(
                1.0 + 0.2 * i,
                attacker.fire_and_forget,
                protocol.login("attacker", "cam", "admin", "wrong"),
            )
        dep.run(until=30.0)
        report = summarize(dep)
        assert report.journal["recorded"] > 0
        assert report.journal["kinds"].get("alert", 0) >= 3
        assert len(report.journal["tail"]) <= 20
        # cam escalated, so it gets an embedded incident digest.
        assert "cam" in report.incidents
        digest = report.incidents["cam"]
        assert digest["alerts_by_kind"].get("login-rejected", 0) >= 3
        assert "detect" in digest["stages"]
        data = report.as_dict()
        assert json.loads(json.dumps(data)) == data

    def test_report_without_observability_has_empty_forensics(self):
        from repro.netsim.simulator import Simulator

        dep = SecuredDeployment.build(sim=Simulator(observe=False))
        dep.add_device(smart_camera, "cam")
        dep.finalize()
        report = summarize(dep)
        assert report.journal == {} and report.incidents == {}

    def test_ground_truth_compromise_visible(self):
        dep = self.make_dep()
        attacker = dep.attackers["attacker"]
        attacker.fire_and_forget(
            protocol.command("attacker", "plug", "on", dport=8080)
        )
        dep.run(until=5.0)
        report = summarize(dep)
        assert report.compromised_devices() == ["plug"]


class TestCli:
    def test_demo_fig4(self, capsys):
        assert main(["demo", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "current world" in out and "IoTSec" in out
        assert "hijack=True" in out and "hijack=False" in out

    def test_demo_fig5(self, capsys):
        assert main(["demo", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "oven=on" in out and "oven=off" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Belkin Wemo" in out

    def test_model_audit(self, capsys):
        assert main(["model-audit"]) == 0
        out = capsys.readouterr().out
        assert "ATTACKER" in out
        assert "hardening plan" in out

    def test_report(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "Deployment report" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestObservabilityCli:
    def test_metrics_prometheus_text(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE mbox_alerts counter" in out
        assert "# TYPE pipeline_rounds gauge" in out
        assert "sim_events_processed" in out

    def test_metrics_json(self, capsys):
        assert main(["metrics", "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["enabled"] is True
        assert "mbox_alerts" in snap["counters"]
        assert "pipeline_reaction_latency" in snap["histograms"]

    def test_trace_text(self, capsys):
        assert main(["trace", "cam"]) == 0
        out = capsys.readouterr().out
        assert "trace #" in out
        assert "detect" in out and "ingest-alert" in out

    def test_trace_json(self, capsys):
        assert main(["trace", "cam", "--json"]) == 0
        traces = json.loads(capsys.readouterr().out)
        assert traces and all(isinstance(t, list) for t in traces)
        stages = {span["stage"] for t in traces for span in t}
        assert "detect" in stages

    def test_trace_unknown_device_fails_cleanly(self, capsys):
        assert main(["trace", "no-such-device"]) == 1
        out = capsys.readouterr().out
        assert "error: unknown device 'no-such-device'" in out
        assert "known:" in out  # the message names the valid devices

    def test_trace_json_unknown_device_fails_cleanly(self, capsys):
        assert main(["trace", "no-such-device", "--json"]) == 1
        assert "unknown device" in capsys.readouterr().out

    def test_metrics_empty_registry_fails_cleanly(self, capsys, monkeypatch):
        import repro.cli as cli
        from repro.netsim.simulator import Simulator

        def unobserved_home():
            dep = SecuredDeployment.build(sim=Simulator(observe=False))
            dep.add_device(smart_camera, "cam")
            dep.finalize()
            return dep

        monkeypatch.setattr(cli, "_attacked_home", unobserved_home)
        assert main(["metrics"]) == 1
        assert "metrics registry is empty" in capsys.readouterr().out

    def test_audit_journal_text(self, capsys):
        assert main(["audit"]) == 0
        out = capsys.readouterr().out
        assert "audit journal:" in out and "recorded" in out
        # The canned attack leaves security evidence on the record.
        assert "alert" in out and "posture" in out

    def test_audit_kind_filter(self, capsys):
        assert main(["audit", "--kind", "posture"]) == 0
        out = capsys.readouterr().out
        body = [ln for ln in out.splitlines() if ln.startswith("  #")]
        assert body and all(" posture" in ln for ln in body)

    def test_audit_json(self, capsys):
        assert main(["audit", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert entries and {"seq", "at", "kind", "fields"} <= set(entries[0])
        kinds = {e["kind"] for e in entries}
        assert "alert" in kinds and "attack-step" in kinds

    def test_incident_text(self, capsys):
        assert main(["incident", "cam"]) == 0
        out = capsys.readouterr().out
        assert "incident report: cam" in out
        assert "timeline" in out and "detect" in out

    def test_incident_json(self, capsys):
        assert main(["incident", "cam", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["device"] == "cam"
        assert data["timeline"] and data["chains"]
        stages = {s["stage"] for c in data["chains"] for s in c["stages"]}
        assert "detect" in stages and "ingest-alert" in stages

    def test_incident_unknown_device_fails_cleanly(self, capsys):
        assert main(["incident", "no-such-device"]) == 1
        assert "unknown device" in capsys.readouterr().out


def test_cli_policy_export(capsys):
    from repro.policy.serialization import loads

    assert main(["policy"]) == 0
    out = capsys.readouterr().out
    policy = loads(out)
    assert set(policy.devices) == {"cam", "plug"}


def test_cli_fleet(capsys):
    assert main(["fleet", "--sites", "3"]) == 0
    out = capsys.readouterr().out
    assert "site 0" in out and "COMPROMISED" in out
    assert out.count("safe (signature blocked it)") == 2
    assert "fleet losses: 1/3" in out


def test_cli_demo_fig3(capsys):
    assert main(["demo", "fig3"]) == 0
    out = capsys.readouterr().out
    assert "breached=True" in out and "breached=False" in out


def test_cli_demo_thermal(capsys):
    assert main(["demo", "thermal"]) == 0
    out = capsys.readouterr().out
    assert "window=open" in out and "window=closed" in out


class TestFailoverCli:
    def test_failover_both_arms(self, capsys):
        assert main(["failover"]) == 0
        out = capsys.readouterr().out
        assert "crash" in out and "standby" in out
        assert "blind window" in out

    def test_failover_storm(self, capsys):
        assert main(["failover", "--storm"]) == 0
        out = capsys.readouterr().out
        assert "fifo" in out and "shed" in out
        assert "enforcing alerts kept" in out

    def test_failover_json(self, capsys):
        assert main(["failover", "--json"]) == 0
        arms = json.loads(capsys.readouterr().out)
        assert [a["arm"] for a in arms] == ["crash", "standby"]


class TestChaosPlanCli:
    def test_plan_controller_builtin(self, capsys):
        assert main(["chaos", "--plan", "controller"]) == 0
        assert "blind window" in capsys.readouterr().out

    def test_plan_from_file(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(
            json.dumps(
                {"events": [{"at": 2.0, "kind": "partition", "target": "*", "duration": 3.0}]}
            )
        )
        assert main(["chaos", "--plan", str(plan)]) == 0
        assert "exposure window" in capsys.readouterr().out

    def test_malformed_plan_exits_2_with_one_line(self, tmp_path, capsys):
        plan = tmp_path / "bad.json"
        plan.write_text(
            json.dumps({"events": [{"at": 1.0, "kind": "bogus", "target": "x"}]})
        )
        assert main(["chaos", "--plan", str(plan)]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.startswith("error:") and "bogus" in captured.err
        assert captured.err.count("\n") == 1

    def test_unreadable_plan_exits_2(self, tmp_path, capsys):
        assert main(["chaos", "--plan", str(tmp_path / "missing.json")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot read fault plan")

    def test_invalid_json_plan_exits_2(self, tmp_path, capsys):
        plan = tmp_path / "nota.json"
        plan.write_text("{not json")
        assert main(["chaos", "--plan", str(plan)]) == 2
        assert "not valid JSON" in capsys.readouterr().err
