"""Tests for the health plane (:mod:`repro.obs.health`).

Covers the per-subsystem state machine (SLO severities + probes,
worst-of rollup, journaled transitions), the standard catalog's
conditional registration on a deployment, the named chaos scenarios'
deterministic breach->recover chains, and the incident-reconstruction
interleaving of SLO breaches, DLQ quarantines and stream replays on one
device timeline.
"""

import pytest

from repro.core.deployment import SecuredDeployment
from repro.core.metrics import summarize
from repro.faults.scenario import run_health_scenario
from repro.netsim.simulator import Simulator
from repro.obs.health import (
    HEALTH_CRITICAL,
    HEALTH_DEGRADED,
    HEALTH_OK,
    HealthPlane,
    attach_health_plane,
)
from repro.obs.incident import reconstruct
from repro.obs.slo import SLO


def check_slo(name="probe-me", subsystem="pipeline", ok=lambda: True, **over):
    base = dict(
        name=name,
        subsystem=subsystem,
        objective="stay ok",
        target=0.5,
        fast_window=2.0,
        slow_window=4.0,
        fast_burn=1.0,
        slow_burn=1.0,
        check=ok,
    )
    base.update(over)
    return SLO(**base)


class TestHealthMonitor:
    def test_probe_drives_state_and_journals_transitions(self):
        sim = Simulator()
        plane = HealthPlane(sim, period=1.0)
        health = plane.health
        mood = {"bad": False}
        health.register("pipeline")
        health.probe(
            "streams",
            lambda: (HEALTH_DEGRADED, "lagging") if mood["bad"] else None,
        )
        plane.start()
        sim.schedule_at(3.0, lambda: mood.update(bad=True))
        sim.schedule_at(6.0, lambda: mood.update(bad=False))
        sim.run(until=10.0)

        assert health.state_of("streams") == HEALTH_OK
        assert health.rollup() == HEALTH_OK
        transitions = [
            (e.fields["subsystem"], e.fields["from_state"], e.fields["to_state"])
            for e in sim.journal.entries(kind="health")
        ]
        assert ("streams", "ok", "degraded") in transitions
        assert ("streams", "degraded", "ok") in transitions
        assert ("deployment", "ok", "degraded") in transitions
        assert ("deployment", "degraded", "ok") in transitions
        assert health.transitions == 4
        degraded = [
            e
            for e in sim.journal.entries(kind="health")
            if e.fields["to_state"] == "degraded"
            and e.fields["subsystem"] == "streams"
        ]
        assert degraded[0].fields["reasons"] == ["lagging"]

    def test_rollup_is_worst_of_subsystems(self):
        sim = Simulator()
        plane = HealthPlane(sim, period=1.0)
        health = plane.health
        health.probe("streams", lambda: (HEALTH_DEGRADED, "lagging"))
        health.probe("ha", lambda: (HEALTH_CRITICAL, "no controller"))
        health.register("pipeline")
        assert health.state_of("streams") == HEALTH_DEGRADED
        assert health.state_of("ha") == HEALTH_CRITICAL
        assert health.state_of("pipeline") == HEALTH_OK
        assert health.rollup() == HEALTH_CRITICAL
        snap = plane.snapshot()
        assert snap["rollup"] == "critical"
        assert snap["subsystems"]["ha"]["reasons"] == ["no controller"]

    def test_breached_slo_severity_feeds_subsystem_state(self):
        sim = Simulator()
        plane = HealthPlane(sim, period=1.0)
        tracker = plane.slos.add(
            check_slo(subsystem="overload", severity="critical", ok=lambda: False)
        )
        plane.health.register("overload")
        plane.start()
        sim.run(until=6.0)
        assert tracker.state == "breach"
        assert plane.health.state_of("overload") == HEALTH_CRITICAL
        assert plane.health.reasons_of("overload") == ["slo:probe-me"]
        assert sim.metrics.value("health_state", subsystem="overload") == 2
        assert sim.metrics.value("health_rollup") == 2

    def test_disabled_monitor_registers_and_schedules_nothing(self):
        sim = Simulator(observe=False)
        plane = HealthPlane(sim)
        plane.health.register("pipeline")
        plane.health.probe("pipeline", lambda: (HEALTH_CRITICAL, "boom"))
        plane.start()
        sim.run(until=60.0)
        assert plane.enabled is False
        assert sim.events_processed == 0
        assert plane.snapshot() == {"enabled": False}
        assert plane.render() == "health plane disabled (observe=False)"


def build_home(sim=None, **over):
    dep = SecuredDeployment.build(sim=sim or Simulator(), health=True, **over)
    from repro.devices.library import smart_camera

    dep.add_device(smart_camera, "cam")
    dep.finalize()
    return dep


class TestDeploymentPlane:
    def test_catalog_registers_only_backed_slos(self):
        dep = build_home()
        names = {t.slo.name for t in dep.health_plane.slos.trackers}
        assert {
            "time-to-enforcement",
            "control-reachability",
            "control-delivery",
            "failover-blind-window",
        } <= names
        assert "telemetry-freshness" not in names  # no durable stream
        assert "checkpoint-staleness" not in names  # no checkpointer

        rich = build_home(durable_telemetry=True, checkpointing=True)
        rich_names = {t.slo.name for t in rich.health_plane.slos.trackers}
        assert {
            "telemetry-freshness",
            "stream-headroom",
            "checkpoint-staleness",
        } <= rich_names

    def test_fresh_deployment_rolls_up_ok(self):
        dep = build_home()
        dep.run(until=30.0)
        plane = dep.health_plane
        assert plane.enabled
        snap = plane.snapshot()
        assert snap["rollup"] == "ok"
        assert snap["slo_breaches"] == 0
        assert plane.slos.ticks > 0
        rendered = plane.render()
        assert "deployment: OK" in rendered
        assert "control-reachability" in rendered

    def test_report_embeds_health_verdict(self):
        dep = build_home()
        dep.run(until=10.0)
        report = summarize(dep)
        assert report.health["rollup"] == "ok"
        assert "health: OK" in report.render()
        assert report.as_dict()["health"]["slo_breaches"] == 0

    def test_observe_false_plane_is_inert(self):
        sim = Simulator(observe=False)
        dep = build_home(sim=sim)
        events_before = sim.events_processed
        dep.run(until=60.0)
        plane = dep.health_plane
        assert plane is not None and plane.enabled is False
        assert plane.slos.trackers == []
        assert plane.snapshot() == {"enabled": False}
        # No health timer: the only events are the deployment's own.
        assert dep.sim.journal.recorded == 0
        assert summarize(dep).health == {}


class TestHealthScenarios:
    def test_unknown_plan_rejected(self):
        with pytest.raises(ValueError, match="unknown health plan"):
            run_health_scenario("meteor-strike")

    def test_standard_seeded_run_is_all_green(self):
        out = run_health_scenario("none")
        assert out["enabled"] is True
        assert out["rollup"] == "ok"
        assert out["slo_breaches"] == 0
        assert all(state == "ok" for state in out["subsystems"].values())

    def test_controller_crash_breaches_blind_window_and_recovers(self):
        out = run_health_scenario("controller")
        assert out["slo_breaches"] >= 1
        assert out["matched_recoveries"] >= 1
        slos = {e["slo"] for e in out["breach_events"]}
        assert "failover-blind-window" in slos
        blind = next(
            e for e in out["breach_events"] if e["slo"] == "failover-blind-window"
        )
        assert blind["severity"] == "critical"
        assert blind["trace"] is not None
        # The standby took over, so the run ends healthy again.
        assert out["rollup"] == "ok"
        assert out["health_transitions"] >= 2

    def test_scenarios_are_deterministic(self):
        a = run_health_scenario("controller")
        b = run_health_scenario("controller")
        a_events = [(e["at"], e["slo"]) for e in a["breach_events"]]
        b_events = [(e["at"], e["slo"]) for e in b["breach_events"]]
        assert a_events == b_events
        assert a["events"] == b["events"]


class TestIncidentInterleaving:
    def test_breach_quarantine_and_replay_share_one_device_timeline(self):
        # One long-partition run in which the camera's timeline must
        # interleave all three planes: a DLQ quarantine (poison record
        # at t=30), the partition's SLO breach (t~60), and the
        # post-heal stream replay of a record buffered mid-outage.
        poison = {
            "device": "cam",
            "kind": "x" * 65,  # fails validate_record -> bad-kind
            "mbox": "m1",
            "detail": {},
            "trace": None,
        }
        buffered = {
            "device": "cam",
            "kind": "port-scan",
            "mbox": "m1",
            "detail": {},
            "trace": None,
        }

        def setup(dep):
            dep.sim.schedule_at(
                30.0, lambda: dep.host_stream.offer("port-scan", poison)
            )
            dep.sim.schedule_at(
                100.0, lambda: dep.host_stream.offer("port-scan", buffered)
            )

        out = run_health_scenario("long-partition", keep_dep=True, setup=setup)
        dep = out["dep"]
        assert out["slo_breaches"] >= 1 and out["matched_recoveries"] >= 1

        incident = reconstruct(
            dep.sim, "cam", dlq=dep.controller.dlq, site_events=True
        )
        kinds = {e["kind"] for e in incident.timeline}
        assert {"slo-breach", "slo-recover", "dlq-quarantine", "stream-replay"} <= kinds

        first = {
            e["kind"]: e
            for e in reversed(incident.timeline)  # keep the earliest of each kind
        }
        assert first["dlq-quarantine"]["source"] == "dlq"
        assert first["slo-breach"]["source"] == "site"
        assert first["stream-replay"]["source"] == "site"
        assert first["dlq-quarantine"]["detail"]["reason"] == "bad-kind"
        assert first["slo-breach"]["trace_id"] is not None
        # The three planes interleave in causal order on one timeline:
        # quarantine (pre-partition) < breach (partition onset) < replay
        # (post-heal catch-up).
        assert (
            first["dlq-quarantine"]["at"]
            < first["slo-breach"]["at"]
            < first["stream-replay"]["at"]
        )
        assert first["stream-replay"]["detail"]["lag"] > 5.0
        # And the timeline itself is globally time-ordered.
        stamps = [(e["at"], e["seq"]) for e in incident.timeline]
        assert stamps == sorted(stamps)
        # Device-scoped journal evidence still anchors the timeline.
        assert any(e["source"] == "journal" for e in incident.timeline)

    def test_site_events_stay_out_of_default_timelines(self):
        out = run_health_scenario("controller", keep_dep=True)
        dep = out["dep"]
        assert out["slo_breaches"] >= 1
        scoped = reconstruct(dep.sim, "cam")
        assert all(e["source"] != "site" for e in scoped.timeline)
        framed = reconstruct(dep.sim, "cam", site_events=True)
        site_kinds = {
            e["kind"] for e in framed.timeline if e["source"] == "site"
        }
        assert "slo-breach" in site_kinds
        assert len(framed.timeline) > len(scoped.timeline)
