"""Tests for IFTTT recipes, the Table 2 corpus, and the runtime engine."""

import random

import pytest

from repro.core.deployment import SecuredDeployment
from repro.devices.library import smart_bulb, smart_plug, window_actuator
from repro.policy.conflicts import find_recipe_conflicts
from repro.policy.fsm import PolicyFSM
from repro.policy.context import ContextDomain, SystemState, env
from repro.policy.ifttt import (
    TABLE2_COUNTS,
    TABLE2_EXAMPLES,
    AutomationHub,
    Recipe,
    generate_corpus,
    recipe_to_guard_rules,
)


def test_table2_counts_match_paper():
    assert TABLE2_COUNTS == {
        "nest_protect": 188,
        "wemo_insight": 227,
        "scout_alarm": 63,
    }


def test_table2_examples_shapes():
    assert len(TABLE2_EXAMPLES) == 3
    smoke = TABLE2_EXAMPLES[0]
    assert smoke.trigger_variable == "env:smoke"
    assert smoke.action_device == "hue_lights"


class TestCorpus:
    VOCAB = {
        f"env:var{i}": ("a", "b", "c") for i in range(8)
    }
    ACTUATORS = {f"dev{i}": ("on", "off", "open", "close") for i in range(10)}

    def test_generates_requested_count(self):
        rng = random.Random(1)
        corpus = generate_corpus(rng, self.VOCAB, self.ACTUATORS, 200)
        assert len(corpus) == 200

    def test_deterministic_with_seed(self):
        a = generate_corpus(random.Random(5), self.VOCAB, self.ACTUATORS, 50)
        b = generate_corpus(random.Random(5), self.VOCAB, self.ACTUATORS, 50)
        assert a == b

    def test_injected_conflicts_detected(self):
        rng = random.Random(2)
        corpus = generate_corpus(
            rng, self.VOCAB, self.ACTUATORS, 100, conflict_fraction=0.2
        )
        injected = {r.name for r in corpus if r.name.startswith("conflict-")}
        assert len(injected) == 20
        conflicts = find_recipe_conflicts(corpus)
        flagged_names = set()
        for conflict in conflicts:
            for r in corpus:
                if r.name in conflict.detail:
                    flagged_names.add(r.name)
        assert injected <= flagged_names  # 100% recall on the injected pairs

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_corpus(random.Random(0), {}, self.ACTUATORS, 10)
        with pytest.raises(ValueError):
            generate_corpus(
                random.Random(0), self.VOCAB, self.ACTUATORS, 10, conflict_fraction=2.0
            )


class TestGuardTranslation:
    def test_guard_rules_block_command_outside_condition(self):
        recipe = Recipe("gate", "env:occupancy", "present", "oven", "on")
        rules = recipe_to_guard_rules(recipe, ("absent", "present"))
        assert len(rules) == 1
        policy = PolicyFSM(
            [ContextDomain(env("occupancy"), ("absent", "present"))],
            rules,
            devices=["oven"],
        )
        absent = SystemState({"env:occupancy": "absent"})
        present = SystemState({"env:occupancy": "present"})
        assert policy.posture_for(absent, "oven").name.startswith("guard-gate")
        assert policy.posture_for(present, "oven").is_permissive


class TestAutomationHub:
    def test_env_triggered_recipe_fires_over_network(self, sim):
        dep = SecuredDeployment(sim=sim, with_iotsec=False)
        bulb = dep.add_device(smart_bulb, "bulb")
        dep.hub.add_recipe(Recipe("smoke-light", "env:smoke", "detected", "bulb", "red"))
        dep.finalize()
        dep.env.continuous("smoke").set(0.9)
        dep.run(until=5.0)
        assert bulb.state == "red"
        assert len(dep.hub.firings_of("smoke-light")) == 1

    def test_device_state_recipe_fires_on_transition(self, sim):
        dep = SecuredDeployment(sim=sim, with_iotsec=False)
        win = dep.add_device(window_actuator, "win")
        plug = dep.add_device(smart_plug, "plug")
        dep.hub.add_recipe(Recipe("r", "dev:plug", "on", "win", "open"))
        dep.hub.watch_devices(lambda name: dep.devices[name].state if name in dep.devices else None)
        dep.finalize()
        sim.schedule(3.0, plug.apply_command, "on", "owner", "local")
        dep.run(until=10.0)
        assert win.state == "open"

    def test_paired_sessions_let_commands_through_auth(self, sim):
        dep = SecuredDeployment(sim=sim, with_iotsec=False)
        win = dep.add_device(window_actuator, "win")
        dep.hub.add_recipe(Recipe("vent", "env:smoke", "detected", "win", "open"))
        dep.finalize()
        dep.env.continuous("smoke").set(0.9)
        dep.run(until=5.0)
        # window requires auth; the hub's paired session authorizes it
        assert win.state == "open"
        assert win.command_log[-1].via == "session"

    def test_unpaired_device_commands_rejected(self, sim):
        dep = SecuredDeployment(sim=sim, with_iotsec=False)
        win = dep.add_device(window_actuator, "win", pair_with_hub=False)
        dep.hub.add_recipe(Recipe("vent", "env:smoke", "detected", "win", "open"))
        dep.finalize()
        dep.env.continuous("smoke").set(0.9)
        dep.run(until=5.0)
        assert win.state == "closed"


def test_hub_records_firings(sim):
    hub = AutomationHub("hub", sim)
    recipe = Recipe("r", "env:smoke", "detected", "x", "on")
    hub.add_recipe(recipe)
    hub._fire(recipe)
    assert len(hub.firings) == 1
    assert hub.firings[0].delivered is False  # no ports attached


def test_device_recipe_does_not_fire_on_startup_state(sim):
    """Edge-triggered: a device already in the trigger state when the watch
    begins must not fire the recipe (IFTTT fires on transitions)."""
    dep = SecuredDeployment(sim=sim, with_iotsec=False)
    win = dep.add_device(window_actuator, "win")
    plug = dep.add_device(smart_plug, "plug")
    plug.apply_command("on", src="owner", via="local")  # already on
    dep.hub.add_recipe(Recipe("r", "dev:plug", "on", "win", "open"))
    dep.hub.watch_devices(
        lambda name: dep.devices[name].state if name in dep.devices else None
    )
    dep.finalize()
    dep.run(until=10.0)
    assert win.state == "closed"
    assert dep.hub.firings == []
    # a real transition still fires
    plug.apply_command("off", src="owner", via="local")
    plug_on = lambda: plug.apply_command("on", src="owner", via="local")
    sim.schedule(1.0, plug_on)
    dep.run(until=20.0)
    assert win.state == "open"
