"""Tests for the static-ACL strawman."""

from repro.netsim.packet import Packet
from repro.policy.acl import AclEntry, ConnectionTracker, StaticAcl
from repro.sdn.flowrule import FlowMatch


def pkt(**kw):
    defaults = dict(src="attacker", dst="cam", protocol="http", dport=80)
    defaults.update(kw)
    return Packet(**defaults)


class TestStaticAcl:
    def test_default_permit(self):
        acl = StaticAcl()
        assert acl.permits(pkt())

    def test_deny_entry(self):
        acl = StaticAcl([AclEntry(FlowMatch(dst="cam", dport=80), permit=False)])
        assert not acl.permits(pkt())
        assert acl.permits(pkt(dport=443))

    def test_priority_order(self):
        acl = StaticAcl(
            [
                AclEntry(FlowMatch(dst="cam"), permit=False, priority=100),
                AclEntry(FlowMatch(src="hub", dst="cam"), permit=True, priority=500),
            ]
        )
        assert acl.permits(pkt(src="hub"))
        assert not acl.permits(pkt(src="attacker"))

    def test_default_deny(self):
        acl = StaticAcl(default_permit=False)
        assert not acl.permits(pkt())

    def test_add_keeps_sorted(self):
        acl = StaticAcl()
        acl.add(AclEntry(FlowMatch(dst="cam"), permit=False, priority=10))
        acl.add(AclEntry(FlowMatch(dst="cam"), permit=True, priority=20))
        assert acl.permits(pkt())

    def test_compile_to_flow_rules(self):
        acl = StaticAcl(
            [
                AclEntry(FlowMatch(src="attacker", dst="cam"), permit=False, priority=300),
                AclEntry(FlowMatch(dst="cam"), permit=True, priority=100),
            ],
            default_permit=False,
        )
        rules = acl.compile({"cam": 3})
        kinds = [(r.priority, r.actions[0].kind) for r in rules]
        assert (300, "drop") in kinds
        assert (100, "forward") in kinds
        assert (0, "drop") in kinds  # the default

    def test_compile_skips_permit_without_egress(self):
        acl = StaticAcl([AclEntry(FlowMatch(dst="ghost"), permit=True)])
        assert acl.compile({}) == []

    def test_compile_controller_fallback(self):
        acl = StaticAcl()
        rules = acl.compile({}, controller_fallback=True)
        assert rules[-1].actions[0].kind == "controller"


class TestConnectionTracker:
    def test_reply_allowed_after_outbound(self):
        tracker = ConnectionTracker()
        outbound = pkt(src="cam", dst="cloud", sport=5000, dport=443)
        tracker.note_outbound(outbound)
        reply = pkt(src="cloud", dst="cam", sport=443, dport=5000)
        assert tracker.is_reply(reply)

    def test_unrelated_inbound_not_reply(self):
        tracker = ConnectionTracker()
        tracker.note_outbound(pkt(src="cam", dst="cloud", sport=5000, dport=443))
        assert not tracker.is_reply(pkt(src="attacker", dst="cam", sport=443, dport=5000))
        assert not tracker.is_reply(pkt(src="cloud", dst="cam", sport=443, dport=9999))

    def test_len(self):
        tracker = ConnectionTracker()
        tracker.note_outbound(pkt(src="cam", dst="a"))
        tracker.note_outbound(pkt(src="cam", dst="a"))  # same flow
        tracker.note_outbound(pkt(src="cam", dst="b"))
        assert len(tracker) == 2
