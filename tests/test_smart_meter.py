"""Tests for the smart-meter fraud scenario (paper section 1).

"Smart meters were hacked to lower utility bills" -- the attacker logs in
with the meter's weak service credential and 'calibrates' it.  The ground
truth power draw lives in the environment; a tampered meter's reports
diverge from it, and IoTSec's password posture prevents the tampering.
"""

import pytest

from repro.attacks.exploits import EXPLOITS
from repro.core.deployment import SecuredDeployment
from repro.core.orchestrator import build_recommended_posture
from repro.devices.library import smart_meter, smart_plug
from repro.environment.engine import Environment
from repro.environment.physics import PowerProcess


class TestPowerProcess:
    def test_draw_follows_wattage_inputs(self, sim):
        env = Environment(sim)
        env.add_continuous("power_draw", initial=0.0, minimum=0.0)
        env.add_process(PowerProcess())
        env.set_input("heat_watts", 1500.0, source="heater")
        env.set_input("cool_watts", 700.0, source="ac")
        for __ in range(5):
            env.step_once(1.0)
        assert env.continuous("power_draw").value == pytest.approx(2200.0, abs=10.0)

    def test_draw_decays_when_loads_stop(self, sim):
        env = Environment(sim)
        env.add_continuous("power_draw", initial=0.0, minimum=0.0)
        env.add_process(PowerProcess())
        env.set_input("heat_watts", 1000.0)
        for __ in range(5):
            env.step_once(1.0)
        env.set_input("heat_watts", 0.0)
        for __ in range(5):
            env.step_once(1.0)
        assert env.continuous("power_draw").value == pytest.approx(0.0, abs=5.0)


def build_metered_home(protect: bool):
    dep = SecuredDeployment.build()
    dep.env.add_continuous(
        "power_draw",
        initial=0.0,
        thresholds=(100.0, 2000.0),
        level_names=("idle", "normal", "heavy"),
        minimum=0.0,
    )
    dep.env.add_process(PowerProcess())
    meter = dep.add_device(smart_meter, "meter")
    heater = dep.add_device(smart_plug, "heater_plug", load={"heat_watts": 1500.0})
    attacker = dep.add_attacker()
    dep.finalize()
    if protect:
        dep.secure(
            "meter",
            build_recommended_posture(
                "password_proxy",
                "meter",
                new_password="Ut1lity!",
                device_username="service",
                device_password="0000",
            ),
        )
    return dep, meter, heater, attacker


class TestMeterFraud:
    def test_meter_senses_ground_truth_draw(self):
        dep, meter, heater, __ = build_metered_home(protect=False)
        heater.apply_command("on", src="hub", via="local")
        dep.run(until=30.0)
        assert meter.sensor_readings()["power"] == "normal"

    def test_weak_service_credential_enables_tampering(self):
        dep, meter, __, attacker = build_metered_home(protect=False)
        result = EXPLOITS["default_credential_hijack"].launch(
            attacker, "meter", dep.sim, resource="data", command="calibrate"
        )
        dep.run(until=30.0)
        assert result.succeeded
        assert result.details["username"] == "service"
        assert meter.state == "tampered"

    def test_password_posture_blocks_tampering(self):
        dep, meter, __, attacker = build_metered_home(protect=True)
        result = EXPLOITS["default_credential_hijack"].launch(
            attacker, "meter", dep.sim, resource="data", command="calibrate"
        )
        dep.run(until=30.0)
        assert not result.succeeded
        assert meter.state == "metering"
        assert meter.login_log == []  # nothing reached the device

    def test_utility_retains_access_via_proxy_password(self):
        from repro.devices import protocol

        dep, meter, __, __a = build_metered_home(protect=True)
        utility = dep.add_attacker("utility_headend", latency=0.001)
        replies = []
        utility.request(
            protocol.login("utility_headend", "meter", "service", "Ut1lity!"),
            replies.append,
        )
        dep.run(until=10.0)
        assert len(replies) == 1 and protocol.is_ok(replies[0])
