"""Tests for the abstract environment and the joint world."""

import pytest

from repro.devices.library import (
    BULB_MODEL,
    FIRE_ALARM_MODEL,
    MOTION_SENSOR_MODEL,
    THERMOSTAT_MODEL,
    WINDOW_MODEL,
    smart_plug_model,
)
from repro.learning.abstract_env import (
    AbstractEnvironment,
    AbstractWorld,
    JointState,
    ResponseRule,
    default_world,
)


class TestAbstractEnvironment:
    def test_baseline_levels(self):
        world = default_world()
        levels = world.settle({}, {})
        assert levels["temperature"] == "normal"
        assert levels["smoke"] == "clear"
        assert levels["window"] == "closed"

    def test_response_rule_activation(self):
        world = default_world()
        levels = world.settle({"heat_watts": 100.0}, {})
        assert levels["temperature"] == "high"
        levels = world.settle({"hazard": 1.0}, {})
        assert levels["smoke"] == "detected"

    def test_held_variables_beat_rules(self):
        env = AbstractEnvironment.make(
            variables={"window": ("closed", "open")},
            baseline={"window": "closed"},
        )
        assert env.settle({}, {"window": "open"})["window"] == "open"

    def test_exogenous_levels(self):
        world = default_world()
        levels = world.settle({}, {}, {"occupancy": "present"})
        assert levels["occupancy"] == "present"

    def test_baseline_validation(self):
        with pytest.raises(ValueError):
            AbstractEnvironment.make(
                variables={"x": ("a", "b")}, baseline={"x": "zzz"}
            )


class TestAbstractWorld:
    def make_world(self):
        return AbstractWorld(
            {
                "fire_alarm": FIRE_ALARM_MODEL,
                "window": WINDOW_MODEL,
                "oven_plug": smart_plug_model(hazard=1.0, heat_watts=2000.0),
            }
        )

    def test_initial_state(self):
        world = self.make_world()
        state = world.initial_state()
        assert state.devices() == {
            "fire_alarm": "ok",
            "window": "closed",
            "oven_plug": "off",
        }
        assert state.env()["smoke"] == "clear"

    def test_actions_enumerate_commands_and_exogenous(self):
        world = self.make_world()
        actions = world.actions()
        assert ("cmd", "oven_plug", "on") in actions
        assert ("env", "occupancy", "present") in actions

    def test_command_step(self):
        world = self.make_world()
        state = world.initial_state()
        nxt = world.step(state, ("cmd", "window", "open"))
        assert nxt.devices()["window"] == "open"
        assert nxt.env()["window"] == "open"  # binding held

    def test_implicit_coupling_cascade(self):
        """Turning on the oven plug raises smoke, which trips the alarm --
        the cross-device interaction with no message between the devices."""
        world = self.make_world()
        state = world.initial_state()
        nxt = world.step(state, ("cmd", "oven_plug", "on"))
        assert nxt.env()["smoke"] == "detected"
        assert nxt.devices()["fire_alarm"] == "alarm"

    def test_exogenous_step(self):
        world = AbstractWorld({"motion": MOTION_SENSOR_MODEL})
        state = world.initial_state()
        nxt = world.step(state, ("env", "occupancy", "present"))
        assert nxt.devices()["motion"] == "active"
        back = world.step(nxt, ("env", "occupancy", "absent"))
        assert back.devices()["motion"] == "idle"

    def test_non_exogenous_env_action_rejected(self):
        world = self.make_world()
        with pytest.raises(ValueError):
            world.step(world.initial_state(), ("env", "smoke", "detected"))

    def test_unknown_action_kind_rejected(self):
        world = self.make_world()
        with pytest.raises(ValueError):
            world.step(world.initial_state(), ("zzz", "a", "b"))

    def test_joint_state_hashable_and_stable(self):
        a = JointState.make({"d": "on"}, {"v": "x"})
        b = JointState.make({"d": "on"}, {"v": "x"})
        assert a == b and hash(a) == hash(b)

    def test_thermostat_bulb_world_no_spurious_interactions(self):
        world = AbstractWorld({"thermostat": THERMOSTAT_MODEL, "bulb": BULB_MODEL})
        state = world.initial_state()
        nxt = world.step(state, ("cmd", "bulb", "on"))
        assert nxt.devices()["thermostat"] == state.devices()["thermostat"]
        assert nxt.env()["illuminance"] == "bright"
