"""Tests for contexts, system states, and the state space."""

import pytest

from repro.policy.context import (
    ContextDomain,
    StateSpace,
    SystemState,
    Variable,
    ctx,
    env,
)


class TestVariable:
    def test_keys(self):
        assert ctx("cam").key == "ctx:cam"
        assert env("smoke").key == "env:smoke"

    def test_parse_roundtrip(self):
        assert Variable.parse("ctx:cam") == ctx("cam")
        assert Variable.parse("env:smoke") == env("smoke")

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            Variable("dev", "x")


class TestContextDomain:
    def test_size(self):
        domain = ContextDomain(ctx("cam"), ("normal", "suspicious"))
        assert domain.size == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ContextDomain(ctx("cam"), ())
        with pytest.raises(ValueError):
            ContextDomain(ctx("cam"), ("a", "a"))


class TestSystemState:
    def test_mapping_interface(self):
        state = SystemState({"ctx:cam": "normal", "env:smoke": "clear"})
        assert state["ctx:cam"] == "normal"
        assert len(state) == 2
        assert set(state) == {"ctx:cam", "env:smoke"}
        with pytest.raises(KeyError):
            state["ghost"]

    def test_equality_and_hash_order_independent(self):
        a = SystemState({"x": "1", "y": "2"})
        b = SystemState({"y": "2", "x": "1"})
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_updated(self):
        state = SystemState({"x": "1", "y": "2"})
        new = state.updated({"x": "9", "z": "3"})
        assert new["x"] == "9" and new["z"] == "3"
        assert state["x"] == "1" and "z" not in state

    def test_project(self):
        state = SystemState({"x": "1", "y": "2", "z": "3"})
        assert state.project(["x", "z"]) == SystemState({"x": "1", "z": "3"})
        assert state.project([]) == SystemState({})


class TestStateSpace:
    def space(self):
        return StateSpace(
            [
                ContextDomain(ctx("a"), ("n", "s", "c")),
                ContextDomain(ctx("b"), ("n", "s")),
                ContextDomain(env("smoke"), ("clear", "detected")),
            ]
        )

    def test_size_is_product(self):
        assert self.space().size() == 3 * 2 * 2

    def test_enumerate_complete_and_unique(self):
        states = list(self.space().enumerate())
        assert len(states) == 12
        assert len(set(states)) == 12
        for state in states:
            assert set(state) == {"ctx:a", "ctx:b", "env:smoke"}

    def test_enumerate_limit(self):
        assert len(list(self.space().enumerate(limit=5))) == 5

    def test_size_without_materialization_scales(self):
        # 20 devices x 3 contexts, 6 env vars x 4 levels: 3^20 * 4^6 states
        domains = [ContextDomain(ctx(f"d{i}"), ("a", "b", "c")) for i in range(20)]
        domains += [
            ContextDomain(env(f"e{i}"), ("1", "2", "3", "4")) for i in range(6)
        ]
        space = StateSpace(domains)
        assert space.size() == 3**20 * 4**6  # ~1.4e13, computed instantly

    def test_domain_lookup(self):
        space = self.space()
        assert space.domain_of("ctx:a").size == 3
        assert space.domain_of(ctx("b")).size == 2
        with pytest.raises(KeyError):
            space.domain_of("ctx:ghost")

    def test_duplicate_variables_rejected(self):
        with pytest.raises(ValueError):
            StateSpace(
                [
                    ContextDomain(ctx("a"), ("n",)),
                    ContextDomain(ctx("a"), ("n", "s")),
                ]
            )
