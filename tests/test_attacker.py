"""Tests for the attacker host's correlation machinery."""

from repro.attacks.attacker import Attacker
from repro.netsim.link import Link
from repro.netsim.node import Host
from repro.netsim.packet import Packet


def wire(sim):
    attacker = Attacker("attacker", sim)
    target = Host("target", sim)
    Link(sim, attacker, target, latency=0.001)
    return attacker, target


def test_request_reply_correlation(sim):
    attacker, target = wire(sim)
    target.responder = lambda pkt: pkt.reply({"status": "ok", "n": pkt.payload["n"]})
    got = []
    attacker.request(Packet(src="attacker", dst="target", payload={"n": 1}), got.append)
    attacker.request(Packet(src="attacker", dst="target", payload={"n": 2}), got.append)
    sim.run()
    assert [p.payload["n"] for p in got] == [1, 2]  # FIFO per peer
    assert attacker.requests_sent == 2
    assert attacker.replies_seen == 2


def test_fire_and_forget_no_callback(sim):
    attacker, target = wire(sim)
    target.responder = lambda pkt: pkt.reply({"status": "ok"})
    attacker.fire_and_forget(Packet(src="attacker", dst="target"))
    sim.run()
    # reply arrives but no callback was registered: only counted
    assert attacker.replies_seen == 1


def test_unsolicited_packet_does_not_pop_callbacks(sim):
    attacker, target = wire(sim)
    got = []
    attacker.request(Packet(src="attacker", dst="target"), got.append)
    other = Host("other", sim)
    Link(sim, attacker, other, latency=0.001)
    other.send(Packet(src="other", dst="attacker"))
    sim.run()
    assert got == []  # the pending target-callback is still waiting


def test_session_and_loot_bookkeeping(sim):
    attacker = Attacker("attacker", sim)
    attacker.store_session("cam", "tok-1")
    assert attacker.session_for("cam") == "tok-1"
    assert attacker.session_for("other") is None
    attacker.record_loot("cam", "image", {"pixels": "..."})
    attacker.record_loot("plug", "data", {})
    assert len(attacker.loot_from("cam")) == 1
    assert len(attacker.loot) == 2
