"""Tests for abstract device models."""

import pytest

from repro.devices.model import DeviceModel, EnvEffect, EnvTrigger


def simple_plug():
    return DeviceModel(
        kind="plug",
        states=("off", "on"),
        initial="off",
        transitions={("off", "on"): "on", ("on", "off"): "off"},
        effects=(EnvEffect.make("on", heat_watts=1000.0),),
    )


def test_next_state():
    model = simple_plug()
    assert model.next_state("off", "on") == "on"
    assert model.next_state("on", "off") == "off"


def test_inapplicable_command_self_loops():
    model = simple_plug()
    assert model.next_state("off", "off") == "off"
    assert model.next_state("off", "frobnicate") == "off"


def test_commands_derived():
    model = simple_plug()
    assert set(model.commands) == {"on", "off"}


def test_trigger_commands_included():
    model = DeviceModel(
        kind="alarm",
        states=("ok", "alarm"),
        initial="ok",
        transitions={("ok", "test"): "alarm"},
        triggers=(EnvTrigger("smoke", "detected", "test"),),
    )
    assert "test" in model.commands


def test_effect_inputs_aggregate():
    model = DeviceModel(
        kind="x",
        states=("s",),
        initial="s",
        effects=(
            EnvEffect.make("s", heat_watts=100.0),
            EnvEffect.make("s", heat_watts=50.0, hazard=1.0),
        ),
    )
    assert model.effect_inputs("s") == {"heat_watts": 150.0, "hazard": 1.0}
    assert model.effect_inputs("other") == {}


def test_affected_inputs():
    assert simple_plug().affected_inputs() == {"heat_watts"}


def test_state_bindings():
    model = DeviceModel(
        kind="window",
        states=("closed", "open"),
        initial="closed",
        transitions={("closed", "open"): "open"},
        state_bindings=(("open", "window", "open"), ("closed", "window", "closed")),
    )
    assert model.binding_for("open") == [("window", "open")]
    assert model.bound_variables() == {"window"}


def test_sensed_variables():
    model = DeviceModel(
        kind="cam",
        states=("on",),
        initial="on",
        sensors=(("person", "occupancy"),),
        triggers=(EnvTrigger("smoke", "detected", "noop"),),
    )
    assert model.sensed_variables() == {"occupancy", "smoke"}


def test_reachable_states():
    model = DeviceModel(
        kind="x",
        states=("a", "b", "c", "island"),
        initial="a",
        transitions={("a", "go"): "b", ("b", "go"): "c"},
    )
    assert model.reachable_states() == {"a", "b", "c"}
    assert model.reachable_states("b") == {"b", "c"}


def test_validation():
    with pytest.raises(ValueError):
        DeviceModel(kind="x", states=("a",), initial="nope")
    with pytest.raises(ValueError):
        DeviceModel(
            kind="x", states=("a",), initial="a", transitions={("ghost", "c"): "a"}
        )
    with pytest.raises(ValueError):
        DeviceModel(
            kind="x", states=("a",), initial="a", transitions={("a", "c"): "ghost"}
        )
    with pytest.raises(ValueError):
        DeviceModel(
            kind="x",
            states=("a",),
            initial="a",
            effects=(EnvEffect.make("ghost", x=1.0),),
        )


def test_env_effect_frozen_and_dict():
    effect = EnvEffect.make("on", heat_watts=10.0, hazard=1.0)
    assert effect.as_dict() == {"heat_watts": 10.0, "hazard": 1.0}
