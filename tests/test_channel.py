"""Tests for the control channel."""

import pytest

from repro.sdn.channel import ControlChannel


def test_delivery_after_latency(sim):
    chan = ControlChannel(sim, latency=0.05)
    got = []
    chan.register("ctrl", lambda m: got.append((sim.now, m.kind, m.body)))
    chan.send("sw1", "ctrl", "packet-in", {"dst": "cam"})
    sim.run()
    assert got == [(0.05, "packet-in", {"dst": "cam"})]


def test_sent_at_stamped(sim):
    chan = ControlChannel(sim, latency=0.01)
    got = []
    chan.register("ctrl", got.append)
    sim.schedule(2.0, lambda: chan.send("a", "ctrl", "x"))
    sim.run()
    assert got[0].sent_at == 2.0


def test_unregistered_destination_counts_undeliverable(sim):
    chan = ControlChannel(sim)
    chan.send("a", "ghost", "x")
    sim.run()
    assert chan.undeliverable == 1 and chan.delivered == 0


def test_per_destination_latency_override(sim):
    chan = ControlChannel(sim, latency=0.001)
    chan.set_latency_to("cloud", 0.1)
    times = {}
    chan.register("cloud", lambda m: times.setdefault("cloud", sim.now))
    chan.register("local", lambda m: times.setdefault("local", sim.now))
    chan.send("a", "cloud", "x")
    chan.send("a", "local", "x")
    sim.run()
    assert times["local"] == pytest.approx(0.001)
    assert times["cloud"] == pytest.approx(0.1)


def test_broadcast_excludes_sender(sim):
    chan = ControlChannel(sim)
    got = []
    for name in ("a", "b", "c"):
        chan.register(name, lambda m, n=name: got.append(n))
    count = chan.broadcast("a", "hello")
    sim.run()
    assert count == 2
    assert sorted(got) == ["b", "c"]


def test_unregister(sim):
    chan = ControlChannel(sim)
    chan.register("x", lambda m: None)
    chan.unregister("x")
    chan.send("a", "x", "k")
    sim.run()
    assert chan.undeliverable == 1


def test_message_bodies_are_copied(sim):
    chan = ControlChannel(sim)
    got = []
    chan.register("ctrl", got.append)
    body = {"k": 1}
    chan.send("a", "ctrl", "x", body)
    body["k"] = 2
    sim.run()
    assert got[0].body == {"k": 1}


def test_negative_latency_rejected(sim):
    with pytest.raises(ValueError):
        ControlChannel(sim, latency=-1)
    chan = ControlChannel(sim)
    with pytest.raises(ValueError):
        chan.set_latency_to("x", -0.5)
