"""Tests for the control channel."""

import pytest

from repro.sdn.channel import ControlChannel


def test_delivery_after_latency(sim):
    chan = ControlChannel(sim, latency=0.05)
    got = []
    chan.register("ctrl", lambda m: got.append((sim.now, m.kind, m.body)))
    chan.send("sw1", "ctrl", "packet-in", {"dst": "cam"})
    sim.run()
    assert got == [(0.05, "packet-in", {"dst": "cam"})]


def test_sent_at_stamped(sim):
    chan = ControlChannel(sim, latency=0.01)
    got = []
    chan.register("ctrl", got.append)
    sim.schedule(2.0, lambda: chan.send("a", "ctrl", "x"))
    sim.run()
    assert got[0].sent_at == 2.0


def test_unregistered_destination_counts_undeliverable(sim):
    chan = ControlChannel(sim)
    chan.send("a", "ghost", "x")
    sim.run()
    assert chan.undeliverable == 1 and chan.delivered == 0


def test_per_destination_latency_override(sim):
    chan = ControlChannel(sim, latency=0.001)
    chan.set_latency_to("cloud", 0.1)
    times = {}
    chan.register("cloud", lambda m: times.setdefault("cloud", sim.now))
    chan.register("local", lambda m: times.setdefault("local", sim.now))
    chan.send("a", "cloud", "x")
    chan.send("a", "local", "x")
    sim.run()
    assert times["local"] == pytest.approx(0.001)
    assert times["cloud"] == pytest.approx(0.1)


def test_broadcast_excludes_sender(sim):
    chan = ControlChannel(sim)
    got = []
    for name in ("a", "b", "c"):
        chan.register(name, lambda m, n=name: got.append(n))
    count = chan.broadcast("a", "hello")
    sim.run()
    assert count == 2
    assert sorted(got) == ["b", "c"]


def test_unregister(sim):
    chan = ControlChannel(sim)
    chan.register("x", lambda m: None)
    chan.unregister("x")
    chan.send("a", "x", "k")
    sim.run()
    assert chan.undeliverable == 1


def test_message_bodies_are_copied(sim):
    chan = ControlChannel(sim)
    got = []
    chan.register("ctrl", got.append)
    body = {"k": 1}
    chan.send("a", "ctrl", "x", body)
    body["k"] = 2
    sim.run()
    assert got[0].body == {"k": 1}


def test_negative_latency_rejected(sim):
    with pytest.raises(ValueError):
        ControlChannel(sim, latency=-1)
    chan = ControlChannel(sim)
    with pytest.raises(ValueError):
        chan.set_latency_to("x", -0.5)


# ---------------------------------------------------------------------------
# Bounded receiver-side dedup
# ---------------------------------------------------------------------------
def test_dedup_rejects_bad_bounds(sim):
    with pytest.raises(ValueError):
        ControlChannel(sim, dedup_ttl=0)
    with pytest.raises(ValueError):
        ControlChannel(sim, dedup_max=0)


def test_dedup_table_stays_bounded_over_10k_messages(sim):
    """10k seeded reliable messages: delivery stays exactly-once while the
    dedup table is evicted down to its size bound and expired-TTL entries
    are pruned -- the table cannot grow with lifetime traffic."""
    from repro.sdn.channel import FaultModel, RetryPolicy

    chan = ControlChannel(
        sim,
        latency=0.002,
        retry_policy=RetryPolicy(timeout=0.02, max_retries=8),
        dedup_ttl=20.0,
        dedup_max=512,
    )
    chan.inject_faults(FaultModel(seed=11, drop_prob=0.1))
    got = []
    chan.register("ctrl", lambda m: got.append(m.body["n"]))
    for n in range(10_000):
        sim.schedule(n * 0.01, chan.send, "sw", "ctrl", "alert", {"n": n}, True)
    sim.run()
    # Exactly-once to the application, despite drops + retries.
    assert sorted(got) == list(range(10_000))
    assert chan.giveups == 0 and chan.retries > 0
    # The receiver's table is bounded by size, and TTL pruned the rest.
    assert len(chan._seen["ctrl"]) <= 512
    assert chan.dedup_evictions >= 10_000 - 512
    # Evictions leave an audit trail (batched, not one entry per id; the
    # journal's own retention bounds how far back the trail reaches).
    evict_entries = sim.journal.entries(kind="ctrl-dedup-evict")
    assert evict_entries
    assert all(e.fields["evicted"] > 0 for e in evict_entries)
    assert all(e.fields["retained"] <= 512 for e in evict_entries)


def test_dedup_ttl_expires_old_entries(sim):
    from repro.sdn.channel import RetryPolicy

    chan = ControlChannel(
        sim, latency=0.001, retry_policy=RetryPolicy(), dedup_ttl=1.0
    )
    chan.register("ctrl", lambda m: None)
    chan.send("a", "ctrl", "x", reliable=True)
    sim.run(until=0.5)
    assert len(chan._seen["ctrl"]) == 1
    # A later arrival prunes everything past its TTL.
    sim.schedule(2.0, chan.send, "a", "ctrl", "y", None, True)
    sim.run()
    assert len(chan._seen["ctrl"]) == 1  # only the fresh id remains
    # Two evictions: the receiver's seen-id and the sender's acked-id,
    # both expired by the time the second exchange prunes the tables.
    assert chan.dedup_evictions == 2
