"""Tests for the executable IoT device node."""

import pytest

from repro.devices import protocol
from repro.devices.base import IoTDevice
from repro.devices.firmware import Credential, Firmware
from repro.devices.model import DeviceModel, EnvEffect, EnvTrigger
from repro.environment.engine import Environment
from repro.netsim.link import Link
from repro.netsim.node import Host


PLUG_MODEL = DeviceModel(
    kind="plug",
    states=("off", "on"),
    initial="off",
    transitions={("off", "on"): "on", ("on", "off"): "off"},
    effects=(EnvEffect.make("on", heat_watts=1000.0),),
)


def make_device(sim, firmware=None, model=PLUG_MODEL, env=None):
    firmware = firmware or Firmware(
        vendor="v", model="m", credentials=[Credential("owner", "secret")]
    )
    device = IoTDevice("dev", sim, model, firmware, env=env)
    client = Host("client", sim)
    Link(sim, device, client, latency=0.001)
    return device, client


def test_login_success_creates_session(sim):
    device, client = make_device(sim)
    client.send(protocol.login("client", "dev", "owner", "secret"))
    sim.run()
    reply = client.inbox[-1]
    assert protocol.is_ok(reply)
    assert reply.payload["session"] in device.sessions


def test_login_failure_denied_and_logged(sim):
    device, client = make_device(sim)
    client.send(protocol.login("client", "dev", "owner", "wrong"))
    sim.run()
    assert protocol.is_denied(client.inbox[-1])
    assert device.login_log[-1][3] is False


def test_control_requires_session(sim):
    device, client = make_device(sim)
    client.send(protocol.command("client", "dev", "on"))
    sim.run()
    assert device.state == "off"
    assert protocol.is_denied(client.inbox[-1])
    assert not device.is_compromised()


def test_control_with_session(sim):
    device, client = make_device(sim)
    client.send(protocol.login("client", "dev", "owner", "secret"))
    sim.run()
    token = client.inbox[-1].payload["session"]
    client.send(protocol.command("client", "dev", "on", session=token))
    sim.run()
    assert device.state == "on"
    assert not device.is_compromised()  # authenticated control is legit


def test_backdoor_bypasses_auth_and_marks_compromise(sim):
    firmware = Firmware(vendor="v", model="m", backdoor_port=49153)
    device, client = make_device(sim, firmware=firmware)
    client.send(protocol.command("client", "dev", "on", dport=49153))
    sim.run()
    assert device.state == "on"
    assert device.compromised_by == ["client"]
    assert device.accepted_commands(via="backdoor")


def test_no_auth_firmware_accepts_any_command(sim):
    firmware = Firmware(vendor="v", model="m", requires_auth_for_control=False)
    device, client = make_device(sim, firmware=firmware)
    client.send(protocol.command("client", "dev", "on"))
    sim.run()
    assert device.state == "on"
    assert device.is_compromised()


def test_open_port_acts_as_control_channel(sim):
    firmware = Firmware(vendor="v", model="m", open_ports=(9999,))
    device, client = make_device(sim, firmware=firmware)
    client.send(protocol.command("client", "dev", "on", dport=9999))
    sim.run()
    assert device.state == "on"


def test_closed_port_silently_drops(sim):
    device, client = make_device(sim)
    client.send(protocol.command("client", "dev", "on", dport=31337))
    sim.run()
    assert device.state == "off"
    assert len(client.inbox) == 0


def test_mgmt_get_requires_session_unless_exposed(sim):
    device, client = make_device(sim)
    client.send(protocol.get_resource("client", "dev", "status"))
    sim.run()
    assert protocol.is_denied(client.inbox[-1])

    exposed = Firmware(vendor="v", model="m", open_ports=(80,))
    device2 = IoTDevice("dev2", sim, PLUG_MODEL, exposed)
    Link(sim, device2, client, latency=0.001)
    client.send(
        protocol.get_resource("client", "dev2", "status"), client.port_to("dev2")
    )
    sim.run()
    assert protocol.is_ok(client.inbox[-1])
    assert client.inbox[-1].payload["data"]["state"] == "off"


def test_dns_resolver_amplifies_only_when_service_present(sim):
    device, client = make_device(sim)
    client.send(protocol.dns_query("client", "dev", "example.com"))
    sim.run()
    assert client.inbox == []  # no resolver service

    fw = Firmware(vendor="v", model="m", services=("open_dns_resolver",))
    resolver = IoTDevice("resolver", sim, PLUG_MODEL, fw)
    Link(sim, resolver, client, latency=0.001)
    query = protocol.dns_query("client", "resolver", "example.com")
    client.send(query, client.port_to("resolver"))
    sim.run()
    assert len(client.inbox) == 1
    assert client.inbox[0].size == query.size * 8
    assert resolver.dns_replies == 1


def test_effects_published_to_environment(sim):
    env = Environment(sim)
    env.add_continuous("temperature", initial=20.0)
    device, client = make_device(sim, env=env)
    device.apply_command("on", src="test", via="local")
    assert env.inputs.get("heat_watts") == 1000.0
    device.apply_command("off", src="test", via="local")
    assert env.inputs.get("heat_watts") == 0.0


def test_env_trigger_fires_command(sim):
    env = Environment(sim)
    env.add_discrete("smoke", ("clear", "detected"))
    model = DeviceModel(
        kind="alarm",
        states=("ok", "alarm"),
        initial="ok",
        transitions={("ok", "test"): "alarm"},
        triggers=(EnvTrigger("smoke", "detected", "test"),),
    )
    device = IoTDevice("alarm", sim, model, Firmware(vendor="v", model="m"), env=env)
    env.discrete("smoke").set("detected")
    assert device.state == "alarm"
    assert device.command_log[-1].via == "trigger"


def test_sensor_readings(sim):
    env = Environment(sim)
    env.add_discrete("occupancy", ("absent", "present"), initial="present")
    model = DeviceModel(
        kind="cam",
        states=("on",),
        initial="on",
        sensors=(("person", "occupancy"),),
    )
    device = IoTDevice("cam", sim, model, Firmware(vendor="v", model="m"), env=env)
    assert device.sensor_readings() == {"person": "present"}


def test_telemetry_reports(sim):
    device, client = make_device(sim)
    device.report_to = "client"
    device.telemetry_period = 5.0
    device.start_telemetry()
    sim.run(until=11.0)
    reports = [p for p in client.inbox if p.payload.get("action") == "telemetry"]
    assert len(reports) == 2
    assert reports[0].payload["state"] == "off"
    device.stop_telemetry()
    sim.run(until=30.0)
    assert len([p for p in client.inbox if p.payload.get("action") == "telemetry"]) == 2


def test_rejected_command_logged_not_applied(sim):
    device, client = make_device(sim)
    client.send(protocol.command("client", "dev", "on"))
    sim.run()
    record = device.command_log[-1]
    assert record.accepted is False
    assert record.state_before == record.state_after == "off"
