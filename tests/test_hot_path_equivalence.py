"""Hot-path refactor equivalence: seeded runs must not change behavior.

The data-plane refactor (slotted events/packets, free-list pools, buffered
journal segments, dispatch-table loops) is wall-clock-only by contract:
a seeded run must schedule the same events, produce the same journal
entries, and land on the same deterministic counters as it did before the
refactor.  These tests pin that contract against fixtures recorded on the
pre-refactor tree (``tests/fixtures/hot_path_equivalence.json``).

Three seeded scenarios are pinned:

- **e9-small** -- a fully-tunnelled 12-device home with telemetry and an
  attack sweep (the E9 hot path in miniature);
- **e12-resilient** -- the standard chaos scenario's resilient arm
  (partitions, retries, µmbox crash/reboot);
- **e13-standby** -- the hot-standby failover arm (checkpoints,
  replication, takeover).

Each scenario is reduced to a sha256 digest over every retained journal
entry plus a handful of deterministic counters.  Re-record (only after an
*intentional* behavior change) with::

    REPRO_RECORD_FIXTURES=1 PYTHONPATH=src python -m pytest \
        tests/test_hot_path_equivalence.py -q
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import pytest

from repro.attacks.exploits import EXPLOITS
from repro.core.deployment import SecuredDeployment
from repro.core.orchestrator import build_recommended_posture
from repro.devices.library import smart_bulb, smart_camera, smart_plug, thermostat
from repro.faults.ha_scenario import run_failover_scenario
from repro.faults.scenario import run_resilience_scenario

FIXTURE_PATH = Path(__file__).resolve().parent / "fixtures" / "hot_path_equivalence.json"
RECORDING = bool(os.environ.get("REPRO_RECORD_FIXTURES"))

FACTORY_CYCLE = (smart_camera, smart_plug, thermostat, smart_bulb)


# Journal fields backed by process-global allocation counters (packet ids,
# control-message ids).  They depend on what else ran earlier in the same
# interpreter, not on the seeded scenario, so the digest must ignore them.
_ALLOCATION_ID_FIELDS = frozenset({"pkt", "msg"})


def journal_digest(sim) -> str:
    """sha256 over every retained journal entry, in canonical JSON form."""
    h = hashlib.sha256()
    for entry in sim.journal:
        d = entry.as_dict()
        fields = d.get("fields")
        if fields and not _ALLOCATION_ID_FIELDS.isdisjoint(fields):
            d["fields"] = {
                k: v for k, v in fields.items() if k not in _ALLOCATION_ID_FIELDS
            }
        h.update(json.dumps(d, sort_keys=True, default=str).encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


def run_e9_small(n_devices: int = 12, until: float = 240.0) -> dict:
    """The E9 hot path in miniature: tunnelled devices, telemetry, attacks."""
    dep = SecuredDeployment.build()
    trusted = (dep.HUB, dep.CONTROLLER)
    for i in range(n_devices):
        factory = FACTORY_CYCLE[i % len(FACTORY_CYCLE)]
        device = dep.add_device(
            factory, f"dev{i}", report_to="hub", telemetry_period=20.0
        )
        device.start_telemetry()
    attacker = dep.add_attacker()
    dep.finalize()
    for i in range(n_devices):
        name = f"dev{i}"
        device = dep.devices[name]
        if "exposed-credentials" in device.firmware.flaw_classes():
            posture = build_recommended_posture("password_proxy", name)
        elif device.firmware.flaw_classes() & {"backdoor", "exposed-access"}:
            posture = build_recommended_posture(
                "stateful_firewall", name, trusted_sources=trusted
            )
        else:
            posture = build_recommended_posture("monitor", name, sku=device.sku)
        dep.secure(name, posture)
    EXPLOITS["default_credential_hijack"].launch(attacker, "dev0", dep.sim)
    EXPLOITS["backdoor_command"].launch(
        attacker, "dev1", dep.sim, backdoor_port=49153, command="on"
    )
    dep.run(until=until)

    stats = dep.controller.pipeline.stats
    channel = dep.channel
    return {
        "journal_sha256": journal_digest(dep.sim),
        "counters": {
            "events_processed": dep.sim.events_processed,
            "journal_recorded": dep.sim.journal.recorded,
            "journal_retained": len(dep.sim.journal),
            "pipeline_ingested": stats.ingested,
            "pipeline_rounds": stats.rounds,
            "pipeline_evaluations": stats.evaluations,
            "pipeline_applies": stats.applies,
            "channel_sent": channel.sent,
            "channel_delivered": channel.delivered,
            "compromised": sum(
                1 for d in dep.devices.values() if d.is_compromised()
            ),
        },
    }


def run_e12_resilient() -> dict:
    row = run_resilience_scenario(resilient=True, seed=7, keep_dep=True)
    dep = row.pop("dep")
    return {
        "journal_sha256": journal_digest(dep.sim),
        "counters": {
            "events_processed": dep.sim.events_processed,
            "journal_recorded": dep.sim.journal.recorded,
            "attack_attempts": row["attack_attempts"],
            "attack_successes": row["attack_successes"],
            "exposure_s": row["exposure_s"],
            "ctrl_drops": row["ctrl_drops"],
            "ctrl_retries": row["ctrl_retries"],
            "ctrl_giveups": row["ctrl_giveups"],
            "mbox_restarts": row["mbox_restarts"],
        },
    }


def run_e13_standby() -> dict:
    row = run_failover_scenario(standby=True, seed=7, keep_dep=True)
    dep = row.pop("dep")
    return {
        "journal_sha256": journal_digest(dep.sim),
        "counters": {
            "events_processed": dep.sim.events_processed,
            "journal_recorded": dep.sim.journal.recorded,
            "attack_attempts": row["attack_attempts"],
            "blind_window_s": row["blind_window_s"],
            "failovers": row["failovers"],
            "replayed": row["replayed"],
            "ctrl_giveups": row["ctrl_giveups"],
        },
    }


SCENARIOS = {
    "e9_small": run_e9_small,
    "e12_resilient": run_e12_resilient,
    "e13_standby": run_e13_standby,
}


def _load_fixture() -> dict:
    if not FIXTURE_PATH.exists():
        pytest.fail(
            f"missing fixture {FIXTURE_PATH}; record it with "
            "REPRO_RECORD_FIXTURES=1 (on a tree whose behavior is the "
            "intended reference)"
        )
    return json.loads(FIXTURE_PATH.read_text())


def _record(name: str, result: dict) -> None:
    FIXTURE_PATH.parent.mkdir(exist_ok=True)
    fixture = json.loads(FIXTURE_PATH.read_text()) if FIXTURE_PATH.exists() else {}
    fixture[name] = result
    FIXTURE_PATH.write_text(json.dumps(fixture, indent=2, sort_keys=True) + "\n")


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_seeded_run_matches_pre_refactor_fixture(name):
    result = SCENARIOS[name]()
    if RECORDING:
        _record(name, result)
        return
    expected = _load_fixture()[name]
    assert result["counters"] == expected["counters"], (
        f"{name}: deterministic counters drifted -- the refactor changed "
        "behavior, not just speed"
    )
    assert result["journal_sha256"] == expected["journal_sha256"], (
        f"{name}: journal digest changed -- the flight recorder saw a "
        "different history than the pre-refactor tree"
    )


def test_seeded_run_is_self_deterministic():
    """Two identical seeded runs in one process agree exactly -- the
    precondition for cross-commit digest pinning to mean anything."""
    a = run_e9_small(n_devices=6, until=120.0)
    b = run_e9_small(n_devices=6, until=120.0)
    assert a["counters"] == b["counters"]
    assert a["journal_sha256"] == b["journal_sha256"]
