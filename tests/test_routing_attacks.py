"""Unit tests for the compromised-switch layer
(:mod:`repro.netsim.routing_attacks`)."""

import pytest

from repro.core.deployment import SecuredDeployment
from repro.devices.library import smart_camera
from repro.netsim.routing_attacks import ROUTING_ATTACK_KINDS, RoutingAttack
from repro.devices.protocol import login


def _home():
    dep = SecuredDeployment.build()
    dep.add_device(smart_camera, "cam")
    attacker = dep.add_attacker()
    dep.finalize()
    dep.enforce_baseline()
    return dep, attacker


def _alerts(dep):
    return [e for e in dep.sim.journal.entries(kind="alert") if e.device == "cam"]


class TestValidation:
    def test_rejects_unknown_mode(self):
        dep, _ = _home()
        with pytest.raises(ValueError, match="mode"):
            RoutingAttack(dep.edge, "wormhole")

    def test_rejects_bad_drop_prob(self):
        dep, _ = _home()
        with pytest.raises(ValueError, match="drop_prob"):
            RoutingAttack(dep.edge, "selective-forward", drop_prob=1.5)

    def test_kinds_registry(self):
        assert ROUTING_ATTACK_KINDS == ("sinkhole", "selective-forward")


class TestSinkhole:
    def test_sinkhole_blinds_the_mboxes(self):
        """While engaged, tunnel-bound traffic never reaches inspection:
        a login storm that normally alerts produces nothing."""
        dep, attacker = _home()
        attack = RoutingAttack(dep.edge, "sinkhole")
        attack.engage()

        def storm():
            for i in range(6):
                dep.sim.schedule(
                    i * 0.2,
                    attacker.fire_and_forget,
                    login(attacker.name, "cam", "admin", "wrong"),
                )

        dep.sim.schedule(1.0, storm)
        dep.run(until=5.0)
        assert attack.sinkholed > 0
        assert _alerts(dep) == []

    def test_disengage_restores_the_data_path(self):
        dep, attacker = _home()
        attack = RoutingAttack(dep.edge, "sinkhole")
        attack.engage()
        attack.disengage()
        # The instance shadow is gone: the class method is live again.
        assert "_apply" not in dep.edge.__dict__

        def storm():
            for i in range(6):
                dep.sim.schedule(
                    i * 0.2,
                    attacker.fire_and_forget,
                    login(attacker.name, "cam", "admin", "wrong"),
                )

        dep.sim.schedule(1.0, storm)
        dep.run(until=5.0)
        assert attack.sinkholed == 0
        assert len(_alerts(dep)) > 0

    def test_engage_and_disengage_are_journaled(self):
        dep, _ = _home()
        attack = RoutingAttack(dep.edge, "sinkhole", target="cam")
        attack.engage()
        attack.disengage()
        phases = [
            e.fields["phase"] for e in dep.sim.journal.entries(kind="routing-attack")
        ]
        assert phases == ["engage", "disengage"]

    def test_engage_twice_is_idempotent(self):
        dep, _ = _home()
        attack = RoutingAttack(dep.edge, "sinkhole")
        attack.engage()
        attack.engage()
        attack.disengage()
        assert "_apply" not in dep.edge.__dict__


class TestSelectiveForward:
    def test_diverted_packets_bypass_inspection(self):
        """Dropped-from-tunnel packets go straight to the device port:
        the device still hears them, the µmbox never does."""
        dep, attacker = _home()
        att = dep.orchestrator.attachments["cam"]
        attack = RoutingAttack(
            dep.edge,
            "selective-forward",
            seed=5,
            drop_prob=1.0,
            target="cam",
            direct_ports={"cam": att.device_port},
        )
        attack.engage()

        def storm():
            for i in range(6):
                dep.sim.schedule(
                    i * 0.2,
                    attacker.fire_and_forget,
                    login(attacker.name, "cam", "admin", "wrong"),
                )

        dep.sim.schedule(1.0, storm)
        dep.run(until=5.0)
        assert attack.bypassed > 0
        assert _alerts(dep) == []  # nothing was inspected
        # The device itself saw the smuggled logins.
        assert len(dep.devices["cam"].login_log) > 0

    def test_without_direct_port_diversion_degrades_to_sinkhole(self):
        dep, attacker = _home()
        attack = RoutingAttack(
            dep.edge, "selective-forward", seed=5, drop_prob=1.0, target="cam"
        )
        attack.engage()
        dep.sim.schedule(
            1.0, attacker.fire_and_forget, login(attacker.name, "cam", "a", "b")
        )
        dep.run(until=3.0)
        assert attack.bypassed == 0
        assert attack.sinkholed > 0

    def test_seeded_diversion_is_deterministic(self):
        counts = []
        for _ in range(2):
            dep, attacker = _home()
            att = dep.orchestrator.attachments["cam"]
            attack = RoutingAttack(
                dep.edge,
                "selective-forward",
                seed=11,
                drop_prob=0.5,
                target="cam",
                direct_ports={"cam": att.device_port},
            )
            attack.engage()

            def storm(attacker=attacker, dep=dep):
                for i in range(10):
                    dep.sim.schedule(
                        i * 0.2,
                        attacker.fire_and_forget,
                        login(attacker.name, "cam", "admin", "wrong"),
                    )

            dep.sim.schedule(1.0, storm)
            dep.run(until=6.0)
            counts.append((attack.sinkholed, attack.bypassed))
        assert counts[0] == counts[1]


class TestStats:
    def test_stats_shape(self):
        dep, _ = _home()
        attack = RoutingAttack(dep.edge, "sinkhole", target="cam")
        attack.engage()
        stats = attack.stats()
        assert stats["mode"] == "sinkhole"
        assert stats["target"] == "cam"
        assert stats["engaged"] is True
        assert stats["engaged_at"] == 0.0
        attack.disengage()
        assert attack.stats()["engaged"] is False
