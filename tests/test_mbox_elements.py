"""Tests for µmbox pipeline elements (exercised directly)."""

import pytest

from repro.mboxes.base import Alert, Mbox, MboxContext, Verdict
from repro.mboxes.dnsguard import DnsGuard
from repro.mboxes.elements import (
    CommandFilter,
    CommandWhitelist,
    ContextGate,
    LoginMonitor,
    PacketLogger,
    SourceFilter,
    TelemetryTap,
)
from repro.mboxes.firewall import StatefulFirewall
from repro.mboxes.ratelimit import RateLimiter
from repro.netsim.packet import Packet


class _RecordingContext(MboxContext):
    """Regains ``__dict__`` (MboxContext is slotted) so the fixture can
    attach the captured alerts list."""


@pytest.fixture
def ctx(sim):
    alerts = []
    context = _RecordingContext(
        sim=sim,
        mbox_name="mbox-test",
        device="dev",
        view=lambda key: {"env:occupancy": "present"}.get(key),
        emit_alert=alerts.append,
    )
    context.alerts = alerts  # type: ignore[attr-defined]
    return context


def to_device(payload=None, dport=8080, src="attacker", **kw):
    pkt = Packet(src=src, dst="dev", dport=dport, payload=payload or {}, **kw)
    pkt.meta["direction"] = "to_device"
    return pkt


def from_device(payload=None, dport=0, dst="cloud", **kw):
    pkt = Packet(src="dev", dst=dst, dport=dport, payload=payload or {}, **kw)
    pkt.meta["direction"] = "from_device"
    return pkt


class TestCommandFilter:
    def test_denied_command_dropped_with_alert(self, ctx):
        element = CommandFilter(deny=["open"])
        verdict, __ = element.process(to_device({"cmd": "open"}), ctx)
        assert verdict is Verdict.DROP
        assert ctx.alerts[0].kind == "command-blocked"

    def test_other_commands_pass(self, ctx):
        element = CommandFilter(deny=["open"])
        verdict, __ = element.process(to_device({"cmd": "close"}), ctx)
        assert verdict is Verdict.PASS

    def test_from_device_direction_ignored(self, ctx):
        element = CommandFilter(deny=["open"])
        verdict, __ = element.process(from_device({"cmd": "open"}), ctx)
        assert verdict is Verdict.PASS


class TestCommandWhitelist:
    def test_unlisted_command_dropped(self, ctx):
        element = CommandWhitelist(allow=["status"])
        verdict, __ = element.process(to_device({"cmd": "go"}), ctx)
        assert verdict is Verdict.DROP

    def test_listed_command_passes(self, ctx):
        element = CommandWhitelist(allow=["go"])
        assert element.process(to_device({"cmd": "go"}), ctx)[0] is Verdict.PASS

    def test_trusted_source_bypasses(self, ctx):
        element = CommandWhitelist(allow=[], allowed_sources=["city-ops"])
        pkt = to_device({"cmd": "go"}, src="city-ops")
        assert element.process(pkt, ctx)[0] is Verdict.PASS

    def test_non_command_traffic_passes(self, ctx):
        element = CommandWhitelist(allow=[])
        assert element.process(to_device({"action": "get"}), ctx)[0] is Verdict.PASS


class TestContextGate:
    def test_guarded_command_needs_condition(self, sim):
        alerts = []
        absent_ctx = MboxContext(
            sim=sim,
            mbox_name="m",
            device="dev",
            view=lambda key: "absent" if key == "env:occupancy" else None,
            emit_alert=alerts.append,
        )
        gate = ContextGate(commands=["on"], require={"env:occupancy": "present"})
        verdict, __ = gate.process(to_device({"cmd": "on"}), absent_ctx)
        assert verdict is Verdict.DROP
        assert alerts[0].kind == "context-gate-blocked"

    def test_passes_when_condition_holds(self, ctx):
        gate = ContextGate(commands=["on"], require={"env:occupancy": "present"})
        assert gate.process(to_device({"cmd": "on"}), ctx)[0] is Verdict.PASS

    def test_unknown_context_fails_closed(self, sim):
        blind_ctx = MboxContext(
            sim=sim, mbox_name="m", device="dev",
            view=lambda key: None, emit_alert=lambda a: None,
        )
        gate = ContextGate(commands=["on"], require={"env:occupancy": "present"})
        assert gate.process(to_device({"cmd": "on"}), blind_ctx)[0] is Verdict.DROP

    def test_unguarded_commands_flow(self, sim):
        blind_ctx = MboxContext(
            sim=sim, mbox_name="m", device="dev",
            view=lambda key: None, emit_alert=lambda a: None,
        )
        gate = ContextGate(commands=["on"], require={"env:occupancy": "present"})
        assert gate.process(to_device({"cmd": "off"}), blind_ctx)[0] is Verdict.PASS


class TestSourceFilter:
    def test_unapproved_source_dropped(self, ctx):
        element = SourceFilter(allowed_sources=["hub"])
        assert element.process(to_device({"cmd": "x"}), ctx)[0] is Verdict.DROP

    def test_approved_source_passes(self, ctx):
        element = SourceFilter(allowed_sources=["hub"])
        assert element.process(to_device(src="hub"), ctx)[0] is Verdict.PASS


class TestLoginMonitor:
    def test_alerts_on_login(self, ctx):
        element = LoginMonitor()
        pkt = to_device({"action": "login", "username": "admin"}, dport=80)
        verdict, __ = element.process(pkt, ctx)
        assert verdict is Verdict.PASS  # monitor never blocks
        assert ctx.alerts[0].kind == "login-attempt"
        assert element.attempts == 1

    def test_ignores_non_login(self, ctx):
        element = LoginMonitor()
        element.process(to_device({"action": "get"}, dport=80), ctx)
        assert element.attempts == 0


class TestStatefulFirewall:
    def test_inbound_default_deny(self, ctx):
        fw = StatefulFirewall()
        assert fw.process(to_device({"cmd": "on"}), ctx)[0] is Verdict.DROP
        assert fw.blocked == 1

    def test_trusted_source_allowed(self, ctx):
        fw = StatefulFirewall(trusted_sources=["hub"])
        assert fw.process(to_device(src="hub"), ctx)[0] is Verdict.PASS

    def test_open_port_allowed(self, ctx):
        fw = StatefulFirewall(open_ports=[80])
        assert fw.process(to_device(dport=80), ctx)[0] is Verdict.PASS

    def test_reply_to_outbound_allowed(self, ctx):
        fw = StatefulFirewall()
        outbound = from_device({"q": 1}, dst="cloud")
        outbound.sport, outbound.dport = 5000, 443
        fw.process(outbound, ctx)
        reply = Packet(src="cloud", dst="dev", sport=443, dport=5000)
        reply.meta["direction"] = "to_device"
        assert fw.process(reply, ctx)[0] is Verdict.PASS

    def test_backdoor_port_blocked(self, ctx):
        fw = StatefulFirewall(trusted_sources=["hub"], open_ports=[80])
        backdoor = to_device({"cmd": "on"}, dport=49153)
        assert fw.process(backdoor, ctx)[0] is Verdict.DROP

    def test_default_validation(self):
        with pytest.raises(ValueError):
            StatefulFirewall(default="maybe")


class TestRateLimiter:
    def test_burst_allowed_then_limited(self, ctx):
        limiter = RateLimiter(rate=1.0, burst=3.0)
        verdicts = [
            limiter.process(to_device({"cmd": "x"}), ctx)[0] for __ in range(5)
        ]
        assert verdicts[:3] == [Verdict.PASS] * 3
        assert verdicts[3:] == [Verdict.DROP] * 2
        assert limiter.limited == 2

    def test_tokens_replenish_over_time(self, ctx, sim):
        limiter = RateLimiter(rate=1.0, burst=1.0)
        assert limiter.process(to_device(), ctx)[0] is Verdict.PASS
        assert limiter.process(to_device(), ctx)[0] is Verdict.DROP
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert limiter.process(to_device(), ctx)[0] is Verdict.PASS

    def test_per_source_buckets(self, ctx):
        limiter = RateLimiter(rate=1.0, burst=1.0)
        assert limiter.process(to_device(src="a"), ctx)[0] is Verdict.PASS
        assert limiter.process(to_device(src="b"), ctx)[0] is Verdict.PASS
        assert limiter.process(to_device(src="a"), ctx)[0] is Verdict.DROP

    def test_dport_scoping(self, ctx):
        limiter = RateLimiter(rate=1.0, burst=1.0, match_dport=80)
        for __ in range(5):
            assert limiter.process(to_device(dport=8080), ctx)[0] is Verdict.PASS

    def test_exempt_sources(self, ctx):
        limiter = RateLimiter(rate=1.0, burst=1.0, exempt_sources=("hub",))
        for __ in range(5):
            assert limiter.process(to_device(src="hub"), ctx)[0] is Verdict.PASS

    def test_validation(self):
        with pytest.raises(ValueError):
            RateLimiter(rate=0)
        with pytest.raises(ValueError):
            RateLimiter(burst=-1)


class TestDnsGuard:
    def test_external_query_dropped(self, ctx):
        guard = DnsGuard(local_sources=["hub"])
        query = to_device({"query": "x.com"}, dport=53, src="victim")
        assert guard.process(query, ctx)[0] is Verdict.DROP
        assert guard.blocked == 1

    def test_local_query_allowed(self, ctx):
        guard = DnsGuard(local_sources=["hub"])
        query = to_device({"query": "x.com"}, dport=53, src="hub")
        assert guard.process(query, ctx)[0] is Verdict.PASS

    def test_local_query_rate_capped(self, ctx):
        guard = DnsGuard(local_sources=["hub"], max_queries_per_second=2.0)
        query = lambda: to_device({"query": "x"}, dport=53, src="hub")
        assert guard.process(query(), ctx)[0] is Verdict.PASS
        assert guard.process(query(), ctx)[0] is Verdict.PASS
        assert guard.process(query(), ctx)[0] is Verdict.DROP

    def test_non_dns_ignored(self, ctx):
        guard = DnsGuard()
        assert guard.process(to_device(dport=80, src="anyone"), ctx)[0] is Verdict.PASS

    def test_validation(self):
        with pytest.raises(ValueError):
            DnsGuard(max_queries_per_second=0)


class TestLoggerAndTap:
    def test_packet_logger_records(self, ctx):
        logger = PacketLogger()
        logger.process(to_device({"cmd": "on"}), ctx)
        logger.process(from_device(), ctx)
        assert len(logger.log) == 2
        assert logger.log[0].cmd == "on"
        assert logger.log[1].direction == "from_device"

    def test_telemetry_tap_reports_to_controller(self, ctx):
        tap = TelemetryTap()
        report = from_device(
            {"action": "telemetry", "state": "on", "readings": {"person": "present"}}
        )
        verdict, __ = tap.process(report, ctx)
        assert verdict is Verdict.PASS
        assert ctx.alerts[0].kind == "telemetry"
        assert ctx.alerts[0].detail["state"] == "on"

    def test_tap_ignores_non_telemetry(self, ctx):
        tap = TelemetryTap()
        tap.process(from_device({"action": "other"}), ctx)
        assert ctx.alerts == []


class TestMboxPipeline:
    def test_chain_stops_at_first_drop(self, ctx):
        fw = StatefulFirewall(trusted_sources=["hub"])
        logger = PacketLogger()
        mbox = Mbox("m", "dev", [fw, logger])
        verdict, __ = mbox.process(to_device(src="attacker"), ctx)
        assert verdict is Verdict.DROP
        assert logger.log == []  # never reached
        assert mbox.dropped == 1

    def test_chain_passes_through_all(self, ctx):
        logger = PacketLogger()
        mbox = Mbox("m", "dev", [LoginMonitor(), logger])
        verdict, __ = mbox.process(to_device(src="hub"), ctx)
        assert verdict is Verdict.PASS
        assert len(logger.log) == 1

    def test_reconfigure_swaps_elements(self, ctx):
        mbox = Mbox("m", "dev", [CommandFilter(deny=["open"])])
        assert mbox.process(to_device({"cmd": "open"}), ctx)[0] is Verdict.DROP
        mbox.reconfigure([])
        assert mbox.process(to_device({"cmd": "open"}), ctx)[0] is Verdict.PASS

    def test_describe(self, ctx):
        mbox = Mbox("m", "dev", [CommandFilter(deny=["open"])], kind="block")
        assert "command_filter" in mbox.describe()


class TestPacketCapture:
    def test_capture_disabled_by_default(self, ctx):
        from repro.mboxes.elements import PacketLogger

        logger = PacketLogger()
        logger.process(to_device({"cmd": "on"}), ctx)
        assert logger.captured == []

    def test_capture_retains_copies(self, ctx):
        from repro.mboxes.elements import PacketLogger

        logger = PacketLogger(capture=True)
        original = to_device({"cmd": "on"})
        logger.process(original, ctx)
        assert len(logger.captured) == 1
        captured = logger.captured[0]
        assert captured.payload == {"cmd": "on"}
        assert captured.pkt_id != original.pkt_id  # a copy, not a reference

    def test_capture_limit(self, ctx):
        from repro.mboxes.elements import PacketLogger

        logger = PacketLogger(capture=True, capture_limit=3)
        for i in range(10):
            logger.process(to_device({"cmd": str(i)}), ctx)
        assert len(logger.captured) == 3
        assert len(logger.log) == 10  # metadata is unbounded by the limit

    def test_captured_from_filter(self, ctx):
        from repro.mboxes.elements import PacketLogger

        logger = PacketLogger(capture=True)
        logger.process(to_device({"cmd": "a"}, src="attacker"), ctx)
        logger.process(to_device({"cmd": "b"}, src="hub"), ctx)
        assert len(logger.captured_from("attacker")) == 1
