"""Tests for the DLQ -> reputation poisoning-evidence loop
(:mod:`repro.learning.evidence`)."""

import pytest

from repro.learning.anonymize import pseudonym
from repro.learning.evidence import DlqEvidenceBridge, attach_dlq_evidence
from repro.learning.repository import CrowdRepository
from repro.learning.signatures import default_credential_signature
from repro.obs.stream import DeadLetterQueue


def wire(offset=1, device="cam", kind="port-scan"):
    return {
        "offset": offset,
        "at": 0.0,
        "body": {"device": device, "kind": kind, "mbox": "m1", "detail": {}, "trace": None},
    }


def _rig(sim, period=1.0, **kw):
    dlq = DeadLetterQueue(sim, name="edge")
    repo = CrowdRepository(sim)
    bridge = attach_dlq_evidence(dlq, repo, period=period, **kw)
    return dlq, repo, bridge


class TestSweep:
    def test_flooding_host_loses_its_published_signatures(self, sim):
        """The E3 closed loop: quarantined telemetry from a host is
        evidence against that host's crowdsourced signatures."""
        dlq, repo, bridge = _rig(sim)
        sig_id = repo.publish(
            default_credential_signature("dlink:cam:1.0"), reporter="evil-host"
        )
        sim.run(until=0.5)
        reporter = repo.signatures[sig_id].reporter
        assert repo.reputation.accepted(sig_id, reporter)
        assert len(repo.signatures_for("dlink:cam:1.0")) == 1

        for i in range(6):
            dlq.quarantine(wire(offset=i + 1), "bad-kind", "evil-host")
        sim.run(until=1.5)

        assert bridge.swept == 6
        assert bridge.revoked_total == 1
        assert repo.is_revoked(sig_id)
        assert repo.signatures_for("dlink:cam:1.0") == []
        # Score sank well below the 0.4 accept threshold.
        assert repo.reputation.score_of(reporter) < 0.4

    def test_evidence_journaled_per_quarantine(self, sim):
        dlq, repo, bridge = _rig(sim)
        for i in range(3):
            dlq.quarantine(wire(offset=i + 1, device="plug"), "reputation", "h1")
        sim.run(until=1.5)
        entries = sim.journal.entries(kind="poison-evidence")
        assert len(entries) == 3
        first = entries[0].fields
        assert first["host"] == "h1"
        assert first["reason"] == "reputation"
        assert first["reporter"] == pseudonym("h1", repo.anonymizer.salt)
        assert entries[0].device == "plug"

    def test_cursor_only_processes_new_quarantines(self, sim):
        dlq, repo, bridge = _rig(sim)
        dlq.quarantine(wire(offset=1), "bad-kind", "h1")
        sim.run(until=1.5)
        assert bridge.sweep() == 0  # nothing new since the scheduled sweep
        dlq.quarantine(wire(offset=2), "bad-kind", "h1")
        assert bridge.sweep() == 1
        assert bridge.swept == 2

    def test_rotated_flood_still_counts_retained_mix(self, sim):
        dlq = DeadLetterQueue(sim, name="edge", max_records=4)
        repo = CrowdRepository(sim)
        bridge = DlqEvidenceBridge(dlq, repo, period=10.0)
        for i in range(9):
            dlq.quarantine(wire(offset=i + 1), "bad-kind", "flooder")
        # 9 quarantined but only 4 retained: the sweep processes what the
        # ring still holds and advances the cursor past all 9.
        assert bridge.sweep() == 4
        assert bridge.swept == 9
        assert bridge.sweep() == 0

    def test_reporter_of_override_maps_to_site_identity(self, sim):
        dlq = DeadLetterQueue(sim, name="edge")
        repo = CrowdRepository(sim)
        bridge = attach_dlq_evidence(
            dlq, repo, period=1.0, reporter_of=lambda host: "site-shared"
        )
        dlq.quarantine(wire(), "bad-kind", "mbox-1")
        dlq.quarantine(wire(offset=2), "bad-kind", "mbox-2")
        sim.run(until=1.5)
        assert bridge.evidence_by_reporter == {"site-shared": 2}


class TestKnobsAndStats:
    def test_rejects_bad_period(self, sim):
        dlq = DeadLetterQueue(sim, name="edge")
        repo = CrowdRepository(sim)
        with pytest.raises(ValueError, match="period"):
            DlqEvidenceBridge(dlq, repo, period=0)

    def test_stats_shape(self, sim):
        dlq, repo, bridge = _rig(sim)
        dlq.quarantine(wire(), "bad-kind", "h1")
        sim.run(until=1.5)
        stats = bridge.stats()
        assert stats["swept"] == 1
        assert stats["revoked_total"] == 0
        assert list(stats["reporters"].values()) == [1]

    def test_metrics_exported(self, sim):
        dlq, repo, bridge = _rig(sim)
        dlq.quarantine(wire(), "bad-kind", "h1")
        sim.run(until=1.5)
        snapshot = sim.metrics.snapshot()
        counters = set(snapshot["counters"])
        gauges = set(snapshot["gauges"])
        assert any(n.startswith("dlq_poison_evidence") for n in counters)
        assert any(n.startswith("dlq_evidence_reporters") for n in gauges)


class TestReconsider:
    def test_reconsider_only_revokes_below_threshold(self, sim):
        repo = CrowdRepository(sim)
        sig_id = repo.publish(
            default_credential_signature("dlink:cam:1.0"), reporter="site-a"
        )
        sim.run()
        reporter = repo.signatures[sig_id].reporter
        assert repo.reconsider(reporter) == 0  # fresh 0.5 is above 0.4
        for _ in range(6):
            repo.reputation.feedback(reporter, validated=False)
        assert repo.reconsider(reporter) == 1
        assert repo.reconsider(reporter) == 0  # already revoked

    def test_reconsider_ignores_other_reporters(self, sim):
        repo = CrowdRepository(sim)
        sig_id = repo.publish(
            default_credential_signature("dlink:cam:1.0"), reporter="site-a"
        )
        sim.run()
        assert repo.reconsider("someone-else") == 0
        assert not repo.is_revoked(sig_id)
