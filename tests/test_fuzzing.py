"""Tests for model-based fuzzing."""

import random

import pytest

from repro.devices.library import (
    BULB_MODEL,
    FIRE_ALARM_MODEL,
    MOTION_SENSOR_MODEL,
    THERMOSTAT_MODEL,
    WINDOW_MODEL,
    smart_plug_model,
)
from repro.learning.abstract_env import AbstractWorld
from repro.learning.fuzzing import (
    InteractionEdge,
    ModelFuzzer,
    PassiveObserver,
    exhaustive_edges,
    interaction_sparsity,
)

DEVICES = {
    "fire_alarm": FIRE_ALARM_MODEL,
    "window": WINDOW_MODEL,
    "oven_plug": smart_plug_model(hazard=1.0, heat_watts=2000.0),
    "bulb": BULB_MODEL,
    "motion": MOTION_SENSOR_MODEL,
}


@pytest.fixture(scope="module")
def world():
    return AbstractWorld(DEVICES)


@pytest.fixture(scope="module")
def truth(world):
    interactions, env_edges, states = exhaustive_edges(world)
    return interactions, env_edges, states


def test_exhaustive_finds_oven_alarm_coupling(truth):
    interactions, __, __states = truth
    assert InteractionEdge("oven_plug", "on", "fire_alarm") in interactions


def test_exhaustive_env_edges_include_physics(truth):
    __, env_edges, __states = truth
    assert any(
        e.actor == "oven_plug" and e.variable == "smoke" and e.level == "detected"
        for e in env_edges
    )
    assert any(
        e.actor == "window" and e.variable == "window" and e.level == "open"
        for e in env_edges
    )


def test_fuzzer_reaches_full_coverage_with_budget(world, truth):
    interactions, __, __states = truth
    report = ModelFuzzer(world, random.Random(42)).run(3000)
    assert report.coverage_against(interactions) == 1.0
    assert report.steps == 3000
    assert report.states_visited > 1


def test_fuzzer_deterministic_per_seed(world):
    a = ModelFuzzer(world, random.Random(7)).run(500)
    b = ModelFuzzer(world, random.Random(7)).run(500)
    assert a.interaction_edges == b.interaction_edges
    assert a.discovery_curve == b.discovery_curve


def test_discovery_curve_monotone(world):
    report = ModelFuzzer(world, random.Random(1)).run(2000)
    counts = [c for __, c in report.discovery_curve]
    assert counts == sorted(counts)


def test_passive_observer_misses_implicit_coupling(world, truth):
    interactions, __, __states = truth
    benign = [
        ("cmd", "bulb", "on"),
        ("cmd", "bulb", "off"),
        ("cmd", "window", "open"),
        ("cmd", "window", "close"),
    ]
    report = PassiveObserver(world, benign, random.Random(3)).run(2000)
    assert report.coverage_against(interactions) < 1.0
    assert InteractionEdge("oven_plug", "on", "fire_alarm") not in report.interaction_edges


def test_coverage_of_empty_truth_is_one(world):
    report = ModelFuzzer(world, random.Random(0)).run(10)
    assert report.coverage_against(set()) == 1.0


def test_sparsity(truth):
    interactions, __, __states = truth
    sparsity = interaction_sparsity(DEVICES, interactions)
    assert 0.0 < sparsity < 0.2  # the paper's expectation: sparse


def test_fuzzer_restart_interval_validation(world):
    with pytest.raises(ValueError):
        ModelFuzzer(world, random.Random(0), restart_every=0)


def test_exhaustive_state_budget():
    big = AbstractWorld(DEVICES)
    with pytest.raises(RuntimeError):
        exhaustive_edges(big, max_states=2)
