"""Tests for nodes, hosts, and links."""

import pytest

from repro.netsim.link import Link
from repro.netsim.node import Host, Node
from repro.netsim.packet import Packet


def make_pair(sim, latency=0.01, bandwidth=None):
    a, b = Host("a", sim), Host("b", sim)
    link = Link(sim, a, b, latency=latency, bandwidth=bandwidth)
    return a, b, link


def test_link_delivers_after_latency(sim):
    a, b, __ = make_pair(sim, latency=0.25)
    a.send(Packet(src="a", dst="b"))
    sim.run()
    assert len(b.inbox) == 1
    assert sim.now == 0.25


def test_serialization_delay_with_bandwidth(sim):
    a, b, __ = make_pair(sim, latency=0.1, bandwidth=1000.0)
    a.send(Packet(src="a", dst="b", size=500))
    sim.run()
    assert sim.now == pytest.approx(0.1 + 0.5)


def test_bidirectional(sim):
    a, b, __ = make_pair(sim)
    b.send(Packet(src="b", dst="a"))
    sim.run()
    assert len(a.inbox) == 1


def test_counters(sim):
    a, b, __ = make_pair(sim)
    a.send(Packet(src="a", dst="b", size=100))
    sim.run()
    assert a.tx_count == 1 and a.tx_bytes == 100
    assert b.rx_count == 1 and b.rx_bytes == 100


def test_trace_records_sender(sim):
    a, b, __ = make_pair(sim)
    a.send(Packet(src="a", dst="b"))
    sim.run()
    assert b.inbox[0].trace == ["a"]


def test_failed_link_drops(sim):
    a, b, link = make_pair(sim)
    link.fail()
    a.send(Packet(src="a", dst="b"))
    sim.run()
    assert b.inbox == [] and link.dropped == 1


def test_restore_after_failure(sim):
    a, b, link = make_pair(sim)
    link.fail()
    link.restore()
    a.send(Packet(src="a", dst="b"))
    sim.run()
    assert len(b.inbox) == 1


def test_in_flight_packet_dropped_on_failure(sim):
    a, b, link = make_pair(sim, latency=1.0)
    a.send(Packet(src="a", dst="b"))
    sim.schedule(0.5, link.fail)
    sim.run()
    assert b.inbox == []


def test_send_requires_explicit_port_with_multiple_links(sim):
    a, b, __ = make_pair(sim)
    c = Host("c", sim)
    Link(sim, a, c)
    with pytest.raises(ValueError):
        a.send(Packet(src="a", dst="b"))
    assert a.send(Packet(src="a", dst="b"), a.port_to("b"))


def test_send_on_unattached_port_returns_false(sim):
    a = Host("a", sim)
    assert a.send(Packet(src="a", dst="b"), 7) is False


def test_port_to_and_free_port(sim):
    a, b, __ = make_pair(sim)
    assert a.port_to("b") == 0
    assert a.port_to("zzz") is None
    assert a.free_port() == 1


def test_duplicate_port_attach_rejected(sim):
    a, b, link = make_pair(sim)
    with pytest.raises(ValueError):
        a.attach(0, link)


def test_other_end_validates_membership(sim):
    a, b, link = make_pair(sim)
    stranger = Node("stranger", sim)
    with pytest.raises(ValueError):
        link.other_end(stranger)


def test_host_responder(sim):
    a, b, __ = make_pair(sim)
    b.responder = lambda pkt: pkt.reply({"status": "ok"})
    a.send(Packet(src="a", dst="b", payload={"q": 1}))
    sim.run()
    assert len(a.inbox) == 1
    assert a.inbox[0].payload == {"status": "ok"}


def test_host_received_filter(sim):
    a, b, __ = make_pair(sim)
    a.send(Packet(src="a", dst="b", payload={"cmd": "on"}))
    a.send(Packet(src="a", dst="b", payload={"cmd": "off"}))
    sim.run()
    assert len(b.received(cmd="on")) == 1


def test_link_validation(sim):
    a, b = Host("a", sim), Host("b", sim)
    with pytest.raises(ValueError):
        Link(sim, a, b, latency=-1.0)
    with pytest.raises(ValueError):
        Link(sim, a, b, bandwidth=0.0)


def test_same_direction_transmissions_serialize(sim):
    a, b, __ = make_pair(sim, latency=0.0, bandwidth=1000.0)
    times = []
    b.responder = None
    orig = b.on_packet
    b.on_packet = lambda pkt, ip: (times.append(sim.now), orig(pkt, ip))
    a.send(Packet(src="a", dst="b", size=500))  # 0.5 s on the wire
    a.send(Packet(src="a", dst="b", size=500))  # queues behind the first
    sim.run()
    assert times == [pytest.approx(0.5), pytest.approx(1.0)]


def test_opposite_directions_do_not_contend(sim):
    a, b, __ = make_pair(sim, latency=0.0, bandwidth=1000.0)
    a.send(Packet(src="a", dst="b", size=500))
    b.send(Packet(src="b", dst="a", size=500))
    sim.run()
    assert sim.now == pytest.approx(0.5)  # both finish together


def test_drop_tail_under_overload(sim):
    a, b, link = make_pair(sim, latency=0.0, bandwidth=1000.0)
    link.max_queue_delay = 1.0
    # each packet takes 0.5 s; the 4th would wait 1.5 s > 1.0 -> dropped
    for __ in range(4):
        a.send(Packet(src="a", dst="b", size=500))
    sim.run()
    assert len(b.inbox) == 3
    assert link.queue_drops == 1


def test_queue_drains_over_time(sim):
    a, b, link = make_pair(sim, latency=0.0, bandwidth=1000.0)
    link.max_queue_delay = 0.4
    a.send(Packet(src="a", dst="b", size=500))
    sim.schedule(0.6, lambda: a.send(Packet(src="a", dst="b", size=500)))
    sim.run()
    assert len(b.inbox) == 2  # the wire was free again by 0.6 s
    assert link.queue_drops == 0


def test_unlimited_links_never_queue(sim):
    a, b, link = make_pair(sim, latency=0.01, bandwidth=None)
    for __ in range(100):
        a.send(Packet(src="a", dst="b", size=10_000))
    sim.run()
    assert len(b.inbox) == 100
    assert sim.now == pytest.approx(0.01)
