"""Tests for firmware/credential metadata."""

from repro.devices.firmware import Credential, Firmware


def make_camera_firmware():
    return Firmware(
        vendor="dlink",
        model="DCS-930L",
        credentials=[Credential("admin", "admin", hardcoded=True, weak=True)],
    )


def test_sku_format():
    fw = make_camera_firmware()
    assert fw.sku == "dlink:DCS-930L:1.0"


def test_check_login():
    fw = make_camera_firmware()
    assert fw.check_login("admin", "admin")
    assert not fw.check_login("admin", "wrong")
    assert not fw.check_login("nobody", "admin")


def test_hardcoded_credentials_cannot_be_patched():
    fw = make_camera_firmware()
    assert fw.patch_credentials("admin", "newpass") is False
    assert fw.check_login("admin", "admin")  # still the vendor default


def test_unpatchable_firmware_refuses_any_change():
    fw = Firmware(
        vendor="x",
        model="y",
        credentials=[Credential("user", "old")],
        patchable=False,
    )
    assert fw.patch_credentials("user", "new") is False


def test_patchable_firmware_changes_password():
    fw = Firmware(
        vendor="x",
        model="y",
        credentials=[Credential("user", "old")],
        patchable=True,
    )
    assert fw.patch_credentials("user", "new") is True
    assert fw.check_login("user", "new")
    assert not fw.check_login("user", "old")


def test_patch_unknown_user():
    fw = make_camera_firmware()
    assert fw.patch_credentials("ghost", "x") is False


def test_flaw_classes_census():
    fw = Firmware(
        vendor="belkin",
        model="wemo",
        credentials=[],
        backdoor_port=49153,
        services=("open_dns_resolver",),
        open_ports=(8080,),
    )
    assert fw.flaw_classes() == {"backdoor", "open-dns-resolver", "exposed-access"}
    assert fw.is_vulnerable()


def test_no_credentials_flaw():
    fw = Firmware(vendor="city", model="light", requires_auth_for_control=False)
    assert "no-credentials" in fw.flaw_classes()


def test_embedded_keys_flaw():
    fw = Firmware(vendor="c", model="cctv", embedded_keys={"rsa": "xxx"})
    assert "embedded-keys" in fw.flaw_classes()


def test_clean_firmware_not_vulnerable():
    fw = Firmware(
        vendor="good", model="device", credentials=[Credential("owner", "strong-pass")]
    )
    assert fw.flaw_classes() == set()
    assert not fw.is_vulnerable()


def test_weak_credentials_include_hardcoded():
    fw = make_camera_firmware()
    assert len(fw.weak_credentials()) == 1
    assert "exposed-credentials" in fw.flaw_classes()
    assert "weak-credentials" in fw.flaw_classes()
