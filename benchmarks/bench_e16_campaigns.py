"""E16: the adversarial campaign corpus as a standing per-class scorecard.

E8 measured one end-to-end attack; the paper's claim needs *campaigns* --
multi-stage, cross-device, fabric-degrading attacks (ROADMAP open item
4).  This bench runs the full shipped corpus (19 campaigns, four classes)
against the standard protected home and rolls the per-campaign scorecards
into one per-class table:

- **detection precision/recall** -- alerted devices vs attacked devices;
- **time-to-containment / exposure window** -- first attack packet to the
  first enforcing posture, per expected-contained device;
- **graceful degradation** -- fail-open only where the posture allows it,
  fail-closed drops while a pinned chain's µmbox is down, re-pin after
  recovery;
- **SLO fold-in** -- a containment breach must surface as a
  ``campaign-containment`` burn-rate breach in the journal, never a
  silent miss.

Hard properties (mirrored by the regression gate): the *enforcing*
classes (single-flaw, lateral-movement, automation-abuse) end with zero
containment misses, and the fabric-degradation class produces real
degradation evidence -- sinkholed/bypassed packets at the compromised
switch plus outage/re-pin records -- while still containing by horizon.
"""

from __future__ import annotations

from _util import percent, print_table, record

from repro.faults.campaign import CAMPAIGN_CLASSES
from repro.faults.campaign_library import CAMPAIGNS, ENFORCING_CLASSES, run_class


def run_scorecard() -> dict:
    """Run every shipped campaign; per-class rollups plus a corpus summary.

    This is the measurement the regression gate imports: sim-time only,
    fully seeded, so every field is machine-independent.
    """
    classes = {name: run_class(name) for name in CAMPAIGN_CLASSES}
    fabric = classes["fabric-degradation"]
    fabric_evidence = {
        "fabric_degraded": fabric["fabric_degraded"],
        "outages": sum(
            r["graceful_degradation"]["outages"] for r in fabric["results"]
        ),
        "repins": sum(r["repin_count"] for r in fabric["results"]),
        "routing_records": sum(
            r["routing_attack_records"] for r in fabric["results"]
        ),
        "containment_breaches": fabric["containment_breaches"],
    }
    summary = {
        "campaigns": sum(c["campaigns"] for c in classes.values()),
        "enforcing_misses": sorted(
            {
                m
                for name in ENFORCING_CLASSES
                for m in classes[name]["containment_misses"]
            }
        ),
        "all_misses": sorted(
            {m for c in classes.values() for m in c["containment_misses"]}
        ),
        "fabric_evidence": fabric_evidence,
    }
    return {"classes": classes, "summary": summary}


def compact(scorecard: dict) -> dict:
    """The gate/baseline view: per-class rollups without per-run payloads."""
    return {
        "classes": {
            name: {k: v for k, v in rollup.items() if k != "results"}
            for name, rollup in scorecard["classes"].items()
        },
        "summary": scorecard["summary"],
    }


def test_e16_campaign_scorecard(scenario_benchmark):
    scorecard = scenario_benchmark(run_scorecard)
    classes, summary = scorecard["classes"], scorecard["summary"]

    print_table(
        "E16: per-class campaign scorecard "
        f"({summary['campaigns']} campaigns, standard home)",
        ["Class", "Campaigns", "Recall", "Mean TTC", "Exposure", "Misses",
         "SLO breaches", "Graceful"],
        [
            (
                name,
                rollup["campaigns"],
                percent(rollup["recall"]),
                f"{rollup['mean_ttc_s']:.2f}s" if rollup["mean_ttc_s"] is not None else "-",
                f"{rollup['total_exposure_s']:.2f}s",
                ", ".join(rollup["containment_misses"]) or "none",
                rollup["containment_breaches"],
                "ok" if rollup["graceful_ok"] else "VIOLATED",
            )
            for name, rollup in classes.items()
        ],
    )
    record(scenario_benchmark, "scorecard", compact(scorecard))

    # The corpus itself: the issue's floor is 15 campaigns over 4 classes.
    assert len(CAMPAIGNS) >= 15
    assert all(classes[name]["campaigns"] >= 3 for name in CAMPAIGN_CLASSES)

    # Hard gate: enforcing classes fully contained, gracefully.
    assert summary["enforcing_misses"] == []
    for name in ENFORCING_CLASSES:
        assert classes[name]["graceful_ok"], name

    # Fabric degradation is real (packets actually stolen, µmboxes actually
    # down and re-pinned) yet still contained by horizon -- and the one
    # campaign engineered to outlive its containment deadline surfaced as
    # a campaign-containment burn-rate breach, not a silent miss.
    evidence = summary["fabric_evidence"]
    assert evidence["fabric_degraded"]
    assert evidence["outages"] >= 1 and evidence["repins"] >= 1
    assert evidence["routing_records"] >= 2  # engage + disengage journaled
    assert evidence["containment_breaches"] >= 1
    assert classes["fabric-degradation"]["containment_misses"] == []
