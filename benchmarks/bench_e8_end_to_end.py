"""E8: end-to-end defence quality over a mixed benign/attack workload.

The capstone experiment: one smart home, the full Table 1 attack suite,
plus the benign traffic the home depends on (automation recipes, owner
logins, telemetry).  Three arms:

- **current world** -- no defence at all;
- **static perimeter ACL** -- the traditional-IT strawman of section 3.1:
  the admin permits inbound to the management/control ports (the remote
  app needs them!) and denies the rest, once, statically;
- **IoTSec** -- flaw-informed baseline postures per device (the registry
  of Table 1 tells the controller what each SKU ships), crowdsourced
  signatures, context escalation, and the cross-device occupancy gate.

Reported per arm: attacks blocked / total, benign operations preserved /
total.  Expected shape: current world blocks nothing; the ACL blocks only
the out-of-band vectors (vendor backdoor port, DNS reflection) while every
in-band attack rides the ports the ACL must keep open; IoTSec blocks all
attacks while preserving all benign operations.
"""

from __future__ import annotations

from _util import percent, print_table, record

from repro.attacks.exploits import EXPLOITS
from repro.core.deployment import SecuredDeployment
from repro.core.orchestrator import build_recommended_posture
from repro.devices import protocol
from repro.devices.library import (
    WEMO_BACKDOOR_PORT,
    set_top_box,
    smart_bulb,
    smart_camera,
    smart_plug,
    window_actuator,
)
from repro.netsim.node import Host
from repro.policy.ifttt import Recipe
from repro.sdn.flowrule import Action, FlowMatch, FlowRule

NEW_PASSWORD = "S3cure!gateway"


def build_home(arm: str):
    dep = SecuredDeployment.build(with_iotsec=(arm == "iotsec"))
    cam = dep.add_device(smart_camera, "cam")
    wemo = dep.add_device(smart_plug, "wemo", load={"hazard": 1.0})
    window = dep.add_device(window_actuator, "window")
    stb = dep.add_device(set_top_box, "stb")
    bulb = dep.add_device(smart_bulb, "bulb")
    attacker = dep.add_attacker()
    owner = dep.add_attacker("owner_phone", latency=0.005)
    victim = Host("victim", dep.sim)
    dep.topology.add(victim)
    dep.topology.connect("edge", victim, latency=0.005)
    dep.hub.add_recipe(Recipe("evening-light", "env:occupancy", "present", "bulb", "on"))
    dep.finalize()

    if arm == "acl":
        # The admin's one-shot perimeter config: the remote app needs the
        # management and control ports, so they stay open; everything else
        # inbound from the uplink is dropped.
        edge = dep.edge
        internet_port = edge.port_to("internet")
        attacker_port = edge.port_to("attacker")
        for port in (internet_port, attacker_port):
            for allowed in (80, 8080):
                edge.install(
                    FlowRule(
                        match=FlowMatch(in_port=port, dport=allowed),
                        actions=(Action.controller(),),
                        priority=600,
                    )
                )
            edge.install(
                FlowRule(
                    match=FlowMatch(in_port=port),
                    actions=(Action.drop(),),
                    priority=400,
                )
            )

        def forwarder(switch, packet, in_port):
            hop = dep.topology.next_hop_port(switch.name, packet.dst)
            if hop is not None and hop != in_port:
                switch.send(packet, hop)

        edge.packet_in_handler = forwarder

    if arm == "iotsec":
        trusted = (dep.HUB, dep.CONTROLLER, "owner_phone")
        dep.secure(
            "cam",
            build_recommended_posture(
                "password_proxy", "cam", new_password=NEW_PASSWORD
            ),
        )
        # flaw-informed hardening from the vulnerability registry
        dep.secure(
            "wemo",
            build_recommended_posture("stateful_firewall", "wemo", trusted_sources=trusted),
        )
        dep.secure(
            "stb",
            build_recommended_posture("stateful_firewall", "stb", trusted_sources=trusted),
        )
        dep.secure(
            "window",
            build_recommended_posture("monitor", "window", sku=window.sku),
            pin=False,  # escalation may harden it further
        )
    return dep, {
        "cam": cam, "wemo": wemo, "window": window, "stb": stb, "bulb": bulb,
        "attacker": attacker, "owner": owner, "victim": victim,
    }


def run_arm(arm: str) -> dict:
    dep, nodes = build_home(arm)
    sim = dep.sim
    attacker = nodes["attacker"]
    owner = nodes["owner"]

    # --- attacks (staggered) ---
    results = {}
    sim.schedule(1.0, lambda: results.update(
        cred=EXPLOITS["default_credential_hijack"].launch(attacker, "cam", sim, resource="image")
    ))
    sim.schedule(5.0, lambda: results.update(
        backdoor=EXPLOITS["backdoor_command"].launch(
            attacker, "wemo", sim, backdoor_port=WEMO_BACKDOOR_PORT, command="on")
    ))
    sim.schedule(10.0, lambda: results.update(
        dns=EXPLOITS["dns_reflection_ddos"].launch(
            attacker, "wemo", sim, victim="victim", queries=30, rate=100.0)
    ))
    sim.schedule(20.0, lambda: results.update(
        brute=EXPLOITS["brute_force_login"].launch(attacker, "window", sim, command="open")
    ))
    sim.schedule(40.0, lambda: results.update(
        open_access=EXPLOITS["open_access_control"].launch(
            attacker, "stb", sim, port=8080, command="play")
    ))

    # --- benign operations ---
    benign = {"owner_login": False, "recipe_fired": False, "owner_wemo": False}
    password = NEW_PASSWORD if arm == "iotsec" else "admin"

    def owner_login() -> None:
        owner.request(
            protocol.login("owner_phone", "cam", "admin", password),
            lambda rep: benign.update(owner_login=protocol.is_ok(rep)),
        )

    sim.schedule(30.0, owner_login)
    sim.schedule(50.0, lambda: dep.env.discrete("occupancy").set("present"))

    def owner_wemo() -> None:
        owner.request(
            protocol.command("owner_phone", "wemo", "off", dport=8080),
            lambda rep: benign.update(owner_wemo=protocol.is_ok(rep)),
        )

    sim.schedule(60.0, owner_wemo)
    dep.run(until=120.0)

    benign["recipe_fired"] = nodes["bulb"].state == "on"
    reflected = sum(p.size for p in nodes["victim"].inbox if p.protocol == "dns")

    attack_outcomes = {
        "default-cred hijack (cam)": bool(attacker.loot_from("cam")),
        "backdoor (wemo)": any(
            r.via == "backdoor" and r.accepted for r in nodes["wemo"].command_log
        ),
        "dns reflection (wemo)": reflected > 30 * 60,
        "brute force (window)": nodes["window"].state == "open",
        "open access (stb)": nodes["stb"].state == "playing",
    }

    # Causal trace of the brute-force response on the IoTSec arm: the
    # window's posture hardening should be followable packet -> posture.
    trace_stages: list[dict] = []
    if arm == "iotsec":
        tracer = sim.tracer
        for trace_id in reversed(tracer.traces_for("window")):
            spans = tracer.spans(trace_id)
            if any(s.stage == "actuate" for s in spans):
                trace_stages = [s.as_dict() for s in spans]
                break

    return {
        "arm": arm,
        "attacks": attack_outcomes,
        "benign": benign,
        "blocked": sum(1 for ok in attack_outcomes.values() if not ok),
        "benign_ok": sum(1 for ok in benign.values() if ok),
        "trace": trace_stages,
    }


def test_e8_end_to_end(scenario_benchmark):
    def run_all():
        return [run_arm(arm) for arm in ("none", "acl", "iotsec")]

    results = scenario_benchmark(run_all)
    by_arm = {r["arm"]: r for r in results}

    attack_names = list(results[0]["attacks"])
    print_table(
        "E8: the full attack suite across defence arms (True = attacker wins)",
        ["Attack"] + [r["arm"] for r in results],
        [
            tuple([name] + [by_arm[r["arm"]]["attacks"][name] for r in results])
            for name in attack_names
        ],
    )
    print_table(
        "E8: summary",
        ["Arm", "Attacks blocked", "Benign preserved"],
        [
            (
                r["arm"],
                f"{r['blocked']}/{len(r['attacks'])}",
                f"{r['benign_ok']}/{len(r['benign'])}",
            )
            for r in results
        ],
    )
    record(
        scenario_benchmark,
        "summary",
        {r["arm"]: {"blocked": r["blocked"], "benign_ok": r["benign_ok"]} for r in results},
    )
    record(scenario_benchmark, "iotsec_trace", by_arm["iotsec"]["trace"])

    none, acl, iotsec = by_arm["none"], by_arm["acl"], by_arm["iotsec"]
    # current world: everything lands, benign works
    assert none["blocked"] == 0
    assert none["benign_ok"] == len(none["benign"])
    # the perimeter ACL blocks only the out-of-band vectors
    assert not acl["attacks"]["backdoor (wemo)"]
    assert not acl["attacks"]["dns reflection (wemo)"]
    assert acl["attacks"]["default-cred hijack (cam)"]
    assert acl["attacks"]["open access (stb)"]
    assert 0 < acl["blocked"] < len(acl["attacks"])
    # IoTSec blocks everything and preserves all benign operations
    assert iotsec["blocked"] == len(iotsec["attacks"])
    assert iotsec["benign_ok"] == len(iotsec["benign"])
    # ...and the response is causally traceable end to end: the brute-force
    # packets produced an alert, the alert an escalation, the escalation an
    # evaluation round, the round a posture actuation -- one trace.
    stages = {s["stage"] for s in iotsec["trace"]}
    assert {"detect", "ingest-alert", "escalate", "evaluate", "actuate"} <= stages
    assert all(s["latency"] >= 0 for s in iotsec["trace"])
