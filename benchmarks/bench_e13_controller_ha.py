"""E13: controller survivability -- failover blind window and storm shedding.

Two experiments from ``repro.faults.ha_scenario``, both seeded and
sim-timed (machine-independent):

**Failover**: the controller crashes at t=10 s, half a second before a
camera brute-force wave starts.  The *blind window* is attack time from
the crash until the first post-crash enforcing posture lands.

- **crash** arm -- periodic local checkpoints, no replica: an operator
  cold-restarts the controller 20 s later from checkpoint + journal tail;
  the blind window is essentially the outage.
- **standby** arm -- a hot standby consumes replicated checkpoints and
  journal deltas, detects the silence by heartbeat timeout, takes over
  under the primary's endpoint name (pending alert retransmissions
  deliver to it), and reconciles the surviving data plane.  The blind
  window collapses to detection time plus one escalation step.

**Storm**: a 10x telemetry flood (500 alerts/s against a 250/s service
ceiling) hits the controller's bounded ingest queue while genuine
enforcing-posture alerts keep arriving.  The **shed** arm prioritizes by
class and sheds telemetry at the watermark; the **fifo** arm is the same
queue as plain drop-tail.  Headline metrics: fraction of enforcing-class
alerts processed, and per-class P99 queueing latency.

The gate in ``benchmarks/regression.py`` holds the standby arm's blind
window under ``FAILOVER_BLIND_RATIO`` of the crash arm's and the shed
arm's enforcing fraction above ``STORM_MIN_ENFORCING_FRAC``.
"""

from __future__ import annotations

from _util import print_table, record

from repro.faults.ha_scenario import run_failover_scenario, run_storm_scenario

SEED = 7

FAILOVER_COLUMNS = (
    "attack_attempts",
    "cam_login_successes",
    "blind_window_s",
    "cam_enforced_at",
    "checkpoints",
    "failovers",
    "restarts",
    "ctrl_retries",
    "ctrl_giveups",
    "events",
)

STORM_COLUMNS = (
    "enforcing_processed_frac",
    "shed_transitions",
    "events",
)


def run_failover_arms(seed: int = SEED) -> list[dict]:
    return [run_failover_scenario(standby, seed=seed) for standby in (False, True)]


def run_storm_arms(seed: int = SEED) -> list[dict]:
    return [run_storm_scenario(shedding, seed=seed) for shedding in (False, True)]


def run_arms(seed: int = SEED) -> dict[str, list[dict]]:
    return {"failover": run_failover_arms(seed), "storm": run_storm_arms(seed)}


def test_e13_controller_ha(scenario_benchmark):
    results = scenario_benchmark(run_arms)
    crash, standby = results["failover"]
    fifo, shed = results["storm"]

    print_table(
        "E13a: blind window -- cold restart vs hot-standby failover",
        ["Metric", "crash", "standby"],
        [(col, crash.get(col), standby.get(col)) for col in FAILOVER_COLUMNS],
    )
    storm_rows = [
        (col, fifo.get(col), shed.get(col)) for col in STORM_COLUMNS
    ]
    for cls in ("enforcing", "telemetry"):
        storm_rows.append(
            (
                f"p99_latency_s[{cls}]",
                fifo["p99_latency_s"][cls],
                shed["p99_latency_s"][cls],
            )
        )
        storm_rows.append(
            (
                f"dropped[{cls}]",
                fifo["queue"]["dropped"][cls],
                shed["queue"]["dropped"][cls],
            )
        )
    print_table(
        "E13b: 10x alert storm -- drop-tail FIFO vs prioritized shedding",
        ["Metric", "fifo", "shed"],
        storm_rows,
    )
    record(
        scenario_benchmark,
        "arms",
        {
            "failover": {r["arm"]: r for r in results["failover"]},
            "storm": {r["arm"]: r for r in results["storm"]},
        },
    )

    # Determinism: the same seed reproduces the same run, bit for bit --
    # this is what lets CI gate on these numbers across machines.
    assert run_arms() == results

    # Both arms face the identical attack schedule...
    assert crash["attack_attempts"] == standby["attack_attempts"]
    # ...but failover collapses the blind window to well under a fifth of
    # the cold-restart outage (the issue's acceptance bound is < 20%).
    assert standby["blind_window_s"] < 0.2 * crash["blind_window_s"]
    assert standby["failovers"] == 1 and standby["restarts"] == 0
    assert crash["failovers"] == 0 and crash["restarts"] == 1
    # The standby adopts the primary's endpoint, so the alert retries that
    # accumulated against the dead controller are delivered, not abandoned.
    assert standby["ctrl_giveups"] == 0
    # The camera is firewalled shortly after takeover; during the cold
    # restart's outage the attacker logs in at will.
    assert standby["cam_login_successes"] < crash["attack_attempts"] / 4

    # Storm: same flood, same service rate, same capacity in both arms.
    assert fifo["events"] > 0 and shed["events"] > 0
    # Shedding keeps >= 90% of enforcing-class alerts (the issue's bound);
    # drop-tail loses them indiscriminately alongside the telemetry.
    assert shed["enforcing_processed_frac"] >= 0.90
    assert fifo["enforcing_processed_frac"] < 0.5
    # Priority service also bounds enforcing-class queueing latency: the
    # storm cannot queue ahead of a real alert.
    assert (
        shed["p99_latency_s"]["enforcing"] < fifo["p99_latency_s"]["enforcing"]
    )
    assert shed["shed_transitions"] > 0 and fifo["shed_transitions"] == 0
