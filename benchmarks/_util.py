"""Shared helpers for the benchmark harness.

Every bench prints a paper-style table (visible with ``pytest -s`` or in
the captured output) and attaches the same rows to
``benchmark.extra_info`` so the numbers survive into pytest-benchmark's
JSON output.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> None:
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "+".join("-" * (w + 2) for w in widths)

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(w) for cell, w in zip(cells, widths))

    print()
    print(f"== {title} ==")
    print(fmt(headers))
    print(line)
    for row in rows:
        print(fmt(row))


def record(benchmark: Any, key: str, value: Any) -> None:
    """Attach a result to the pytest-benchmark JSON, if available."""
    extra = getattr(benchmark, "extra_info", None)
    if extra is not None:
        extra[key] = value


def percent(x: float) -> str:
    return f"{100.0 * x:.1f}%"
