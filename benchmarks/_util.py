"""Shared helpers for the benchmark harness.

Every bench prints a paper-style table (visible with ``pytest -s`` or in
the captured output) and attaches the same rows to
``benchmark.extra_info`` so the numbers survive into pytest-benchmark's
JSON output.  :func:`record` additionally writes each bench's rows to a
JSON baseline under ``benchmarks/results/`` so runs can be diffed across
commits without the pytest-benchmark machinery.
"""

from __future__ import annotations

import datetime
import json
import subprocess
from pathlib import Path
from typing import Any, Iterable, Sequence

RESULTS_DIR = Path(__file__).resolve().parent / "results"

_GIT_SHA: str | None = None


def _git_sha() -> str:
    """Short commit SHA of the working tree (cached; "unknown" outside git)."""
    global _GIT_SHA
    if _GIT_SHA is None:
        try:
            _GIT_SHA = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=Path(__file__).resolve().parent,
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip() or "unknown"
        except (OSError, subprocess.SubprocessError):
            _GIT_SHA = "unknown"
    return _GIT_SHA


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> None:
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "+".join("-" * (w + 2) for w in widths)

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(w) for cell, w in zip(cells, widths))

    print()
    print(f"== {title} ==")
    print(fmt(headers))
    print(line)
    for row in rows:
        print(fmt(row))


def _benchmark_name(benchmark: Any) -> str | None:
    """The owning test's name, whether given the fixture or our wrapper."""
    raw = getattr(benchmark, "raw", benchmark)
    name = getattr(raw, "name", None)
    return name if isinstance(name, str) and name else None


def record(benchmark: Any, key: str, value: Any) -> None:
    """Attach a result to the pytest-benchmark JSON and to the on-disk
    baseline for this bench (``benchmarks/results/<test name>.json``)."""
    extra = getattr(benchmark, "extra_info", None)
    if extra is not None:
        extra[key] = value
    name = _benchmark_name(benchmark)
    if name is None:
        return
    safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in name)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{safe}.json"
    baseline: dict[str, Any] = {"benchmark": name}
    if path.exists():
        try:
            baseline = json.loads(path.read_text())
        except (OSError, ValueError):
            pass
    baseline[key] = value
    # Provenance: which commit produced these numbers, and when.
    baseline["git_sha"] = _git_sha()
    baseline["recorded_at"] = (
        datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds")
    )
    path.write_text(json.dumps(baseline, indent=2, sort_keys=True, default=str) + "\n")


def record_metrics(benchmark: Any, sim: Any) -> None:
    """Embed the simulator's metrics-registry snapshot in the baseline."""
    record(benchmark, "metrics", sim.metrics.snapshot())


def percent(x: float) -> str:
    return f"{100.0 * x:.1f}%"
