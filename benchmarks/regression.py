"""Continuous perf-regression gate.

Runs the load-bearing benchmarks (E9 whole-stack scale, the observability
overhead pair), compares the numbers against the committed baselines under
``benchmarks/results/``, appends one entry to the repo-level
``BENCH_TRAJECTORY.json`` (the perf history across commits), and exits
non-zero when a pinned threshold is violated -- this is what the CI
``bench-regression`` job runs.

Two kinds of checks, because wall-clock throughput is machine-dependent
but the simulation itself is deterministic:

- **throughput**: E9 events/s may not drop more than
  ``THROUGHPUT_REGRESSION`` below the committed baseline, and the
  instrumentation overhead may not exceed ``OBS_OVERHEAD_LIMIT``;
- **determinism**: simulated event counts, pipeline rounds and applies
  must match the baseline within ``EVENT_COUNT_DRIFT`` -- these numbers
  do not depend on the machine, so any drift is a behavior change that
  should have re-recorded the baselines (run the benches, commit the
  updated ``benchmarks/results/*.json``);
- **resilience**: the E12 chaos scenario's exposure window (sim-time, so
  also machine-independent) -- the resilient arm must stay strictly below
  the no-resilience arm and within ``RESILIENCE_REGRESSION`` of its
  committed baseline;
- **survivability**: the E13 controller-HA pair -- the hot-standby blind
  window must stay under ``FAILOVER_BLIND_RATIO`` of the cold-restart
  arm's, and prioritized shedding must process at least
  ``STORM_MIN_ENFORCING_FRAC`` of enforcing-class alerts under the 10x
  storm;
- **durability**: the E14 telemetry-plane pair (also sim-time) -- the
  durable arm must deliver every record it emitted across the 2.5 h
  partition (``telemetry_loss == 0``, a hard gate) with the buffer's
  peak depth under ``E14_PEAK_BUFFER_LIMIT``, while the lossy arm still
  shows the loss the durable plane exists to prevent.  The durable arm's
  dead-letter queue is exported to ``results/dlq_sample.jsonl`` as a CI
  artifact.
- **campaigns (E16)**: the full adversarial campaign corpus, per class
  (sim-time, fully seeded).  Hard gates: the *enforcing* classes
  (single-flaw, lateral-movement, automation-abuse) must end with **zero
  containment misses**, and the fabric-degradation class must produce
  real degradation evidence (sinkholed/bypassed packets, µmbox outages,
  re-pins, and at least one campaign-containment burn-rate breach) while
  still containing by horizon.  Per-class recall drift-checks against
  the committed bench results.  The full scorecard is exported to
  ``results/campaign_scorecard.json`` as a CI artifact.
- **health/SLO**: two deterministic health-plane runs (sim-time only, no
  baseline needed) -- the standard seeded run must end all-green (rollup
  ``ok``, zero SLO breaches) and the chaos plan must trip at least one
  burn-rate breach *and* journal a matching ``slo-recover`` carrying the
  breach's trace id.  Both verdicts are written to
  ``results/health_snapshot.json`` as a CI artifact.
- **federation (E15)**: the gate pair (one fleet run single-site vs
  sharded across ``E15_SITES`` federated sites) must keep a
  >= ``E15_MIN_SPEEDUP`` aggregate-throughput edge, and the seeded
  coordinator-blackout scenario must show **zero enforcement gaps** (a
  hard property, like E14's zero loss), in-order replay, convergence
  and the poisoned report quarantined -- plus determinism drift on its
  counters.  The full federation run is exported to
  ``results/federation_snapshot.json`` as a CI artifact.

Usage::

    PYTHONPATH=src python benchmarks/regression.py [--json] [--record]

``--record`` refreshes the committed wall-clock baselines
(``test_e9_whole_stack_scale.json``, ``test_e9_small_core_capacity.json``,
``test_obs_overhead.json``) from this run's own best-of-N measurements.
Baselines must be recorded with the *same estimator the gate uses*: a
single lucky pytest-bench pass committed as the baseline would make the
tightened 10% gate flake on the next ordinary run.

``compare`` is a pure function over plain dicts so the gate itself is
unit-testable (including the synthetic-regression case) without running
any benchmark.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any

# ---------------------------------------------------------------------------
# Regression thresholds -- the ONE place CI gates are pinned.  Environment
# variables override for local experiments; CI uses these values.
# ---------------------------------------------------------------------------
THROUGHPUT_REGRESSION = 0.10   # max fractional E9 events/s drop vs baseline
OBS_OVERHEAD_LIMIT = 0.10      # max instrumentation overhead (on vs off arm)
EVENT_COUNT_DRIFT = 0.02       # max fractional drift of deterministic counts
RESILIENCE_REGRESSION = 0.20   # max fractional growth of E12's exposure window
FAILOVER_BLIND_RATIO = 0.20    # max standby blind window / crash blind window
STORM_MIN_ENFORCING_FRAC = 0.90  # min enforcing-alert fraction under shedding
E14_PEAK_BUFFER_LIMIT = 2048   # max stream-buffer records held during the outage
E15_MIN_SPEEDUP = 1.5          # min federated/single aggregate-throughput ratio
E15_GATE_DEVICES = 2000        # fleet size of the gate's single-vs-federated pair
E15_SITES = 4                  # federated sites (and worker processes) in the gate
OBS_PROFILE_FRAC = 0.10        # max share of hot-loop time in any obs frame
SWEEP = (10, 40, 80)           # E9 device counts measured by the gate
REPEATS = 5                    # best-of-N wall-clock estimator per data point
DETERMINISTIC_KEYS = ("events", "pipeline_rounds", "pipeline_applies")
E12_DETERMINISTIC_KEYS = ("attack_attempts", "attack_successes", "events")
E13_DETERMINISTIC_KEYS = ("attack_attempts", "blind_window_s", "events")
E14_DETERMINISTIC_KEYS = (
    "emitted",
    "received",
    "telemetry_loss",
    "delivered",
    "peak_depth",
    "events",
)
E16_DETERMINISTIC_KEYS = ("campaigns", "recall", "containment_breaches")
E15_DETERMINISTIC_KEYS = (
    "events",
    "attacks_launched",
    "attacks_blocked",
    "enforcement_gaps",
    "signatures_propagated",
    "dlq_quarantined",
    "autonomy_enters",
    "autonomy_exits",
    "out_of_order",
    "pending_after",
)

BENCH_DIR = Path(__file__).resolve().parent
RESULTS_DIR = BENCH_DIR / "results"
TRAJECTORY_PATH = BENCH_DIR.parent / "BENCH_TRAJECTORY.json"
SPILL_SAMPLE_PATH = RESULTS_DIR / "journal_spill_sample.jsonl"
DLQ_SAMPLE_PATH = RESULTS_DIR / "dlq_sample.jsonl"
HEALTH_SNAPSHOT_PATH = RESULTS_DIR / "health_snapshot.json"
FEDERATION_SNAPSHOT_PATH = RESULTS_DIR / "federation_snapshot.json"
CAMPAIGN_SCORECARD_PATH = RESULTS_DIR / "campaign_scorecard.json"

E9_BASELINE = RESULTS_DIR / "test_e9_whole_stack_scale.json"
E9_SMALL_BASELINE = RESULTS_DIR / "test_e9_small_core_capacity.json"
OVERHEAD_BASELINE = RESULTS_DIR / "test_obs_overhead.json"
E12_BASELINE = RESULTS_DIR / "test_e12_resilience.json"
E13_BASELINE = RESULTS_DIR / "test_e13_controller_ha.json"
E14_BASELINE = RESULTS_DIR / "test_e14_durable_telemetry.json"
E15_BASELINE = RESULTS_DIR / "test_e15_federation.json"
E16_BASELINE = RESULTS_DIR / "test_e16_campaign_scorecard.json"


def _threshold(env: str, default: float) -> float:
    return float(os.environ.get(env, default))


# ---------------------------------------------------------------------------
# The pure gate
# ---------------------------------------------------------------------------
def compare(
    current: dict[str, Any],
    baseline: dict[str, Any],
    throughput_regression: float | None = None,
    obs_overhead_limit: float | None = None,
    event_count_drift: float | None = None,
    resilience_regression: float | None = None,
    failover_blind_ratio: float | None = None,
    storm_min_enforcing_frac: float | None = None,
    obs_profile_frac: float | None = None,
    e14_peak_buffer_limit: float | None = None,
    e15_min_speedup: float | None = None,
) -> list[str]:
    """Return the list of violations of ``current`` against ``baseline``.

    Both are plain dicts: ``{"e9": [sweep rows], "obs_overhead": float,
    "e12": {"baseline": {...}, "resilient": {...}},
    "e13": {"failover": {"crash": {...}, "standby": {...}},
    "storm": {"fifo": {...}, "shed": {...}}}}``.
    Sweep rows join on their ``devices`` value; sizes present in only one
    side are skipped (the gate never fails on missing data -- a vanished
    baseline is a repo problem, not a perf regression).
    """
    if throughput_regression is None:
        throughput_regression = _threshold(
            "REPRO_REGRESSION_THROUGHPUT", THROUGHPUT_REGRESSION
        )
    if obs_overhead_limit is None:
        obs_overhead_limit = _threshold(
            "REPRO_OBS_OVERHEAD_THRESHOLD", OBS_OVERHEAD_LIMIT
        )
    if event_count_drift is None:
        event_count_drift = _threshold(
            "REPRO_REGRESSION_COUNT_DRIFT", EVENT_COUNT_DRIFT
        )
    if resilience_regression is None:
        resilience_regression = _threshold(
            "REPRO_REGRESSION_RESILIENCE", RESILIENCE_REGRESSION
        )
    if failover_blind_ratio is None:
        failover_blind_ratio = _threshold(
            "REPRO_REGRESSION_FAILOVER_RATIO", FAILOVER_BLIND_RATIO
        )
    if storm_min_enforcing_frac is None:
        storm_min_enforcing_frac = _threshold(
            "REPRO_REGRESSION_STORM_FRAC", STORM_MIN_ENFORCING_FRAC
        )
    if obs_profile_frac is None:
        obs_profile_frac = _threshold("REPRO_OBS_PROFILE_FRAC", OBS_PROFILE_FRAC)
    if e14_peak_buffer_limit is None:
        e14_peak_buffer_limit = _threshold(
            "REPRO_E14_PEAK_BUFFER", E14_PEAK_BUFFER_LIMIT
        )
    if e15_min_speedup is None:
        e15_min_speedup = _threshold("REPRO_E15_GATE_SPEEDUP", E15_MIN_SPEEDUP)

    violations: list[str] = []
    base_rows = {row["devices"]: row for row in baseline.get("e9", ())}
    for row in current.get("e9", ()):
        base = base_rows.get(row["devices"])
        if base is None:
            continue
        label = f"e9@{row['devices']}dev"
        if base.get("events_per_s", 0) > 0:
            drop = 1.0 - row["events_per_s"] / base["events_per_s"]
            if drop > throughput_regression:
                violations.append(
                    f"{label}: throughput dropped {drop:.1%} "
                    f"({base['events_per_s']:,.0f} -> {row['events_per_s']:,.0f} "
                    f"events/s, limit {throughput_regression:.0%})"
                )
        for key in DETERMINISTIC_KEYS:
            if key not in base or key not in row:
                continue
            b, c = base[key], row[key]
            if abs(c - b) > event_count_drift * max(abs(b), 1):
                violations.append(
                    f"{label}: deterministic counter {key} drifted "
                    f"{b} -> {c} (allowed {event_count_drift:.0%}); "
                    "a behavior change must re-record the baselines"
                )

    # E9-small: the event-loop core probe, gated like the sweep rows
    # (baseline-relative throughput plus exact deterministic event count).
    small = current.get("e9_small")
    base_small = baseline.get("e9_small")
    if small and base_small:
        if base_small.get("events_per_s", 0) > 0:
            drop = 1.0 - small["events_per_s"] / base_small["events_per_s"]
            if drop > throughput_regression:
                violations.append(
                    f"e9-small: core capacity dropped {drop:.1%} "
                    f"({base_small['events_per_s']:,.0f} -> "
                    f"{small['events_per_s']:,.0f} events/s, "
                    f"limit {throughput_regression:.0%})"
                )
        if "events" in base_small and small.get("events") != base_small["events"]:
            violations.append(
                f"e9-small: deterministic event count drifted "
                f"{base_small['events']} -> {small.get('events')}; "
                "a behavior change must re-record the baselines"
            )

    overhead = current.get("obs_overhead")
    if overhead is not None and overhead > obs_overhead_limit:
        violations.append(
            f"obs-overhead: instrumentation costs {overhead:.1%} of "
            f"throughput (limit {obs_overhead_limit:.0%})"
        )

    # cProfile smoke: instrumentation must stay amortized -- no single
    # obs frame may own more than ``obs_profile_frac`` of hot-loop time.
    profile = current.get("obs_profile")
    if profile and profile.get("max_frac", 0.0) > obs_profile_frac:
        violations.append(
            f"obs-profile: frame {profile.get('max_frame')} owns "
            f"{profile['max_frac']:.1%} of hot-loop time "
            f"(limit {obs_profile_frac:.0%}); a per-event cost snuck "
            "back into the observability layer"
        )

    # E12: the resilience property itself (the resilient arm must bound
    # the exposure window strictly below the no-resilience arm), plus a
    # pinned ceiling on how far the resilient window may grow versus the
    # committed numbers.  All sim-time, so machine-independent.
    e12 = current.get("e12") or {}
    e12_base = baseline.get("e12") or {}
    cur_res, cur_none = e12.get("resilient"), e12.get("baseline")
    if cur_res and cur_none:
        if cur_res["exposure_s"] >= cur_none["exposure_s"]:
            violations.append(
                f"e12: resilience no longer bounds the exposure window "
                f"({cur_res['exposure_s']}s resilient vs "
                f"{cur_none['exposure_s']}s without)"
            )
        committed = e12_base.get("resilient") or {}
        if committed.get("exposure_s", 0) > 0:
            growth = cur_res["exposure_s"] / committed["exposure_s"] - 1.0
            if growth > resilience_regression:
                violations.append(
                    f"e12: resilient exposure window grew {growth:.1%} "
                    f"({committed['exposure_s']}s -> {cur_res['exposure_s']}s, "
                    f"limit {resilience_regression:.0%})"
                )
        for arm, committed_arm in e12_base.items():
            cur_arm = e12.get(arm)
            if not cur_arm:
                continue
            for key in E12_DETERMINISTIC_KEYS:
                if key not in committed_arm or key not in cur_arm:
                    continue
                b, c = committed_arm[key], cur_arm[key]
                if abs(c - b) > event_count_drift * max(abs(b), 1):
                    violations.append(
                        f"e12/{arm}: deterministic counter {key} drifted "
                        f"{b} -> {c} (allowed {event_count_drift:.0%}); "
                        "a behavior change must re-record the baselines"
                    )

    # E13: controller survivability.  Hard property gates first (ratios
    # are pinned thresholds, not baseline-relative -- these are the
    # issue's acceptance criteria), then determinism drift per arm.
    e13 = current.get("e13") or {}
    e13_base = baseline.get("e13") or {}
    failover = e13.get("failover") or {}
    crash, standby = failover.get("crash"), failover.get("standby")
    if crash and standby and crash.get("blind_window_s", 0) > 0:
        ratio = standby["blind_window_s"] / crash["blind_window_s"]
        if ratio > failover_blind_ratio:
            violations.append(
                f"e13: failover blind window is {ratio:.1%} of the "
                f"cold-restart window ({standby['blind_window_s']}s vs "
                f"{crash['blind_window_s']}s, limit {failover_blind_ratio:.0%})"
            )
    shed = (e13.get("storm") or {}).get("shed")
    if shed and shed.get("enforcing_processed_frac") is not None:
        frac = shed["enforcing_processed_frac"]
        if frac < storm_min_enforcing_frac:
            violations.append(
                f"e13: shedding processed only {frac:.1%} of enforcing "
                f"alerts under the storm (floor {storm_min_enforcing_frac:.0%})"
            )
    for group in ("failover", "storm"):
        for arm, committed_arm in (e13_base.get(group) or {}).items():
            cur_arm = (e13.get(group) or {}).get(arm)
            if not cur_arm:
                continue
            for key in E13_DETERMINISTIC_KEYS:
                if key not in committed_arm or key not in cur_arm:
                    continue
                b, c = committed_arm[key], cur_arm[key]
                if abs(c - b) > event_count_drift * max(abs(b), 1):
                    violations.append(
                        f"e13/{group}/{arm}: deterministic counter {key} "
                        f"drifted {b} -> {c} (allowed {event_count_drift:.0%}); "
                        "a behavior change must re-record the baselines"
                    )

    # E14: telemetry durability.  Zero loss is an absolute property, not a
    # baseline delta: any record the durable plane emitted but never
    # processed is a bug.  The peak-depth ceiling pins bounded memory, and
    # the lossy arm must keep *showing* loss -- if it stops, the scenario
    # no longer exercises the partition the durable plane exists for.
    e14 = current.get("e14") or {}
    e14_base = baseline.get("e14") or {}
    durable, lossy = e14.get("durable"), e14.get("lossy")
    if durable:
        if durable.get("telemetry_loss", 0) != 0:
            violations.append(
                f"e14: durable arm lost {durable['telemetry_loss']} records "
                "across the partition (must be exactly 0)"
            )
        if durable.get("peak_depth", 0) > e14_peak_buffer_limit:
            violations.append(
                f"e14: stream buffer peaked at {durable['peak_depth']} records "
                f"(ceiling {e14_peak_buffer_limit:.0f}); the outage no longer "
                "fits the pinned memory budget"
            )
    if lossy and lossy.get("telemetry_loss", 1) <= 0:
        violations.append(
            "e14: the lossy arm shows no telemetry loss -- the partition "
            "scenario stopped exercising the failure the durable plane "
            "is gated on"
        )
    for arm, committed_arm in e14_base.items():
        cur_arm = e14.get(arm)
        if not cur_arm:
            continue
        for key in E14_DETERMINISTIC_KEYS:
            if key not in committed_arm or key not in cur_arm:
                continue
            b, c = committed_arm[key], cur_arm[key]
            if abs(c - b) > event_count_drift * max(abs(b), 1):
                violations.append(
                    f"e14/{arm}: deterministic counter {key} drifted "
                    f"{b} -> {c} (allowed {event_count_drift:.0%}); "
                    "a behavior change must re-record the baselines"
                )

    # E15: the federated control plane.  The gate pair's speedup is a
    # pinned ratio of two same-machine wall clocks, so it gates without a
    # committed baseline; the blackout scenario's properties are absolute
    # (zero enforcement gaps is the federation's E14-style hard gate) and
    # its counters are sim-deterministic, so they drift-check against the
    # committed bench results.
    e15 = current.get("e15") or {}
    e15_base = baseline.get("e15") or {}
    pair = e15.get("pair")
    if pair:
        if pair.get("speedup", 0.0) < e15_min_speedup:
            violations.append(
                f"e15: federated aggregate throughput is only "
                f"{pair.get('speedup', 0.0):.2f}x the single-site arm at "
                f"{pair.get('devices')} devices (floor {e15_min_speedup}x)"
            )
        if pair.get("compromised", 0) != 0:
            violations.append(
                f"e15: {pair['compromised']} device(s) compromised in the "
                "scale pair (must be 0 -- sharding broke enforcement)"
            )
    blackout = e15.get("blackout")
    if blackout:
        if blackout.get("enforcement_gaps", 1) != 0:
            violations.append(
                f"e15: {blackout.get('enforcement_gaps')} enforcement gap(s) "
                "during the coordinator blackout (must be exactly 0 -- sites "
                "stopped enforcing on cached policy): "
                f"{blackout.get('gap_details', '')}"
            )
        if not blackout.get("converged", False):
            violations.append(
                "e15: the federation did not reconverge after the blackout "
                "heal -- a site's replay cursor is wedged"
            )
        if blackout.get("out_of_order", 1) != 0:
            violations.append(
                f"e15: {blackout.get('out_of_order')} out-of-order signature "
                "update(s) observed (the versioned replay contract is broken)"
            )
        if blackout.get("dlq_quarantined", 0) < 1:
            violations.append(
                "e15: the poisoned signature report was not quarantined -- "
                "repository validation regressed"
            )
        committed = e15_base.get("blackout") or {}
        for key in E15_DETERMINISTIC_KEYS:
            if key not in committed or key not in blackout:
                continue
            b, c = committed[key], blackout[key]
            if abs(c - b) > event_count_drift * max(abs(b), 1):
                violations.append(
                    f"e15/blackout: deterministic counter {key} drifted "
                    f"{b} -> {c} (allowed {event_count_drift:.0%}); "
                    "a behavior change must re-record the baselines"
                )

    # E16: the adversarial campaign corpus.  Containment on the enforcing
    # classes is an absolute property (like E14's zero loss): a campaign
    # the defense is pinned to contain that ends uncontained is a bug,
    # not a drift.  The fabric-degradation class is gated on *evidence*
    # that the degradation really happened (stolen packets, outages,
    # re-pins, a burn-rate breach) -- a fabric campaign that stops
    # degrading anything is a scenario regression.  Per-class recall
    # drift-checks against the committed bench numbers.
    e16 = current.get("e16") or {}
    e16_base = baseline.get("e16") or {}
    e16_summary = e16.get("summary") or {}
    if e16_summary:
        missed = e16_summary.get("enforcing_misses", [])
        if missed:
            violations.append(
                f"e16: enforcing-class campaign(s) left {', '.join(missed)} "
                "uncontained (must be zero containment misses)"
            )
        evidence = e16_summary.get("fabric_evidence") or {}
        if not evidence.get("fabric_degraded", False):
            violations.append(
                "e16: no fabric-degradation campaign stole any packets -- "
                "the compromised-switch scenarios stopped degrading the fabric"
            )
        if evidence.get("outages", 0) < 1 or evidence.get("repins", 0) < 1:
            violations.append(
                f"e16: fabric class shows {evidence.get('outages', 0)} "
                f"outage(s) / {evidence.get('repins', 0)} re-pin(s) "
                "(needs >= 1 of each -- the µmbox-outage campaign went inert)"
            )
        if evidence.get("containment_breaches", 0) < 1:
            violations.append(
                "e16: no campaign-containment burn-rate breach fired -- a "
                "degraded-fabric miss would be silent (SLO fold-in regressed)"
            )
    for name, committed_cls in (e16_base.get("classes") or {}).items():
        cur_cls = (e16.get("classes") or {}).get(name)
        if not cur_cls:
            continue
        for key in E16_DETERMINISTIC_KEYS:
            if key not in committed_cls or key not in cur_cls:
                continue
            b, c = committed_cls[key], cur_cls[key]
            if abs(c - b) > event_count_drift * max(abs(b), 1):
                violations.append(
                    f"e16/{name}: deterministic counter {key} drifted "
                    f"{b} -> {c} (allowed {event_count_drift:.0%}); "
                    "a behavior change must re-record the baselines"
                )

    # Health/SLO plane: properties of the current run only (both health
    # scenarios are deterministic sim-time runs, so there is no committed
    # baseline to drift against).  The standard seeded run must come up
    # all-green, and the chaos plan must both trip a burn-rate breach and
    # journal a recovery carrying the same trace id -- if either side
    # fails, the SLO detectors (or the breach->recover chain the incident
    # reconstructor walks) regressed.
    health = current.get("health") or {}
    steady = health.get("steady") or {}
    if steady:
        if steady.get("rollup") != "ok":
            violations.append(
                f"health/steady: deployment rollup is "
                f"{steady.get('rollup')!r} on the standard seeded run "
                "(must be 'ok' -- a fault-free deployment reports sick)"
            )
        if steady.get("slo_breaches", 0) != 0:
            violations.append(
                f"health/steady: {steady.get('slo_breaches')} SLO "
                "breach(es) fired on the standard seeded run (must be 0; "
                "a burn-rate detector went trigger-happy)"
            )
    chaos = health.get("chaos") or {}
    if chaos:
        if chaos.get("slo_breaches", 0) < 1:
            violations.append(
                "health/chaos: the chaos plan tripped no SLO breach -- "
                "burn-rate detection went blind to a partition it is "
                "pinned to catch"
            )
        elif chaos.get("matched_recoveries", 0) < 1:
            violations.append(
                "health/chaos: no slo-recover shares its breach's trace "
                "id -- the journaled breach->recover chain is broken"
            )
    return violations


def append_trajectory(
    entry: dict[str, Any], path: Path | str = TRAJECTORY_PATH
) -> list[dict[str, Any]]:
    """Append one run's entry to the trajectory file; returns the history."""
    path = Path(path)
    history: list[dict[str, Any]] = []
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, list):
                history = loaded
        except (OSError, ValueError):
            pass
    history.append(entry)
    path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    return history


def load_baseline() -> dict[str, Any]:
    """The committed numbers this run is gated against."""
    baseline: dict[str, Any] = {
        "e9": [],
        "e9_small": None,
        "obs_overhead": None,
        "e12": {},
        "e13": {},
        "e14": {},
        "e15": {},
        "e16": {},
    }
    if E9_BASELINE.exists():
        baseline["e9"] = json.loads(E9_BASELINE.read_text()).get("sweep", [])
    if E9_SMALL_BASELINE.exists():
        baseline["e9_small"] = json.loads(E9_SMALL_BASELINE.read_text()).get("small")
    if OVERHEAD_BASELINE.exists():
        overhead = json.loads(OVERHEAD_BASELINE.read_text()).get("overhead", {})
        baseline["obs_overhead"] = overhead.get("overhead")
    if E12_BASELINE.exists():
        baseline["e12"] = json.loads(E12_BASELINE.read_text()).get("arms", {})
    if E13_BASELINE.exists():
        baseline["e13"] = json.loads(E13_BASELINE.read_text()).get("arms", {})
    if E14_BASELINE.exists():
        baseline["e14"] = json.loads(E14_BASELINE.read_text()).get("arms", {})
    if E15_BASELINE.exists():
        data = json.loads(E15_BASELINE.read_text())
        baseline["e15"] = {"blackout": data.get("blackout") or {}}
    if E16_BASELINE.exists():
        baseline["e16"] = json.loads(E16_BASELINE.read_text()).get("scorecard", {})
    return baseline


# ---------------------------------------------------------------------------
# Measurement (lazy bench imports so the pure gate is importable anywhere)
# ---------------------------------------------------------------------------
def profile_obs_share() -> dict[str, Any]:
    """cProfile smoke over one E9 run: the observability layer's share.

    Profiles a small whole-stack run and reports, for every frame whose
    code lives under ``repro/obs``, its *own* (tottime) share of the
    hot-loop total.  The amortized-telemetry contract says instrumentation
    rides the hot path as plain attribute adds and buffered appends, so no
    single obs frame may exceed ``OBS_PROFILE_FRAC`` of the run -- if one
    does, a per-event cost snuck back in (e.g. an eager gauge evaluation
    or a per-record flush) and the gate fails.
    """
    import cProfile
    import pstats

    if str(BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(BENCH_DIR))
    from bench_e9_scale import run_scale

    profiler = cProfile.Profile()
    profiler.enable()
    run_scale(SWEEP[0]).pop("sim")
    profiler.disable()

    stats = pstats.Stats(profiler)
    sep = os.sep
    obs_marker = f"{sep}repro{sep}obs{sep}"
    total = 0.0
    obs_frames: dict[str, float] = {}
    for (filename, lineno, funcname), (
        __cc,
        __nc,
        tottime,
        __ct,
        __callers,
    ) in stats.stats.items():  # type: ignore[attr-defined]
        total += tottime
        if obs_marker in filename:
            frame = f"{Path(filename).name}:{lineno}({funcname})"
            obs_frames[frame] = obs_frames.get(frame, 0.0) + tottime
    if total <= 0.0:
        return {"max_frame": None, "max_frac": 0.0, "frames": {}}
    shares = {
        frame: tottime / total for frame, tottime in sorted(
            obs_frames.items(), key=lambda kv: kv[1], reverse=True
        )
    }
    max_frame = next(iter(shares), None)
    return {
        "max_frame": max_frame,
        "max_frac": shares.get(max_frame, 0.0) if max_frame else 0.0,
        "frames": dict(list(shares.items())[:10]),
    }


def measure() -> dict[str, Any]:
    if str(BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(BENCH_DIR))
    from bench_e12_resilience import run_arms
    from bench_e13_controller_ha import run_arms as run_ha_arms
    from bench_e14_durable_telemetry import run_arms as run_durable_arms
    from bench_e9_scale import run_scale, run_small
    from bench_obs_overhead import measure_overhead

    current: dict[str, Any] = {"e9": []}
    spill_sim = None
    run_scale(SWEEP[0]).pop("sim")  # warmup: import costs, branch caches
    for n in SWEEP:
        # Best-of-N: wall-clock noise only ever makes a run look slower,
        # so the max over repeats estimates true throughput (the small
        # sweep sizes finish in milliseconds and are otherwise dominated
        # by scheduler/caching noise).
        rows = [run_scale(n) for _ in range(REPEATS)]
        for row in rows:
            spill_sim = row.pop("sim")
        current["e9"].append(max(rows, key=lambda r: r["events_per_s"]))

    # E9-small: the event-loop core capacity probe (best-of-N).
    small_rows = [run_small() for _ in range(REPEATS)]
    current["e9_small"] = max(small_rows, key=lambda r: r["events_per_s"])

    # Warmed interleaved best-of-N pairs, shared with the overhead bench
    # (one estimator, one definition of "overhead" everywhere).
    estimate = measure_overhead(repeats=REPEATS)
    current["obs_overhead"] = estimate["overhead"]
    current["journal_recorded"] = estimate["on"]["journal"]

    # cProfile smoke: no single obs-layer frame may dominate the hot loop.
    current["obs_profile"] = profile_obs_share()

    # E12/E13/E14 are deterministic (sim-time only): one run is the number.
    current["e12"] = {row["arm"]: row for row in run_arms()}
    ha = run_ha_arms()
    current["e13"] = {
        group: {row["arm"]: row for row in rows} for group, rows in ha.items()
    }
    # E14 also exports the durable arm's dead-letter queue as a CI
    # artifact alongside the journal sample below.
    RESULTS_DIR.mkdir(exist_ok=True)
    current["e14"] = {
        row["arm"]: row for row in run_durable_arms(str(DLQ_SAMPLE_PATH))
    }

    # Health/SLO verdicts (also deterministic): the all-green steady run
    # and the chaos plan with its journaled breach->recover chains.  The
    # full summaries ship as a CI artifact; the gate reads the compact
    # verdict fields.
    from repro.faults.scenario import run_health_scenario

    steady = run_health_scenario("none")
    chaos = run_health_scenario("standard")
    current["health"] = {
        "steady": {
            k: steady.get(k)
            for k in (
                "plan",
                "rollup",
                "slo_breaches",
                "slo_recoveries",
                "health_transitions",
                "events",
            )
        },
        "chaos": {
            k: chaos.get(k)
            for k in (
                "plan",
                "rollup",
                "slo_breaches",
                "slo_recoveries",
                "matched_recoveries",
                "health_transitions",
                "events",
            )
        },
    }
    HEALTH_SNAPSHOT_PATH.write_text(
        json.dumps({"steady": steady, "chaos": chaos}, indent=2, sort_keys=True)
        + "\n"
    )

    # E16: the campaign corpus (also deterministic sim-time).  The gate
    # reads the compact per-class rollups; the full scorecard -- every
    # per-campaign result, digests included -- ships as a CI artifact.
    from bench_e16_campaigns import compact, run_scorecard

    scorecard = run_scorecard()
    current["e16"] = compact(scorecard)
    CAMPAIGN_SCORECARD_PATH.write_text(
        json.dumps(scorecard, indent=2, sort_keys=True, default=str) + "\n"
    )

    # E15: the federation gate pair (small fleet, same definition as the
    # full bench) plus the deterministic coordinator-blackout scenario.
    # The whole section ships as a CI artifact.
    from bench_e15_federation import run_pair
    from repro.faults.scenario import run_federation_blackout_scenario

    current["e15"] = {
        "pair": run_pair(E15_GATE_DEVICES, sites=E15_SITES, workers=E15_SITES),
        "blackout": run_federation_blackout_scenario(sites=E15_SITES),
    }
    FEDERATION_SNAPSHOT_PATH.write_text(
        json.dumps(current["e15"], indent=2, sort_keys=True) + "\n"
    )

    # CI artifact: a journal sample from the largest E9 run, so every
    # pipeline run leaves an inspectable flight-recorder dump behind.
    if spill_sim is not None:
        current["journal_sample_entries"] = spill_sim.journal.export_jsonl(
            str(SPILL_SAMPLE_PATH)
        )
    return current


def record_baselines(current: dict[str, Any]) -> list[Path]:
    """Refresh the committed wall-clock baselines from ``current``.

    Updates only the measurement sections (``sweep`` / ``small`` /
    ``overhead``) in place, preserving any other keys the pytest benches
    recorded (e.g. the E9 metrics snapshot), so a ``--record`` run and a
    bench run stay mergeable.
    """
    import datetime

    stamp = {
        "git_sha": _git_sha(),
        "recorded_at": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    written: list[Path] = []

    def _update(path: Path, benchmark: str, key: str, value: Any) -> None:
        data: dict[str, Any] = {"benchmark": benchmark}
        if path.exists():
            try:
                data = json.loads(path.read_text())
            except ValueError:
                pass
        data.update(stamp)
        data[key] = value
        path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        written.append(path)

    _update(E9_BASELINE, "test_e9_whole_stack_scale", "sweep", current["e9"])
    _update(
        E9_SMALL_BASELINE,
        "test_e9_small_core_capacity",
        "small",
        {
            k: current["e9_small"][k]
            for k in ("events", "run_s", "events_per_s")
            if k in current.get("e9_small", {})
        },
    )
    overhead_value = None
    if OVERHEAD_BASELINE.exists():
        try:
            overhead_value = json.loads(OVERHEAD_BASELINE.read_text()).get("overhead")
        except ValueError:
            pass
    if not isinstance(overhead_value, dict):
        overhead_value = {}
    overhead_value["overhead"] = current["obs_overhead"]
    _update(OVERHEAD_BASELINE, "test_obs_overhead", "overhead", overhead_value)
    return written


def _git_sha() -> str:
    if str(BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(BENCH_DIR))
    from _util import _git_sha as util_git_sha

    return util_git_sha()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    parser.add_argument(
        "--record",
        action="store_true",
        help="refresh the committed wall-clock baselines from this run",
    )
    args = parser.parse_args(argv)

    current = measure()
    if args.record:
        for path in record_baselines(current):
            print(f"recorded baseline: {path}")
    baseline = load_baseline()
    violations = compare(current, baseline)

    import datetime

    entry = {
        "git_sha": _git_sha(),
        "recorded_at": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "e9": [
            {k: row[k] for k in ("devices", "events", "events_per_s") if k in row}
            for row in current["e9"]
        ],
        "e9_small": {
            k: current["e9_small"][k]
            for k in ("events", "events_per_s")
            if k in current.get("e9_small", {})
        },
        "obs_overhead": current["obs_overhead"],
        "obs_profile_max_frac": current.get("obs_profile", {}).get("max_frac"),
        "e12_exposure_s": {
            arm: row["exposure_s"] for arm, row in current.get("e12", {}).items()
        },
        "e13_blind_window_s": {
            arm: row["blind_window_s"]
            for arm, row in current.get("e13", {}).get("failover", {}).items()
        },
        "e13_enforcing_frac": {
            arm: row["enforcing_processed_frac"]
            for arm, row in current.get("e13", {}).get("storm", {}).items()
        },
        "e14_telemetry_loss": {
            arm: row["telemetry_loss"] for arm, row in current.get("e14", {}).items()
        },
        "e14_peak_depth": current.get("e14", {}).get("durable", {}).get("peak_depth"),
        "e15_speedup": current.get("e15", {}).get("pair", {}).get("speedup"),
        "e15_enforcement_gaps": (
            current.get("e15", {}).get("blackout", {}).get("enforcement_gaps")
        ),
        "e15_signatures_propagated": (
            current.get("e15", {}).get("blackout", {}).get("signatures_propagated")
        ),
        "e15_propagation_lag_s": (
            current.get("e15", {}).get("blackout", {}).get("propagation_lag_v1")
        ),
        "e16_campaigns": (
            current.get("e16", {}).get("summary", {}).get("campaigns")
        ),
        "e16_enforcing_misses": (
            current.get("e16", {}).get("summary", {}).get("enforcing_misses")
        ),
        "e16_recall": {
            name: rollup.get("recall")
            for name, rollup in current.get("e16", {}).get("classes", {}).items()
        },
        "health_steady_rollup": (
            current.get("health", {}).get("steady", {}).get("rollup")
        ),
        "health_chaos_breaches": (
            current.get("health", {}).get("chaos", {}).get("slo_breaches")
        ),
        "health_chaos_matched": (
            current.get("health", {}).get("chaos", {}).get("matched_recoveries")
        ),
        "violations": violations,
    }
    append_trajectory(entry)

    if args.json:
        print(json.dumps({"current": current, "violations": violations}, indent=2))
    else:
        for row in current["e9"]:
            print(
                f"e9@{row['devices']}dev: {row['events_per_s']:,.0f} events/s "
                f"({row['events']:,} sim events, {row['pipeline_rounds']} rounds)"
            )
        small = current.get("e9_small") or {}
        if small:
            print(
                f"e9-small (event-loop core): {small['events_per_s']:,.0f} "
                f"events/s ({small['events']:,} sim events)"
            )
        print(f"obs overhead: {current['obs_overhead']:.1%}")
        profile = current.get("obs_profile") or {}
        if profile.get("max_frame"):
            print(
                f"obs profile: hottest obs frame {profile['max_frame']} at "
                f"{profile['max_frac']:.1%} of hot-loop time"
            )
        if current.get("e12"):
            windows = " vs ".join(
                f"{arm}={row['exposure_s']}s" for arm, row in current["e12"].items()
            )
            print(f"e12 exposure window: {windows}")
        if current.get("e13"):
            blind = " vs ".join(
                f"{arm}={row['blind_window_s']}s"
                for arm, row in current["e13"].get("failover", {}).items()
            )
            frac = " vs ".join(
                f"{arm}={row['enforcing_processed_frac']:.1%}"
                for arm, row in current["e13"].get("storm", {}).items()
            )
            print(f"e13 blind window: {blind}; enforcing kept: {frac}")
        if current.get("e14"):
            loss = " vs ".join(
                f"{arm}={row['telemetry_loss']}"
                for arm, row in current["e14"].items()
            )
            durable_row = current["e14"].get("durable", {})
            print(
                f"e14 telemetry loss: {loss}; peak buffer depth "
                f"{durable_row.get('peak_depth')} "
                f"(dlq sample -> {DLQ_SAMPLE_PATH})"
            )
        e15 = current.get("e15") or {}
        if e15:
            pair = e15.get("pair") or {}
            blackout = e15.get("blackout") or {}
            print(
                f"e15 federation: {pair.get('speedup', 0.0):.2f}x aggregate "
                f"speedup at {pair.get('devices')} devices ({pair.get('mode')}); "
                f"blackout gaps={blackout.get('enforcement_gaps')} "
                f"lag={blackout.get('propagation_lag_v1')}s "
                f"(snapshot -> {FEDERATION_SNAPSHOT_PATH})"
            )
        e16 = current.get("e16") or {}
        if e16:
            summary = e16.get("summary") or {}
            evidence = summary.get("fabric_evidence") or {}
            recalls = ", ".join(
                f"{name}={rollup.get('recall'):.2f}"
                for name, rollup in (e16.get("classes") or {}).items()
            )
            print(
                f"e16 campaigns: {summary.get('campaigns')} run, enforcing "
                f"misses={summary.get('enforcing_misses')}; fabric outages="
                f"{evidence.get('outages')} repins={evidence.get('repins')} "
                f"breaches={evidence.get('containment_breaches')}; recall "
                f"{recalls} (scorecard -> {CAMPAIGN_SCORECARD_PATH})"
            )
        health = current.get("health") or {}
        if health:
            steady_h = health.get("steady") or {}
            chaos_h = health.get("chaos") or {}
            print(
                f"health: steady rollup={steady_h.get('rollup')} "
                f"(breaches {steady_h.get('slo_breaches')}); chaos "
                f"breaches={chaos_h.get('slo_breaches')} "
                f"matched recoveries={chaos_h.get('matched_recoveries')} "
                f"(snapshot -> {HEALTH_SNAPSHOT_PATH})"
            )
        print(f"trajectory: appended to {TRAJECTORY_PATH}")
        if current.get("journal_sample_entries") is not None:
            print(
                f"journal sample: {current['journal_sample_entries']} entries "
                f"-> {SPILL_SAMPLE_PATH}"
            )
        if violations:
            print("\nREGRESSIONS DETECTED:")
            for violation in violations:
                print(f"  - {violation}")
        else:
            print("no regressions against committed baselines")
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
