"""Ablation A1: policy lookup-representation tradeoffs.

Three ways to answer "what posture does device D get in state S":

1. **materialized** -- the brute-force table of section 3.2 (state ->
   assignment dict).  O(1) lookup, O(|S|) memory, O(|S|) build time:
   exactly what explodes.
2. **rule scan** -- evaluate the rule list on demand.  Zero build cost,
   per-lookup cost grows with rule count.
3. **pruned projection** -- per-device tables over relevant variables
   (:mod:`repro.policy.pruning`).  Near-O(1) lookup, memory ~ rules.

Reported: build time, stored entries, lookup throughput.  The pruned form
should match materialized lookup speed at a tiny fraction of its memory,
which is the design argument for shipping it as the default engine.
"""

from __future__ import annotations

import random
import time

from _util import print_table, record

from repro.policy.builder import PolicyBuilder
from repro.policy.context import COMPROMISED, SUSPICIOUS, SystemState
from repro.policy.fsm import PolicyFSM
from repro.policy.posture import block_commands, quarantine
from repro.policy.pruning import PrunedPolicy


def build_policy(n_devices: int):
    builder = PolicyBuilder()
    devices = [f"dev{i}" for i in range(n_devices)]
    for name in devices:
        builder.device(name)
    builder.env("occupancy", ("absent", "present"))
    for i, name in enumerate(devices):
        builder.when(f"ctx:{name}", COMPROMISED).give(name, quarantine(name), priority=300)
        builder.when(f"ctx:{devices[(i + 1) % n_devices]}", SUSPICIOUS).give(
            name, block_commands("on", name=f"g{name}"), priority=200
        )
        builder.when(f"ctx:{name}", SUSPICIOUS).also("env:occupancy", "absent").give(
            name, block_commands("open", name=f"a{name}"), priority=150
        )
        builder.when("env:occupancy", "absent").give(
            name, block_commands("unlock", name=f"e{name}"), priority=100
        )
    return builder.build()


def random_states(policy, n: int, rng: random.Random) -> list[SystemState]:
    domains = policy.space.domains
    states = []
    for __ in range(n):
        states.append(
            SystemState(
                {d.variable.key: rng.choice(d.values) for d in domains}
            )
        )
    return states


def best_of(fn, repeats: int = 3) -> float:
    """Minimum of several timing runs (robust to scheduler noise)."""
    return min(fn() for __ in range(repeats))


def run_size(n_devices: int, lookups: int, seed: int) -> dict:
    policy = build_policy(n_devices)
    rng = random.Random(seed)
    states = random_states(policy, lookups, rng)
    devices = list(policy.devices)
    result: dict = {"devices": n_devices, "naive_states": policy.state_count()}

    # materialized (only when feasible)
    if policy.state_count() <= 60_000:
        start = time.perf_counter()
        table = policy.materialize()
        result["mat_build_ms"] = (time.perf_counter() - start) * 1e3
        result["mat_entries"] = len(table) * len(devices)
        def time_mat() -> float:
            start = time.perf_counter()
            for state in states:
                table[state][devices[0]]
            return (time.perf_counter() - start) / lookups * 1e6

        result["mat_lookup_us"] = best_of(time_mat)
    else:
        result["mat_build_ms"] = None
        result["mat_entries"] = None
        result["mat_lookup_us"] = None

    # rule scan
    def time_scan() -> float:
        start = time.perf_counter()
        for state in states:
            policy.posture_for(state, devices[0])
        return (time.perf_counter() - start) / lookups * 1e6

    result["scan_lookup_us"] = best_of(time_scan)

    # pruned projection
    start = time.perf_counter()
    pruned = PrunedPolicy(policy)
    result["pruned_build_ms"] = (time.perf_counter() - start) * 1e3
    result["pruned_entries"] = pruned.total_entries()

    def time_pruned() -> float:
        start = time.perf_counter()
        for state in states:
            pruned.posture_for(state, devices[0])
        return (time.perf_counter() - start) / lookups * 1e6

    result["pruned_lookup_us"] = best_of(time_pruned)

    # incremental construction: add the same rules one at a time through
    # the runtime-update path (per-rule cost of update_policy at this size)
    start = time.perf_counter()
    incremental = PrunedPolicy(
        PolicyFSM(
            policy.space.domains,
            rules=(),
            default_posture=policy.default_posture,
            devices=policy.devices,
        )
    )
    for rule in policy.rules:
        incremental.add_rule(rule)
    elapsed = time.perf_counter() - start
    result["incr_build_ms"] = elapsed * 1e3
    result["incr_rule_us"] = elapsed / max(len(policy.rules), 1) * 1e6
    return result


def test_a1_policy_lookup_tradeoffs(scenario_benchmark):
    sweep = [3, 8, 16, 32]
    lookups = 2000

    def run_all():
        return [run_size(n, lookups, seed=i) for i, n in enumerate(sweep)]

    results = scenario_benchmark(run_all)

    def fmt(value, pattern="{:.1f}"):
        return pattern.format(value) if value is not None else "infeasible"

    print_table(
        "A1: lookup representation tradeoffs",
        [
            "Devices",
            "naive |S|",
            "Materialized build (ms) / entries",
            "Scan lookup (µs)",
            "Pruned build (ms) / entries",
            "Pruned lookup (µs)",
            "Incr build (ms) / per rule (µs)",
        ],
        [
            (
                r["devices"],
                f"{r['naive_states']:,}",
                f"{fmt(r['mat_build_ms'])} / {r['mat_entries'] if r['mat_entries'] is not None else '-'}",
                fmt(r["scan_lookup_us"]),
                f"{fmt(r['pruned_build_ms'])} / {r['pruned_entries']}",
                fmt(r["pruned_lookup_us"]),
                f"{fmt(r['incr_build_ms'])} / {fmt(r['incr_rule_us'])}",
            )
            for r in results
        ],
    )
    record(scenario_benchmark, "sweep", results)

    largest, smallest = results[-1], results[0]
    assert largest["mat_build_ms"] is None  # brute force already infeasible
    assert largest["pruned_entries"] < 1000  # ~14 entries/device, linear
    # rule-scan lookup cost grows with the rule count; pruned stays ~flat.
    # Timing assertions carry slack: they document the shape, not a bound.
    scan_growth = largest["scan_lookup_us"] / smallest["scan_lookup_us"]
    pruned_growth = largest["pruned_lookup_us"] / smallest["pruned_lookup_us"]
    assert pruned_growth < scan_growth * 1.25
    # and at scale the pruned lookup is at least competitive
    assert largest["pruned_lookup_us"] < largest["scan_lookup_us"] * 1.25
    # pruned memory is far below any feasible materialization
    feasible = [r for r in results if r["mat_entries"] is not None]
    for r in feasible:
        assert r["pruned_entries"] < r["mat_entries"]
