"""Figure 5 reproduction: cross-device policy enforcement.

"Our µmbox's policy is set to allow the 'ON' messages to be sent to Wemo
only if the global state identifies a person in the room and, thus, can
prevent a remote attacker from causing damage via the Wemo vulnerability."

Three arms: current world (attack lands), IoTSec with nobody home (attack
blocked by the context gate), IoTSec with a person present (the command is
policy-compliant and flows).  We also verify the physical consequence: in
the unprotected empty-home arm the unattended oven eventually raises smoke.
"""

from __future__ import annotations

from _util import print_table, record

from repro.attacks.exploits import EXPLOITS
from repro.core.deployment import SecuredDeployment
from repro.devices.library import WEMO_BACKDOOR_PORT, fire_alarm, smart_camera, smart_plug
from repro.policy.posture import MboxSpec, Posture

OCCUPANCY_GATE = Posture.make(
    "occupancy-gate",
    MboxSpec.make(
        "context_gate", commands=["on"], require={"env:occupancy": "present"}
    ),
)


def run(protect: bool, occupied: bool, horizon: float = 600.0) -> dict:
    dep = SecuredDeployment.build()
    dep.add_device(smart_camera, "cam")
    wemo = dep.add_device(
        smart_plug, "wemo", load={"hazard": 1.0, "heat_watts": 2000.0}
    )
    alarm = dep.add_device(fire_alarm, "alarm", with_backdoor=False)
    attacker = dep.add_attacker()
    dep.finalize()
    dep.env.discrete("occupancy").set("present" if occupied else "absent")
    if protect:
        dep.secure("wemo", OCCUPANCY_GATE)
    holder: dict = {}
    dep.sim.schedule(
        1.0,
        lambda: holder.update(
            result=EXPLOITS["backdoor_command"].launch(
                attacker, "wemo", dep.sim, backdoor_port=WEMO_BACKDOOR_PORT, command="on"
            )
        ),
    )
    dep.run(until=horizon)
    return {
        "oven_on": wemo.state == "on",
        "attack_ok": holder["result"].succeeded,
        "smoke": dep.env.level("smoke"),
        "alarm": alarm.state,
        "blocked_alerts": sum(
            1 for a in dep.alerts("wemo") if a.kind == "context-gate-blocked"
        ),
    }


def test_fig5_cross_device_policy(scenario_benchmark):
    def run_all():
        return (
            run(protect=False, occupied=False),
            run(protect=True, occupied=False),
            run(protect=True, occupied=True),
        )

    bare, guarded_empty, guarded_occupied = scenario_benchmark(run_all)

    print_table(
        "Figure 5: 'ON' to the Wemo gated on camera-observed occupancy",
        ["Arm", "Oven powered", "Smoke", "Fire alarm", "Gate blocks"],
        [
            ("current world, nobody home", bare["oven_on"], bare["smoke"], bare["alarm"], "-"),
            (
                "IoTSec, nobody home",
                guarded_empty["oven_on"],
                guarded_empty["smoke"],
                guarded_empty["alarm"],
                guarded_empty["blocked_alerts"],
            ),
            (
                "IoTSec, person present",
                guarded_occupied["oven_on"],
                guarded_occupied["smoke"],
                guarded_occupied["alarm"],
                guarded_occupied["blocked_alerts"],
            ),
        ],
    )
    record(scenario_benchmark, "bare", bare)
    record(scenario_benchmark, "guarded_empty", guarded_empty)
    record(scenario_benchmark, "guarded_occupied", guarded_occupied)

    # Current world: the remote attacker powers the oven; physics follows.
    assert bare["oven_on"] and bare["attack_ok"]
    assert bare["smoke"] == "detected" and bare["alarm"] == "alarm"
    # IoTSec, empty home: blocked before the device, no physical fallout.
    assert not guarded_empty["oven_on"]
    assert guarded_empty["smoke"] == "clear" and guarded_empty["alarm"] == "ok"
    assert guarded_empty["blocked_alerts"] >= 1
    # IoTSec, occupied: the command is policy-compliant and flows.
    assert guarded_occupied["oven_on"]
