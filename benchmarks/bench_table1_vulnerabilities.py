"""Table 1 reproduction: seven real-world IoT vulnerability cases.

For every row of the paper's Table 1 we instantiate the matching device,
launch the matching exploit twice -- against the bare device ("current
world") and against the same device behind its recommended µmbox posture --
and report who won.  The paper's claim is qualitative: every one of these
flaws is unfixable on-device and fixable at the network; the table should
therefore read *exploited* across the first column and *blocked* across
the second.
"""

from __future__ import annotations

from typing import Any

from _util import print_table, record

from repro.attacks.exploits import EXPLOITS
from repro.core.deployment import SecuredDeployment
from repro.core.orchestrator import build_recommended_posture
from repro.devices.library import FACTORIES
from repro.devices.vulnerabilities import TABLE1, VulnerabilityRecord
from repro.netsim.node import Host

EXPLOIT_PARAMS: dict[str, dict[str, Any]] = {
    "default_credential_hijack": {"resource": "image"},
    "open_access_control": {"port": 8080, "command": "play"},
    "unauthenticated_command": {"command": "go"},
    "dns_reflection_ddos": {"victim": "victim", "queries": 40, "rate": 200.0},
    "backdoor_command": {"backdoor_port": 49153, "command": "on"},
    "firmware_key_extraction": {},
}

WHITELIST_COMMANDS = {"traffic_light": ("stop", "caution")}


def run_row(row: VulnerabilityRecord, protect: bool) -> dict[str, Any]:
    dep = SecuredDeployment.build()
    device = dep.add_device(FACTORIES[row.factory], "target")
    attacker = dep.add_attacker()
    victim = Host("victim", dep.sim)
    dep.topology.add(victim)
    dep.topology.connect("edge", victim, latency=0.005)
    dep.finalize()

    if protect:
        posture = build_recommended_posture(
            row.mitigation,
            "target",
            trusted_sources=(dep.HUB, dep.CONTROLLER),
            allowed_commands=WHITELIST_COMMANDS.get(row.factory, ()),
            sku=device.sku,
        )
        dep.secure("target", posture)

    params = dict(EXPLOIT_PARAMS.get(row.exploit, {}))
    result = EXPLOITS[row.exploit].launch(attacker, "target", dep.sim, **params)
    dep.run(until=120.0)

    if row.exploit == "dns_reflection_ddos":
        # reflection success = amplified bytes landing on the victim
        reflected = sum(p.size for p in victim.inbox if p.protocol == "dns")
        sent = 60 * params["queries"]
        compromised = reflected > sent  # amplification achieved
        detail = f"{reflected}B reflected"
    else:
        compromised = result.succeeded or device.is_compromised() or bool(
            attacker.loot_from("target")
        )
        detail = "loot" if attacker.loot_from("target") else device.state
    return {
        "compromised": compromised,
        "detail": detail,
        "alerts": len(dep.alerts("target")),
    }


def test_table1_every_flaw_exploited_then_blocked(scenario_benchmark):
    def run_all() -> list[dict[str, Any]]:
        rows = []
        for row in TABLE1:
            bare = run_row(row, protect=False)
            guarded = run_row(row, protect=True)
            rows.append(
                {
                    "row": row.row,
                    "device": row.device,
                    "count": row.device_count,
                    "vulnerability": row.vulnerability,
                    "bare": bare,
                    "guarded": guarded,
                    "mitigation": row.mitigation,
                }
            )
        return rows

    rows = scenario_benchmark(run_all)

    print_table(
        "Table 1: known IoT vulnerabilities -- current world vs IoTSec",
        ["#", "Device", "Num.", "Vulnerability", "Current world", "With IoTSec", "µmbox"],
        [
            (
                r["row"],
                r["device"],
                r["count"],
                r["vulnerability"],
                "EXPLOITED" if r["bare"]["compromised"] else "survived",
                "blocked" if not r["guarded"]["compromised"] else "EXPLOITED",
                r["mitigation"],
            )
            for r in rows
        ],
    )
    record(scenario_benchmark, "table1", [
        {k: v for k, v in r.items() if k in ("row", "mitigation")}
        | {"bare": r["bare"]["compromised"], "guarded": r["guarded"]["compromised"]}
        for r in rows
    ])

    # The paper's shape: every flaw exploitable bare, every flaw blocked.
    for r in rows:
        assert r["bare"]["compromised"], f"row {r['row']} should be exploitable bare"
        assert not r["guarded"]["compromised"], f"row {r['row']} should be blocked"
        assert r["guarded"]["alerts"] >= 1, f"row {r['row']} should raise alerts"
