"""Figure 3 reproduction: the FSM policy abstraction in action.

The figure's FSM has three illustrated states for the (FireAlarm, Window)
pair and two attack transitions:

1. "FireAlarm backdoor accessed"  -> FireAlarm becomes suspicious ->
   posture: Window gets "Block 'open' + FW".
2. "Window password brute-forced" -> Window becomes suspicious ->
   posture: Window gets "Robot Check + FW" (we model the robot check as a
   source filter admitting only the hub/controller).

The bench replays both transitions against the current world and against
IoTSec and reports the state/posture timeline plus reaction latency.
"""

from __future__ import annotations

from _util import print_table, record

from repro.attacks.scenarios import fig3_break_in
from repro.core.deployment import SecuredDeployment
from repro.devices.library import (
    FIREALARM_BACKDOOR_PORT,
    fire_alarm,
    window_actuator,
)
from repro.learning.repository import CrowdRepository
from repro.learning.signatures import backdoor_signature
from repro.policy.builder import PolicyBuilder
from repro.policy.context import SUSPICIOUS
from repro.policy.ifttt import Recipe
from repro.policy.posture import MboxSpec, Posture, block_commands


def fig3_policy():
    return (
        PolicyBuilder()
        .device("fire_alarm")
        .device("window")
        .env("smoke", ("clear", "detected"))
        .when("ctx:fire_alarm", SUSPICIOUS)
        .give("window", block_commands("open", name="block-open-fw"), priority=200)
        .when("ctx:window", SUSPICIOUS)
        .give(
            "window",
            Posture.make(
                "robot-check-fw",
                MboxSpec.make("source_filter", allowed_sources=["hub", "controller"]),
            ),
            priority=250,
        )
        .build()
    )


def run(protect: bool) -> dict:
    dep = SecuredDeployment.build()
    dep.policy = fig3_policy()
    fa = dep.add_device(fire_alarm, "fire_alarm")
    win = dep.add_device(window_actuator, "window")
    attacker = dep.add_attacker()
    dep.finalize()
    dep.hub.add_recipe(Recipe("ventilate", "dev:fire_alarm", "alarm", "window", "open"))
    dep.hub.watch_devices(
        lambda name: dep.devices[name].state if name in dep.devices else None
    )
    if protect:
        repo = CrowdRepository(dep.sim)
        repo.publish(
            backdoor_signature(fa.sku, FIREALARM_BACKDOOR_PORT), reporter="other-site"
        )
        dep.attach_repository(repo)
        dep.enforce_baseline()
    campaign = fig3_break_in(
        attacker,
        dep.sim,
        fire_alarm="fire_alarm",
        window="window",
        window_is_open=lambda: win.state == "open",
        backdoor_at=5.0,
        brute_force_at=30.0,
    )
    campaign.launch(dep.sim, until=120.0)
    dep.run(until=120.0)

    reactions = (
        [
            {
                "device": r.device,
                "posture": r.posture,
                "trigger": r.trigger_key,
                "latency_ms": r.latency * 1e3,
                "at": r.applied_at,
            }
            for r in dep.controller.reactions
            if not r.posture.startswith("allow")
        ]
        if dep.controller
        else []
    )
    return {
        "breached": campaign.succeeded(),
        "window_state": win.state,
        "alarm_state": fa.state,
        "fa_context": dep.controller.context_of("fire_alarm") if dep.controller else "-",
        "win_context": dep.controller.context_of("window") if dep.controller else "-",
        "window_posture": (
            dep.orchestrator.posture_of("window").name
            if dep.orchestrator and dep.orchestrator.posture_of("window")
            else "-"
        ),
        "reactions": reactions,
        "stages": campaign.stage_results(),
    }


def test_fig3_policy_fsm(scenario_benchmark):
    def run_both():
        return run(protect=False), run(protect=True)

    bare, guarded = scenario_benchmark(run_both)

    print_table(
        "Figure 3: FireAlarm + Window policy FSM",
        ["Arm", "Backdoor stage", "Brute-force stage", "Window", "Breached"],
        [
            (
                "current world",
                bare["stages"]["firealarm_backdoor"],
                bare["stages"]["window_brute_force"],
                bare["window_state"],
                bare["breached"],
            ),
            (
                "IoTSec",
                guarded["stages"]["firealarm_backdoor"],
                guarded["stages"]["window_brute_force"],
                guarded["window_state"],
                guarded["breached"],
            ),
        ],
    )
    print_table(
        "Figure 3: IoTSec posture transitions (the FSM walking)",
        ["t (s)", "Trigger", "Device", "New posture", "Reaction (ms)"],
        [
            (f"{r['at']:.3f}", r["trigger"], r["device"], r["posture"], f"{r['latency_ms']:.2f}")
            for r in guarded["reactions"]
        ],
    )
    record(scenario_benchmark, "bare", {k: v for k, v in bare.items() if k != "reactions"})
    record(scenario_benchmark, "guarded", {k: v for k, v in guarded.items() if k != "reactions"})

    assert bare["breached"] and bare["window_state"] == "open"
    assert not guarded["breached"] and guarded["window_state"] == "closed"
    assert guarded["fa_context"] == SUSPICIOUS
    assert guarded["window_posture"] in ("block-open-fw", "robot-check-fw")
    # reaction latency: order of control-channel milliseconds, not seconds
    assert all(r["latency_ms"] < 100.0 for r in guarded["reactions"])
