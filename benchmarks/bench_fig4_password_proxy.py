"""Figure 4 reproduction: patching an exposed password at the network.

"In Figure 4, we use a D-link surveillance camera which ships with a
hardcoded admin password that the user has no interface to delete ... the
µmbox can enforce the use of a new administrator-chosen password."

The bench reports the four access outcomes the figure implies:

====================  =============  ==========
who / credential      current world  with IoTSec
====================  =============  ==========
attacker, admin/admin    IN             blocked
attacker, dictionary     IN             blocked
admin, new password      n/a            IN
====================  =============  ==========
"""

from __future__ import annotations

from _util import print_table, record

from repro.attacks.exploits import EXPLOITS
from repro.core.deployment import SecuredDeployment
from repro.core.orchestrator import build_recommended_posture
from repro.devices import protocol
from repro.devices.library import smart_camera

NEW_PASSWORD = "S3cure!gateway"


def run(protect: bool) -> dict:
    dep = SecuredDeployment.build()
    cam = dep.add_device(smart_camera, "cam")
    attacker = dep.add_attacker()
    admin = dep.add_attacker("admin_laptop", latency=0.001)
    dep.finalize()
    if protect:
        dep.secure(
            "cam",
            build_recommended_posture(
                "password_proxy", "cam", new_password=NEW_PASSWORD
            ),
        )

    hijack = EXPLOITS["default_credential_hijack"].launch(
        attacker, "cam", dep.sim, resource="image"
    )
    brute = EXPLOITS["brute_force_login"].launch(attacker, "cam", dep.sim)
    admin_replies: list = []
    dep.sim.schedule(
        1.0,
        lambda: admin.request(
            protocol.login("admin_laptop", "cam", "admin", NEW_PASSWORD),
            admin_replies.append,
        ),
    )
    dep.run(until=60.0)
    return {
        "default_cred_hijack": hijack.succeeded,
        "brute_force": brute.succeeded,
        "images_exfiltrated": len(attacker.loot_from("cam")),
        "admin_login_ok": bool(admin_replies) and protocol.is_ok(admin_replies[0]),
        "device_saw_attacker_login": any(
            src == "attacker" for __, src, __u, __ok in cam.login_log
        ),
        "alerts": len(dep.alerts("cam")),
    }


def test_fig4_password_proxy(scenario_benchmark):
    def run_both():
        return run(False), run(True)

    bare, guarded = scenario_benchmark(run_both)

    print_table(
        "Figure 4: hardcoded-password camera behind the password proxy",
        ["Access", "Current world", "With IoTSec"],
        [
            (
                "attacker w/ vendor default",
                "IN" if bare["default_cred_hijack"] else "blocked",
                "IN" if guarded["default_cred_hijack"] else "blocked",
            ),
            (
                "attacker w/ dictionary",
                "IN" if bare["brute_force"] else "blocked",
                "IN" if guarded["brute_force"] else "blocked",
            ),
            (
                "administrator w/ new password",
                "IN (proxyless: any password = vendor's)"
                if bare["admin_login_ok"]
                else "needs vendor default",
                "IN" if guarded["admin_login_ok"] else "blocked",
            ),
            ("images exfiltrated", bare["images_exfiltrated"], guarded["images_exfiltrated"]),
            (
                "attacker traffic reached device",
                bare["device_saw_attacker_login"],
                guarded["device_saw_attacker_login"],
            ),
        ],
    )
    record(scenario_benchmark, "bare", bare)
    record(scenario_benchmark, "guarded", guarded)

    assert bare["default_cred_hijack"] and bare["images_exfiltrated"] >= 1
    assert not guarded["default_cred_hijack"]
    assert not guarded["brute_force"]
    assert guarded["images_exfiltrated"] == 0
    assert guarded["admin_login_ok"]
    assert not guarded["device_saw_attacker_login"]
    assert guarded["alerts"] >= 1
