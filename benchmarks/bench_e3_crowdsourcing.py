"""E3: crowdsourced signatures vs honeypots; poisoning resistance.

Section 4: "learning signatures using simple honeypot-like mechanisms will
not scale with the diversity of devices ... we would need several thousand
honeypots to ensure coverage for every specific device SKU."
Section 4.1 proposes the crowdsourced repository with reputation/voting.

Part A -- coverage race.  A universe of SKUs with Zipf-like deployment
popularity; attack campaigns sweep SKUs over time.  Arms: a honeypot farm
emulating the N most popular SKUs (each campaign that touches an emulated
SKU teaches it after an analysis delay) vs the crowdsourced repository
(every *deployment* of the SKU is a sensor: the first victim site
publishes).  Expected shape: crowdsourcing tracks the attack frontier
closely and reaches full coverage; honeypots plateau at their emulation
budget and never cover tail SKUs.

Part B -- poisoning.  A fraction of publishers submit bogus signatures
(e.g. "block all port-80 traffic").  Arms: repository with voting/
reputation vs without.  Expected: reputation suppresses nearly all bogus
distribution while preserving genuine coverage.
"""

from __future__ import annotations

import random

from _util import percent, print_table, record

from repro.learning.honeypot import HoneypotFarm
from repro.learning.repository import CrowdRepository
from repro.learning.reputation import ReputationSystem
from repro.learning.signatures import AttackSignature, SignatureMatch
from repro.netsim.simulator import Simulator


def make_universe(n_skus: int, rng: random.Random) -> dict[str, int]:
    """SKU -> deployed population, Zipf-ish."""
    return {
        f"vendor{i % 40}:model{i}:v{1 + i % 3}": max(1, int(50_000 / (i + 1)))
        for i in range(n_skus)
    }


def signature_for(sku: str, bogus: bool = False) -> AttackSignature:
    if bogus:
        match = SignatureMatch.make(dport=80)  # would block all web traffic
        posture = "quarantine"
    else:
        match = SignatureMatch.make(
            protocol="http", dport=80, payload_contains={"action": "login"}
        )
        posture = "password_proxy"
    return AttackSignature(
        sku=sku, flaw_class="exposed-credentials", match=match,
        recommended_posture=posture,
    )


def coverage_race(n_skus: int, n_honeypots: int, horizon: float, seed: int) -> dict:
    rng = random.Random(seed)
    sim = Simulator()
    universe = make_universe(n_skus, rng)
    farm = HoneypotFarm.covering_most_popular(
        universe, n_honeypots, detection_delay=3600.0
    )
    repo = CrowdRepository(sim, free_rider_delay=300.0)

    # Campaign arrival: popular SKUs attacked sooner and more often.
    skus = sorted(universe, key=universe.get, reverse=True)
    curve_crowd: list[tuple[float, float]] = []
    curve_honey: list[tuple[float, float]] = []
    for i, sku in enumerate(skus):
        at = rng.uniform(0, horizon) * (0.2 + 0.8 * i / len(skus))

        def campaign(sku=sku, at=at) -> None:
            farm.observe_campaign(sku, at, rng)
            # some victim site that deployed the SKU observes + publishes
            repo.publish(signature_for(sku), reporter=f"site-of-{sku}")

        sim.schedule(at, campaign)
    sample_every = horizon / 20

    def sample() -> None:
        curve_crowd.append((sim.now, len(repo.covered_skus()) / n_skus))
        curve_honey.append((sim.now, farm.coverage(universe, sim.now)))

    sim.every(sample_every, sample)
    sim.run(until=horizon)
    return {
        "skus": n_skus,
        "honeypots": n_honeypots,
        "crowd_final": curve_crowd[-1][1],
        "honey_final": curve_honey[-1][1],
        "crowd_half_time": next(
            (t for t, c in curve_crowd if c >= 0.5), float("inf")
        ),
        "honey_half_time": next(
            (t for t, c in curve_honey if c >= 0.5), float("inf")
        ),
        "curve_crowd": curve_crowd,
        "curve_honey": curve_honey,
    }


def poisoning(n_good: int, n_bogus: int, with_reputation: bool, seed: int) -> dict:
    rng = random.Random(seed)
    sim = Simulator()
    reputation = ReputationSystem(accept_threshold=0.4 if with_reputation else 0.0)
    repo = CrowdRepository(sim, reputation=reputation)
    delivered = {"good": 0, "bogus": 0}

    def on_signature(signature: AttackSignature) -> None:
        if signature.recommended_posture == "quarantine":
            delivered["bogus"] += 1
        else:
            delivered["good"] += 1

    for i in range(50):
        repo.subscribe(f"subscriber-{i}", f"sku-{i}", on_signature)

    publications = []
    for i in range(n_good):
        publications.append((f"sku-{rng.randrange(50)}", False, f"good-site-{i % 20}"))
    for i in range(n_bogus):
        publications.append((f"sku-{rng.randrange(50)}", True, f"poisoner-{i % 5}"))
    rng.shuffle(publications)

    for step, (sku, bogus, reporter) in enumerate(publications):
        def publish(sku=sku, bogus=bogus, reporter=reporter) -> None:
            sig_id = repo.publish(signature_for(sku, bogus=bogus), reporter=reporter)
            if sig_id is None:
                return
            if with_reputation:
                # subscribers vet what they receive: bogus signatures break
                # their own traffic and collect down-votes; good ones help.
                for v in range(3):
                    repo.vote(sig_id, f"validator-{v}", helpful=not bogus)

        sim.schedule(1.0 + step, publish)
    sim.run()
    stats = repo.stats()
    return {
        "with_reputation": with_reputation,
        "good_delivered": delivered["good"],
        "bogus_delivered": delivered["bogus"],
        "withheld": stats["withheld"],
        "revoked": stats["revoked"],
    }


def test_e3_crowdsourcing_vs_honeypots(scenario_benchmark):
    def run_all():
        race = coverage_race(n_skus=400, n_honeypots=40, horizon=86_400.0, seed=7)
        poison_with = poisoning(n_good=120, n_bogus=40, with_reputation=True, seed=3)
        poison_without = poisoning(n_good=120, n_bogus=40, with_reputation=False, seed=3)
        return race, poison_with, poison_without

    race, poison_with, poison_without = scenario_benchmark(run_all)

    print_table(
        "E3a: SKU signature coverage after one day of campaigns",
        ["Arm", "Final coverage", "Time to 50%"],
        [
            (
                f"crowdsourced ({race['skus']} deployments as sensors)",
                percent(race["crowd_final"]),
                f"{race['crowd_half_time'] / 3600:.1f} h",
            ),
            (
                f"honeypot farm ({race['honeypots']} per-SKU honeypots)",
                percent(race["honey_final"]),
                f"{race['honey_half_time'] / 3600:.1f} h"
                if race["honey_half_time"] != float("inf")
                else "never",
            ),
        ],
    )
    print_table(
        "E3b: poisoning (40 bogus / 120 genuine publications)",
        ["Arm", "Genuine delivered", "Bogus delivered", "Withheld", "Revoked"],
        [
            (
                "with reputation+voting",
                poison_with["good_delivered"],
                poison_with["bogus_delivered"],
                poison_with["withheld"],
                poison_with["revoked"],
            ),
            (
                "without",
                poison_without["good_delivered"],
                poison_without["bogus_delivered"],
                poison_without["withheld"],
                poison_without["revoked"],
            ),
        ],
    )
    record(scenario_benchmark, "race", {k: v for k, v in race.items() if "curve" not in k})
    record(scenario_benchmark, "poison_with", poison_with)
    record(scenario_benchmark, "poison_without", poison_without)

    # Shapes: crowdsourcing covers (nearly) everything; honeypots plateau
    # at their emulation budget.
    assert race["crowd_final"] > 0.9
    assert race["honey_final"] <= race["honeypots"] / race["skus"] + 0.01
    assert race["crowd_final"] > race["honey_final"] * 4
    # Reputation suppresses most bogus deliveries without losing coverage.
    assert poison_without["bogus_delivered"] > 0
    assert poison_with["bogus_delivered"] < poison_without["bogus_delivered"] / 2
    assert poison_with["good_delivered"] >= poison_without["good_delivered"] * 0.8
