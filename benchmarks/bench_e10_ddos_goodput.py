"""E10 (extension): reflection DDoS as a physical phenomenon.

Table 1 row 6 says the Wemo's open resolver was "use[d] for DDoS".  With
link queueing in the substrate, the attack is not just counted bytes: the
amplified replies crowd benign traffic off the victim's constrained
uplink.  We measure the victim's *benign goodput* during the attack,
with and without the `dns_guard` posture on the resolver fleet.

Setup: 4 Wemo-class open resolvers in the home; the victim sits behind a
5 kB/s drop-tail access link; a friend sends 200 B messages at 2/s; the
attacker bounces 60 B spoofed queries (8x amplification) off every
resolver at 50 q/s each.

Expected shape: unprotected, reflected bytes exceed the link capacity and
benign delivery collapses; with the guard, zero reflected bytes and
benign delivery returns to ~100%.
"""

from __future__ import annotations

from _util import percent, print_table, record

from repro.attacks.exploits import EXPLOITS
from repro.core.deployment import SecuredDeployment
from repro.core.orchestrator import build_recommended_posture
from repro.devices.library import smart_plug
from repro.netsim.node import Host
from repro.netsim.packet import Packet
from repro.netsim.traffic import PeriodicSender

N_RESOLVERS = 4
VICTIM_BANDWIDTH = 5_000.0   # bytes/second
ATTACK_SECONDS = 60.0
BENIGN_RATE = 2.0            # messages/second
BENIGN_SIZE = 200


def run_arm(protect: bool) -> dict:
    dep = SecuredDeployment.build()
    resolvers = [
        dep.add_device(smart_plug, f"wemo{i}") for i in range(N_RESOLVERS)
    ]
    attacker = dep.add_attacker()
    victim = Host("victim", dep.sim)
    dep.topology.add(victim)
    victim_link = dep.topology.connect(
        "edge", victim, latency=0.005, bandwidth=VICTIM_BANDWIDTH
    )
    victim_link.max_queue_delay = 0.5
    friend = Host("friend", dep.sim)
    dep.topology.add(friend)
    dep.topology.connect("edge", friend, latency=0.005)
    dep.finalize()

    if protect:
        for resolver in resolvers:
            dep.secure(
                resolver.name,
                build_recommended_posture(
                    "dns_guard",
                    resolver.name,
                    trusted_sources=(dep.HUB, dep.CONTROLLER),
                ),
            )
    dep.run(until=1.0)

    benign = PeriodicSender(
        dep.sim,
        friend,
        lambda: Packet(
            src="friend", dst="victim", dport=7777,
            payload={"seq": 0}, size=BENIGN_SIZE,
        ),
        period=1.0 / BENIGN_RATE,
    ).start(initial_delay=0.0)

    for resolver in resolvers:
        EXPLOITS["dns_reflection_ddos"].launch(
            attacker,
            resolver.name,
            dep.sim,
            victim="victim",
            queries=int(50 * ATTACK_SECONDS),
            rate=50.0,
        )
    dep.run(until=ATTACK_SECONDS + 2.0)

    benign_received = sum(1 for p in victim.inbox if p.dport == 7777)
    attack_bytes = sum(p.size for p in victim.inbox if p.protocol == "dns")
    return {
        "arm": "dns_guard" if protect else "unprotected",
        "benign_sent": benign.stats.packets,
        "benign_received": benign_received,
        "goodput": benign_received / max(1, benign.stats.packets),
        "attack_bytes": attack_bytes,
        "link_queue_drops": victim_link.queue_drops,
        "guard_blocks": sum(
            1 for a in dep.alerts() if a.kind == "dns-reflection-blocked"
        ),
    }


def test_e10_reflection_crowds_out_benign_traffic(scenario_benchmark):
    def run_all():
        return [run_arm(False), run_arm(True)]

    results = scenario_benchmark(run_all)
    bare, guarded = results

    print_table(
        "E10: victim goodput under 4-resolver DNS reflection",
        [
            "Arm",
            "Benign delivered",
            "Goodput",
            "Reflected bytes at victim",
            "Link drop-tail drops",
            "Guard blocks",
        ],
        [
            (
                r["arm"],
                f"{r['benign_received']}/{r['benign_sent']}",
                percent(r["goodput"]),
                f"{r['attack_bytes']:,}",
                r["link_queue_drops"],
                r["guard_blocks"],
            )
            for r in results
        ],
    )
    record(scenario_benchmark, "arms", results)

    # unprotected: the link saturates, benign delivery collapses
    assert bare["attack_bytes"] > VICTIM_BANDWIDTH * ATTACK_SECONDS * 0.8
    assert bare["goodput"] < 0.5
    assert bare["link_queue_drops"] > 0
    # guarded: no reflected bytes, benign back to (near) full delivery
    assert guarded["attack_bytes"] == 0
    assert guarded["goodput"] > 0.95
    assert guarded["guard_blocks"] >= N_RESOLVERS  # every resolver shielded
