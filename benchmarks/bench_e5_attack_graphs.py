"""E5: attack-graph generation for multi-stage attacks (section 4.2).

"Such models can also be used to automatically identify potential
multi-stage attacks due to cross-device interactions; e.g., triggering
device X to transition to state SX and then using that to reach an
eventual goal state (e.g., unlocking the door)."

We grow deployments from 5 to 60 devices (each a house-worth of the model
library, with automation recipes coupling them), build the attack graph,
and report graph size, attack paths to a break-in goal, shortest depth,
cut devices, and build+analysis time.  Expected shape: graph size grows
linearly in devices (facts are local), path counts grow with coupling,
build time stays interactive -- this is the analysis the paper wants to
run *before* deployment.
"""

from __future__ import annotations

import time

from _util import print_table, record

from repro.devices.firmware import Firmware
from repro.devices.library import (
    BULB_MODEL,
    CAMERA_MODEL,
    FIRE_ALARM_MODEL,
    MOTION_SENSOR_MODEL,
    THERMOSTAT_MODEL,
    WINDOW_MODEL,
    smart_plug_model,
)
from repro.devices.model import DeviceModel
from repro.learning.attackgraph import AttackGraphBuilder, envfact
from repro.policy.ifttt import Recipe


def deployment_of(n_devices: int) -> tuple[dict[str, tuple[DeviceModel, Firmware]], list[Recipe]]:
    """n_devices spread over repeating 'rooms' of 5 devices each."""
    devices: dict[str, tuple[DeviceModel, Firmware]] = {}
    recipes: list[Recipe] = []
    room_kit = [
        ("plug", smart_plug_model(heat_watts=1500.0),
         Firmware(vendor="belkin", model="wemo", backdoor_port=49153, open_ports=(8080,))),
        ("window", WINDOW_MODEL,
         Firmware(vendor="acme", model="window",
                  credentials=[])),
        ("alarm", FIRE_ALARM_MODEL, Firmware(vendor="nest", model="protect")),
        ("bulb", BULB_MODEL,
         Firmware(vendor="philips", model="hue", requires_auth_for_control=False)),
        ("cam", CAMERA_MODEL,
         Firmware(vendor="dlink", model="cam", credentials=[])),
    ]
    extras = [
        ("thermo", THERMOSTAT_MODEL, Firmware(vendor="nest", model="t3")),
        ("motion", MOTION_SENSOR_MODEL, Firmware(vendor="scout", model="m2")),
    ]
    i = 0
    room = 0
    while len(devices) < n_devices:
        kit = room_kit if room % 2 == 0 else room_kit[:3] + extras
        for base, model, firmware in kit:
            if len(devices) >= n_devices:
                break
            name = f"{base}{room}"
            devices[name] = (model, firmware)
            i += 1
        # the automation that makes multi-stage paths possible
        if f"window{room}" in devices:
            recipes.append(
                Recipe(
                    f"cool-down-{room}", "env:temperature", "high",
                    f"window{room}", "open",
                )
            )
        room += 1
    return devices, recipes


def run_size(n: int) -> dict:
    devices, recipes = deployment_of(n)
    start = time.perf_counter()
    builder = AttackGraphBuilder(devices, recipes=recipes)
    built = time.perf_counter() - start
    goal = envfact("window", "open")  # any window open = physical breach
    # goal per-room: use room 0's window binding fact
    goal = ("env", "window", "open")
    start = time.perf_counter()
    paths = builder.paths_to(goal, max_paths=500)
    cuts = builder.cut_devices(goal)
    analyzed = time.perf_counter() - start
    multistage = [p for p in paths if p.stages >= 4]
    return {
        "devices": n,
        "nodes": builder.graph.number_of_nodes(),
        "edges": builder.graph.number_of_edges(),
        "paths": len(paths),
        "multistage_paths": len(multistage),
        "shortest": min((p.stages for p in paths), default=None),
        "cuts": len(cuts),
        "build_ms": built * 1e3,
        "analyze_ms": analyzed * 1e3,
    }


def test_e5_attack_graph_scaling(scenario_benchmark):
    sweep = [5, 10, 20, 40, 60]

    def run_all():
        return [run_size(n) for n in sweep]

    results = scenario_benchmark(run_all)

    print_table(
        "E5: attack graphs for growing deployments (goal: any window open)",
        [
            "Devices",
            "Facts",
            "Edges",
            "Attack paths",
            "Multi-stage (>=4)",
            "Shortest",
            "Build (ms)",
            "Analyze (ms)",
        ],
        [
            (
                r["devices"],
                r["nodes"],
                r["edges"],
                r["paths"],
                r["multistage_paths"],
                r["shortest"],
                f"{r['build_ms']:.1f}",
                f"{r['analyze_ms']:.1f}",
            )
            for r in results
        ],
    )
    record(scenario_benchmark, "sweep", results)

    for r in results:
        assert r["paths"] >= 1
        # the shortest break-in here is the 5-stage physical path:
        # control(plug) -> plug=on -> temp=high -> recipe -> window=open
        assert r["shortest"] is not None and r["shortest"] <= 5
    # multi-stage physical paths exist once the automation couples rooms
    assert any(r["multistage_paths"] >= 1 for r in results)
    # graph growth is roughly linear in devices (facts are local)
    nodes_per_device = [r["nodes"] / r["devices"] for r in results]
    assert max(nodes_per_device) < 3 * min(nodes_per_device)
    # analysis stays interactive
    assert all(r["build_ms"] + r["analyze_ms"] < 5000.0 for r in results)
