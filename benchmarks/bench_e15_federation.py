"""E15: federated multi-site control plane -- scale + partition tolerance.

Two claims, one bench:

**Scale.** One flat deployment's cost grows super-linearly with fleet
size (E9 measures the curve), so a fleet sharded into per-site
controllers does strictly less total work -- and parallel site workers
overlap what remains.  We run the same fleet twice: once as a single
site, once sharded across >= 4 federated sites in parallel worker
processes, and assert the federated aggregate throughput (total
simulated events over end-to-end wall clock, build included for both
arms) clears ``REPRO_E15_MIN_SPEEDUP`` x the single-site arm at 10k
devices.

**Partition tolerance.** The seeded coordinator-blackout scenario: a
signature mined at one site propagates fleet-wide in two WAN hops, then
the coordinator disappears for a minute while every site is attacked --
zero enforcement gaps on cached policy, in-order replay on heal, one
poisoned report quarantined to the DLQ.

``REPRO_E15_FULL=1`` adds a federated-only 100k-device arm (no
single-site twin -- the flat build at 100k is quadratic and would take
hours, which is of course the point).
"""

from __future__ import annotations

import os
import types

import pytest

from _util import print_table, record

from repro.faults.scenario import run_federation_blackout_scenario
from repro.federation import SiteSpec, run_federation, run_site_worker, shard_fleet

SITES = 4
WORKERS = 4
HORIZON = 120.0
PAIR_SWEEP = (1_000, 10_000)
FULL_DEVICES = 100_000
MIN_SPEEDUP = float(os.environ.get("REPRO_E15_MIN_SPEEDUP", "2.0"))


def run_pair(total: int, sites: int = SITES, workers: int = WORKERS,
             horizon: float = HORIZON) -> dict:
    """One fleet, two arms: single-site vs federated-sharded.

    The federated arm goes first: its workers fork, and forking after
    the single-site arm has built (and freed) a quadratic-size flat
    deployment copies a bloated heap into every child, taxing the
    federated arm for the single arm's garbage."""
    import gc

    gc.collect()
    fed = run_federation(shard_fleet(total, sites, horizon=horizon), workers=workers)
    gc.collect()
    single = run_site_worker(SiteSpec(name="single", devices=total, horizon=horizon))
    single_eps = single["events"] / max(single["wall_s"], 1e-9)
    return {
        "devices": total,
        "sites": sites,
        "mode": fed["mode"],
        "single_wall_s": single["wall_s"],
        "single_events": single["events"],
        "single_events_per_s": single_eps,
        "fed_wall_s": fed["wall_s"],
        "fed_events": fed["events"],
        "fed_events_per_s": fed["aggregate_events_per_s"],
        "speedup": fed["aggregate_events_per_s"] / max(single_eps, 1e-9),
        "attacks_blocked": single["attacks_blocked"] + fed["attacks_blocked"],
        "attacks_launched": single["attacks_launched"] + fed["attacks_launched"],
        "compromised": single["compromised"] + fed["compromised"],
        "per_site_events_per_s": [r["events_per_s"] for r in fed["per_site"]],
    }


def test_e15_federated_scale():
    rows = [run_pair(n) for n in PAIR_SWEEP]
    print_table(
        "E15: single-site vs federated (4 sites, parallel workers)",
        ["Devices", "Mode", "Single wall (s)", "Single ev/s",
         "Fed wall (s)", "Fed ev/s", "Speedup", "Blocked", "Compromised"],
        [
            (
                f"{r['devices']:,}",
                r["mode"],
                f"{r['single_wall_s']:.2f}",
                f"{r['single_events_per_s']:,.0f}",
                f"{r['fed_wall_s']:.2f}",
                f"{r['fed_events_per_s']:,.0f}",
                f"{r['speedup']:.2f}x",
                f"{r['attacks_blocked']}/{r['attacks_launched']}",
                r["compromised"],
            )
            for r in rows
        ],
    )
    shim = types.SimpleNamespace(name="test_e15_federation", extra_info={})
    record(shim, "pairs", rows)
    for r in rows:
        assert r["attacks_blocked"] == r["attacks_launched"]
        assert r["compromised"] == 0
        assert r["sites"] >= 4
    # The tentpole gate: sharding the 10k fleet across >= 4 federated
    # sites must at least double aggregate throughput.
    big = rows[-1]
    assert big["devices"] == PAIR_SWEEP[-1]
    assert big["speedup"] >= MIN_SPEEDUP, (
        f"federated speedup {big['speedup']:.2f}x < {MIN_SPEEDUP}x at "
        f"{big['devices']:,} devices"
    )


def test_e15_blackout_partition_tolerance():
    out = run_federation_blackout_scenario(sites=SITES)
    print_table(
        "E15: coordinator blackout (60 s) over a 4-site federation",
        ["Attacks blocked", "Enforcement gaps", "Signatures", "Lag (s)",
         "Autonomy spells", "Offline (site-s)", "DLQ", "Converged"],
        [
            (
                f"{out['attacks_blocked']}/{out['attacks_launched']}",
                out["enforcement_gaps"],
                out["signatures_propagated"],
                f"{out['propagation_lag_v1']:.3f}",
                out["autonomy_enters"],
                f"{out['offline_s']:.0f}",
                out["dlq_quarantined"],
                out["converged"],
            )
        ],
    )
    shim = types.SimpleNamespace(name="test_e15_federation", extra_info={})
    record(shim, "blackout", {k: v for k, v in out.items() if k != "gap_details"})
    # Partition tolerance, verbatim from the issue: zero enforcement
    # gaps while the coordinator is dark.
    assert out["enforcement_gaps"] == 0, out["gap_details"]
    assert out["patient_zero_compromised"]  # the one pre-signature loss
    assert out["attacks_blocked"] == out["attacks_launched"] - 1
    assert out["signatures_propagated"] == 2
    assert out["out_of_order"] == 0
    assert out["pending_after"] == 0
    assert out["converged"]
    assert out["dlq_quarantined"] == 1
    assert out["autonomy_enters"] == SITES
    assert out["autonomy_exits"] == SITES
    # propagation: one push hop over the 40 ms WAN past the version stamp
    assert out["propagation_lag_v1"] == pytest.approx(0.040, abs=0.001)


@pytest.mark.skipif(
    not os.environ.get("REPRO_E15_FULL"),
    reason="100k-device federated arm only under REPRO_E15_FULL=1",
)
def test_e15_full_fleet_federated_only():
    sites = 16
    fed = run_federation(
        shard_fleet(FULL_DEVICES, sites, horizon=HORIZON), workers=WORKERS
    )
    print_table(
        f"E15-full: {FULL_DEVICES:,} devices across {sites} federated sites",
        ["Sites", "Mode", "Wall (s)", "Events", "Aggregate ev/s", "Compromised"],
        [
            (
                fed["sites"],
                fed["mode"],
                f"{fed['wall_s']:.1f}",
                f"{fed['events']:,}",
                f"{fed['aggregate_events_per_s']:,.0f}",
                fed["compromised"],
            )
        ],
    )
    shim = types.SimpleNamespace(name="test_e15_federation", extra_info={})
    record(shim, "full", {k: v for k, v in fed.items() if k != "per_site"})
    assert fed["compromised"] == 0
    assert fed["attacks_blocked"] == fed["attacks_launched"]
