"""E4: fuzzing coverage of cross-device interactions (paper section 4.2).

"We can think of the states of each IoT device model and the environment
as potential input variables for fuzzing ... We expect that device
interactions will likely be sparse ... Thus, fuzzing can give us
reasonable coverage over the space of acceptable behaviors."

For homes of growing size we compare three discoverers of implicit
(environment-mediated) cross-device interaction edges:

- exhaustive BFS over the abstract joint space (ground truth),
- the model fuzzer at a fixed step budget,
- passive observation of benign daily usage (the strawman).

Reported: edge counts, coverage, measured interaction-graph sparsity, and
the fuzzer's discovery curve.  Expected shape: fuzzing reaches (near-)full
coverage within the budget; passive observation misses the
hazard/smoke-style couplings; sparsity stays low, as the paper predicts.
"""

from __future__ import annotations

import random

from _util import percent, print_table, record

from repro.devices.library import (
    BULB_MODEL,
    DOOR_LOCK_MODEL,
    FIRE_ALARM_MODEL,
    LIGHT_SENSOR_MODEL,
    MOTION_SENSOR_MODEL,
    TEMP_SENSOR_MODEL,
    THERMOSTAT_MODEL,
    WINDOW_MODEL,
    smart_plug_model,
)
from repro.learning.abstract_env import AbstractWorld
from repro.learning.fuzzing import (
    ModelFuzzer,
    PassiveObserver,
    exhaustive_edges,
    interaction_sparsity,
)

BENIGN_ACTIONS = [
    ("cmd", "bulb", "on"),
    ("cmd", "bulb", "off"),
    ("cmd", "thermostat", "heat"),
    ("cmd", "thermostat", "off"),
    ("cmd", "lock", "lock"),
    ("cmd", "lock", "unlock"),
]


def home_of_size(n: int) -> dict:
    """Device sets of growing size; couplings stay sparse by construction."""
    catalog = [
        ("fire_alarm", FIRE_ALARM_MODEL),
        ("window", WINDOW_MODEL),
        ("oven_plug", smart_plug_model(hazard=1.0, heat_watts=2000.0)),
        ("bulb", BULB_MODEL),
        ("motion", MOTION_SENSOR_MODEL),
        ("thermostat", THERMOSTAT_MODEL),
        ("lock", DOOR_LOCK_MODEL),
        ("temp_sensor", TEMP_SENSOR_MODEL),
        ("lux_sensor", LIGHT_SENSOR_MODEL),
        ("heater_plug", smart_plug_model(heat_watts=1500.0)),
    ]
    return dict(catalog[:n])


def run_size(n_devices: int, budget: int, seed: int) -> dict:
    devices = home_of_size(n_devices)
    world = AbstractWorld(devices)
    truth, env_truth, states = exhaustive_edges(world, max_states=60_000)
    fuzz = ModelFuzzer(world, random.Random(seed)).run(budget)
    passive_actions = [a for a in BENIGN_ACTIONS if a[1] in devices]
    passive = PassiveObserver(world, passive_actions, random.Random(seed + 1)).run(budget)
    return {
        "devices": n_devices,
        "joint_states": states,
        "true_edges": len(truth),
        "fuzz_coverage": fuzz.coverage_against(truth),
        "fuzz_steps_to_full": (
            fuzz.discovery_curve[-1][0] if fuzz.coverage_against(truth) == 1.0 and fuzz.discovery_curve else None
        ),
        "passive_coverage": passive.coverage_against(truth),
        "sparsity": interaction_sparsity(devices, truth),
        "env_edges": len(env_truth),
    }


def test_e4_fuzzing_vs_passive(scenario_benchmark):
    sweep = [(4, 2000), (6, 3000), (8, 4000), (10, 6000)]

    def run_all():
        return [run_size(n, budget, seed=11 + i) for i, (n, budget) in enumerate(sweep)]

    results = scenario_benchmark(run_all)

    print_table(
        "E4: implicit cross-device interaction discovery",
        [
            "Devices",
            "Joint states",
            "True edges",
            "Fuzz coverage",
            "Steps to full",
            "Passive coverage",
            "Sparsity",
        ],
        [
            (
                r["devices"],
                f"{r['joint_states']:,}",
                r["true_edges"],
                percent(r["fuzz_coverage"]),
                r["fuzz_steps_to_full"] if r["fuzz_steps_to_full"] else "-",
                percent(r["passive_coverage"]),
                f"{r['sparsity']:.3f}",
            )
            for r in results
        ],
    )
    record(scenario_benchmark, "sweep", results)

    for r in results:
        assert r["true_edges"] >= 1
        # fuzzing achieves full coverage within budget on these homes
        assert r["fuzz_coverage"] == 1.0
        # passive benign observation misses implicit couplings
        assert r["passive_coverage"] < r["fuzz_coverage"]
        # the paper's sparsity expectation holds
        assert r["sparsity"] < 0.25
