"""E1: state-space explosion and pruning (paper section 3.2).

"In the limiting case, the total number of states is combinatorial;
|S| = prod |Ci| x |Ej| ... this brute-force enumeration may not be
practical as the number of devices and states scale ... it might be
possible to prune and collapse this giant FSM."

We build homes of growing size with a *sparse coupling structure* (each
device's policy depends on its own context plus at most one neighbour or
environment variable -- the realistic case per section 4.2's sparsity
expectation) and report:

- naive |S| (computed, never materialized),
- the per-device projected-table entries actually stored,
- the number of posture-equivalence classes (exact while feasible),
- independence-group structure, and
- analysis time.

Expected shape: naive |S| grows exponentially with device count; the
pruned representation grows ~linearly; the reduction factor explodes.
"""

from __future__ import annotations

from _util import print_table, record

from repro.policy.builder import PolicyBuilder
from repro.policy.context import COMPROMISED, SUSPICIOUS
from repro.policy.posture import block_commands, quarantine
from repro.policy.pruning import analyze


def build_home(n_devices: int, n_env: int):
    """A home with local coupling: device i's policy watches device i-1."""
    builder = PolicyBuilder()
    devices = [f"dev{i}" for i in range(n_devices)]
    for name in devices:
        builder.device(name)  # 3 context values each
    env_vars = [f"env{i}" for i in range(n_env)]
    for name in env_vars:
        builder.env(name, ("a", "b"))
    for i, name in enumerate(devices):
        builder.when(f"ctx:{name}", COMPROMISED).give(name, quarantine(name), priority=300)
        if i > 0:
            builder.when(f"ctx:{devices[i - 1]}", SUSPICIOUS).give(
                name, block_commands("on", name=f"guard-{name}"), priority=200
            )
        if env_vars:
            builder.when(f"env:{env_vars[i % n_env]}", "b").give(
                name, block_commands("open", name=f"envguard-{name}"), priority=100
            )
    return builder.build()


def test_e1_state_explosion_and_pruning(scenario_benchmark):
    sweep = [(2, 2), (4, 3), (6, 4), (8, 4), (10, 5), (12, 6)]

    def run_all():
        results = []
        for n_devices, n_env in sweep:
            policy = build_home(n_devices, n_env)
            report = analyze(policy, enumerate_limit=50_000)
            results.append(
                {
                    "devices": n_devices,
                    "env": n_env,
                    "naive": report.naive_states,
                    "projected": report.projected_entries,
                    "classes": report.collapsed_classes,
                    "groups": report.independence_group_count,
                    "largest_group": report.largest_group,
                    "reduction": report.reduction_factor,
                }
            )
        return results

    results = scenario_benchmark(run_all)

    print_table(
        "E1: |S| = prod|Ci| x |Ej| vs pruned representation",
        ["D", "E", "naive |S|", "projected entries", "classes", "indep. groups", "reduction x"],
        [
            (
                r["devices"],
                r["env"],
                f"{r['naive']:,}",
                r["projected"],
                r["classes"] if r["classes"] is not None else ">50k (skipped)",
                r["groups"],
                f"{r['reduction']:,.0f}",
            )
            for r in results
        ],
    )
    record(scenario_benchmark, "sweep", results)

    # Shape assertions: exponential naive growth, ~linear projected growth.
    naives = [r["naive"] for r in results]
    projections = [r["projected"] for r in results]
    assert all(b > a for a, b in zip(naives, naives[1:]))
    assert naives[-1] / naives[0] > 10_000          # exploded
    assert projections[-1] / projections[0] < 20    # stayed tame
    assert results[-1]["reduction"] > 10_000
    # classes (where computable) are far below naive states
    for r in results:
        if r["classes"] is not None:
            assert r["classes"] < r["naive"] / 2
