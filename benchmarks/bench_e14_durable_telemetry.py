"""E14: durable telemetry -- zero loss across a multi-hour partition.

One secured home (three telemetry-reporting devices under monitor
postures), one control-plane blackout from ``long_partition_plan``: the
channel between the µmbox cluster and the controller is severed for 2.5
simulated hours starting at t=60 s, and a camera brute-force wave fires
*mid-outage*, so the enforcement evidence itself is born while the wire
is down.  Two arms over the identical schedule:

- **lossy** arm -- the seed behavior: alerts ride the channel's
  unreliable fast path and every record emitted during the partition
  vanishes with the wire.  The controller never learns of the attack;
  the camera keeps its permissive monitor posture forever.
- **durable** arm -- ``durable_telemetry=True``: the cluster's
  store-and-forward buffer absorbs the outage (urgent lane for
  enforcement evidence, bulk lane for telemetry), the stream replays
  from the controller's acked offset once the window heals, and the
  late-but-in-order alerts escalate the camera to an enforcing posture.
  After the heal a reputation-flagged peer and a malformed batch are
  injected so the dead-letter queue carries its three quarantines (the
  CI artifact ``dlq_sample.jsonl`` is exported from this arm).

Headline metrics, all sim-deterministic: ``telemetry_loss`` (records
emitted at the cluster minus records the controller processed -- zero in
the durable arm, hundreds in the lossy arm), the bulk lane's
``peak_depth`` (bounded memory: the buffer must ride out the outage
without evicting), and whether the attacked camera ends the run under an
enforcing posture.  The gate in ``benchmarks/regression.py`` pins
``telemetry_loss == 0`` and ``peak_depth <= E14_PEAK_BUFFER_LIMIT``.
"""

from __future__ import annotations

from typing import Any

from _util import print_table, record

from repro.attacks.exploits import BruteForceLogin
from repro.core.deployment import SecuredDeployment
from repro.devices.library import smart_camera, smart_plug, thermostat
from repro.faults.plan import long_partition_plan
from repro.netsim.simulator import Simulator

PARTITION_START = 60.0
PARTITION_HOURS = 2.5
HEAL_AT = PARTITION_START + PARTITION_HOURS * 3600.0   # 9060 s
ATTACK_AT = 1800.0                                     # mid-outage
HORIZON = HEAL_AT + 500.0                              # heal + catch-up
DRAIN = 30.0                                           # in-flight settle
TELEMETRY_PERIOD = 15.0
FACTORIES = (smart_camera, smart_plug, thermostat)

COLUMNS = (
    "emitted",
    "received",
    "telemetry_loss",
    "attacked_posture",
    "delivered",
    "replayed_batches",
    "peak_depth",
    "urgent_lost",
    "bulk_lost",
    "dlq_quarantined",
    "events",
)


def run_scenario(durable: bool, dlq_sample_path: str | None = None) -> dict[str, Any]:
    """One arm of the durability experiment; fully sim-deterministic."""
    sim = Simulator()
    dep = SecuredDeployment.build(sim=sim, durable_telemetry=durable)
    for i, factory in enumerate(FACTORIES):
        device = dep.add_device(
            factory, f"dev{i}", report_to="hub", telemetry_period=TELEMETRY_PERIOD
        )
        device.start_telemetry()
    attacker = dep.add_attacker()
    dep.finalize()
    dep.enforce_baseline()  # monitor postures: telemetry flows through µmboxes

    # Count every alert arrival the controller actually processes -- the
    # same probe in both arms, independent of the transport underneath.
    received = [0]
    dep.controller.bus.subscribe("alert", lambda event: received.__setitem__(0, received[0] + 1))

    long_partition_plan(start=PARTITION_START, hours=PARTITION_HOURS).apply(dep)
    # A dictionary with no hit: the full wave fires (12 attempts in 1.2 s),
    # enough for the login-attempt escalation rule (5 within 30 s).
    brute = BruteForceLogin(
        dictionary=(
            "123456", "password", "qwerty", "letmein", "welcome", "window-pass",
            "oven-pass", "lock-pass", "0000", "1111", "iot123", "hunter2",
        )
    )
    sim.schedule_at(ATTACK_AT, lambda: brute.launch(attacker, "dev0", sim))

    if durable:
        consumer = dep.controller.stream
        assert consumer is not None
        consumer.flag_host("rogue-host")

        def inject_after_heal() -> None:
            # A reputation-flagged peer and a buggy one: three quarantines
            # (reputation, bad-device, bad-kind) for the DLQ artifact.
            dep.channel.send(
                "rogue-host",
                dep.CONTROLLER,
                "stream",
                {
                    "host": "rogue-host",
                    "lane": "bulk",
                    "records": [
                        {
                            "offset": 1,
                            "at": sim.now,
                            "body": {
                                "device": "dev0",
                                "kind": "telemetry",
                                "mbox": "spoofed",
                                "detail": {"state": "recording"},
                                "trace": None,
                            },
                        }
                    ],
                },
            )
            dep.channel.send(
                "buggy-host",
                dep.CONTROLLER,
                "stream",
                {
                    "host": "buggy-host",
                    "lane": "bulk",
                    "records": [
                        {"offset": 1, "at": sim.now, "body": {"device": "", "kind": "x"}},
                        {"offset": 2, "at": sim.now, "body": {"device": "dev1", "kind": ""}},
                    ],
                },
            )

        sim.schedule_at(HEAL_AT + 60.0, inject_after_heal)

    dep.run(until=HORIZON)
    # Close the tap, then settle: in-flight batches and acks land so the
    # emitted/received ledger compares completed work, not wire residue.
    for device in dep.devices.values():
        device.stop_telemetry()
    dep.run(until=HORIZON + DRAIN)

    emitted = len(dep.cluster.alerts)
    posture = dep.orchestrator.posture_of("dev0")
    result: dict[str, Any] = {
        "arm": "durable" if durable else "lossy",
        "emitted": emitted,
        "received": received[0],
        "telemetry_loss": emitted - received[0],
        "attacked_posture": posture.name if posture is not None else None,
        "events": sim.events_processed,
        "delivered": 0,
        "duplicates": 0,
        "replayed_batches": 0,
        "outstanding": 0,
        "peak_depth": 0,
        "urgent_lost": 0,
        "bulk_lost": 0,
        "capacity": 0,
        "dlq_quarantined": 0,
        "dlq_by_reason": {},
        "replay_lag_max_s": 0.0,
    }
    if durable:
        stream = dep.host_stream
        consumer = dep.controller.stream
        dlq = dep.controller.dlq
        assert stream is not None and consumer is not None and dlq is not None
        lanes = stream.stats()["lanes"]
        cstats = consumer.stats()
        result.update(
            delivered=cstats["delivered"],
            duplicates=cstats["duplicates"],
            replayed_batches=cstats["replayed_batches"],
            outstanding=stream.outstanding(),
            peak_depth=max(lane["peak_depth"] for lane in lanes.values()),
            urgent_lost=lanes["urgent"]["lost"] + lanes["urgent"]["overflow"],
            bulk_lost=lanes["bulk"]["lost"],
            capacity=lanes["bulk"]["capacity"],
            dlq_quarantined=dlq.stats()["quarantined"],
            dlq_by_reason=dlq.stats()["by_reason"],
            replay_lag_max_s=max(
                (e.fields["lag"] for e in sim.journal.entries(kind="stream-replay")),
                default=0.0,
            ),
        )
        if dlq_sample_path is not None:
            dlq.export_jsonl(dlq_sample_path)
    return result


def run_arms(dlq_sample_path: str | None = None) -> list[dict[str, Any]]:
    return [
        run_scenario(durable=False),
        run_scenario(durable=True, dlq_sample_path=dlq_sample_path),
    ]


def test_e14_durable_telemetry(scenario_benchmark):
    results = scenario_benchmark(run_arms)
    lossy, durable = results

    print_table(
        "E14: 2.5 h control-plane blackout -- lossy channel vs durable stream",
        ["Metric", "lossy", "durable"],
        [(col, lossy.get(col), durable.get(col)) for col in COLUMNS],
    )
    print(
        f"replay lag (max): {durable['replay_lag_max_s']:.0f} s; "
        f"bulk peak depth {durable['peak_depth']} of {durable['capacity']} capacity"
    )
    record(
        scenario_benchmark,
        "arms",
        {r["arm"]: r for r in results},
    )

    # Determinism: the same schedule reproduces the same run, bit for bit
    # -- this is what lets CI gate on these numbers across machines.
    assert run_arms() == results

    # Both arms emit the same alert stream up to the heal; they diverge
    # only afterwards, when the durable arm's enforcement re-postures the
    # attacked camera (its chain stops tapping telemetry).
    assert lossy["emitted"] > 1500 and durable["emitted"] > 1500
    # Only the durable arm delivers everything it emitted: zero loss
    # across the multi-hour partition (the issue's acceptance bound),
    # against hundreds of records vanished with the lossy wire.
    assert durable["telemetry_loss"] == 0
    assert lossy["telemetry_loss"] > 100
    # Bounded memory: the buffer rode out the outage inside its ring --
    # nothing evicted from either lane, no unbounded growth.
    assert durable["urgent_lost"] == 0 and durable["bulk_lost"] == 0
    assert 0 < durable["peak_depth"] <= durable["capacity"]
    assert durable["outstanding"] == 0  # fully drained after the heal
    # Replay happened (late batches, hours of lag) rather than fresh luck.
    assert durable["replayed_batches"] > 0
    assert durable["replay_lag_max_s"] > 3600.0
    # The mid-outage attack: invisible forever on the lossy wire, enforced
    # from replayed evidence on the durable one.
    assert lossy["attacked_posture"] == "monitor"
    assert durable["attacked_posture"] not in (None, "monitor")
    # The post-heal rogue and malformed injections all landed in the DLQ.
    assert durable["dlq_quarantined"] == 3
    assert set(durable["dlq_by_reason"]) == {"reputation", "bad-device", "bad-kind"}
