"""E7: µmbox agility vs a monolithic middlebox (paper section 5.2).

"µmboxes ... can be rapidly instantiated and frequently reconfigured when
the environment changes ... we can create custom micro VMs that can be
rapidly booted/rebooted ... the µmboxes must support frequent
reconfigurations without impacting the availability of IoT devices."

Workload: a day of posture churn -- every context flip forces the affected
device's security function to change.  Arms:

- µmbox manager (cold boot ~30 ms, pooled attach ~1 ms, in-place
  reconfigure ~5 ms with zero downtime), and
- one enterprise middlebox whose every policy change is a 5 s restart
  during which *all* devices are unprotected.

Reported: per-operation latency, total protection downtime, device-seconds
of exposure, pool hit rate.  Expected shape: orders-of-magnitude gap.
"""

from __future__ import annotations

import random

from _util import percent, print_table, record

from repro.mboxes.base import MboxHost
from repro.mboxes.manager import MboxManager, MonolithicMiddlebox
from repro.netsim.simulator import Simulator
from repro.policy.posture import MboxSpec, Posture

POSTURES = [
    Posture.make("monitor", MboxSpec.make("telemetry_tap")),
    Posture.make("firewall", MboxSpec.make("stateful_firewall", default="drop")),
    Posture.make("block-open", MboxSpec.make("command_filter", deny=["open"])),
    Posture.make("rate-limit", MboxSpec.make("rate_limiter", rate=1.0, burst=5.0)),
]


def run_churn(n_devices: int, changes: int, seed: int) -> dict:
    rng = random.Random(seed)
    sim = Simulator()
    host = MboxHost("cluster", sim)
    manager = MboxManager(sim, host, pool_size=8, capacity=n_devices + 8)
    mono = MonolithicMiddlebox(sim, restart_latency=5.0)
    devices = [f"dev{i}" for i in range(n_devices)]

    # initial deployment: every device gets a monitor posture
    for device in devices:
        manager.deploy(device, POSTURES[0])
    mono.apply_config({d: POSTURES[0] for d in devices})
    sim.run()

    # a day of context churn
    t = 0.0
    assignments = {d: POSTURES[0] for d in devices}
    for __ in range(changes):
        t += rng.expovariate(1 / 60.0)  # a posture change every ~minute
        device = devices[rng.randrange(n_devices)]
        posture = POSTURES[rng.randrange(1, len(POSTURES))]
        assignments[device] = posture

        def change(device=device, posture=posture) -> None:
            manager.deploy(device, posture)
            mono.apply_config(dict(assignments))

        sim.schedule(t, change)
    sim.run()
    horizon = sim.now

    stats = manager.latency_stats()
    mean = lambda xs: sum(xs) / len(xs) if xs else 0.0
    reconfig_latencies = stats.get("reconfigure", [])
    boot_latencies = stats.get("boot", []) + stats.get("pool", [])
    # exposure: monolithic downtime applies to every device at once
    mono_exposure = mono.downtime_total * n_devices
    # µmbox exposure: only a freshly *booted* device waits; reconfigs are
    # hitless, so exposure is the sum of initial boot/pool latencies.
    mbox_exposure = sum(boot_latencies)
    return {
        "devices": n_devices,
        "changes": changes,
        "horizon_s": horizon,
        "mbox_reconfig_ms": mean(reconfig_latencies) * 1e3,
        "mbox_boot_ms": mean(stats.get("boot", [])) * 1e3,
        "mbox_pool_ms": mean(stats.get("pool", [])) * 1e3,
        "pool_hit_rate": manager.pool_hits / max(1, manager.pool_hits + manager.boots),
        "mono_restart_s": mono.restart_latency,
        "mono_downtime_s": mono.downtime_total,
        "mono_exposure_ds": mono_exposure,
        "mbox_exposure_ds": mbox_exposure,
    }


def test_e7_mbox_agility(scenario_benchmark):
    sweep = [(10, 100), (25, 400), (50, 1000)]

    def run_all():
        return [run_churn(n, c, seed=i) for i, (n, c) in enumerate(sweep)]

    results = scenario_benchmark(run_all)

    print_table(
        "E7: posture churn -- µmbox manager vs monolithic middlebox",
        [
            "Devices",
            "Changes",
            "µmbox reconfig (ms)",
            "µmbox boot/pool (ms)",
            "Pool hits",
            "Monolithic downtime (s)",
            "Exposure µmbox (dev-s)",
            "Exposure mono (dev-s)",
        ],
        [
            (
                r["devices"],
                r["changes"],
                f"{r['mbox_reconfig_ms']:.1f}",
                f"{r['mbox_boot_ms']:.1f} / {r['mbox_pool_ms']:.1f}",
                percent(r["pool_hit_rate"]),
                f"{r['mono_downtime_s']:.0f}",
                f"{r['mbox_exposure_ds']:.3f}",
                f"{r['mono_exposure_ds']:.0f}",
            )
            for r in results
        ],
    )
    record(scenario_benchmark, "sweep", results)

    for r in results:
        # reconfiguration is milliseconds and hitless
        assert r["mbox_reconfig_ms"] < 10.0
        # the monolithic box spends minutes-to-hours of the day dark
        assert r["mono_downtime_s"] > 60.0
        # exposure gap: orders of magnitude
        assert r["mono_exposure_ds"] > 1000 * max(r["mbox_exposure_ds"], 1e-9)
