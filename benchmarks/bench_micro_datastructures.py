"""Microbenchmarks of the hot-path data structures.

These are true pytest-benchmark microbenchmarks (statistical timing of a
single operation), unlike the scenario benches.  They guard the structures
every packet or policy decision touches:

- flow-table lookup at realistic table sizes,
- signature matching against an IDS rule set,
- SystemState construction/hash (built once per policy evaluation),
- pruned policy lookup,
- one full end-to-end packet round trip through a tunnel + µmbox,

plus one bench per hot-path refactor win, so each stays won:

- schedule/fire through the slab/free-list ``Event`` pool,
- slotted ``Packet`` construction,
- interned flow-key lookup (cache hit),
- buffered journal append (the amortized write path),
- megaflow-cached flow-table lookup (the one-dict-probe fast path).
"""

from __future__ import annotations

import random

from repro.learning.signatures import (
    backdoor_signature,
    default_credential_signature,
    dns_amplification_signature,
)
from repro.mboxes.base import MboxContext
from repro.mboxes.ids import SignatureIDS
from repro.netsim.packet import Packet, flow_key, intern_flow
from repro.netsim.simulator import Simulator
from repro.netsim.switch import Switch
from repro.obs.journal import Journal
from repro.policy.builder import PolicyBuilder
from repro.policy.context import COMPROMISED, SUSPICIOUS, SystemState
from repro.policy.posture import block_commands, quarantine
from repro.policy.pruning import PrunedPolicy
from repro.sdn.flowrule import Action, FlowMatch, FlowRule


def test_flow_table_lookup_64_rules(benchmark):
    sim = Simulator()
    switch = Switch("sw", sim)
    for i in range(16):
        device = f"dev{i}"
        switch.install(FlowRule(
            match=FlowMatch(dst=device, in_port=1), actions=(Action.controller(),), priority=900,
        ))
        switch.install(FlowRule(
            match=FlowMatch(src=device, in_port=1), actions=(Action.controller(),), priority=890,
        ))
        switch.install(FlowRule(
            match=FlowMatch(dst=device), actions=(Action.drop(),), priority=500,
        ))
        switch.install(FlowRule(
            match=FlowMatch(src=device), actions=(Action.drop(),), priority=500,
        ))
    packet = Packet(src="attacker", dst="dev9", dport=8080)
    result = benchmark(switch.lookup, packet, 3)
    assert result is not None and result.priority == 500


def test_flow_table_lookup_megaflow_hit(benchmark):
    """Repeated lookup of one concrete 5-tuple: the megaflow-cache hit.

    The first lookup scans the bucketed table and caches the winner; every
    later identical lookup must be a single dict probe.  Any table change
    clears the cache (correctness over retention).
    """
    sim = Simulator()
    switch = Switch("sw", sim)
    for i in range(16):
        device = f"dev{i}"
        switch.install(FlowRule(
            match=FlowMatch(dst=device), actions=(Action.drop(),), priority=500,
        ))
    packet = Packet(src="attacker", dst="dev9", dport=8080)
    warm = switch.lookup(packet, 3)  # populate the cache
    result = benchmark(switch.lookup, packet, 3)
    assert result is warm and result.priority == 500
    assert len(switch._lookup_cache) == 1
    switch.install(FlowRule(
        match=FlowMatch(dst="dev9", dport=8080), actions=(Action.drop(),), priority=400,
    ))
    assert len(switch._lookup_cache) == 0  # install invalidates


def test_signature_ids_match_30_rules(benchmark):
    sim = Simulator()
    signatures = []
    for i in range(10):
        signatures.append(default_credential_signature(f"sku{i}"))
        signatures.append(backdoor_signature(f"sku{i}", 40000 + i))
        signatures.append(dns_amplification_signature(f"sku{i}"))
    ids = SignatureIDS(signatures, drop_on_match=False)
    ctx = MboxContext(
        sim=sim, mbox_name="m", device="d",
        view=lambda k: None, emit_alert=lambda a: None,
    )
    packet = Packet(
        src="attacker", dst="cam", protocol="http", dport=80,
        payload={"action": "login", "username": "admin", "password": "admin"},
    )
    packet.meta["direction"] = "to_device"
    benchmark(ids.process, packet, ctx)


def test_system_state_construction(benchmark):
    assignment = {f"ctx:dev{i}": "normal" for i in range(20)}
    assignment.update({f"env:var{i}": "low" for i in range(6)})

    def build():
        state = SystemState(assignment)
        return hash(state)

    benchmark(build)


def test_pruned_policy_lookup_30_devices(benchmark):
    builder = PolicyBuilder()
    devices = [f"dev{i}" for i in range(30)]
    for name in devices:
        builder.device(name)
    builder.env("occupancy", ("absent", "present"))
    for i, name in enumerate(devices):
        builder.when(f"ctx:{name}", COMPROMISED).give(name, quarantine(name), priority=300)
        builder.when(f"ctx:{devices[(i + 1) % 30]}", SUSPICIOUS).give(
            name, block_commands("on", name=f"g{i}"), priority=200
        )
    policy = builder.build()
    pruned = PrunedPolicy(policy)
    rng = random.Random(0)
    state = SystemState(
        {
            d.variable.key: rng.choice(d.values)
            for d in policy.space.domains
        }
    )
    benchmark(pruned.posture_for, state, "dev7")


def test_event_pool_schedule_fire(benchmark):
    """Schedule + fire 100 events through the slab/free-list pool.

    After the first batch every schedule() is a pool hit (pop + reinit,
    no allocation): this is the per-event floor of the whole simulator.
    """
    sim = Simulator(observe=False)

    def tick() -> None:
        pass

    def batch():
        for i in range(100):
            sim.schedule(0.001 * i, tick)
        sim.run()

    batch()  # prime the free list
    benchmark(batch)
    assert len(sim._free) >= 100  # the pool, not the allocator, fed the batch


def test_slotted_packet_construction(benchmark):
    """Packet is a hand-slotted class: building one must stay dict-free."""

    def build():
        return Packet(
            src="attacker", dst="cam", protocol="http", dport=80,
            payload={"action": "login"},
        )

    packet = benchmark(build)
    assert not hasattr(packet, "__dict__")


def test_flow_key_cache_hit(benchmark):
    """Interned Flow lookup: a cache hit allocates nothing new."""
    packet = Packet(src="cam", dst="hub", protocol="udp", sport=5353, dport=5353)
    first = intern_flow(
        packet.src, packet.dst, packet.protocol, packet.sport, packet.dport
    )

    def hit():
        return packet.flow

    flow = benchmark(hit)
    assert flow is first  # same interned object, not an equal copy
    assert flow_key(packet) == (
        packet.src, packet.dst, packet.protocol, packet.sport, packet.dport
    )


def test_buffered_journal_append(benchmark):
    """The amortized write path: one raw-tuple append per record call.

    Segment-boundary bookkeeping (roll + evict) amortizes across
    ``segment_size`` appends; the benchmark covers full segments so the
    measured figure includes that amortized share.
    """
    journal = Journal(clock=lambda: 0.0, segment_size=512, max_segments=8)

    def append_segment():
        for __ in range(512):
            journal.record("verdict", device="cam", verdict="drop", pkt=7)

    benchmark(append_segment)
    assert journal.recorded >= 512
    assert len(journal) <= 512 * (8 + 1)  # retention stays bounded


def test_end_to_end_packet_round_trip(benchmark):
    """One attacker packet through tunnel -> µmbox -> verdict, per round."""
    from repro.core.deployment import SecuredDeployment
    from repro.devices import protocol
    from repro.devices.library import smart_plug

    dep = SecuredDeployment.build()
    dep.add_device(smart_plug, "plug")
    attacker = dep.add_attacker()
    dep.finalize()
    dep.secure("plug", block_commands("on"))
    dep.run(until=0.5)

    def round_trip():
        attacker.fire_and_forget(
            protocol.command("attacker", "plug", "on", dport=8080)
        )
        # bounded: the environment ticker keeps the queue alive forever,
        # so an unbounded run() would never return
        dep.sim.run(until=dep.sim.now + 2.0)

    benchmark.pedantic(round_trip, rounds=50, iterations=1)
    assert dep.devices["plug"].state == "off"
