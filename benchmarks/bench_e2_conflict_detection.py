"""E2: policy-conflict detection at recipe scale (paper section 3.1).

"They assume recipes are independent, which can either lead to conflicts
or safety violations ... it is tedious for users to reason about possible
device interactions."

We generate recipe corpora from 50 to 800 recipes with a fixed fraction of
deliberately injected opposing pairs (ground truth), then measure:

- total conflicts surfaced (accidental ones grow ~quadratically: the
  "tedious for users" claim made quantitative),
- recall on the injected pairs (must be 100% -- the detector is sound for
  its definition), and
- scan time (quadratic pairwise scan; fine at IFTTT scale).
"""

from __future__ import annotations

import random
import time

from _util import print_table, record

from repro.policy.conflicts import find_recipe_conflicts
from repro.policy.ifttt import generate_corpus

TRIGGER_POOL = {f"env:v{i}": ("a", "b", "c") for i in range(12)} | {
    f"dev:d{i}": ("s0", "s1") for i in range(8)
}
ACTUATORS = {f"act{i}": ("on", "off", "open", "close", "lock", "unlock") for i in range(15)}


def run_scale(n: int, seed: int) -> dict:
    rng = random.Random(seed)
    corpus = generate_corpus(
        rng, TRIGGER_POOL, ACTUATORS, n, conflict_fraction=0.10
    )
    injected_pairs = {
        r.name.rsplit("-", 1)[0] for r in corpus if r.name.startswith("conflict-")
    }
    start = time.perf_counter()
    conflicts = find_recipe_conflicts(corpus)
    elapsed = time.perf_counter() - start

    flagged_names: set[str] = set()
    for conflict in conflicts:
        for recipe in corpus:
            if f"'{recipe.name}'" in conflict.detail:
                flagged_names.add(recipe.name)
    detected_pairs = {
        pair
        for pair in injected_pairs
        if f"{pair}-a" in flagged_names and f"{pair}-b" in flagged_names
    }
    return {
        "recipes": len(corpus),
        "injected_pairs": len(injected_pairs),
        "detected_pairs": len(detected_pairs),
        "total_conflicts": len(conflicts),
        "errors": sum(1 for c in conflicts if c.severity == "error"),
        "scan_ms": elapsed * 1e3,
    }


def test_e2_conflict_detection_scaling(scenario_benchmark):
    sizes = [50, 100, 200, 400, 800]

    def run_all():
        return [run_scale(n, seed=i) for i, n in enumerate(sizes)]

    results = scenario_benchmark(run_all)

    print_table(
        "E2: recipe-conflict detection as corpora grow",
        ["Recipes", "Injected pairs", "Detected", "All conflicts", "Opposing", "Scan (ms)"],
        [
            (
                r["recipes"],
                r["injected_pairs"],
                r["detected_pairs"],
                r["total_conflicts"],
                r["errors"],
                f"{r['scan_ms']:.1f}",
            )
            for r in results
        ],
    )
    record(scenario_benchmark, "sweep", results)

    for r in results:
        assert r["recipes"] >= 50
        assert r["detected_pairs"] == r["injected_pairs"]  # 100% recall
    # conflicts grow superlinearly with corpus size -- unmanageable by hand
    first, last = results[0], results[-1]
    growth = last["total_conflicts"] / max(1, first["total_conflicts"])
    size_growth = last["recipes"] / first["recipes"]
    assert growth > size_growth
