"""E11 (extension): fleet immunity through real federation.

E3 models crowdsourcing's coverage race abstractly; this experiment runs
it for real.  Eight *actual* deployments share one simulator and one
signature repository.  Every site runs the same vulnerable camera SKU
behind a monitor posture with forensic capture.  An attacker sweeps the
fleet, one site every 30 seconds.

Site 0 falls -- no signature exists yet.  Its operator mines a signature
from the µmbox's packet capture (:mod:`repro.learning.traceminer`) and
publishes it.  The repository scrubs it, pushes it to every subscribed
site's live IDS, and every *later* site in the sweep shrugs the attack
off.  The no-sharing control arm loses the entire fleet.

Reported: per-site outcome timeline, time from first compromise to fleet
immunity, total sites lost per arm.
"""

from __future__ import annotations

from _util import print_table, record

from repro.attacks.attacker import Attacker
from repro.attacks.exploits import EXPLOITS
from repro.core.deployment import SecuredDeployment
from repro.devices.library import smart_camera
from repro.learning.repository import CrowdRepository
from repro.learning.traceminer import LabelledTrace, mine_and_publish
from repro.mboxes.elements import PacketLogger
from repro.netsim.simulator import Simulator
from repro.policy.posture import MboxSpec, Posture

N_SITES = 8
SWEEP_GAP = 30.0

FORENSIC_MONITOR = Posture.make(
    "forensic-monitor",
    MboxSpec.make("telemetry_tap"),
    MboxSpec.make("packet_logger", capture=True),
    MboxSpec.make("login_monitor"),
    MboxSpec.make("signature_ids", sku="dlink:DCS-930L:1.0", drop_on_match=True),
)


def run_fleet(share: bool) -> dict:
    sim = Simulator()
    repo = CrowdRepository(sim, free_rider_delay=5.0, base_delay=1.0)
    sites: list[SecuredDeployment] = []
    attackers: list[Attacker] = []
    for i in range(N_SITES):
        site = SecuredDeployment.build(sim=sim)
        site.add_device(smart_camera, "cam")
        attackers.append(site.add_attacker())
        site.finalize()
        if share:
            site.attach_repository(repo)
        site.secure("cam", FORENSIC_MONITOR)
        sites.append(site)

    results: list = [None] * N_SITES
    published = {"done": False}

    def attack(i: int) -> None:
        results[i] = EXPLOITS["default_credential_hijack"].launch(
            attackers[i], "cam", sim, resource="image"
        )

    def site0_responds() -> None:
        """Site 0's operator mines the capture and publishes (once)."""
        if published["done"] or not share:
            return
        mbox = sites[0].cluster.mboxes.get("cam")
        logger = next(
            (e for e in mbox.elements if isinstance(e, PacketLogger)), None
        )
        attack_packets = [
            p
            for p in (logger.captured if logger else [])
            if p.src == "attacker" and p.payload.get("action") == "login"
        ]
        benign_packets = [
            p for p in (logger.captured if logger else []) if p.src != "attacker"
        ]
        if not attack_packets:
            return
        mine_and_publish(
            repo,
            LabelledTrace.make(attack=attack_packets, benign=benign_packets),
            sku="dlink:DCS-930L:1.0",
            reporter="site-0-operator",
            flaw_class="exposed-credentials",
            recommended_posture="password_proxy",
        )
        published["done"] = True

    for i in range(N_SITES):
        sim.schedule(1.0 + i * SWEEP_GAP, attack, i)
    # site 0's incident response: ten seconds after its attack
    sim.schedule(11.0, site0_responds)
    sim.run(until=N_SITES * SWEEP_GAP + 60.0)

    outcomes = []
    for i, site in enumerate(sites):
        compromised = bool(attackers[i].loot_from("cam"))
        outcomes.append(
            {
                "site": i,
                "attacked_at": 1.0 + i * SWEEP_GAP,
                "compromised": compromised,
                "signature_hits": sum(
                    1
                    for a in site.alerts("cam")
                    if a.kind == "signature-match"
                ),
            }
        )
    return {
        "arm": "federated" if share else "isolated",
        "outcomes": outcomes,
        "lost": sum(1 for o in outcomes if o["compromised"]),
        "published": repo.published,
    }


def test_e11_fleet_immunity(scenario_benchmark):
    def run_all():
        return [run_fleet(share=False), run_fleet(share=True)]

    isolated, federated = scenario_benchmark(run_all)

    print_table(
        "E11: an attacker sweeps 8 identical sites (one every 30 s)",
        ["Site", "Attacked at (s)", "Isolated arm", "Federated arm", "IDS hits (fed.)"],
        [
            (
                i,
                int(iso["attacked_at"]),
                "COMPROMISED" if iso["compromised"] else "safe",
                "COMPROMISED" if fed["compromised"] else "safe",
                fed["signature_hits"],
            )
            for i, (iso, fed) in enumerate(
                zip(isolated["outcomes"], federated["outcomes"])
            )
        ],
    )
    print_table(
        "E11: summary",
        ["Arm", "Sites lost", "Signatures published"],
        [
            (isolated["arm"], f"{isolated['lost']}/{N_SITES}", isolated["published"]),
            (federated["arm"], f"{federated['lost']}/{N_SITES}", federated["published"]),
        ],
    )
    record(scenario_benchmark, "isolated_lost", isolated["lost"])
    record(scenario_benchmark, "federated_lost", federated["lost"])

    # isolated: every site falls to the same exploit
    assert isolated["lost"] == N_SITES
    # federated: only the first victim falls; everyone after is immune
    assert federated["outcomes"][0]["compromised"]
    assert federated["lost"] == 1
    for outcome in federated["outcomes"][1:]:
        assert not outcome["compromised"]
        assert outcome["signature_hits"] >= 1
