"""Observability overhead: instrumentation must stay near-free.

The whole premise of ``repro.obs`` is that it is *always on*: callback
gauges cost nothing until sampled, counters are one attribute add, and
histograms/spans only fire at control-plane frequency.  This bench proves
it, by running an E9-small workload (20 fully-tunnelled devices, ten
simulated minutes of telemetry plus an attack sweep) with observability
enabled (the default) and disabled (``Simulator(observe=False)``), and
comparing simulator throughput.

Measurement protocol (shared with ``regression.py`` via
:func:`measure_overhead`): one *warmup pair* is run and discarded (the
first runs pay import, allocator and branch-predictor costs that have
nothing to do with instrumentation), then ``REPEATS`` interleaved
(on, off) pairs are measured and each arm takes its **best** run.
Ambient machine noise only ever makes a run *slower*, so the max over N
runs converges on each arm's true rate; per-pair ratios were tried and
rejected -- single runs on a shared box swing tens of percent, and the
two runs of a pair do not share that noise.  Because instrumentation
cannot make the simulator faster, a negative best-of-N estimate is pure
residual noise and is clamped to zero (the raw per-pair series is kept
in the recorded baseline so the noise floor stays visible) -- earlier
unclamped protocols recorded *negative* overheads in
``BENCH_TRAJECTORY.json``.  The threshold is 5% locally
(``REPRO_OBS_OVERHEAD_THRESHOLD`` overrides; CI uses 10%).
"""

from __future__ import annotations

import os
import time
import types

from _util import percent, print_table, record

from repro.attacks.exploits import EXPLOITS
from repro.core.deployment import SecuredDeployment
from repro.core.orchestrator import build_recommended_posture
from repro.devices.library import smart_bulb, smart_camera, smart_plug, thermostat
from repro.netsim.simulator import Simulator

FACTORY_CYCLE = [smart_camera, smart_plug, thermostat, smart_bulb]
N_DEVICES = 20
UNTIL = 1800.0
REPEATS = 7


def run_workload(observe: bool) -> dict:
    sim = Simulator(observe=observe)
    # The SLO/health plane rides along: with observe=True it evaluates
    # the full catalog at its default cadence (one sample per 5s fast
    # window); with observe=False it must be a strict no-op (no timer,
    # no gauges -- the null-instrument guarantee).
    dep = SecuredDeployment.build(sim=sim, health=True)
    trusted = (dep.HUB, dep.CONTROLLER)
    for i in range(N_DEVICES):
        factory = FACTORY_CYCLE[i % len(FACTORY_CYCLE)]
        device = dep.add_device(factory, f"dev{i}", report_to="hub", telemetry_period=20.0)
        device.start_telemetry()
    attacker = dep.add_attacker()
    dep.finalize()
    for i in range(N_DEVICES):
        name = f"dev{i}"
        device = dep.devices[name]
        if "exposed-credentials" in device.firmware.flaw_classes():
            posture = build_recommended_posture("password_proxy", name)
        elif device.firmware.flaw_classes() & {"backdoor", "exposed-access"}:
            posture = build_recommended_posture(
                "stateful_firewall", name, trusted_sources=trusted
            )
        else:
            posture = build_recommended_posture("monitor", name, sku=device.sku)
        dep.secure(name, posture)

    EXPLOITS["default_credential_hijack"].launch(attacker, "dev0", dep.sim)
    EXPLOITS["backdoor_command"].launch(
        attacker, "dev1", dep.sim, backdoor_port=49153, command="on"
    )
    start = time.perf_counter()
    dep.run(until=UNTIL)
    run_s = time.perf_counter() - start
    events = dep.sim.events_processed
    plane = dep.health_plane
    return {
        "observe": observe,
        "events": events,
        "run_s": run_s,
        "events_per_s": events / max(run_s, 1e-9),
        "compromised": sum(1 for d in dep.devices.values() if d.is_compromised()),
        "series": len(dep.sim.metrics),
        "traces": dep.sim.tracer.started,
        "journal": dep.sim.journal.recorded,
        "journal_retained": len(dep.sim.journal),
        "health_ticks": plane.slos.ticks if plane is not None else 0,
        "health_rollup": (
            plane.health.rollup() if plane is not None and plane.enabled else None
        ),
        "slo_breaches": plane.slos.breach_total() if plane is not None else 0,
    }


def measure_overhead(repeats: int = REPEATS) -> dict:
    """Warmed, interleaved, best-of-N overhead estimate (see module doc).

    Returns ``{"on": best-on-run, "off": best-off-run, "overhead":
    clamped best-of-N overhead, "pair_overheads": [per-pair overheads]}``
    -- the per-pair series is recorded so the noise floor is visible in
    the artifacts instead of silently folded into one number.
    """
    # Warmup pair, discarded: the first run of each arm pays one-time
    # costs (imports, allocator growth, branch caches) that would
    # otherwise bias whichever arm happens to run first.
    run_workload(observe=True)
    run_workload(observe=False)
    on_runs, off_runs = [], []
    for _ in range(repeats):
        on_runs.append(run_workload(observe=True))
        off_runs.append(run_workload(observe=False))
    on = max(on_runs, key=lambda r: r["events_per_s"])
    off = max(off_runs, key=lambda r: r["events_per_s"])
    return {
        "on": on,
        "off": off,
        # Instrumentation can only slow the simulator down; a negative
        # estimate is residual noise, clamped so the trajectory never
        # records an impossible speedup.
        "overhead": max(0.0, 1.0 - on["events_per_s"] / off["events_per_s"]),
        "pair_overheads": [
            1.0 - a["events_per_s"] / b["events_per_s"]
            for a, b in zip(on_runs, off_runs)
        ],
    }


def test_obs_overhead():
    estimate = measure_overhead()
    on, off = estimate["on"], estimate["off"]

    # Identical simulated work in both arms, modulo the health plane's
    # own evaluation timer: the observed arm runs one SLO tick per
    # simulated second, the disabled arm schedules nothing at all (the
    # null-instrument guarantee) -- so the event counts differ by
    # exactly the tick count and the <threshold budget now covers
    # instrumentation *plus* the live health plane.
    assert on["events"] == off["events"] + on["health_ticks"]
    assert on["health_ticks"] > 0 and off["health_ticks"] == 0
    assert on["health_rollup"] == "ok" and on["slo_breaches"] == 0
    assert on["compromised"] == off["compromised"] == 0
    assert off["series"] == 0 and off["traces"] == 0 and off["journal"] == 0
    assert on["series"] > 0 and on["traces"] > 0 and on["journal"] > 0
    # Bounded retention: however much was recorded, in-memory entries
    # never exceed the ring capacity.
    journal = Simulator().journal
    assert on["journal_retained"] <= journal.segment_size * journal.max_segments

    overhead = estimate["overhead"]
    threshold = float(os.environ.get("REPRO_OBS_OVERHEAD_THRESHOLD", "0.05"))

    print_table(
        f"Obs overhead: instrumentation on vs off (warmed best of {REPEATS})",
        ["Arm", "Sim events", "Wall (s)", "Events/s", "Series", "Traces"],
        [
            (
                "observe=True" if r is on else "observe=False",
                f"{r['events']:,}",
                f"{r['run_s']:.3f}",
                f"{r['events_per_s']:,.0f}",
                r["series"],
                r["traces"],
            )
            for r in (on, off)
        ],
    )
    print(f"overhead: {percent(overhead)} (threshold {percent(threshold)})")

    shim = types.SimpleNamespace(name="test_obs_overhead", extra_info={})
    record(
        shim,
        "overhead",
        {
            "on_events_per_s": on["events_per_s"],
            "off_events_per_s": off["events_per_s"],
            "overhead": overhead,
            "pair_overheads": estimate["pair_overheads"],
            "threshold": threshold,
            "series": on["series"],
            "traces": on["traces"],
            "journal": on["journal"],
            "health_ticks": on["health_ticks"],
            "health_rollup": on["health_rollup"],
        },
    )

    assert overhead < threshold, (
        f"instrumentation costs {overhead:.1%} of throughput "
        f"(threshold {threshold:.0%}): the observability layer is no "
        "longer near-free"
    )
