"""Observability overhead: instrumentation must stay near-free.

The whole premise of ``repro.obs`` is that it is *always on*: callback
gauges cost nothing until sampled, counters are one attribute add, and
histograms/spans only fire at control-plane frequency.  This bench proves
it, by running an E9-small workload (20 fully-tunnelled devices, ten
simulated minutes of telemetry plus an attack sweep) with observability
enabled (the default) and disabled (``Simulator(observe=False)``), and
comparing simulator throughput.

Arms are interleaved and each arm takes its best-of-3 wall time, so a
noisy-neighbour blip on CI cannot fake a regression.  The threshold is
5% locally (``REPRO_OBS_OVERHEAD_THRESHOLD`` overrides; CI uses 10%).
"""

from __future__ import annotations

import os
import time
import types

from _util import percent, print_table, record

from repro.attacks.exploits import EXPLOITS
from repro.core.deployment import SecuredDeployment
from repro.core.orchestrator import build_recommended_posture
from repro.devices.library import smart_bulb, smart_camera, smart_plug, thermostat
from repro.netsim.simulator import Simulator

FACTORY_CYCLE = [smart_camera, smart_plug, thermostat, smart_bulb]
N_DEVICES = 20
UNTIL = 1800.0
REPEATS = 3


def run_workload(observe: bool) -> dict:
    sim = Simulator(observe=observe)
    dep = SecuredDeployment.build(sim=sim)
    trusted = (dep.HUB, dep.CONTROLLER)
    for i in range(N_DEVICES):
        factory = FACTORY_CYCLE[i % len(FACTORY_CYCLE)]
        device = dep.add_device(factory, f"dev{i}", report_to="hub", telemetry_period=20.0)
        device.start_telemetry()
    attacker = dep.add_attacker()
    dep.finalize()
    for i in range(N_DEVICES):
        name = f"dev{i}"
        device = dep.devices[name]
        if "exposed-credentials" in device.firmware.flaw_classes():
            posture = build_recommended_posture("password_proxy", name)
        elif device.firmware.flaw_classes() & {"backdoor", "exposed-access"}:
            posture = build_recommended_posture(
                "stateful_firewall", name, trusted_sources=trusted
            )
        else:
            posture = build_recommended_posture("monitor", name, sku=device.sku)
        dep.secure(name, posture)

    EXPLOITS["default_credential_hijack"].launch(attacker, "dev0", dep.sim)
    EXPLOITS["backdoor_command"].launch(
        attacker, "dev1", dep.sim, backdoor_port=49153, command="on"
    )
    start = time.perf_counter()
    dep.run(until=UNTIL)
    run_s = time.perf_counter() - start
    events = dep.sim.events_processed
    return {
        "observe": observe,
        "events": events,
        "run_s": run_s,
        "events_per_s": events / max(run_s, 1e-9),
        "compromised": sum(1 for d in dep.devices.values() if d.is_compromised()),
        "series": len(dep.sim.metrics),
        "traces": dep.sim.tracer.started,
        "journal": dep.sim.journal.recorded,
        "journal_retained": len(dep.sim.journal),
    }


def test_obs_overhead():
    # Interleave the arms and keep each arm's best run: wall-clock noise
    # only ever makes an arm look *slower*, so best-of-N is the fair
    # estimate of its true cost.
    on_runs, off_runs = [], []
    for _ in range(REPEATS):
        on_runs.append(run_workload(observe=True))
        off_runs.append(run_workload(observe=False))
    on = max(on_runs, key=lambda r: r["events_per_s"])
    off = max(off_runs, key=lambda r: r["events_per_s"])

    # Identical simulated work in both arms -- otherwise the comparison
    # would be measuring workload drift, not instrumentation cost.
    assert on["events"] == off["events"]
    assert on["compromised"] == off["compromised"] == 0
    assert off["series"] == 0 and off["traces"] == 0 and off["journal"] == 0
    assert on["series"] > 0 and on["traces"] > 0 and on["journal"] > 0
    # Bounded retention: however much was recorded, in-memory entries
    # never exceed the ring capacity.
    journal = Simulator().journal
    assert on["journal_retained"] <= journal.segment_size * journal.max_segments

    overhead = 1.0 - on["events_per_s"] / off["events_per_s"]
    threshold = float(os.environ.get("REPRO_OBS_OVERHEAD_THRESHOLD", "0.05"))

    print_table(
        "Obs overhead: E9-small with instrumentation on vs off (best of 3)",
        ["Arm", "Sim events", "Wall (s)", "Events/s", "Series", "Traces"],
        [
            (
                "observe=True" if r is on else "observe=False",
                f"{r['events']:,}",
                f"{r['run_s']:.3f}",
                f"{r['events_per_s']:,.0f}",
                r["series"],
                r["traces"],
            )
            for r in (on, off)
        ],
    )
    print(f"overhead: {percent(overhead)} (threshold {percent(threshold)})")

    shim = types.SimpleNamespace(name="test_obs_overhead", extra_info={})
    record(
        shim,
        "overhead",
        {
            "on_events_per_s": on["events_per_s"],
            "off_events_per_s": off["events_per_s"],
            "overhead": overhead,
            "threshold": threshold,
            "series": on["series"],
            "traces": on["traces"],
            "journal": on["journal"],
        },
    )

    assert overhead < threshold, (
        f"instrumentation costs {overhead:.1%} of throughput "
        f"(threshold {threshold:.0%}): the observability layer is no "
        "longer near-free"
    )
