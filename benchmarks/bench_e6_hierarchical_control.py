"""E6: control-plane scale -- flat vs hierarchical; consistent updates.

Section 5.1 raises two control-plane challenges and sketches answers:

Part A -- responsiveness under event load.  "We can have a hierarchical
control architecture where frequently interacting components are handled
together by a low-level controller."  We drive Poisson-ish event storms at
deployments partitioned by policy independence and compare reaction-
latency percentiles and global-controller load, flat vs two-level.
Expected shape: local events are handled ~20x faster (on-premise RTT) and
the global controller sees only the cross-partition fraction.

Part B -- consistent updates.  "Critical state ... that must be handled in
a consistent fashion does change often."  We push rule-set epochs to a
growing switch fleet with the two-phase updater vs best-effort, and report
commit time and the inconsistency window (time during which switches
disagree about the active configuration).
"""

from __future__ import annotations

import random

from _util import print_table, record

from repro.core.hierarchical import (
    FlatControl,
    HierarchicalControl,
    crossing_devices,
    latency_percentiles,
    partition_by_independence,
)
from repro.netsim.simulator import Simulator
from repro.netsim.switch import Switch
from repro.policy.builder import PolicyBuilder
from repro.policy.context import SUSPICIOUS
from repro.policy.posture import block_commands
from repro.sdn.channel import ControlChannel
from repro.sdn.consistency import ConsistentUpdater
from repro.sdn.flowrule import Action, FlowMatch, FlowRule


def clustered_policy(n_rooms: int, cross_fraction: float):
    """n_rooms independent (alarm -> window) pairs; a fraction of rooms'
    windows also depend on a *global* variable, forcing escalation."""
    builder = PolicyBuilder()
    for room in range(n_rooms):
        builder.device(f"alarm{room}")
        builder.device(f"window{room}")
    builder.env("vacation", ("off", "on"))
    n_cross = int(n_rooms * cross_fraction)
    for room in range(n_rooms):
        builder.when(f"ctx:alarm{room}", SUSPICIOUS).give(
            f"window{room}", block_commands("open", name=f"g{room}")
        )
        if room < n_cross:
            builder.when("env:vacation", "on").give(
                f"window{room}", block_commands("open", "close", name=f"v{room}")
            )
    return builder.build()


def run_control(n_rooms: int, cross_fraction: float, events: int, rate: float, seed: int) -> dict:
    policy = clustered_policy(n_rooms, cross_fraction)
    # Partition by *interaction frequency* as section 5.1 proposes: each
    # room is a partition (pure independence grouping would merge every
    # vacation-coupled room into one giant local controller -- see
    # partition_by_independence for that alternative).
    partition = {}
    for room in range(n_rooms):
        partition[f"alarm{room}"] = room
        partition[f"window{room}"] = room
    crossing = crossing_devices(policy, partition)
    rng = random.Random(seed)
    devices = list(policy.devices)

    def drive(control) -> dict:
        sim = Simulator()
        control_instance = control(sim)
        t = 0.0
        for __ in range(events):
            t += rng.expovariate(rate)
            device = devices[rng.randrange(len(devices))]
            sim.schedule(t, control_instance.emit, device)
        sim.run()
        stats = latency_percentiles(control_instance.handled)
        return {
            "p50_ms": stats["p50"] * 1e3,
            "p99_ms": stats["p99"] * 1e3,
            "global_events": control_instance.global_load(),
        }

    rng_state = rng.getstate()
    flat = drive(lambda sim: FlatControl(sim, service_time=0.0005, global_latency=0.020))
    rng.setstate(rng_state)  # identical event sequence for both arms
    hier = drive(
        lambda sim: HierarchicalControl(
            sim, partition, crossing,
            service_time=0.0005, local_latency=0.001, global_latency=0.020,
        )
    )
    return {
        "rooms": n_rooms,
        "devices": len(devices),
        "rate": rate,
        "crossing": len(crossing),
        "flat": flat,
        "hier": hier,
    }


def run_consistency(n_switches: int) -> dict:
    sim = Simulator()
    channel = ControlChannel(sim, latency=0.005)
    updater = ConsistentUpdater(sim, channel)
    switches = [Switch(f"sw{i}", sim) for i in range(n_switches)]

    def rules():
        return [FlowRule(match=FlowMatch(), actions=(Action.drop(),))]

    two_phase = updater.push_two_phase({sw: rules() for sw in switches})
    sim.run()
    best_effort = updater.push_best_effort({sw: rules() for sw in switches})
    sim.run()
    return {
        "switches": n_switches,
        "two_phase_ms": two_phase.duration * 1e3,
        "best_effort_ms": best_effort.duration * 1e3,
    }


def test_e6_flat_vs_hierarchical_and_consistency(scenario_benchmark):
    control_sweep = [
        (10, 0.1, 2000, 200.0),
        (25, 0.1, 4000, 500.0),
        (50, 0.1, 8000, 1000.0),
        (50, 0.4, 8000, 1000.0),
    ]
    switch_sweep = [2, 8, 32]

    def run_all():
        control = [
            run_control(rooms, cross, events, rate, seed=i)
            for i, (rooms, cross, events, rate) in enumerate(control_sweep)
        ]
        consistency = [run_consistency(n) for n in switch_sweep]
        return control, consistency

    control, consistency = scenario_benchmark(run_all)

    print_table(
        "E6a: reaction latency and global load, flat vs hierarchical",
        [
            "Rooms",
            "Events/s",
            "Crossing devs",
            "Flat p50/p99 (ms)",
            "Hier p50/p99 (ms)",
            "Global events flat",
            "Global events hier",
        ],
        [
            (
                r["rooms"],
                int(r["rate"]),
                r["crossing"],
                f"{r['flat']['p50_ms']:.1f} / {r['flat']['p99_ms']:.1f}",
                f"{r['hier']['p50_ms']:.1f} / {r['hier']['p99_ms']:.1f}",
                r["flat"]["global_events"],
                r["hier"]["global_events"],
            )
            for r in control
        ],
    )
    print_table(
        "E6b: consistent-update commit time (5 ms control RTT legs)",
        ["Switches", "Two-phase (ms)", "Best-effort (ms)"],
        [
            (r["switches"], f"{r['two_phase_ms']:.1f}", f"{r['best_effort_ms']:.1f}")
            for r in consistency
        ],
    )
    record(scenario_benchmark, "control", control)
    record(scenario_benchmark, "consistency", consistency)

    for r in control:
        # hierarchy cuts median latency and offloads the global controller
        assert r["hier"]["p50_ms"] < r["flat"]["p50_ms"] / 2
        assert r["hier"]["global_events"] < r["flat"]["global_events"]
    # more crossing rules -> more escalation (the cost of coupling)
    same_size = [r for r in control if r["rooms"] == 50]
    assert same_size[1]["hier"]["global_events"] > same_size[0]["hier"]["global_events"]
    # two-phase pays a constant small multiple over best effort
    for r in consistency:
        assert r["two_phase_ms"] > r["best_effort_ms"]
        assert r["two_phase_ms"] <= 4 * r["best_effort_ms"]
