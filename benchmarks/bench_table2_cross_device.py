"""Table 2 reproduction: cross-device policy corpora.

The paper's Table 2 reports how many published IFTTT recipes involve three
popular devices (NEST Protect 188, Wemo Insight 227, Scout Alarm 63) and
gives one typical example per device.  We (a) execute each typical example
end-to-end over the simulation and (b) generate synthetic corpora at the
published per-device scale, then run the section 3.1 analyses the paper
says users cannot do by hand: conflict detection and translation into the
FSM guard form.
"""

from __future__ import annotations

import random

from _util import print_table, record

from repro.core.deployment import SecuredDeployment
from repro.devices.library import smart_bulb, smart_camera, smart_plug
from repro.policy.conflicts import find_recipe_conflicts
from repro.policy.ifttt import (
    TABLE2_COUNTS,
    TABLE2_EXAMPLES,
    generate_corpus,
    recipe_to_guard_rules,
)

TRIGGER_POOL = {
    "env:smoke": ("clear", "detected"),
    "env:occupancy": ("absent", "present"),
    "env:temperature": ("low", "normal", "high"),
    "env:illuminance": ("dark", "bright"),
    "env:window": ("closed", "open"),
    "env:door": ("locked", "unlocked"),
    "dev:nest_protect": ("ok", "alarm"),
    "dev:scout_alarm": ("ok", "alarm"),
    "dev:motion": ("idle", "active"),
}

ACTUATOR_COMMANDS = {
    "hue_lights": ("on", "off", "red"),
    "wemo_insight": ("on", "off"),
    "manything_camera": ("record", "stop"),
    "window": ("open", "close"),
    "door_lock": ("lock", "unlock"),
    "thermostat": ("heat", "cool", "off"),
    "oven": ("on", "off"),
    "scout_siren": ("on", "off"),
}


def run_examples() -> list[tuple[str, bool]]:
    """Execute the paper's three example recipes over the simulator."""
    dep = SecuredDeployment.build(with_iotsec=False)
    lights = dep.add_device(smart_bulb, "hue_lights")
    wemo = dep.add_device(smart_plug, "wemo_insight")
    camera = dep.add_device(smart_camera, "manything_camera")
    wemo.apply_command("on", src="hub", via="local")
    camera.apply_command("stop", src="hub", via="local")  # idle, will record
    for recipe in TABLE2_EXAMPLES:
        dep.hub.add_recipe(recipe)
    # scout alarm is represented by its state feed
    scout_state = {"state": "ok"}
    dep.hub.watch_devices(
        lambda name: scout_state["state"] if name == "scout_alarm" else None
    )
    dep.finalize()
    dep.env.discrete("occupancy").set("present")
    dep.run(until=5.0)
    # fire all three triggers
    dep.env.continuous("smoke").set(0.9)              # -> lights on
    dep.env.discrete("occupancy").set("absent")       # -> wemo off
    scout_state["state"] = "alarm"                    # -> camera record
    dep.run(until=30.0)
    return [
        ("NEST Protect: smoke -> hue on", lights.state == "on"),
        ("Wemo: away -> insight off", wemo.state == "off"),
        ("Scout: alarm -> camera record", camera.state == "recording"),
    ]


def analyze_corpus(device: str, count: int, seed: int) -> dict:
    rng = random.Random(seed)
    corpus = generate_corpus(
        rng, TRIGGER_POOL, ACTUATOR_COMMANDS, count, conflict_fraction=0.06
    )
    conflicts = find_recipe_conflicts(corpus)
    guard_rules = 0
    for recipe in corpus:
        domain = TRIGGER_POOL.get(recipe.trigger_variable)
        if domain and recipe.trigger_variable.startswith("env:"):
            guard_rules += len(recipe_to_guard_rules(recipe, domain))
    return {
        "device": device,
        "recipes": len(corpus),
        "conflicts": len(conflicts),
        "errors": sum(1 for c in conflicts if c.severity == "error"),
        "guard_rules": guard_rules,
    }


def test_table2_examples_and_corpora(scenario_benchmark):
    def run_all():
        examples = run_examples()
        corpora = [
            analyze_corpus(device, count, seed=row)
            for row, (device, count) in enumerate(sorted(TABLE2_COUNTS.items()))
        ]
        return examples, corpora

    examples, corpora = scenario_benchmark(run_all)

    print_table(
        "Table 2a: the paper's typical examples, executed",
        ["Recipe", "Fired correctly"],
        [(name, "yes" if ok else "NO") for name, ok in examples],
    )
    print_table(
        "Table 2b: synthetic corpora at the published per-device scale",
        ["Device", "Recipes", "Conflicts", "Opposing (errors)", "FSM guard rules"],
        [
            (c["device"], c["recipes"], c["conflicts"], c["errors"], c["guard_rules"])
            for c in corpora
        ],
    )
    record(scenario_benchmark, "examples", examples)
    record(scenario_benchmark, "corpora", corpora)

    assert all(ok for __, ok in examples)
    by_device = {c["device"]: c for c in corpora}
    assert by_device["nest_protect"]["recipes"] == 188
    assert by_device["wemo_insight"]["recipes"] == 227
    assert by_device["scout_alarm"]["recipes"] == 63
    # the section 3.1 claim: recipes assumed independent do conflict
    for c in corpora:
        assert c["conflicts"] > 0
        assert c["guard_rules"] > 0
