"""Ablation A3: µmbox pre-boot pool sizing.

Section 5.2's resource-management answer rests on pooled micro-VMs.  The
pool is a classic provisioning knob: too small and posture changes during
an incident wait for cold boots; too large and cluster memory idles.  We
replay an incident burst (many devices needing new µmboxes at once,
repeated over time) against pool sizes 0..16 and report attach-latency
percentiles and pool hit rate.
"""

from __future__ import annotations

import random

from _util import percent, print_table, record

from repro.mboxes.base import MboxHost
from repro.mboxes.manager import MboxManager
from repro.netsim.simulator import Simulator
from repro.policy.posture import MboxSpec, Posture


def run_pool(pool_size: int, bursts: int, burst_width: int, seed: int) -> dict:
    rng = random.Random(seed)
    sim = Simulator()
    host = MboxHost("cluster", sim)
    manager = MboxManager(
        sim, host, pool_size=pool_size,
        boot_latency=0.030, pool_attach_latency=0.001, capacity=4096,
    )
    device_id = 0
    t = 0.0
    for __ in range(bursts):
        t += rng.uniform(20.0, 60.0)  # pool has time to replenish between
        for i in range(burst_width):
            name = f"dev{device_id}"
            device_id += 1
            posture = Posture.make(
                f"p{device_id}", MboxSpec.make("stateful_firewall", default="drop")
            )
            sim.schedule(t + i * 0.001, manager.deploy, name, posture)
    sim.run()

    fresh = sorted(
        r.latency for r in manager.records if r.operation in ("boot", "pool")
    )
    total = len(fresh)

    def pct(p: float) -> float:
        return fresh[min(total - 1, int(p * total))] * 1e3

    return {
        "pool": pool_size,
        "deployments": total,
        "p50_ms": pct(0.50),
        "p95_ms": pct(0.95),
        "hit_rate": manager.pool_hits / max(1, total),
    }


def test_a3_pool_sizing(scenario_benchmark):
    sizes = [0, 1, 2, 4, 8, 16]

    def run_all():
        return [run_pool(size, bursts=10, burst_width=8, seed=5) for size in sizes]

    results = scenario_benchmark(run_all)

    print_table(
        "A3: pool size vs µmbox attach latency (bursts of 8 deployments)",
        ["Pool", "Deployments", "p50 (ms)", "p95 (ms)", "Pool hit rate"],
        [
            (r["pool"], r["deployments"], f"{r['p50_ms']:.1f}", f"{r['p95_ms']:.1f}", percent(r["hit_rate"]))
            for r in results
        ],
    )
    record(scenario_benchmark, "sweep", results)

    by_pool = {r["pool"]: r for r in results}
    # no pool: every deployment is a 30 ms cold boot
    assert by_pool[0]["hit_rate"] == 0.0
    assert by_pool[0]["p50_ms"] >= 29.0
    # a pool the size of the burst absorbs the whole burst
    assert by_pool[8]["hit_rate"] > 0.95
    assert by_pool[8]["p95_ms"] <= 1.5
    # hit rate is monotone in pool size
    rates = [r["hit_rate"] for r in results]
    assert all(a <= b + 1e-9 for a, b in zip(rates, rates[1:]))
