"""Benchmark-suite configuration: sane defaults for scenario benches.

Scenario benches run a whole simulated deployment per iteration; one round
is representative (the simulator is deterministic), so we default to few
rounds and disable warmup.
"""

import pytest


@pytest.fixture
def scenario_benchmark(benchmark):
    """A benchmark runner tuned for deterministic end-to-end scenarios."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=3, iterations=1)

    run.extra_info = benchmark.extra_info
    run.raw = benchmark
    return run
