"""E12: control-plane resilience bounds the exposure window under faults.

The standard chaos scenario (``repro.faults.scenario``): the control
channel partitions for 3 s exactly when an attacker starts brute-forcing
the camera, and the plug's command-filter µmbox is crashed while backdoor
``on`` commands keep arriving.  Two arms:

- **baseline** -- fire-and-forget control messages, no health checks,
  fail-open µmboxes: the partition eats the alerts that would have
  escalated the camera, and the dead µmbox silently exposes the plug for
  the rest of the run;
- **resilient** -- at-least-once delivery (retry/backoff + dedup),
  fail-closed enforcement µmboxes, and the health sweep that reboots the
  crashed instance and re-pins its chain.

Headline metric: the **exposure window** (seconds during which attacks
can land).  The gate in ``benchmarks/regression.py`` holds the resilient
arm's window to its committed baseline; everything here is seeded and
sim-timed, so the numbers are machine-independent.
"""

from __future__ import annotations

from _util import print_table, record

from repro.faults.scenario import run_resilience_scenario

SEED = 7

COLUMNS = (
    "attack_attempts",
    "attack_successes",
    "exposure_s",
    "cam_reenforce_s",
    "plug_downtime_s",
    "mean_time_to_reenforce_s",
    "ctrl_drops",
    "ctrl_retries",
    "ctrl_giveups",
    "mbox_restarts",
    "down_drops",
    "fail_open_passes",
    "events",
)


def run_arms(seed: int = SEED) -> list[dict]:
    return [run_resilience_scenario(resilient, seed=seed) for resilient in (False, True)]


def test_e12_resilience(scenario_benchmark):
    results = scenario_benchmark(run_arms)
    base, res = results

    print_table(
        "E12: exposure window with and without control-plane resilience",
        ["Metric", "baseline", "resilient"],
        [(col, base.get(col), res.get(col)) for col in COLUMNS],
    )
    record(scenario_benchmark, "arms", {r["arm"]: r for r in results})

    # Determinism: the same seed reproduces the same run, bit for bit --
    # this is what lets CI gate on these numbers across machines.
    assert run_arms() == results

    # The attacker faces the same schedule in both arms...
    assert base["attack_attempts"] == res["attack_attempts"]
    # ...but resilience strictly bounds the exposure window.
    assert res["exposure_s"] < base["exposure_s"]
    assert res["attack_successes"] < base["attack_successes"]

    # Baseline: the partition swallows alerts (no retries exist), and the
    # crashed fail-open µmbox lets backdoor commands through to the plug.
    assert base["ctrl_retries"] == 0 and base["ctrl_drops"] > 0
    assert base["mbox_restarts"] == 0
    assert base["fail_open_passes"] > 0
    assert base["plug_compromised"]

    # Resilient: retries carry the alerts across the partition (none are
    # abandoned), the health loop reboots the µmbox, and fail-closed means
    # not one command reached the plug -- ever.
    assert res["ctrl_retries"] > 0 and res["ctrl_giveups"] == 0
    assert res["mbox_restarts"] == 1
    assert res["fail_open_passes"] == 0
    assert res["plug_command_successes"] == 0
    assert not res["plug_compromised"]
    # Recovery is fast: µmbox downtime is detection (one health period,
    # 0.5 s) plus boot (0.03 s), not the rest of the run.
    assert res["plug_downtime_s"] <= 0.6
    # The camera is re-enforced shortly after the partition heals (retry
    # backoff reaches past the 3 s outage), not at the end of the horizon.
    assert res["cam_reenforce_s"] is not None
    assert res["cam_reenforce_s"] < base["cam_reenforce_s"] + base["plug_downtime_s"]
