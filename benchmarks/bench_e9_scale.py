"""E9 (extension): whole-stack scale check.

Not a paper claim but a reproduction-quality requirement: the simulated
IoTSec stack must stay fast enough to run the other experiments at
realistic sizes.  We build homes of 10..80 devices -- all tunnelled
through monitor µmboxes, all emitting telemetry -- drive ten simulated
minutes of traffic plus an attack sweep, and report simulator throughput
(events per wall-clock second) and end-state correctness (every attack
blocked, nothing compromised).
"""

from __future__ import annotations

import time
import types

from _util import print_table, record, record_metrics

from repro.attacks.exploits import EXPLOITS
from repro.core.deployment import SecuredDeployment
from repro.core.orchestrator import build_recommended_posture
from repro.devices.library import smart_bulb, smart_camera, smart_plug, thermostat
from repro.netsim.simulator import Simulator

FACTORY_CYCLE = [smart_camera, smart_plug, thermostat, smart_bulb]


def run_scale(n_devices: int) -> dict:
    start = time.perf_counter()
    dep = SecuredDeployment.build()
    trusted = (dep.HUB, dep.CONTROLLER)
    for i in range(n_devices):
        factory = FACTORY_CYCLE[i % len(FACTORY_CYCLE)]
        device = dep.add_device(factory, f"dev{i}", report_to="hub", telemetry_period=20.0)
        device.start_telemetry()
    attacker = dep.add_attacker()
    dep.finalize()
    for i in range(n_devices):
        name = f"dev{i}"
        device = dep.devices[name]
        if "exposed-credentials" in device.firmware.flaw_classes():
            posture = build_recommended_posture("password_proxy", name)
        elif device.firmware.flaw_classes() & {"backdoor", "exposed-access"}:
            posture = build_recommended_posture(
                "stateful_firewall", name, trusted_sources=trusted
            )
        else:
            posture = build_recommended_posture("monitor", name, sku=device.sku)
        dep.secure(name, posture)
    build_s = time.perf_counter() - start

    # attack the first camera and the first plug
    results = [
        EXPLOITS["default_credential_hijack"].launch(attacker, "dev0", dep.sim),
        EXPLOITS["backdoor_command"].launch(
            attacker, "dev1", dep.sim, backdoor_port=49153, command="on"
        ),
    ]
    start = time.perf_counter()
    dep.run(until=600.0)
    run_s = time.perf_counter() - start
    events = dep.sim.events_processed
    stats = dep.controller.pipeline.stats
    return {
        "sim": dep.sim,
        "devices": n_devices,
        "build_s": build_s,
        "run_s": run_s,
        "events": events,
        "events_per_s": events / max(run_s, 1e-9),
        "attacks_blocked": sum(1 for r in results if not r.succeeded),
        "compromised": sum(1 for d in dep.devices.values() if d.is_compromised()),
        "mboxes": dep.manager.active_count(),
        "pipeline_rounds": stats.rounds,
        "pipeline_coalesced": stats.coalesced,
        "pipeline_evaluations": stats.evaluations,
        "pipeline_applies": stats.applies,
    }


#: E9-small probe shape: 100 concurrent periodic timers at 10ms over 20
#: simulated seconds -- the telemetry/timer event mix of a 20-device E9
#: home, compressed so the run is dominated by the event loop itself.
SMALL_TIMERS = 100
SMALL_PERIOD = 0.01
SMALL_UNTIL = 20.0


def run_small(observe: bool = True) -> dict:
    """E9-small: the simulator-core capacity probe.

    E9 measures the *whole secured stack* (packets through µmboxes, the
    control pipeline, telemetry); its events/s is bounded from above by
    how fast the event loop itself can schedule, dispatch and recycle
    events.  E9-small measures that ceiling: the E9 timer mix (periodic
    telemetry-style timers, one reschedule per firing) with null handlers,
    so the slab/free-list ``Event`` pool, the precomputed ``every()``
    dispatch and the run loop are the entire cost.  This is the number
    that must approach 1M events/s for the full stack to ever get there.
    """
    sim = Simulator(observe=observe)

    def tick() -> None:
        pass

    for __ in range(SMALL_TIMERS):
        sim.every(SMALL_PERIOD, tick)
    start = time.perf_counter()
    sim.run(until=SMALL_UNTIL)
    run_s = time.perf_counter() - start
    events = sim.events_processed
    return {
        "observe": observe,
        "events": events,
        "run_s": run_s,
        "events_per_s": events / max(run_s, 1e-9),
    }


def test_e9_small_core_capacity():
    """The event-loop core must clear half of the 1M events/s north star."""
    rows = [run_small() for __ in range(3)]
    best = max(rows, key=lambda r: r["events_per_s"])
    print_table(
        "E9-small: event-loop core capacity (best of 3)",
        ["Sim events", "Wall (s)", "Events/s"],
        [(f"{best['events']:,}", f"{best['run_s']:.3f}", f"{best['events_per_s']:,.0f}")],
    )
    assert best["events"] == rows[0]["events"]  # deterministic event count
    shim = types.SimpleNamespace(name="test_e9_small_core_capacity", extra_info={})
    record(shim, "small", {k: best[k] for k in ("events", "run_s", "events_per_s")})
    # Generous CI floor (shared runners are slow); the regression gate
    # tracks the real number against the committed baseline.
    assert best["events_per_s"] > 100_000


def test_e9_whole_stack_scale(scenario_benchmark):
    sweep = [10, 20, 40, 80]

    def run_all():
        return [run_scale(n) for n in sweep]

    results = scenario_benchmark(run_all)
    # Embed the largest run's registry snapshot in the JSON baseline; the
    # sim handle itself must not leak into the serialized rows.
    sims = [r.pop("sim") for r in results]
    record_metrics(scenario_benchmark, sims[-1])

    print_table(
        "E9: ten simulated minutes of a fully-tunnelled home",
        [
            "Devices",
            "µmboxes",
            "Sim events",
            "Wall run (s)",
            "Events/s",
            "Rounds",
            "Coalesced",
            "Applies",
            "Attacks blocked",
            "Compromised",
        ],
        [
            (
                r["devices"],
                r["mboxes"],
                f"{r['events']:,}",
                f"{r['run_s']:.2f}",
                f"{r['events_per_s']:,.0f}",
                r["pipeline_rounds"],
                r["pipeline_coalesced"],
                r["pipeline_applies"],
                f"{r['attacks_blocked']}/2",
                r["compromised"],
            )
            for r in results
        ],
    )
    record(scenario_benchmark, "sweep", results)

    for r in results:
        assert r["attacks_blocked"] == 2
        assert r["compromised"] == 0
        assert r["mboxes"] == r["devices"]
    # sanity floor only -- absolute throughput is machine/load dependent;
    # typical figures are 60k-150k events/s (see EXPERIMENTS.md)
    assert min(r["events_per_s"] for r in results) > 10_000
