"""Ablation A4: the anomaly gate against signatureless attacks.

Signatures (Table 1 flaws) and context gates (Fig. 5) cover known badness.
The remaining gap: an attacker holding a *valid stolen session token*,
issuing commands that are individually legal -- no flaw, no signature, no
guarded command.  The anomaly gate's context-conditional profile is the
only element that can catch it (section 3.2's "anomaly detection rules"
slot in the posture).

Arms: monitor-only posture vs monitor + anomaly gate.  Both see the same
benign training traffic (hub automation) and the same replay attack.  We
also measure the benign false-positive count after training.
"""

from __future__ import annotations

from _util import print_table, record

from repro.core.deployment import SecuredDeployment
from repro.devices import protocol
from repro.devices.library import thermostat
from repro.policy.posture import MboxSpec, Posture


def run_arm(with_gate: bool) -> dict:
    dep = SecuredDeployment.build()
    thermo = dep.add_device(thermostat, "thermo")
    attacker = dep.add_attacker()
    dep.finalize()

    modules = [MboxSpec.make("telemetry_tap"), MboxSpec.make("packet_logger")]
    if with_gate:
        modules.append(
            MboxSpec.make(
                "anomaly_gate",
                device="thermo",
                training_window=60.0,
                min_training=10,
                threshold=0.05,
            )
        )
    dep.secure("thermo", Posture.make("baseline", *modules))

    # benign traffic: the hub cycles the thermostat every couple seconds
    session = next(iter(thermo.sessions))
    hub = dep.hub
    benign_sent = 40
    for i in range(benign_sent):
        dep.sim.schedule(
            1.0 + i * 2.0,
            lambda c=("heat" if i % 2 else "off"): hub.send(
                protocol.command("hub", "thermo", c, session=session),
                next(iter(hub.ports)),
            ),
        )

    # the attack: a stolen session token replayed from outside at t=120
    stolen_commands = 5
    for i in range(stolen_commands):
        dep.sim.schedule(
            120.0 + i * 1.0,
            lambda: attacker.fire_and_forget(
                protocol.command("attacker", "thermo", "heat", session=session)
            ),
        )
    dep.run(until=180.0)

    attacker_commands_landed = sum(
        1 for r in thermo.command_log if r.src == "attacker" and r.accepted
    )
    benign_landed = sum(
        1 for r in thermo.command_log if r.src == "hub" and r.accepted
    )
    return {
        "arm": "monitor+anomaly_gate" if with_gate else "monitor only",
        "attacker_commands_landed": attacker_commands_landed,
        "benign_landed": benign_landed,
        "benign_sent": benign_sent,
        "anomaly_alerts": sum(
            1 for a in dep.alerts("thermo") if a.kind == "anomalous-command"
        ),
        "context": dep.controller.context_of("thermo"),
    }


def test_a4_anomaly_gate_catches_stolen_session(scenario_benchmark):
    def run_all():
        return [run_arm(False), run_arm(True)]

    results = scenario_benchmark(run_all)

    print_table(
        "A4: stolen-session replay (no flaw, no signature, legal commands)",
        ["Arm", "Attacker cmds landed", "Benign landed", "Anomaly alerts", "Context"],
        [
            (
                r["arm"],
                f"{r['attacker_commands_landed']}/5",
                f"{r['benign_landed']}/{r['benign_sent']}",
                r["anomaly_alerts"],
                r["context"],
            )
            for r in results
        ],
    )
    record(scenario_benchmark, "arms", results)

    without, with_gate = results
    # without the gate: the valid token sails through, nothing noticed
    assert without["attacker_commands_landed"] == 5
    assert without["anomaly_alerts"] == 0
    assert without["context"] == "normal"
    # with the gate: replay blocked, context escalated, zero benign loss
    assert with_gate["attacker_commands_landed"] == 0
    assert with_gate["anomaly_alerts"] >= 2
    assert with_gate["context"] == "suspicious"
    assert with_gate["benign_landed"] == with_gate["benign_sent"]
