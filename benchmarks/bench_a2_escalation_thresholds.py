"""Ablation A2: context-escalation threshold tuning.

The controller turns alert streams into security contexts through
threshold rules ("N login attempts within W seconds -> suspicious").
The tradeoff:

- too aggressive, and a fat-fingered owner locks themselves out
  (false-positive escalation);
- too lax, and the brute-forcer gets more dictionary words in before the
  firewall slams (attacker budget).

We sweep the login-attempt threshold and measure both sides against the
same home: an owner who mistypes twice before getting it right, and a
10 req/s brute forcer.
"""

from __future__ import annotations

from _util import print_table, record

from repro.attacks.exploits import BruteForceLogin
from repro.core.controller import DEFAULT_ESCALATIONS, EscalationRule
from repro.core.deployment import SecuredDeployment
from repro.core.orchestrator import build_recommended_posture
from repro.devices import protocol
from repro.devices.library import window_actuator
from repro.policy.context import SUSPICIOUS


def escalations_with_threshold(n: int) -> tuple[EscalationRule, ...]:
    rules = [r for r in DEFAULT_ESCALATIONS if r.alert_kind != "login-attempt"]
    rules.append(EscalationRule("login-attempt", SUSPICIOUS, count=n, window=30.0))
    return tuple(rules)


def run_threshold(threshold: int) -> dict:
    # --- arm 1: clumsy but legitimate owner -------------------------------
    dep = SecuredDeployment.build()
    win = dep.add_device(window_actuator, "window")
    owner = dep.add_attacker("owner_phone", latency=0.005)
    dep.finalize()
    dep.controller.escalations = escalations_with_threshold(threshold)
    dep.secure(
        "window",
        build_recommended_posture("monitor", "window", sku=win.sku),
        pin=False,
    )
    outcomes = []
    for i, password in enumerate(["window-pss", "windw-pass", "window-pass"]):
        dep.sim.schedule(
            1.0 + i * 2.0,
            lambda p=password: owner.request(
                protocol.login("owner_phone", "window", "admin", p),
                lambda rep: outcomes.append(protocol.is_ok(rep)),
            ),
        )
    dep.run(until=30.0)
    owner_locked_out = not any(outcomes)
    owner_flagged = dep.controller.context_of("window") == SUSPICIOUS

    # --- arm 2: brute forcer ----------------------------------------------
    dep2 = SecuredDeployment.build()
    win2 = dep2.add_device(window_actuator, "window")
    attacker = dep2.add_attacker()
    dep2.finalize()
    dep2.controller.escalations = escalations_with_threshold(threshold)
    dep2.secure(
        "window",
        build_recommended_posture("monitor", "window", sku=win2.sku),
        pin=False,
    )
    result = BruteForceLogin(rate=10.0).launch(attacker, "window", dep2.sim, command="open")
    dep2.run(until=60.0)
    attempts_before_block = sum(1 for __t, src, __u, __ok in win2.login_log if src == "attacker")
    return {
        "threshold": threshold,
        "owner_locked_out": owner_locked_out,
        "owner_flagged": owner_flagged,
        "brute_force_won": result.succeeded and win2.state == "open",
        "attempts_landed": attempts_before_block,
    }


def test_a2_escalation_threshold_sweep(scenario_benchmark):
    thresholds = [2, 3, 5, 8, 12, 20]

    def run_all():
        return [run_threshold(t) for t in thresholds]

    results = scenario_benchmark(run_all)

    print_table(
        "A2: login-attempt escalation threshold (owner mistypes twice; attacker at 10/s)",
        [
            "Threshold",
            "Owner locked out",
            "Owner flagged suspicious",
            "Brute force won",
            "Attacker attempts landed",
        ],
        [
            (
                r["threshold"],
                r["owner_locked_out"],
                r["owner_flagged"],
                r["brute_force_won"],
                r["attempts_landed"],
            )
            for r in results
        ],
    )
    record(scenario_benchmark, "sweep", results)

    by_threshold = {r["threshold"]: r for r in results}
    # too aggressive: the owner's two typos trip the escalation
    assert by_threshold[2]["owner_flagged"]
    # the shipped default (5) leaves the owner alone and stops the attack
    assert not by_threshold[5]["owner_locked_out"]
    assert not by_threshold[5]["owner_flagged"]
    assert not by_threshold[5]["brute_force_won"]
    # attacker budget grows monotonically with the threshold
    budgets = [r["attempts_landed"] for r in results]
    assert all(b <= c for b, c in zip(budgets, budgets[1:]))
    # far too lax: the dictionary wins before escalation
    assert by_threshold[20]["brute_force_won"]
