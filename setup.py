"""Shim for environments whose pip/setuptools cannot do PEP-660 editable
installs (no `wheel` package available offline).  `pip install -e .` uses
this via the legacy code path; metadata lives in pyproject.toml."""
from setuptools import setup

setup()
