"""Abstract device-class models.

Section 4.2: "we envision building a library containing abstract models of
different classes of devices (e.g., toaster, microwave, smart bulb rather
than specific instances) that capture key input-output behaviors and
interactions with environment variables ... modeling cyberphysical systems
as simple FSMs".

A :class:`DeviceModel` is that FSM: states, command-driven transitions,
per-state physical actuation effects, environment-triggered autonomous
transitions, and sensor read-outs.  The same model object drives

1. the *executable* device (:class:`repro.devices.base.IoTDevice`),
2. the fuzzer's exploration of the joint device x environment space
   (:mod:`repro.learning.fuzzing`), and
3. attack-graph construction (:mod:`repro.learning.attackgraph`),

so what the learner reasons about is exactly what runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


@dataclass(frozen=True)
class EnvEffect:
    """While the device is in ``state``, it contributes ``inputs`` to physics.

    Example: a space heater's ``on`` state contributes
    ``{"heat_watts": 1500.0}``.
    """

    state: str
    inputs: tuple[tuple[str, float], ...]

    @classmethod
    def make(cls, state: str, **inputs: float) -> "EnvEffect":
        return cls(state, tuple(sorted(inputs.items())))

    def as_dict(self) -> dict[str, float]:
        return dict(self.inputs)


@dataclass(frozen=True)
class EnvTrigger:
    """When ``variable`` reaches ``level``, the device self-applies ``command``.

    Example: a fire alarm triggers its own ``alarm`` command when
    ``smoke=detected``; a motion sensor reports when ``occupancy=present``.
    """

    variable: str
    level: str
    command: str


@dataclass(frozen=True)
class DeviceModel:
    """The FSM abstract model of one device *class*.

    Attributes
    ----------
    kind:
        Class name ("smart_plug", "camera", ...), the granularity at which
        models are shared (coarser than SKU -- the point of section 4.2).
    states:
        All FSM states.
    initial:
        Starting state.
    transitions:
        ``(state, command) -> next_state``.  Commands absent for a state are
        ignored (devices drop inapplicable commands).
    effects:
        Physical actuation contributions per state.
    triggers:
        Environment-level-driven autonomous commands.
    sensors:
        ``report_key -> environment variable`` read-outs included in
        telemetry.
    state_bindings:
        ``(state, variable, level)`` triples: while in ``state`` the device
        holds the discrete environment variable at ``level`` (a window
        actuator's ``open`` state holds ``window=open``).
    commands:
        Derived: every command appearing in ``transitions``.
    """

    kind: str
    states: tuple[str, ...]
    initial: str
    transitions: Mapping[tuple[str, str], str] = field(default_factory=dict)
    effects: tuple[EnvEffect, ...] = ()
    triggers: tuple[EnvTrigger, ...] = ()
    sensors: tuple[tuple[str, str], ...] = ()
    state_bindings: tuple[tuple[str, str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.initial not in self.states:
            raise ValueError(f"{self.kind}: initial {self.initial!r} not a state")
        for (state, cmd), nxt in self.transitions.items():
            if state not in self.states:
                raise ValueError(f"{self.kind}: unknown source state {state!r}")
            if nxt not in self.states:
                raise ValueError(f"{self.kind}: unknown target state {nxt!r}")
        for effect in self.effects:
            if effect.state not in self.states:
                raise ValueError(f"{self.kind}: effect for unknown state {effect.state!r}")

    @property
    def commands(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for (__, cmd) in self.transitions:
            seen.setdefault(cmd)
        for trigger in self.triggers:
            seen.setdefault(trigger.command)
        return tuple(seen)

    def next_state(self, state: str, cmd: str) -> str:
        """The state after ``cmd`` in ``state`` (self-loop when inapplicable)."""
        return self.transitions.get((state, cmd), state)

    def effect_inputs(self, state: str) -> dict[str, float]:
        """Aggregate actuation inputs contributed in ``state``."""
        inputs: dict[str, float] = {}
        for effect in self.effects:
            if effect.state == state:
                for key, value in effect.inputs:
                    inputs[key] = inputs.get(key, 0.0) + value
        return inputs

    def affected_inputs(self) -> set[str]:
        """Every physics input this device class can touch (its *actuation
        footprint*): the fuzzer uses footprints to bound which couplings are
        even possible."""
        keys: set[str] = set()
        for effect in self.effects:
            keys.update(k for k, __ in effect.inputs)
        return keys

    def bound_variables(self) -> set[str]:
        """Discrete environment variables this class directly holds."""
        return {var for __, var, __level in self.state_bindings}

    def binding_for(self, state: str) -> list[tuple[str, str]]:
        """``(variable, level)`` pairs asserted while in ``state``."""
        return [
            (var, level) for st, var, level in self.state_bindings if st == state
        ]

    def sensed_variables(self) -> set[str]:
        """Every environment variable this class observes."""
        observed = {var for __, var in self.sensors}
        observed.update(t.variable for t in self.triggers)
        return observed

    def reachable_states(self, from_state: str | None = None) -> set[str]:
        """States reachable by any command sequence (plus triggers)."""
        start = from_state or self.initial
        frontier = [start]
        seen = {start}
        while frontier:
            state = frontier.pop()
            for (src, __), dst in self.transitions.items():
                if src == state and dst not in seen:
                    seen.add(dst)
                    frontier.append(dst)
        return seen

    def validate_deterministic(self) -> None:
        """Mapping keys are unique by construction; states must be too."""
        if len(set(self.states)) != len(self.states):
            raise ValueError(f"{self.kind}: duplicate states")
