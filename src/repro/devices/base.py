"""The executable IoT device node.

An :class:`IoTDevice` combines an abstract :class:`DeviceModel` (behaviour)
with a :class:`Firmware` (flaws) and binds both to the network and to the
physical :class:`Environment`.  It is intentionally *faithful to the flaws*:
if the firmware ships a backdoor, the device executes unauthenticated
commands arriving on it; if it ships an open DNS resolver, it amplifies
spoofed queries.  Defence lives in the network (µmboxes), never on the
device -- the paper's core premise.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.devices.firmware import Firmware
from repro.devices.model import DeviceModel
from repro.devices.protocol import (
    CTRL_PORT,
    DNS_PORT,
    MGMT_PORT,
    STATUS_DENIED,
    STATUS_ERROR,
    STATUS_OK,
    TELEMETRY_PORT,
)
from repro.netsim.node import Node
from repro.netsim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.environment.engine import Environment
    from repro.netsim.simulator import Simulator

DNS_AMPLIFICATION = 8  # response bytes per query byte for the open resolver


@dataclass
class CommandRecord:
    """Ground-truth log entry for one control command."""

    at: float
    src: str
    cmd: str
    accepted: bool
    via: str  # "session" | "open" | "noauth" | "backdoor" | "trigger" | "local"
    state_before: str
    state_after: str
    params: dict[str, Any] = field(default_factory=dict)


class IoTDevice(Node):
    """A networked, physically-coupled, (typically) vulnerable device."""

    def __init__(
        self,
        name: str,
        sim: "Simulator",
        model: DeviceModel,
        firmware: Firmware,
        env: "Environment | None" = None,
        report_to: str | None = None,
        telemetry_period: float = 30.0,
    ) -> None:
        super().__init__(name, sim)
        self.model = model
        self.firmware = firmware
        self.env = env
        self.report_to = report_to
        self.telemetry_period = telemetry_period
        self.state = model.initial
        self.sessions: dict[str, str] = {}
        self._session_ids = itertools.count(1)
        self.command_log: list[CommandRecord] = []
        self.login_log: list[tuple[float, str, str, bool]] = []
        self.compromised_by: list[str] = []
        self.dns_replies = 0
        self._telemetry_stop = None
        if env is not None:
            self._bind_environment(env)

    # ------------------------------------------------------------------
    # Environment binding
    # ------------------------------------------------------------------
    def _bind_environment(self, env: "Environment") -> None:
        self._apply_effects()
        if self.model.triggers:
            env.on_level_change(self._on_env_level)

    def _apply_effects(self) -> None:
        """Publish this state's actuation contributions to the physics."""
        if self.env is None:
            return
        for key in self.model.affected_inputs():
            self.env.clear_input(key, source=self.name)
        for key, value in self.model.effect_inputs(self.state).items():
            self.env.set_input(key, value, source=self.name)
        for variable, level in self.model.binding_for(self.state):
            if variable in self.env.variables:
                self.env.discrete(variable).set(level)

    def _on_env_level(self, variable: str, level: str) -> None:
        for trigger in self.model.triggers:
            if trigger.variable == variable and trigger.level == level:
                self.apply_command(trigger.command, src=self.name, via="trigger")

    def sensor_readings(self) -> dict[str, str]:
        """Current sensed levels, keyed by report name."""
        if self.env is None:
            return {}
        readings = {}
        for report_key, variable in self.model.sensors:
            if variable in self.env.variables:
                readings[report_key] = self.env.level(variable)
        return readings

    # ------------------------------------------------------------------
    # Command execution (the FSM)
    # ------------------------------------------------------------------
    def apply_command(
        self,
        cmd: str,
        src: str,
        via: str,
        accepted: bool = True,
        **params: Any,
    ) -> CommandRecord:
        """Run one FSM command (or record its rejection)."""
        before = self.state
        after = before
        if accepted:
            after = self.model.next_state(before, cmd)
            if after != before:
                self.state = after
                self._apply_effects()
                self.sim.journal.record(
                    "device",
                    device=self.name,
                    cmd=cmd,
                    src=src,
                    via=via,
                    state_before=before,
                    state_after=after,
                )
        record = CommandRecord(
            at=self.sim.now,
            src=src,
            cmd=cmd,
            accepted=accepted,
            via=via,
            state_before=before,
            state_after=after,
            params=params,
        )
        self.command_log.append(record)
        if accepted and via in ("backdoor", "noauth", "open") and src != self.name:
            # Ground truth: an unauthenticated remote party drove the device.
            if src not in self.compromised_by:
                self.compromised_by.append(src)
                self.sim.journal.record(
                    "compromise", device=self.name, src=src, via=via
                )
        return record

    # ------------------------------------------------------------------
    # Network entry point
    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet, in_port: int) -> None:
        if packet.dport == MGMT_PORT:
            self._handle_mgmt(packet, in_port)
        elif packet.dport == CTRL_PORT:
            self._handle_control(packet, in_port)
        elif packet.dport == DNS_PORT:
            self._handle_dns(packet, in_port)
        elif (
            self.firmware.backdoor_port is not None
            and packet.dport == self.firmware.backdoor_port
        ):
            self._handle_backdoor(packet, in_port)
        elif packet.dport in self.firmware.open_ports:
            # A non-standard exposed port behaves like an unauthenticated
            # control channel (Table 1 rows 2 and 3: "exposed access").
            self._execute_control(packet, in_port, via="open")
        # Anything else is silently dropped, like a closed port.

    def _reply(self, packet: Packet, in_port: int, payload: dict[str, Any], size: int = 64) -> None:
        self.send(packet.reply(payload, size=size), in_port)

    # Management plane --------------------------------------------------
    def _handle_mgmt(self, packet: Packet, in_port: int) -> None:
        action = packet.payload.get("action")
        if action == "login":
            username = str(packet.payload.get("username", ""))
            password = str(packet.payload.get("password", ""))
            ok = self.firmware.check_login(username, password)
            self.login_log.append((self.sim.now, packet.src, username, ok))
            if ok:
                token = f"{self.name}-s{next(self._session_ids)}"
                self.sessions[token] = username
                self._reply(packet, in_port, {"status": STATUS_OK, "session": token})
            else:
                self._reply(packet, in_port, {"status": STATUS_DENIED})
        elif action == "get":
            if self._mgmt_authorized(packet):
                resource = packet.payload.get("resource", "status")
                self._reply(
                    packet,
                    in_port,
                    {
                        "status": STATUS_OK,
                        "resource": resource,
                        "data": self._resource_data(str(resource)),
                    },
                    size=512,
                )
            else:
                self._reply(packet, in_port, {"status": STATUS_DENIED})
        else:
            self._reply(packet, in_port, {"status": STATUS_ERROR})

    def _mgmt_authorized(self, packet: Packet) -> bool:
        if MGMT_PORT in self.firmware.open_ports:
            return True  # exposed access: no session needed
        return packet.payload.get("session") in self.sessions

    def _resource_data(self, resource: str) -> dict[str, Any]:
        return {"state": self.state, "readings": self.sensor_readings()}

    # Control plane -----------------------------------------------------
    def _handle_control(self, packet: Packet, in_port: int) -> None:
        if not self.firmware.requires_auth_for_control:
            self._execute_control(packet, in_port, via="noauth")
        elif CTRL_PORT in self.firmware.open_ports:
            self._execute_control(packet, in_port, via="open")
        elif packet.payload.get("session") in self.sessions:
            self._execute_control(packet, in_port, via="session")
        else:
            cmd = str(packet.payload.get("cmd", ""))
            self.apply_command(cmd, src=packet.src, via="session", accepted=False)
            self._reply(packet, in_port, {"status": STATUS_DENIED})

    def _execute_control(self, packet: Packet, in_port: int, via: str) -> None:
        cmd = str(packet.payload.get("cmd", ""))
        record = self.apply_command(cmd, src=packet.src, via=via)
        self._reply(
            packet,
            in_port,
            {"status": STATUS_OK, "state": record.state_after},
        )

    # Backdoor ----------------------------------------------------------
    def _handle_backdoor(self, packet: Packet, in_port: int) -> None:
        """The vendor debug port: full control, no credentials, no logging
        visible to the user (we log for ground truth only).

        Debug ports typically expose more than the device's own commands:
        a ``__pivot__`` request makes the device emit an arbitrary packet
        *as itself* -- the "launchpad for deep and scalable attacks" of the
        paper's Figure 1.  The emitted packet carries the device's name as
        source, so perimeter defences see only trusted internal traffic.
        """
        if packet.payload.get("cmd") == "__pivot__":
            if packet.src not in self.compromised_by:
                self.compromised_by.append(packet.src)
                self.sim.journal.record(
                    "compromise", device=self.name, src=packet.src, via="pivot"
                )
            relayed = Packet(
                src=self.name,
                dst=str(packet.payload.get("target", "")),
                protocol=str(packet.payload.get("protocol", "iot")),
                dport=int(packet.payload.get("target_port", CTRL_PORT)),
                payload=dict(packet.payload.get("inner", {})),
                size=96,
            )
            self.send(relayed, in_port)
            self._reply(packet, in_port, {"status": STATUS_OK, "pivoted": True})
            return
        self._execute_control(packet, in_port, via="backdoor")

    # Open DNS resolver ---------------------------------------------------
    def _handle_dns(self, packet: Packet, in_port: int) -> None:
        if "open_dns_resolver" not in self.firmware.services:
            return
        self.dns_replies += 1
        reply = packet.reply(
            {"answer": f"a-record-for-{packet.payload.get('query', '')}"},
            size=packet.size * DNS_AMPLIFICATION,
        )
        self.send(reply, in_port)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def start_telemetry(self) -> None:
        """Begin periodic status reports to ``report_to``."""
        if self.report_to is None or self._telemetry_stop is not None:
            return
        self._telemetry_stop = self.sim.every(self.telemetry_period, self._report)

    def stop_telemetry(self) -> None:
        if self._telemetry_stop is not None:
            self._telemetry_stop()
            self._telemetry_stop = None

    def _report(self) -> None:
        packet = Packet(
            src=self.name,
            dst=self.report_to or "",
            protocol="udp",
            dport=TELEMETRY_PORT,
            payload={
                "action": "telemetry",
                "state": self.state,
                "readings": self.sensor_readings(),
            },
            size=64,
        )
        if self.ports:
            self.send(packet, next(iter(self.ports)))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def sku(self) -> str:
        return self.firmware.sku

    @property
    def kind(self) -> str:
        return self.model.kind

    def is_compromised(self) -> bool:
        """Ground truth for experiment scoring -- invisible to the defence."""
        return bool(self.compromised_by)

    def accepted_commands(self, via: str | None = None) -> list[CommandRecord]:
        return [
            r
            for r in self.command_log
            if r.accepted and (via is None or r.via == via)
        ]

    def __repr__(self) -> str:
        return f"IoTDevice({self.name!r}, kind={self.kind}, state={self.state})"
