"""IoT device models.

The paper's section 4.2 proposes "a library containing abstract models of
different classes of devices ... that capture key input-output behaviors and
interactions with environment variables", built on FSMs.  This package *is*
that library, made executable:

- :mod:`repro.devices.protocol` -- the message conventions devices speak.
- :mod:`repro.devices.firmware` -- firmware metadata: credentials (including
  unfixable hardcoded ones), open ports, backdoors, exposed services.
- :mod:`repro.devices.base` -- the FSM device node: state machine, physical
  actuation effects, sensors, authentication.
- :mod:`repro.devices.model` -- the *abstract model* of a device class, used
  by the learning subsystem for fuzzing and attack-graph construction.
- :mod:`repro.devices.library` -- concrete device classes (camera, smart
  plug, thermostat, fire alarm, window actuator, ...).
- :mod:`repro.devices.vulnerabilities` -- the Table 1 vulnerability registry.
"""

from repro.devices.base import IoTDevice
from repro.devices.firmware import Credential, Firmware
from repro.devices.model import DeviceModel, EnvEffect, EnvTrigger
from repro.devices.vulnerabilities import TABLE1, VulnerabilityRecord

__all__ = [
    "Credential",
    "DeviceModel",
    "EnvEffect",
    "EnvTrigger",
    "Firmware",
    "IoTDevice",
    "TABLE1",
    "VulnerabilityRecord",
]
