"""The concrete device library.

Each factory returns an :class:`IoTDevice` assembled from an abstract
:class:`DeviceModel` and a :class:`Firmware` whose flaws mirror the
real-world cases the paper cites:

- :func:`smart_camera` -- the Fig. 4 D-Link-alike with an unremovable
  ``admin/admin`` account.
- :func:`smart_plug` -- the Belkin-Wemo-alike of Table 1 rows 6-7 and
  Fig. 5: vendor backdoor, Internet-exposed access, open DNS resolver.
- :func:`fire_alarm` / :func:`window_actuator` -- the Fig. 3 pair.
- :func:`traffic_light` -- Table 1 row 5 ("no credentials").
- :func:`cctv_camera` -- Table 1 row 4 (embedded RSA key pair).
- :func:`set_top_box`, :func:`smart_refrigerator` -- Table 1 rows 2-3
  ("exposed access").
- plus thermostat, bulb, lock, sensors, oven, meter, scanner, hub.

Models are module-level constants so the learning subsystem can import the
*class* models without instantiating devices (section 4.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.devices.base import IoTDevice
from repro.devices.firmware import Credential, Firmware
from repro.devices.model import DeviceModel, EnvEffect, EnvTrigger

if TYPE_CHECKING:  # pragma: no cover
    from repro.environment.engine import Environment
    from repro.netsim.simulator import Simulator

WEMO_BACKDOOR_PORT = 49153
FIREALARM_BACKDOOR_PORT = 41794

# ----------------------------------------------------------------------
# Abstract class models (section 4.2's shared library)
# ----------------------------------------------------------------------
CAMERA_MODEL = DeviceModel(
    kind="camera",
    states=("idle", "recording"),
    initial="recording",
    transitions={
        ("idle", "record"): "recording",
        ("recording", "stop"): "idle",
    },
    sensors=(("person", "occupancy"),),
)

SMART_PLUG_MODEL = DeviceModel(
    kind="smart_plug",
    states=("off", "on"),
    initial="off",
    transitions={("off", "on"): "on", ("on", "off"): "off"},
)


def smart_plug_model(**load_inputs: float) -> DeviceModel:
    """A smart plug whose ``on`` state powers a load with the given
    physical footprint (e.g. ``heat_watts=1500`` for a heater,
    ``hazard=1.0, heat_watts=2000`` for an oven)."""
    effects = (EnvEffect.make("on", **load_inputs),) if load_inputs else ()
    return DeviceModel(
        kind="smart_plug",
        states=("off", "on"),
        initial="off",
        transitions={("off", "on"): "on", ("on", "off"): "off"},
        effects=effects,
    )


THERMOSTAT_MODEL = DeviceModel(
    kind="thermostat",
    states=("idle", "heating", "cooling"),
    initial="idle",
    transitions={
        ("idle", "heat"): "heating",
        ("idle", "cool"): "cooling",
        ("heating", "off"): "idle",
        ("cooling", "off"): "idle",
        ("heating", "cool"): "cooling",
        ("cooling", "heat"): "heating",
    },
    effects=(
        EnvEffect.make("heating", heat_watts=1200.0),
        EnvEffect.make("cooling", cool_watts=1200.0),
    ),
    sensors=(("temperature", "temperature"),),
)

FIRE_ALARM_MODEL = DeviceModel(
    kind="fire_alarm",
    states=("ok", "alarm"),
    initial="ok",
    transitions={
        ("ok", "test"): "alarm",
        ("alarm", "reset"): "ok",
        ("ok", "silence"): "ok",
        ("alarm", "silence"): "ok",
    },
    triggers=(EnvTrigger("smoke", "detected", "test"),),
    sensors=(("smoke", "smoke"),),
)

WINDOW_MODEL = DeviceModel(
    kind="window_actuator",
    states=("closed", "open"),
    initial="closed",
    transitions={("closed", "open"): "open", ("open", "close"): "closed"},
    state_bindings=(("open", "window", "open"), ("closed", "window", "closed")),
)

DOOR_LOCK_MODEL = DeviceModel(
    kind="door_lock",
    states=("locked", "unlocked"),
    initial="locked",
    transitions={("locked", "unlock"): "unlocked", ("unlocked", "lock"): "locked"},
    state_bindings=(("unlocked", "door", "unlocked"), ("locked", "door", "locked")),
)

BULB_MODEL = DeviceModel(
    kind="smart_bulb",
    states=("off", "on", "red"),
    initial="off",
    transitions={
        ("off", "on"): "on",
        ("on", "off"): "off",
        ("red", "off"): "off",
        ("off", "red"): "red",
        ("on", "red"): "red",
        ("red", "on"): "on",
    },
    effects=(
        EnvEffect.make("on", lamp_lux=400.0),
        EnvEffect.make("red", lamp_lux=120.0),
    ),
)

MOTION_SENSOR_MODEL = DeviceModel(
    kind="motion_sensor",
    states=("idle", "active"),
    initial="idle",
    transitions={("idle", "activate"): "active", ("active", "deactivate"): "idle"},
    triggers=(
        EnvTrigger("occupancy", "present", "activate"),
        EnvTrigger("occupancy", "absent", "deactivate"),
    ),
    sensors=(("motion", "occupancy"),),
)

TEMP_SENSOR_MODEL = DeviceModel(
    kind="temperature_sensor",
    states=("reporting",),
    initial="reporting",
    sensors=(("temperature", "temperature"),),
)

LIGHT_SENSOR_MODEL = DeviceModel(
    kind="light_sensor",
    states=("reporting",),
    initial="reporting",
    sensors=(("illuminance", "illuminance"),),
)

OVEN_MODEL = DeviceModel(
    kind="smart_oven",
    states=("off", "baking"),
    initial="off",
    transitions={("off", "on"): "baking", ("baking", "off"): "off"},
    effects=(EnvEffect.make("baking", heat_watts=2000.0, hazard=1.0),),
)

SET_TOP_BOX_MODEL = DeviceModel(
    kind="set_top_box",
    states=("standby", "playing"),
    initial="standby",
    transitions={("standby", "play"): "playing", ("playing", "stop"): "standby"},
)

REFRIGERATOR_MODEL = DeviceModel(
    kind="refrigerator",
    states=("cooling", "defrost"),
    initial="cooling",
    transitions={("cooling", "defrost"): "defrost", ("defrost", "cool"): "cooling"},
)

SMART_METER_MODEL = DeviceModel(
    kind="smart_meter",
    states=("metering", "tampered"),
    initial="metering",
    transitions={
        ("metering", "calibrate"): "tampered",
        ("tampered", "reset"): "metering",
    },
    sensors=(("power", "power_draw"),),
)

TRAFFIC_LIGHT_MODEL = DeviceModel(
    kind="traffic_light",
    states=("red", "yellow", "green"),
    initial="red",
    transitions={
        ("red", "go"): "green",
        ("green", "caution"): "yellow",
        ("yellow", "stop"): "red",
        ("green", "stop"): "red",
    },
)

SCANNER_MODEL = DeviceModel(
    kind="handheld_scanner",
    states=("idle", "scanning"),
    initial="idle",
    transitions={("idle", "scan"): "scanning", ("scanning", "stop"): "idle"},
)

MODEL_LIBRARY: dict[str, DeviceModel] = {
    model.kind: model
    for model in (
        CAMERA_MODEL,
        SMART_PLUG_MODEL,
        THERMOSTAT_MODEL,
        FIRE_ALARM_MODEL,
        WINDOW_MODEL,
        DOOR_LOCK_MODEL,
        BULB_MODEL,
        MOTION_SENSOR_MODEL,
        TEMP_SENSOR_MODEL,
        LIGHT_SENSOR_MODEL,
        OVEN_MODEL,
        SET_TOP_BOX_MODEL,
        REFRIGERATOR_MODEL,
        SMART_METER_MODEL,
        TRAFFIC_LIGHT_MODEL,
        SCANNER_MODEL,
    )
}


# ----------------------------------------------------------------------
# Concrete device factories
# ----------------------------------------------------------------------
def smart_camera(
    name: str,
    sim: "Simulator",
    env: "Environment | None" = None,
    hardcoded_password: str = "admin",
    **kwargs: object,
) -> IoTDevice:
    """Fig. 4's camera: hardcoded ``admin/admin`` the user cannot remove."""
    firmware = Firmware(
        vendor="dlink",
        model="DCS-930L",
        version="1.0",
        credentials=[Credential("admin", hardcoded_password, hardcoded=True, weak=True)],
    )
    return IoTDevice(name, sim, CAMERA_MODEL, firmware, env=env, **kwargs)  # type: ignore[arg-type]


def avtech_camera(name: str, sim: "Simulator", env: "Environment | None" = None) -> IoTDevice:
    """Table 1 row 1: 130k Avtech cameras with exposed account/password."""
    firmware = Firmware(
        vendor="avtech",
        model="AVN801",
        credentials=[Credential("admin", "admin", hardcoded=True, weak=True)],
    )
    return IoTDevice(name, sim, CAMERA_MODEL, firmware, env=env)


def cctv_camera(name: str, sim: "Simulator", env: "Environment | None" = None) -> IoTDevice:
    """Table 1 row 4: CCTV with unprotected RSA key pairs in the image."""
    firmware = Firmware(
        vendor="genericctv",
        model="CCTV-IP",
        credentials=[Credential("root", "derived-from-rsa")],
        embedded_keys={"rsa_private": "30820122300d06..."},
    )
    return IoTDevice(name, sim, CAMERA_MODEL, firmware, env=env)


def smart_plug(
    name: str,
    sim: "Simulator",
    env: "Environment | None" = None,
    load: dict[str, float] | None = None,
    with_backdoor: bool = True,
    with_open_dns: bool = True,
    internet_exposed: bool = True,
    **kwargs: object,
) -> IoTDevice:
    """The Belkin-Wemo-alike (Table 1 rows 6-7, Fig. 5).

    ``load`` is the physical footprint of the appliance plugged into it.
    """
    services = ("open_dns_resolver",) if with_open_dns else ()
    open_ports = (8080,) if internet_exposed else ()
    firmware = Firmware(
        vendor="belkin",
        model="wemo-insight",
        credentials=[],
        backdoor_port=WEMO_BACKDOOR_PORT if with_backdoor else None,
        services=services,
        open_ports=open_ports,
    )
    model = smart_plug_model(**(load or {}))
    return IoTDevice(name, sim, model, firmware, env=env, **kwargs)  # type: ignore[arg-type]


def thermostat(
    name: str, sim: "Simulator", env: "Environment | None" = None, **kwargs: object
) -> IoTDevice:
    firmware = Firmware(
        vendor="nest",
        model="thermostat-v3",
        credentials=[Credential("owner", "set-by-app")],
        patchable=True,
    )
    return IoTDevice(name, sim, THERMOSTAT_MODEL, firmware, env=env, **kwargs)  # type: ignore[arg-type]


def fire_alarm(
    name: str,
    sim: "Simulator",
    env: "Environment | None" = None,
    with_backdoor: bool = True,
    **kwargs: object,
) -> IoTDevice:
    """Fig. 3's FireAlarm; the backdoor is the attack entry point there."""
    firmware = Firmware(
        vendor="nest",
        model="protect",
        credentials=[Credential("owner", "set-by-app")],
        backdoor_port=FIREALARM_BACKDOOR_PORT if with_backdoor else None,
    )
    return IoTDevice(name, sim, FIRE_ALARM_MODEL, firmware, env=env, **kwargs)  # type: ignore[arg-type]


def window_actuator(
    name: str,
    sim: "Simulator",
    env: "Environment | None" = None,
    password: str = "window-pass",
    weak_password: bool = True,
    **kwargs: object,
) -> IoTDevice:
    """Fig. 3's window: its password is brute-forceable when weak."""
    firmware = Firmware(
        vendor="acme",
        model="window-ctl",
        credentials=[Credential("admin", password, weak=weak_password)],
    )
    return IoTDevice(name, sim, WINDOW_MODEL, firmware, env=env, **kwargs)  # type: ignore[arg-type]


def door_lock(
    name: str, sim: "Simulator", env: "Environment | None" = None, **kwargs: object
) -> IoTDevice:
    firmware = Firmware(
        vendor="august",
        model="smart-lock",
        credentials=[Credential("owner", "lock-pass")],
        patchable=True,
    )
    return IoTDevice(name, sim, DOOR_LOCK_MODEL, firmware, env=env, **kwargs)  # type: ignore[arg-type]


def smart_bulb(
    name: str, sim: "Simulator", env: "Environment | None" = None, **kwargs: object
) -> IoTDevice:
    firmware = Firmware(
        vendor="philips",
        model="hue",
        credentials=[],
        requires_auth_for_control=False,  # hue-style local control is open
    )
    return IoTDevice(name, sim, BULB_MODEL, firmware, env=env, **kwargs)  # type: ignore[arg-type]


def motion_sensor(
    name: str, sim: "Simulator", env: "Environment | None" = None, **kwargs: object
) -> IoTDevice:
    firmware = Firmware(vendor="scout", model="motion-v2", credentials=[])
    return IoTDevice(name, sim, MOTION_SENSOR_MODEL, firmware, env=env, **kwargs)  # type: ignore[arg-type]


def temperature_sensor(
    name: str, sim: "Simulator", env: "Environment | None" = None, **kwargs: object
) -> IoTDevice:
    firmware = Firmware(vendor="acme", model="temp-v1", credentials=[])
    return IoTDevice(name, sim, TEMP_SENSOR_MODEL, firmware, env=env, **kwargs)  # type: ignore[arg-type]


def light_sensor(
    name: str, sim: "Simulator", env: "Environment | None" = None, **kwargs: object
) -> IoTDevice:
    firmware = Firmware(vendor="acme", model="lux-v1", credentials=[])
    return IoTDevice(name, sim, LIGHT_SENSOR_MODEL, firmware, env=env, **kwargs)  # type: ignore[arg-type]


def smart_oven(
    name: str, sim: "Simulator", env: "Environment | None" = None, **kwargs: object
) -> IoTDevice:
    firmware = Firmware(
        vendor="acme",
        model="oven-wifi",
        credentials=[Credential("owner", "oven-pass")],
    )
    return IoTDevice(name, sim, OVEN_MODEL, firmware, env=env, **kwargs)  # type: ignore[arg-type]


def set_top_box(
    name: str, sim: "Simulator", env: "Environment | None" = None, **kwargs: object
) -> IoTDevice:
    """Table 1 row 2: 61k set-top boxes with exposed access."""
    firmware = Firmware(
        vendor="genericstb",
        model="stb-4k",
        credentials=[],
        open_ports=(80, 8080),
    )
    return IoTDevice(name, sim, SET_TOP_BOX_MODEL, firmware, env=env, **kwargs)  # type: ignore[arg-type]


def smart_refrigerator(
    name: str, sim: "Simulator", env: "Environment | None" = None, **kwargs: object
) -> IoTDevice:
    """Table 1 row 3: 146 smart refrigerators with exposed access."""
    firmware = Firmware(
        vendor="samsung",
        model="rf4289",
        credentials=[],
        open_ports=(80, 8080),
    )
    return IoTDevice(name, sim, REFRIGERATOR_MODEL, firmware, env=env, **kwargs)  # type: ignore[arg-type]


def smart_meter(
    name: str, sim: "Simulator", env: "Environment | None" = None, **kwargs: object
) -> IoTDevice:
    """The hacked-to-lower-bills smart meter of section 1."""
    firmware = Firmware(
        vendor="utilco",
        model="meter-g2",
        credentials=[Credential("service", "0000", weak=True)],
    )
    return IoTDevice(name, sim, SMART_METER_MODEL, firmware, env=env, **kwargs)  # type: ignore[arg-type]


def traffic_light(
    name: str, sim: "Simulator", env: "Environment | None" = None, **kwargs: object
) -> IoTDevice:
    """Table 1 row 5: 219 traffic lights controllable with no credentials."""
    firmware = Firmware(
        vendor="cityinfra",
        model="signal-ctl",
        credentials=[],
        requires_auth_for_control=False,
    )
    return IoTDevice(name, sim, TRAFFIC_LIGHT_MODEL, firmware, env=env, **kwargs)  # type: ignore[arg-type]


def handheld_scanner(
    name: str, sim: "Simulator", env: "Environment | None" = None, **kwargs: object
) -> IoTDevice:
    """The malware-laden logistics scanner of section 1."""
    firmware = Firmware(
        vendor="scanco",
        model="hh-scan",
        credentials=[],
        open_ports=(8080,),
        services=("telnet",),
    )
    return IoTDevice(name, sim, SCANNER_MODEL, firmware, env=env, **kwargs)  # type: ignore[arg-type]


FACTORIES = {
    "camera": smart_camera,
    "avtech_camera": avtech_camera,
    "cctv_camera": cctv_camera,
    "smart_plug": smart_plug,
    "thermostat": thermostat,
    "fire_alarm": fire_alarm,
    "window_actuator": window_actuator,
    "door_lock": door_lock,
    "smart_bulb": smart_bulb,
    "motion_sensor": motion_sensor,
    "temperature_sensor": temperature_sensor,
    "light_sensor": light_sensor,
    "smart_oven": smart_oven,
    "set_top_box": set_top_box,
    "smart_refrigerator": smart_refrigerator,
    "smart_meter": smart_meter,
    "traffic_light": traffic_light,
    "handheld_scanner": handheld_scanner,
}
