"""Firmware and credential metadata.

This is where the "trillion unfixable flaws" live.  A :class:`Firmware`
records what the vendor shipped: credentials (some hardcoded and therefore
*unremovable by the user* -- the D-Link camera of Fig. 4), open ports,
backdoors (the Belkin Wemo of Fig. 5), exposed services (the Wemo's open
DNS resolver of Table 1 row 6), embedded RSA keys (Table 1 row 4), and
whether the vendor still ships patches at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Credential:
    """One username/password pair.

    ``hardcoded`` credentials cannot be removed or changed by the user --
    the vendor baked them into the firmware image.  ``weak`` marks
    dictionary-guessable passwords for the brute-force exploit model.
    """

    username: str
    password: str
    hardcoded: bool = False
    weak: bool = False


@dataclass
class Firmware:
    """What a device's firmware image exposes to the network.

    Attributes
    ----------
    vendor, version:
        Identity; ``sku`` (vendor+model+version) is the unit at which the
        crowdsourced signature repository shares data (section 4.1).
    credentials:
        All accounts.  User-added accounts can be changed; hardcoded ones
        cannot (``patch_credentials`` refuses).
    open_ports:
        Ports answering to *anyone* without authentication, beyond the
        standard management flow (Table 1 rows 2, 3: "exposed access").
    backdoor_port:
        A vendor debug port executing commands with no credential check
        (Table 1 row 7 / Fig. 5's Wemo backdoor), or None.
    services:
        Extra network services, e.g. ``"open_dns_resolver"`` (Table 1 row
        6), ``"telnet"``.
    embedded_keys:
        Secrets recoverable from the firmware image, e.g. an RSA private
        key shared across 30k CCTV devices (Table 1 row 4).
    patchable:
        Whether the vendor ships updates at all.  "Software updates will
        likely be unavailable" -- most library devices default to False.
    requires_auth_for_control:
        When False, control commands need no session (Table 1 row 5's
        traffic lights: "no credentials").
    """

    vendor: str
    model: str
    version: str = "1.0"
    credentials: list[Credential] = field(default_factory=list)
    open_ports: tuple[int, ...] = ()
    backdoor_port: int | None = None
    services: tuple[str, ...] = ()
    embedded_keys: dict[str, str] = field(default_factory=dict)
    patchable: bool = False
    requires_auth_for_control: bool = True

    @property
    def sku(self) -> str:
        """The device SKU: the sharing granularity of section 4.1."""
        return f"{self.vendor}:{self.model}:{self.version}"

    # ------------------------------------------------------------------
    # Authentication
    # ------------------------------------------------------------------
    def check_login(self, username: str, password: str) -> bool:
        """True when any credential (hardcoded or not) matches."""
        return any(
            c.username == username and c.password == password for c in self.credentials
        )

    def hardcoded_credentials(self) -> list[Credential]:
        return [c for c in self.credentials if c.hardcoded]

    def weak_credentials(self) -> list[Credential]:
        return [c for c in self.credentials if c.weak or c.hardcoded]

    def patch_credentials(self, username: str, new_password: str) -> bool:
        """Try to change an account's password on-device.

        Returns False for hardcoded accounts: the user "has no interface to
        delete" them (Fig. 4).  That failure is what motivates the network-
        level password proxy.
        """
        for i, cred in enumerate(self.credentials):
            if cred.username != username:
                continue
            if cred.hardcoded or not self.patchable:
                return False
            self.credentials[i] = Credential(username, new_password)
            return True
        return False

    # ------------------------------------------------------------------
    # Flaw census
    # ------------------------------------------------------------------
    def flaw_classes(self) -> set[str]:
        """The vulnerability classes this firmware exhibits (Table 1 axes)."""
        flaws: set[str] = set()
        if self.hardcoded_credentials():
            flaws.add("exposed-credentials")
        if any(c.weak for c in self.credentials):
            flaws.add("weak-credentials")
        if self.open_ports:
            flaws.add("exposed-access")
        if self.backdoor_port is not None:
            flaws.add("backdoor")
        if "open_dns_resolver" in self.services:
            flaws.add("open-dns-resolver")
        if self.embedded_keys:
            flaws.add("embedded-keys")
        if not self.requires_auth_for_control:
            flaws.add("no-credentials")
        return flaws

    def is_vulnerable(self) -> bool:
        return bool(self.flaw_classes())
