"""IoT application-protocol conventions.

Every device in the library speaks the same simple message scheme so that
µmboxes can interpose generically (the paper's µmboxes are per-device
*policies*, not per-device parsers):

- Management plane, port 80 (``MGMT_PORT``): login / resource access.
- Control plane, port 8080 (``CTRL_PORT``): state-changing commands.
- Telemetry, port 5683 (``TELEMETRY_PORT``): periodic status reports.
- DNS, port 53: devices that (mis)ship an open resolver answer here.
- Backdoors live on vendor-specific high ports recorded in the firmware.

Payload shapes are built by the helpers below; device and µmbox code match
on ``payload["action"]`` / ``payload["cmd"]``.
"""

from __future__ import annotations

from typing import Any

from repro.netsim.packet import Packet

MGMT_PORT = 80
CTRL_PORT = 8080
TELEMETRY_PORT = 5683
DNS_PORT = 53

STATUS_OK = "ok"
STATUS_DENIED = "denied"
STATUS_ERROR = "error"


def login(src: str, dst: str, username: str, password: str) -> Packet:
    """A management-interface login attempt."""
    return Packet(
        src=src,
        dst=dst,
        protocol="http",
        dport=MGMT_PORT,
        payload={"action": "login", "username": username, "password": password},
        size=128,
    )


def get_resource(src: str, dst: str, resource: str, session: str | None = None) -> Packet:
    """Fetch a management resource (camera image, meter data, config)."""
    payload: dict[str, Any] = {"action": "get", "resource": resource}
    if session is not None:
        payload["session"] = session
    return Packet(src=src, dst=dst, protocol="http", dport=MGMT_PORT, payload=payload, size=96)


def command(
    src: str,
    dst: str,
    cmd: str,
    session: str | None = None,
    dport: int = CTRL_PORT,
    **params: Any,
) -> Packet:
    """A state-changing control command (``on``, ``off``, ``open`` ...)."""
    payload: dict[str, Any] = {"cmd": cmd, **params}
    if session is not None:
        payload["session"] = session
    return Packet(src=src, dst=dst, protocol="iot", dport=dport, payload=payload, size=96)


def telemetry(src: str, dst: str, state: str, readings: dict[str, Any]) -> Packet:
    """A periodic device status report."""
    return Packet(
        src=src,
        dst=dst,
        protocol="udp",
        dport=TELEMETRY_PORT,
        payload={"action": "telemetry", "state": state, "readings": dict(readings)},
        size=64,
    )


def dns_query(src: str, dst: str, name: str, spoofed_src: str | None = None) -> Packet:
    """A DNS query; ``spoofed_src`` forges the source for reflection DDoS."""
    return Packet(
        src=spoofed_src if spoofed_src is not None else src,
        dst=dst,
        protocol="dns",
        dport=DNS_PORT,
        payload={"query": name},
        size=60,
    )


def is_ok(packet: Packet) -> bool:
    """True when a reply's status is ``ok``."""
    return packet.payload.get("status") == STATUS_OK


def is_denied(packet: Packet) -> bool:
    return packet.payload.get("status") == STATUS_DENIED
