"""The Table 1 vulnerability registry.

The paper's Table 1 lists seven reported IoT vulnerability cases drawn from
SHODAN and other sources.  :data:`TABLE1` encodes them verbatim; each record
names the library factory that builds a device exhibiting the flaw and the
exploit primitive (:mod:`repro.attacks.exploits`) that weaponizes it.
``bench_table1_vulnerabilities.py`` iterates this registry, attacks each
device, and shows the matching µmbox posture blocks it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VulnerabilityRecord:
    """One row of Table 1."""

    row: int
    device: str
    device_count: str
    vulnerability: str
    flaw_class: str
    factory: str          # key into repro.devices.library.FACTORIES
    exploit: str          # key into repro.attacks.exploits.EXPLOITS
    mitigation: str       # µmbox posture that neutralizes it

    def device_count_numeric(self) -> int:
        """Best-effort numeric device count (for weighting experiments)."""
        text = self.device_count.replace(">", "").replace("(estimated)", "")
        text = text.replace("(by IP)", "").strip()
        if text.endswith("k"):
            return int(float(text[:-1]) * 1000)
        return int(text)


TABLE1: tuple[VulnerabilityRecord, ...] = (
    VulnerabilityRecord(
        row=1,
        device="Avtech Cam",
        device_count="130k",
        vulnerability="exposed account/password",
        flaw_class="exposed-credentials",
        factory="avtech_camera",
        exploit="default_credential_hijack",
        mitigation="password_proxy",
    ),
    VulnerabilityRecord(
        row=2,
        device="TV Set-top box",
        device_count="61k",
        vulnerability="exposed access",
        flaw_class="exposed-access",
        factory="set_top_box",
        exploit="open_access_control",
        mitigation="stateful_firewall",
    ),
    VulnerabilityRecord(
        row=3,
        device="Smart Refrigerator",
        device_count="146",
        vulnerability="exposed access",
        flaw_class="exposed-access",
        factory="smart_refrigerator",
        exploit="open_access_control",
        mitigation="stateful_firewall",
    ),
    VulnerabilityRecord(
        row=4,
        device="CCTV Cam",
        device_count="30k (by IP)",
        vulnerability="unprotected RSA key pairs",
        flaw_class="embedded-keys",
        factory="cctv_camera",
        exploit="firmware_key_extraction",
        mitigation="password_proxy",
    ),
    VulnerabilityRecord(
        row=5,
        device="Traffic Light",
        device_count="219",
        vulnerability="no credentials",
        flaw_class="no-credentials",
        factory="traffic_light",
        exploit="unauthenticated_command",
        mitigation="command_whitelist",
    ),
    VulnerabilityRecord(
        row=6,
        device="Belkin Wemo",
        device_count=">500k (estimated)",
        vulnerability="open DNS resolver, use for DDoS",
        flaw_class="open-dns-resolver",
        factory="smart_plug",
        exploit="dns_reflection_ddos",
        mitigation="dns_guard",
    ),
    VulnerabilityRecord(
        row=7,
        device="Belkin Wemo",
        device_count=">500k (estimated)",
        vulnerability="exposed access, bypass app",
        flaw_class="backdoor",
        factory="smart_plug",
        exploit="backdoor_command",
        mitigation="stateful_firewall",
    ),
)


def by_flaw_class(flaw_class: str) -> list[VulnerabilityRecord]:
    return [r for r in TABLE1 if r.flaw_class == flaw_class]


def total_affected_devices() -> int:
    """Sum of the (approximate) affected-device counts across Table 1."""
    return sum(r.device_count_numeric() for r in TABLE1)
