"""IoTSec: network security for the Internet-of-Things.

A full reproduction of "Handling a trillion (unfixable) flaws on a billion
devices: Rethinking network security for the Internet-of-Things"
(Yu, Sekar, Seshan, Agarwal, Xu -- HotNets 2015).

The library is organized along the paper's three challenges:

- **Policies** (:mod:`repro.policy`): the FSM policy abstraction over
  device security contexts and environment variables, with pruning,
  conflict analysis, and the ACL / IFTTT strawmen.
- **Learning** (:mod:`repro.learning`): crowdsourced signature sharing,
  model-based fuzzing for cross-device interactions, attack graphs,
  anomaly profiles.
- **Enforcement** (:mod:`repro.core`, :mod:`repro.mboxes`,
  :mod:`repro.sdn`): the IoTSec controller, µmbox data plane, and
  SDN substrate.

Substrates: :mod:`repro.netsim` (discrete-event network),
:mod:`repro.environment` (physical coupling), :mod:`repro.devices`
(vulnerable device models), :mod:`repro.attacks` (the red team).

Quick start::

    from repro import SecuredDeployment
    from repro.devices.library import smart_camera
    from repro.core.orchestrator import build_recommended_posture

    dep = SecuredDeployment.build()
    cam = dep.add_device(smart_camera, "cam")
    dep.finalize()
    dep.secure("cam", build_recommended_posture("password_proxy", "cam"))
    dep.run(until=60.0)
"""

from repro.core.controller import IoTSecController
from repro.core.deployment import SecuredDeployment
from repro.core.orchestrator import build_recommended_posture
from repro.netsim.simulator import Simulator
from repro.policy.builder import PolicyBuilder
from repro.policy.fsm import PolicyFSM
from repro.policy.posture import Posture

__version__ = "1.0.0"

__all__ = [
    "IoTSecController",
    "PolicyBuilder",
    "PolicyFSM",
    "Posture",
    "SecuredDeployment",
    "Simulator",
    "build_recommended_posture",
    "__version__",
]
