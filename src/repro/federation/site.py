"""One federated site: a full deployment slice plus a sync state machine.

A site wraps a :class:`~repro.core.deployment.SecuredDeployment` (which
may itself run PR-5 hot-standby HA and PR-7 durable streams -- the site
does not care) and adds the federation contract:

- a **local signature cache** (a private :class:`CrowdRepository` wired
  into the site's IDS µmboxes via ``attach_repository``), fed only by
  versioned coordinator updates and the site's own discoveries;
- a **sync loop** that pulls ``updates_since(version)`` from the
  coordinator over the WAN channel every ``sync_period`` seconds and
  flushes locally mined signatures that queued up while offline;
- the **autonomy state machine**: first sync required, then the site
  keeps enforcing on cached policy for as long as the coordinator is
  unreachable.  Transitions are journaled (``site-autonomy-enter`` /
  ``site-autonomy-exit``) so the PR-8 health plane and the incident
  reconstructor see every offline spell.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.learning.repository import CrowdRepository
from repro.learning.signatures import AttackSignature

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.deployment import SecuredDeployment
    from repro.federation.repository import SignatureUpdate
    from repro.netsim.simulator import Simulator
    from repro.sdn.channel import ControlChannel, ControlMessage


class FederatedSite:
    """A per-site controller slice under the global coordinator."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        deployment: "SecuredDeployment",
        wan: "ControlChannel",
        coordinator: str = "coordinator",
        sync_period: float = 5.0,
    ) -> None:
        if sync_period <= 0:
            raise ValueError(f"sync_period must be positive (got {sync_period})")
        self.sim = sim
        self.name = name
        self.dep = deployment
        self.wan = wan
        self.coordinator = coordinator
        self.sync_period = sync_period
        #: Local signature cache: the site's IDS µmboxes subscribe to it.
        #: Within one administrative site there are no free riders and no
        #: extra distribution delay -- those model the *global* repository
        #: (E11); the WAN latency/partition model covers the federation.
        self.cache = CrowdRepository(sim, free_rider_delay=0.0, base_delay=0.0)
        deployment.attach_repository(self.cache)

        #: Replay cursor: the highest global version applied here.
        self.version = 0
        self.first_synced = False
        self.first_synced_at: float | None = None
        self.autonomous = False
        self._autonomy_entered_at = 0.0
        #: Locally mined signatures awaiting a reachable coordinator.
        self.pending_reports: list[dict[str, Any]] = []
        #: Version -> simulated apply time (propagation-lag measurement).
        self.applied_at: dict[int, float] = {}
        self.applied = 0
        self.duplicates = 0
        self.out_of_order = 0
        self.autonomy_spells = 0
        self.offline_s = 0.0
        self._started = False

        wan.register(self.endpoint, self._on_message)

    @property
    def endpoint(self) -> str:
        """This site's address on the WAN control channel."""
        return f"site:{self.name}"

    # ------------------------------------------------------------------
    # Applying coordinator updates
    # ------------------------------------------------------------------
    def apply_updates(self, updates: Iterable[Mapping[str, Any]]) -> int:
        """Apply a batch of versioned updates; returns how many were new.

        The coordinator always sends a contiguous ascending slice of the
        global log, so versions at or below the cursor are duplicates
        (at-least-once WAN delivery) and a version that *regresses*
        within the batch counts as ``out_of_order`` -- zero under the
        in-order replay contract, so tests pin it.
        """
        fresh = 0
        last_seen = None
        for update in updates:
            version = int(update.get("version", 0))
            if last_seen is not None and version <= last_seen:
                self.out_of_order += 1
            last_seen = version
            if version <= self.version:
                self.duplicates += 1
                continue
            wire = update.get("signature") or {}
            self.cache.publish(
                AttackSignature.from_dict(wire),
                reporter=str(update.get("origin", self.coordinator)),
            )
            self.version = version
            self.applied_at[version] = self.sim.now
            self.applied += 1
            fresh += 1
        return fresh

    def _on_message(self, message: "ControlMessage") -> None:
        if message.kind == "sync-updates":
            from_version = int(message.body.get("since", 0))
            fresh = self.apply_updates(message.body.get("updates", ()))
            if not self.first_synced:
                self.first_synced = True
                self.first_synced_at = self.sim.now
            if fresh or from_version < self.version:
                self.sim.journal.record(
                    "signature-sync",
                    site=self.name,
                    from_version=from_version,
                    to_version=self.version,
                    applied=fresh,
                )
            if self.autonomous:
                self._exit_autonomy()
        elif message.kind == "sig-push":
            # Live broadcast of one accepted publication.
            self.apply_updates([message.body])

    # ------------------------------------------------------------------
    # Local discovery
    # ------------------------------------------------------------------
    def mined(self, wire: Mapping[str, Any]) -> None:
        """The site learned a signature locally: enforce it here *now*,
        report it to the coordinator when (and only when) reachable.

        Local enforcement never waits on the WAN -- during a coordinator
        blackout the discovery protects this site immediately and the
        report queues for the heal."""
        self.cache.publish(AttackSignature.from_dict(wire), reporter=self.name)
        if self.wan.reachable(self.coordinator) and self.first_synced:
            self.wan.send(self.endpoint, self.coordinator, "sig-report", {"signature": dict(wire)})
        else:
            self.pending_reports.append(dict(wire))

    def flush_pending(self) -> int:
        """Ship reports queued during an offline spell; returns the count."""
        flushed = 0
        while self.pending_reports:
            wire = self.pending_reports.pop(0)
            self.wan.send(self.endpoint, self.coordinator, "sig-report", {"signature": wire})
            flushed += 1
        return flushed

    # ------------------------------------------------------------------
    # The sync loop & autonomy
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the periodic coordinator sync (idempotent)."""
        if self._started:
            return
        self._started = True
        self.sim.every(self.sync_period, self.sync_tick)

    def sync_tick(self) -> None:
        if not self.wan.reachable(self.coordinator):
            # Declarative partition: don't burn doomed sends, just note
            # the offline spell.  A site that never completed its first
            # sync cannot enter autonomy -- it has no cached policy yet.
            if self.first_synced and not self.autonomous:
                self._enter_autonomy()
            return
        if self.pending_reports:
            self.flush_pending()
        self.wan.send(
            self.endpoint,
            self.coordinator,
            "sync-request",
            {"site": self.name, "version": self.version},
        )

    def _enter_autonomy(self) -> None:
        self.autonomous = True
        self._autonomy_entered_at = self.sim.now
        self.autonomy_spells += 1
        self.sim.journal.record(
            "site-autonomy-enter",
            site=self.name,
            version=self.version,
            cached_signatures=len(self.cache.signatures),
        )

    def _exit_autonomy(self) -> None:
        spell = self.sim.now - self._autonomy_entered_at
        self.autonomous = False
        self.offline_s += spell
        self.sim.journal.record(
            "site-autonomy-exit",
            site=self.name,
            version=self.version,
            offline_s=round(spell, 6),
        )

    # ------------------------------------------------------------------
    @property
    def enforcing(self) -> bool:
        """Whether this site's control loop is live on (cached) policy.

        True from the first successful sync onward, through any number
        of coordinator partitions, for as long as the site controller is
        up -- the partition-tolerance property bench E15 asserts."""
        controller = self.dep.controller
        return (
            self.first_synced
            and controller is not None
            and not getattr(controller, "crashed", False)
        )

    def snapshot(self) -> dict[str, Any]:
        return {
            "site": self.name,
            "version": self.version,
            "first_synced": self.first_synced,
            "autonomous": self.autonomous,
            "enforcing": self.enforcing,
            "applied": self.applied,
            "duplicates": self.duplicates,
            "out_of_order": self.out_of_order,
            "autonomy_spells": self.autonomy_spells,
            "offline_s": round(self.offline_s, 6),
            "pending_reports": len(self.pending_reports),
            "cached_signatures": len(self.cache.signatures),
            "devices": len(self.dep.devices),
        }
