"""The coordinator's versioned signature repository.

The E11 crowdsourced repository (:class:`~repro.learning.repository.
CrowdRepository`) answers *who may publish and who hears about it* for one
administrative domain.  Federation adds a second question: *in what order
does the fleet converge?*  Every accepted publication gets a global,
monotonically increasing **version**; a site that was partitioned away
replays ``updates_since(its last version)`` and is guaranteed to apply
the exact sequence every other site applied -- in-order catch-up is what
makes indefinite offline enforcement safe to heal from.

Poisoning resistance rides the PR-7 dead-letter machinery: a publication
that fails validation (unparseable wire, out-of-range confidence, a
recommended posture that names no known recipe) is quarantined to the
federation DLQ -- journaled, bounded, inspectable -- instead of entering
the version log.  A poisoned update therefore never consumes a version
number, so it can never wedge a site's replay cursor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro.learning.signatures import AttackSignature

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.simulator import Simulator
    from repro.obs.stream import DeadLetterQueue

#: The mitigation names :func:`repro.core.orchestrator.
#: build_recommended_posture` can materialize.  A signature recommending
#: anything else is either garbage or an attempt to make every site
#: actuate an attacker-chosen posture -- both are quarantined.
KNOWN_POSTURES = frozenset(
    {
        "password_proxy",
        "stateful_firewall",
        "command_whitelist",
        "dns_guard",
        "quarantine",
        "monitor",
    }
)


@dataclass(frozen=True)
class SignatureUpdate:
    """One versioned entry of the global signature log."""

    version: int
    origin: str
    published_at: float
    signature: Mapping[str, Any] = field(hash=False)

    def as_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "origin": self.origin,
            "published_at": self.published_at,
            "signature": dict(self.signature),
        }


class SignatureRepository:
    """Append-only, versioned log of fleet-wide attack signatures."""

    def __init__(self, sim: "Simulator", dlq: "DeadLetterQueue | None" = None) -> None:
        from repro.obs.stream import DeadLetterQueue

        self.sim = sim
        self.dlq = dlq or DeadLetterQueue(sim, name="federation")
        self.log: list[SignatureUpdate] = []
        self._seen_keys: dict[tuple, int] = {}
        self.accepted = 0
        self.rejected = 0
        self.duplicates = 0

    @property
    def version(self) -> int:
        """The latest assigned version (0 = empty log)."""
        return self.log[-1].version if self.log else 0

    # ------------------------------------------------------------------
    # Publish (validated)
    # ------------------------------------------------------------------
    def validate(self, wire: Any) -> str | None:
        """Why ``wire`` must not enter the log, or ``None`` when clean."""
        if not isinstance(wire, Mapping):
            return "malformed: not a mapping"
        sku = wire.get("sku")
        if not isinstance(sku, str) or not sku:
            return "malformed: missing sku"
        try:
            signature = AttackSignature.from_dict(wire)
        except (KeyError, TypeError, ValueError) as exc:
            return f"malformed: {exc}"
        if not 0.0 <= signature.confidence <= 1.0:
            return f"poisoned: confidence {signature.confidence} outside [0, 1]"
        if signature.recommended_posture not in KNOWN_POSTURES:
            return (
                f"poisoned: unknown recommended posture "
                f"{signature.recommended_posture!r}"
            )
        return None

    def publish(self, wire: Any, origin: str) -> SignatureUpdate | None:
        """Validate and version one publication from ``origin``.

        Returns the new log entry, or ``None`` when the wire was
        quarantined (invalid) or deduplicated (the same sku/flaw/match
        was already versioned -- re-discovery at a second site must not
        re-broadcast).
        """
        reason = self.validate(wire)
        if reason is not None:
            self.rejected += 1
            body = wire if isinstance(wire, Mapping) else {"raw": repr(wire)}
            self.dlq.quarantine(
                {"body": {"device": "", "kind": "signature", **dict(body)}},
                reason=reason,
                host=origin,
            )
            return None
        signature = AttackSignature.from_dict(wire)
        key = signature.key()
        if key in self._seen_keys:
            self.duplicates += 1
            return None
        version = self.version + 1
        update = SignatureUpdate(
            version=version,
            origin=origin,
            published_at=self.sim.now,
            signature=dict(wire),
        )
        self._seen_keys[key] = version
        self.log.append(update)
        self.accepted += 1
        return update

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def updates_since(self, version: int) -> list[SignatureUpdate]:
        """All entries with a version strictly above ``version``, in order.

        The log is append-only with contiguous versions, so the slice
        starts at index ``version`` (entry i holds version i+1).
        """
        if version >= self.version:
            return []
        return self.log[max(0, version):]

    def stats(self) -> dict[str, int]:
        return {
            "version": self.version,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "duplicates": self.duplicates,
            "quarantined": self.dlq.quarantined,
        }
