"""Parallel site workers: E9-class load sharded across processes.

The shared-sim :class:`Federation` nails the cross-site *semantics*; this
module is the *throughput* half of the tentpole.  A fleet is sharded into
:class:`SiteSpec` slices, each worker process builds and runs one full
site deployment on its own simulator, and the parent aggregates.  Two
things make the sharding pay:

- **per-site cost is flat**: a single flat deployment's per-event cost
  grows super-linearly with fleet size (the context view, policy domain
  scans and posture bookkeeping all walk structures proportional to the
  device count -- exactly the §5.1 motivation for hierarchy), so four
  quarter-size sites do strictly less total work than one 4x site even
  on one core;
- **cores multiply**: workers are separate processes (fork when the
  platform has it), so a multi-core box overlaps the site runs on top of
  the algorithmic win.

Fleet immunity rides into every worker: the specs carry the coordinator's
current signature log (plain wire dicts -- picklable), each site seeds
its local cache from it before the clock starts, mirroring a first sync.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Sequence


@dataclass(frozen=True)
class SiteSpec:
    """One worker's slice of the fleet (picklable)."""

    name: str
    devices: int
    horizon: float = 120.0
    telemetry_period: float = 20.0
    attack: bool = True
    #: Coordinator signature log at launch (wire dicts), the site's
    #: cached global state -- applied before the clock starts.
    signatures: tuple = field(default_factory=tuple)


def shard_fleet(
    total_devices: int,
    sites: int,
    horizon: float = 120.0,
    signatures: Sequence[dict] = (),
    **kwargs: Any,
) -> list[SiteSpec]:
    """Split ``total_devices`` into ``sites`` near-equal site specs."""
    if sites <= 0:
        raise ValueError(f"sites must be positive (got {sites})")
    base, extra = divmod(total_devices, sites)
    specs = []
    for i in range(sites):
        n = base + (1 if i < extra else 0)
        specs.append(
            SiteSpec(
                name=f"site{i}",
                devices=n,
                horizon=horizon,
                signatures=tuple(dict(w) for w in signatures),
                **kwargs,
            )
        )
    return specs


def run_site_worker(spec: SiteSpec) -> dict[str, Any]:
    """Build and run one site end to end; returns picklable stats.

    Top-level by design: multiprocessing pickles the function reference
    and the spec, nothing else.  The site is the E9 fleet shape (the
    four-device factory cycle, everyone telemetering, first camera and
    first plug attacked) so single-site and federated arms of bench E15
    run the identical per-device workload.
    """
    from repro.attacks.exploits import EXPLOITS
    from repro.core.deployment import SecuredDeployment
    from repro.core.orchestrator import build_recommended_posture
    from repro.devices.library import smart_bulb, smart_camera, smart_plug, thermostat
    from repro.learning.repository import CrowdRepository
    from repro.learning.signatures import AttackSignature

    factory_cycle = (smart_camera, smart_plug, thermostat, smart_bulb)
    build_start = time.perf_counter()
    dep = SecuredDeployment.build()
    dep.manager.capacity = max(256, spec.devices + 8)
    trusted = (dep.HUB, dep.CONTROLLER)
    for i in range(spec.devices):
        factory = factory_cycle[i % len(factory_cycle)]
        device = dep.add_device(
            factory, f"dev{i}", report_to="hub", telemetry_period=spec.telemetry_period
        )
        device.start_telemetry()
    attacker = dep.add_attacker() if spec.attack else None
    dep.finalize()
    if spec.signatures:
        cache = CrowdRepository(dep.sim, free_rider_delay=0.0, base_delay=0.0)
        for wire in spec.signatures:
            cache.publish(AttackSignature.from_dict(wire), reporter="coordinator")
        dep.attach_repository(cache)
    for i in range(spec.devices):
        name = f"dev{i}"
        device = dep.devices[name]
        if "exposed-credentials" in device.firmware.flaw_classes():
            posture = build_recommended_posture("password_proxy", name)
        elif device.firmware.flaw_classes() & {"backdoor", "exposed-access"}:
            posture = build_recommended_posture(
                "stateful_firewall", name, trusted_sources=trusted
            )
        else:
            posture = build_recommended_posture("monitor", name, sku=device.sku)
        dep.secure(name, posture)
    build_s = time.perf_counter() - build_start

    results = []
    if attacker is not None and spec.devices >= 2:
        results = [
            EXPLOITS["default_credential_hijack"].launch(attacker, "dev0", dep.sim),
            EXPLOITS["backdoor_command"].launch(
                attacker, "dev1", dep.sim, backdoor_port=49153, command="on"
            ),
        ]
    run_start = time.perf_counter()
    dep.run(until=spec.horizon)
    run_s = time.perf_counter() - run_start
    events = dep.sim.events_processed
    return {
        "site": spec.name,
        "devices": spec.devices,
        "build_s": build_s,
        "run_s": run_s,
        "wall_s": build_s + run_s,
        "events": events,
        "events_per_s": events / max(run_s, 1e-9),
        "attacks_launched": len(results),
        "attacks_blocked": sum(1 for r in results if not r.succeeded),
        "compromised": sum(1 for d in dep.devices.values() if d.is_compromised()),
        "cached_signatures": len(spec.signatures),
    }


def run_federation(
    specs: Sequence[SiteSpec], workers: int | None = None
) -> dict[str, Any]:
    """Run every site spec, in parallel worker processes when possible.

    ``workers`` <= 1 runs serially in-process (deterministic, debuggable
    and the honest baseline for the aggregate-throughput comparison on a
    single-core box).  The aggregate throughput is total simulated events
    over the *end-to-end* wall clock -- build included, because sharding
    wins on build cost too and hiding that would flatter the single-site
    arm."""
    start = time.perf_counter()
    if workers is None:
        workers = len(specs)
    if workers <= 1 or len(specs) <= 1:
        per_site = [run_site_worker(spec) for spec in specs]
        mode = "serial"
    else:
        import multiprocessing as mp

        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(method)
        with ctx.Pool(processes=min(workers, len(specs))) as pool:
            per_site = pool.map(run_site_worker, list(specs))
        mode = f"{method}:{min(workers, len(specs))}"
    wall_s = time.perf_counter() - start
    events = sum(r["events"] for r in per_site)
    return {
        "mode": mode,
        "sites": len(per_site),
        "devices": sum(r["devices"] for r in per_site),
        "wall_s": wall_s,
        "events": events,
        "aggregate_events_per_s": events / max(wall_s, 1e-9),
        "attacks_blocked": sum(r["attacks_blocked"] for r in per_site),
        "attacks_launched": sum(r["attacks_launched"] for r in per_site),
        "compromised": sum(r["compromised"] for r in per_site),
        "per_site": per_site,
    }
