"""The in-process federation harness: N sites, one coordinator, one sim.

This is the *semantics* half of the federation (the scale half is
:mod:`repro.federation.runner`): every site's deployment shares one
simulator and one WAN control channel, so cross-site effects -- signature
propagation lag, coordinator blackouts, autonomy spells, in-order
catch-up -- play out in a single deterministic event order that tests
and the E15 bench can assert on exactly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.federation.coordinator import GlobalCoordinator
from repro.federation.site import FederatedSite
from repro.netsim.simulator import Simulator
from repro.sdn.channel import ControlChannel

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.health import HealthPlane

#: A federation WAN hop is tens of milliseconds -- the paper's cloud
#: controller distance, an order above the on-premise control channel.
WAN_LATENCY = 0.040


class Federation:
    """Builder/owner of coordinator + sites on one shared simulator."""

    def __init__(
        self,
        sim: Simulator | None = None,
        wan_latency: float = WAN_LATENCY,
        sync_period: float = 5.0,
    ) -> None:
        self.sim = sim or Simulator()
        self.sync_period = sync_period
        self.wan = ControlChannel(self.sim, latency=wan_latency)
        self.coordinator = GlobalCoordinator(self.sim, self.wan)
        self.sites: dict[str, FederatedSite] = {}
        self.health_plane: "HealthPlane | None" = None

    # ------------------------------------------------------------------
    def add_site(
        self,
        name: str,
        populate: Callable[[Any], None] | None = None,
        **deployment_kwargs: Any,
    ) -> FederatedSite:
        """Create one site on the shared sim; ``populate(dep)`` adds its
        devices/attackers before the deployment is finalized."""
        from repro.core.deployment import SecuredDeployment

        if name in self.sites:
            raise ValueError(f"duplicate site name {name!r}")
        dep = SecuredDeployment.build(sim=self.sim, **deployment_kwargs)
        if populate is not None:
            populate(dep)
        dep.finalize()
        site = FederatedSite(
            self.sim,
            name,
            dep,
            self.wan,
            coordinator=self.coordinator.NAME,
            sync_period=self.sync_period,
        )
        self.sites[name] = site
        return site

    def start(self) -> None:
        """Register every site with the coordinator and start sync loops."""
        for site in self.sites.values():
            self.coordinator.register_site(site)
            site.start()

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def blackout(self, start: float, end: float) -> None:
        """Partition the whole WAN (coordinator unreachable from every
        site, and vice versa) for ``[start, end)`` simulated seconds."""
        self.wan.partition(start, end)

    # ------------------------------------------------------------------
    # Health integration (PR-8 plane)
    # ------------------------------------------------------------------
    def attach_health(self, period: float = 1.0) -> "HealthPlane":
        """Start a health plane with the federation subsystem probe.

        Degraded while any site runs autonomously on cached policy;
        critical while any started site still awaits its first sync
        (that is the one state with a real enforcement gap)."""
        from repro.obs.health import (
            HEALTH_CRITICAL,
            HEALTH_DEGRADED,
            HealthPlane,
        )

        plane = HealthPlane(self.sim, period=period)
        if plane.enabled:
            plane.health.register("federation")

            def probe() -> tuple[str, str] | None:
                unsynced = sum(1 for s in self.sites.values() if not s.first_synced)
                if unsynced:
                    return (
                        HEALTH_CRITICAL,
                        f"{unsynced} site(s) awaiting first sync",
                    )
                offline = sum(1 for s in self.sites.values() if s.autonomous)
                if offline:
                    return (
                        HEALTH_DEGRADED,
                        f"{offline} site(s) autonomous on cached policy",
                    )
                return None

            plane.health.probe("federation", probe)
            plane.start()
        self.health_plane = plane
        return plane

    # ------------------------------------------------------------------
    def propagation_lag(self, version: int) -> float | None:
        """Worst-case sim-time from publication of ``version`` to its
        application at the last site; ``None`` until fully propagated."""
        update = None
        for entry in self.coordinator.repository.log:
            if entry.version == version:
                update = entry
                break
        if update is None:
            return None
        applied = []
        for site in self.sites.values():
            at = site.applied_at.get(version)
            if at is None:
                return None
            applied.append(at)
        return max(applied) - update.published_at

    def run(self, until: float | None = None) -> None:
        self.sim.run(until=until)

    def snapshot(self) -> dict[str, Any]:
        return {
            "coordinator": self.coordinator.snapshot(),
            "sites": [site.snapshot() for site in self.sites.values()],
        }
