"""Federated multi-site control plane (ROADMAP item: scaling §5.1 out).

One :class:`GlobalCoordinator` owns the versioned cross-site
:class:`SignatureRepository` and the cross-site policy bundle; each
:class:`FederatedSite` wraps a full :class:`SecuredDeployment` slice with
its own local signature cache, syncing over a WAN control channel that
can partition.  Sites require one successful first sync, then enforce
autonomously on cached policy for as long as the coordinator stays
unreachable -- the E11 fleet-immunity story at deployment scale.

:class:`Federation` composes the pieces on one shared simulator (the
semantics harness: propagation lag, partitions, autonomy transitions);
:mod:`repro.federation.runner` shards a fleet into per-site worker
processes for E9-class load beyond one core (bench E15).
"""

from repro.federation.coordinator import GlobalCoordinator
from repro.federation.federation import Federation
from repro.federation.repository import SignatureRepository, SignatureUpdate
from repro.federation.runner import SiteSpec, run_federation, run_site_worker, shard_fleet
from repro.federation.site import FederatedSite

__all__ = [
    "Federation",
    "FederatedSite",
    "GlobalCoordinator",
    "SignatureRepository",
    "SignatureUpdate",
    "SiteSpec",
    "run_federation",
    "run_site_worker",
    "shard_fleet",
]
