"""The global coordinator: cross-site policy + the versioned repository.

Section 5.1's "global controller", promoted to deployment scale: sites
handle their own devices end to end; the coordinator owns only what must
be fleet-wide -- the versioned :class:`SignatureRepository` and the
cross-site policy bundle.  Everything it says to a site rides the WAN
control channel, so partitions, latency and loss come from the same
seeded fault model every other experiment uses.

Delivery model: accepted publications are **pushed** to every currently
reachable site (one WAN hop of lag -- the fleet-immunity propagation
bench E15 measures) and **pulled** by each site's periodic sync --
which is also how a partitioned site catches up in order after a heal.
The push is best-effort on purpose: the pull path is the correctness
mechanism, the push only shaves propagation lag.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from repro.federation.repository import SignatureRepository

if TYPE_CHECKING:  # pragma: no cover
    from repro.federation.site import FederatedSite
    from repro.netsim.simulator import Simulator
    from repro.obs.stream import DeadLetterQueue
    from repro.sdn.channel import ControlChannel, ControlMessage


class GlobalCoordinator:
    """Owns the signature log and the cross-site policy bundle."""

    NAME = "coordinator"

    def __init__(
        self,
        sim: "Simulator",
        wan: "ControlChannel",
        repository: SignatureRepository | None = None,
        dlq: "DeadLetterQueue | None" = None,
    ) -> None:
        self.sim = sim
        self.wan = wan
        self.repository = repository or SignatureRepository(sim, dlq=dlq)
        self.sites: dict[str, "FederatedSite"] = {}
        #: Cross-site policy bundle (advisory posture map + knobs); sites
        #: cache the latest version they saw and keep enforcing it while
        #: the coordinator is unreachable.
        self.policy_version = 0
        self.policy_bundle: dict[str, Any] = {}
        self.sync_requests = 0
        self.reports = 0
        wan.register(self.NAME, self._on_message)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def register_site(self, site: "FederatedSite") -> None:
        """Adopt a site and attempt its first sync immediately.

        If the WAN is partitioned right now the site simply stays in the
        pre-sync state and its own sync loop completes the first sync
        after the heal -- registration never blocks."""
        self.sites[site.name] = site
        if self.wan.reachable(site.endpoint):
            self._send_updates(site.name, since=site.version)

    # ------------------------------------------------------------------
    # Policy distribution
    # ------------------------------------------------------------------
    def push_policy(self, bundle: Mapping[str, Any]) -> int:
        """Publish a new cross-site policy bundle; returns its version."""
        self.policy_version += 1
        self.policy_bundle = dict(bundle)
        body = {"version": self.policy_version, "bundle": self.policy_bundle}
        for site in self.sites.values():
            if self.wan.reachable(site.endpoint):
                self.wan.send(self.NAME, site.endpoint, "policy-update", body)
        return self.policy_version

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def _on_message(self, message: "ControlMessage") -> None:
        if message.kind == "sync-request":
            self.sync_requests += 1
            site = str(message.body.get("site", ""))
            self._send_updates(site, since=int(message.body.get("version", 0)))
        elif message.kind == "sig-report":
            self.reports += 1
            origin = message.sender
            update = self.repository.publish(message.body.get("signature"), origin=origin)
            if update is not None:
                self._broadcast(update, exclude=origin)

    def _send_updates(self, site_name: str, since: int) -> None:
        site = self.sites.get(site_name)
        if site is None:
            return
        updates = [u.as_dict() for u in self.repository.updates_since(since)]
        self.wan.send(
            self.NAME,
            site.endpoint,
            "sync-updates",
            {
                "since": since,
                "updates": updates,
                "policy_version": self.policy_version,
            },
        )

    def _broadcast(self, update: "Any", exclude: str = "") -> int:
        """Push one accepted update to every reachable site."""
        body = update.as_dict()
        pushed = 0
        for site in self.sites.values():
            if site.endpoint == exclude:
                continue
            if self.wan.reachable(site.endpoint):
                self.wan.send(self.NAME, site.endpoint, "sig-push", body)
                pushed += 1
        return pushed

    # ------------------------------------------------------------------
    def converged(self) -> bool:
        """Every registered site has applied the full log."""
        version = self.repository.version
        return all(site.version == version for site in self.sites.values())

    def snapshot(self) -> dict[str, Any]:
        return {
            "version": self.repository.version,
            "policy_version": self.policy_version,
            "sites": len(self.sites),
            "converged": self.converged(),
            "sync_requests": self.sync_requests,
            "reports": self.reports,
            "repository": self.repository.stats(),
        }
