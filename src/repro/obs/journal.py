"""The flight recorder: an append-only, bounded security audit journal.

Aggregate metrics answer "how much"; causal traces answer "how fast"; the
journal answers the forensic question neither can: *what exactly happened,
in what order, and what did the controller do about it*.  Every layer
writes structured events through one API::

    sim.journal.record("alert", device="cam", trace=tid, alert_kind="login-rejected")

Design constraints (shared with the rest of :mod:`repro.obs`):

- **Simulated time only.**  Entries are stamped with ``sim.now`` via the
  clock callable handed in at construction; nothing reads the wall clock.
- **Append-only.**  Entries are immutable once recorded and sequence
  numbers are strictly monotonic, so the journal is trustworthy evidence:
  an entry can be evicted (bounded retention) or spilled, never rewritten.
- **Bounded retention.**  Entries accumulate into fixed-size *segments*
  arranged as a ring: when the ring exceeds ``max_segments`` the oldest
  whole segment is evicted -- optionally spilled to a JSONL file first --
  so long runs cannot grow memory with event volume (the same contract as
  the tracer's ``max_traces``).
- **Near-zero hot-path cost.**  ``record`` appends one raw tuple to the
  head segment buffer; :class:`JournalEntry` objects are materialized
  lazily, only when a reader (forensics, WAL replay, spill/export) asks.
  Derived counters (``recorded``) fall out of the sequence counter and
  eviction bookkeeping runs only on segment boundaries, so the per-call
  cost is amortized exactly as in a buffer-then-ship telemetry pipeline.
  Per-packet PASS verdicts are *not* journaled (only drops, alerts, and
  control-plane actions are security-relevant); routine ``telemetry``
  alerts are excluded like they are from tracing.
- **Disableable.**  ``Journal(enabled=False)`` (what
  ``Simulator(observe=False)`` creates) makes ``record`` a no-op, so the
  overhead bench measures the journal's cost along with the rest of the
  instrumentation.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Any, Callable, Iterator

__all__ = ["Journal", "JournalEntry"]

#: Alert kinds never journaled: routine streams whose volume would evict
#: the security-relevant evidence (mirrors ``UNTRACED_ALERT_KINDS``).
UNJOURNALED_ALERT_KINDS = frozenset({"telemetry"})


class JournalEntry:
    """One immutable audit record, stamped in simulated time."""

    __slots__ = ("seq", "at", "kind", "device", "trace_id", "fields")

    def __init__(
        self,
        seq: int,
        at: float,
        kind: str,
        device: str,
        trace_id: int | None,
        fields: dict[str, Any],
    ) -> None:
        self.seq = seq
        self.at = at
        self.kind = kind
        self.device = device
        self.trace_id = trace_id
        self.fields = fields

    def as_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "at": self.at,
            "kind": self.kind,
            "device": self.device,
            "trace_id": self.trace_id,
            "fields": dict(self.fields),
        }

    def __repr__(self) -> str:
        return (
            f"JournalEntry(#{self.seq} t={self.at:.3f} {self.kind}"
            f" device={self.device or '-'} {self.fields})"
        )


def _raw_as_dict(raw: tuple) -> dict[str, Any]:
    """Dict form of a raw segment tuple (spill/export without an entry)."""
    return {
        "seq": raw[0],
        "at": raw[1],
        "kind": raw[2],
        "device": raw[3],
        "trace_id": raw[4],
        "fields": dict(raw[5]),
    }


class Journal:
    """Bounded ring of append-only journal segments with optional spill."""

    def __init__(
        self,
        clock: Callable[[], float],
        enabled: bool = True,
        segment_size: int = 512,
        max_segments: int = 8,
        spill_path: str | None = None,
        spill_max_bytes: int | None = None,
        spill_max_files: int = 4,
    ) -> None:
        if segment_size <= 0:
            raise ValueError(f"segment_size must be positive (got {segment_size})")
        if max_segments <= 0:
            raise ValueError(f"max_segments must be positive (got {max_segments})")
        if spill_max_files <= 0:
            raise ValueError(f"spill_max_files must be positive (got {spill_max_files})")
        self.clock = clock
        self.enabled = enabled
        self.segment_size = segment_size
        self.max_segments = max_segments
        self.spill_path = spill_path
        #: Spill bound: once the active JSONL file reaches
        #: ``spill_max_bytes`` it is rotated (``path.1`` .. ``path.N``)
        #: and at most ``spill_max_files`` files (active included) are
        #: kept -- the oldest rotated file is deleted, its loss counted
        #: in ``spill_dropped_files``/``spill_dropped_bytes``.  ``None``
        #: preserves the historical unbounded single-file behavior.
        self.spill_max_bytes = spill_max_bytes
        self.spill_max_files = spill_max_files
        self.spill_rotations = 0
        self.spill_dropped_files = 0
        self.spill_dropped_bytes = 0
        #: Spill *write* failures: segments evicted but never persisted
        #: (serialization error or OSError on append).  Each failure is
        #: also journaled as a ``spill-error`` entry so the loss shows up
        #: in the incident timeline, not just a counter nobody reads.
        self.spill_errors = 0
        self._in_spill_error = False  # reentrancy guard for the record
        self._spill_size: int | None = None  # lazily sized from disk
        # Segments hold raw ``(seq, at, kind, device, trace_id, fields)``
        # tuples; ``_head`` aliases the open segment so the write path
        # never indexes the deque.  Readers materialize JournalEntry
        # objects on demand (reads are forensic-frequency, writes are not).
        self._head: list[tuple] = []
        self._segments: deque[list[tuple]] = deque([self._head])
        self._next_seq = 1
        self.evicted = 0
        self.spilled = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def record(
        self, kind: str, device: str = "", trace: int | None = None, **fields: Any
    ) -> None:
        """Append one entry (a no-op when the journal is disabled)."""
        if not self.enabled:
            return None
        seq = self._next_seq
        self._next_seq = seq + 1
        head = self._head
        if len(head) >= self.segment_size:
            # Segment boundary: roll the buffer and settle eviction --
            # the only bookkeeping that is not a plain append.
            head = [(seq, self.clock(), kind, device, trace, fields)]
            self._segments.append(head)
            self._head = head
            if len(self._segments) > self.max_segments:
                self._evict_oldest()
        else:
            head.append((seq, self.clock(), kind, device, trace, fields))
        return None

    @property
    def recorded(self) -> int:
        """Entries ever recorded (derived from the sequence counter)."""
        return self._next_seq - 1

    def _evict_oldest(self) -> None:
        segment = self._segments.popleft()
        self.evicted += len(segment)
        if self.spill_path is not None:
            # Serialize the whole segment *before* touching the file and
            # append it with a single write: a serialization failure
            # leaves the spill untouched, and the one-call append keeps
            # every JSONL line complete -- a reload never sees a record
            # truncated by a failure mid-eviction.
            try:
                blob = "".join(
                    json.dumps(_raw_as_dict(raw), default=str) + "\n"
                    for raw in segment
                )
            except (TypeError, ValueError) as exc:
                # Unserializable field: keep the in-memory contract, but
                # account for the segment the spill just lost.
                self._note_spill_error("serialize", len(segment), exc)
                return
            try:
                with open(self.spill_path, "a", encoding="utf-8") as fh:
                    fh.write(blob)
                self.spilled += len(segment)
            except OSError as exc:
                # Spill stays best-effort (retention bounds still hold),
                # but the failure is counted and journaled, not swallowed.
                self._note_spill_error("write", len(segment), exc)
            else:
                if self.spill_max_bytes is not None:
                    if self._spill_size is None:
                        self._spill_size = self._size_on_disk(self.spill_path)
                    else:
                        self._spill_size += len(blob.encode("utf-8"))
                    if self._spill_size >= self.spill_max_bytes:
                        self._rotate_spill()

    def _note_spill_error(self, reason: str, lost: int, exc: Exception) -> None:
        """Count a failed segment spill and journal the loss itself.

        The guard prevents recursion: the ``spill-error`` record can roll
        a segment and trigger another eviction, whose own failure would
        otherwise re-enter this method.
        """
        self.spill_errors += 1
        if self._in_spill_error:
            return
        self._in_spill_error = True
        try:
            self.record(
                "spill-error",
                reason=reason,
                lost_entries=lost,
                error=f"{type(exc).__name__}: {exc}",
            )
        finally:
            self._in_spill_error = False

    @staticmethod
    def _size_on_disk(path: str) -> int:
        try:
            return os.path.getsize(path)
        except OSError:
            return 0

    def _rotate_spill(self) -> None:
        """Shift ``path -> path.1 -> ... -> path.N``; drop past the cap.

        With ``spill_max_files == 1`` there is nothing to rotate into:
        the active file itself is discarded (still counted as dropped).
        """
        base = self.spill_path
        assert base is not None
        keep = self.spill_max_files
        if keep == 1:
            self.spill_dropped_bytes += self._size_on_disk(base)
            try:
                os.remove(base)
            except OSError:
                pass
            else:
                self.spill_dropped_files += 1
            self.spill_rotations += 1
            self._spill_size = 0
            return
        oldest = f"{base}.{keep - 1}"
        if os.path.exists(oldest):
            self.spill_dropped_bytes += self._size_on_disk(oldest)
            try:
                os.remove(oldest)
            except OSError:
                pass
            else:
                self.spill_dropped_files += 1
        for i in range(keep - 2, 0, -1):
            src = f"{base}.{i}"
            if os.path.exists(src):
                try:
                    os.replace(src, f"{base}.{i + 1}")
                except OSError:
                    pass
        try:
            os.replace(base, f"{base}.1")
        except OSError:
            pass
        self.spill_rotations += 1
        self._spill_size = 0

    def spill_files(self) -> list[str]:
        """Existing spill files, oldest first (rotated tail -> active)."""
        if self.spill_path is None:
            return []
        base = self.spill_path
        out = []
        for i in range(self.spill_max_files - 1, 0, -1):
            path = f"{base}.{i}"
            if os.path.exists(path):
                out.append(path)
        if os.path.exists(base):
            out.append(base)
        return out

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def last_seq(self) -> int:
        """Sequence number of the most recent entry (0 = nothing yet).

        This is the checkpoint high-water mark: a restore replays
        retained entries with ``seq > checkpoint.seq``.
        """
        return self._next_seq - 1

    def entries_since(self, seq: int) -> list[JournalEntry]:
        """Retained entries with a sequence number strictly after ``seq``.

        The write-ahead-log read path: entries older than the retention
        ring are gone (evicted/spilled), so callers checkpoint often
        enough that the tail past their checkpoint is still retained.
        """
        out = []
        for segment in reversed(self._segments):
            if segment and segment[-1][0] <= seq:
                break
            for raw in segment:
                if raw[0] > seq:
                    out.append(raw)
        out.sort(key=lambda raw: raw[0])
        return [JournalEntry(*raw) for raw in out]

    def __iter__(self) -> Iterator[JournalEntry]:
        for segment in self._segments:
            for raw in segment:
                yield JournalEntry(*raw)

    def __len__(self) -> int:
        """Retained (in-memory) entries."""
        return sum(len(segment) for segment in self._segments)

    def entries(
        self,
        since: float | None = None,
        kind: str | None = None,
        device: str | None = None,
    ) -> list[JournalEntry]:
        """Retained entries filtered by time / kind / device (all optional).

        ``device`` matches the entry's device field *or* a ``src`` field
        naming the device -- an attack step toward ``cam`` and an insider
        alert sourced from ``cam`` both belong to cam's audit trail.
        """
        out = []
        for entry in self:
            if since is not None and entry.at < since:
                continue
            if kind is not None and entry.kind != kind:
                continue
            if device is not None and not (
                entry.device == device or entry.fields.get("src") == device
            ):
                continue
            out.append(entry)
        return out

    def for_device(self, device: str) -> list[JournalEntry]:
        return self.entries(device=device)

    def tail(self, n: int = 50) -> list[JournalEntry]:
        """The most recent ``n`` retained entries, oldest first."""
        if n <= 0:
            return []
        picked: deque[JournalEntry] = deque(maxlen=n)
        for entry in self:
            picked.append(entry)
        return list(picked)

    def kinds(self) -> dict[str, int]:
        """Retained entry counts by kind (operator overview)."""
        counts: dict[str, int] = {}
        for entry in self:
            counts[entry.kind] = counts.get(entry.kind, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        return {
            "enabled": self.enabled,
            "recorded": self.recorded,
            "retained": len(self),
            "evicted": self.evicted,
            "spilled": self.spilled,
            "segment_size": self.segment_size,
            "max_segments": self.max_segments,
            "spill_max_bytes": self.spill_max_bytes,
            "spill_max_files": self.spill_max_files,
            "spill_rotations": self.spill_rotations,
            "spill_dropped_files": self.spill_dropped_files,
            "spill_dropped_bytes": self.spill_dropped_bytes,
            "spill_errors": self.spill_errors,
        }

    @staticmethod
    def load_spill(path: str) -> list[JournalEntry]:
        """Reload spilled (or exported) JSONL back into entry objects.

        The read half of the spill round-trip: evicted segments written
        by ``spill_path`` -- or an explicit :meth:`export_jsonl` dump --
        parse back to :class:`JournalEntry` objects in file order.  Blank
        lines are skipped; a malformed line raises ``ValueError`` naming
        its line number, because a corrupt flight recorder should fail
        loudly at forensics time, not silently truncate the evidence.
        """
        entries: list[JournalEntry] = []
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                    entries.append(
                        JournalEntry(
                            seq=int(data["seq"]),
                            at=float(data["at"]),
                            kind=str(data["kind"]),
                            device=str(data["device"]),
                            trace_id=data.get("trace_id"),
                            fields=dict(data["fields"]),
                        )
                    )
                except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                    raise ValueError(
                        f"corrupt journal spill {path!r} at line {lineno}: {exc}"
                    ) from exc
        return entries

    @classmethod
    def load_spill_rotated(cls, path: str) -> list[JournalEntry]:
        """Reload a rotated spill set (``path.N`` .. ``path.1``, ``path``).

        Returns entries in file order, oldest rotation first -- seq order
        for anything the journal itself wrote.  Missing files are fine
        (rotation may have dropped them); a corrupt line still raises.
        """
        rotated: list[str] = []
        i = 1
        while os.path.exists(f"{path}.{i}"):
            rotated.append(f"{path}.{i}")
            i += 1
        entries: list[JournalEntry] = []
        for part in reversed(rotated):
            entries.extend(cls.load_spill(part))
        if os.path.exists(path):
            entries.extend(cls.load_spill(path))
        return entries

    def export_jsonl(self, path: str) -> int:
        """Write every retained entry to ``path`` as JSON lines.

        Returns the number of entries written.  This is the explicit
        "dump the flight recorder" operation (CI attaches the result as a
        build artifact); the ``spill_path`` mechanism covers the implicit
        case of entries aging out of the ring mid-run.
        """
        n = 0
        with open(path, "w", encoding="utf-8") as fh:
            for segment in self._segments:
                for raw in segment:
                    fh.write(json.dumps(_raw_as_dict(raw), default=str) + "\n")
                    n += 1
        return n

    def __repr__(self) -> str:
        return (
            f"Journal(retained={len(self)}, recorded={self.recorded}, "
            f"evicted={self.evicted}, enabled={self.enabled})"
        )
