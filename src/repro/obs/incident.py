"""Incident reconstruction: one device's forensic timeline.

Joins the three observability planes into a single per-device narrative:

- **journal** entries (:mod:`repro.obs.journal`) supply the durable facts:
  attack steps, verdicts, alerts, escalations, context changes, posture
  transitions, flow pushes;
- **traces** (:mod:`repro.obs.trace`) supply causality and per-stage
  *simulated* latencies for each detection chain
  (detect -> ingest-alert -> escalate -> evaluate -> actuate ->
  flow-install / epoch-commit);
- **metrics** (:mod:`repro.obs.registry`) supply the aggregate context
  (how many alerts of each kind, how many applies for this device).

Join semantics: a journal entry and a span belong to the same *chain* when
they carry the same trace id; journal entries without a trace id (attack
steps, device state changes, ground-truth compromises) still appear on the
timeline, ordered by simulated time with sequence numbers breaking ties.
Causality edges are the consecutive stage pairs of each chain, in stage
order -- the rendered incident is exactly the paper's Figure 2 loop,
replayed from evidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.simulator import Simulator

__all__ = ["Incident", "IncidentChain", "SITE_EVENT_KINDS", "reconstruct"]

#: Canonical stage order of one detection chain (Figure 2's loop).  Spans
#: sort by simulated start time first; this index breaks same-instant ties
#: so e.g. ``escalate`` (instantaneous) lands before ``evaluate``.
STAGE_ORDER = (
    "detect",
    "ingest-alert",
    "escalate",
    "evaluate",
    "actuate",
    "flow-install",
    "epoch-commit",
)
_STAGE_INDEX = {stage: i for i, stage in enumerate(STAGE_ORDER)}

#: Site-scoped journal kinds (recorded with ``device=""``) that a device
#: timeline can opt into via ``reconstruct(..., site_events=True)``:
#: SLO breaches, health transitions and stream replays are deployment
#: facts, but they frame what happened to every device in the window.
SITE_EVENT_KINDS = frozenset(
    {
        "slo-breach",
        "slo-recover",
        "health",
        "stream-replay",
        "failover",
        "failover-complete",
        "site-autonomy-enter",
        "site-autonomy-exit",
        "signature-sync",
    }
)


@dataclass
class IncidentChain:
    """One causal chain (one trace) with its joined journal evidence."""

    trace_id: int
    stages: list[dict[str, Any]] = field(default_factory=list)
    #: Journal entries carrying this chain's trace id.
    journal_seqs: list[int] = field(default_factory=list)

    @property
    def stage_names(self) -> list[str]:
        return [s["stage"] for s in self.stages]

    @property
    def total_latency(self) -> float:
        if not self.stages:
            return 0.0
        return max(s["end"] for s in self.stages) - min(s["start"] for s in self.stages)

    def edges(self) -> list[tuple[str, str]]:
        """Causality edges: consecutive stages of this chain."""
        names = self.stage_names
        return list(zip(names, names[1:]))

    def as_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "stages": [dict(s) for s in self.stages],
            "edges": [list(edge) for edge in self.edges()],
            "journal_seqs": list(self.journal_seqs),
            "total_latency": self.total_latency,
        }


@dataclass
class Incident:
    """A reconstructed per-device incident: timeline + chains + context."""

    device: str
    built_at: float
    timeline: list[dict[str, Any]] = field(default_factory=list)
    chains: list[IncidentChain] = field(default_factory=list)
    alerts_by_kind: dict[str, int] = field(default_factory=dict)
    applies: int = 0
    context: str = ""
    posture: str = ""
    #: Which policy rule currently wins for this device, when a policy was
    #: available to explain the decision (see :func:`reconstruct`).
    winning_rule: dict[str, Any] | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "device": self.device,
            "built_at": self.built_at,
            "timeline": [dict(e) for e in self.timeline],
            "chains": [c.as_dict() for c in self.chains],
            "alerts_by_kind": dict(self.alerts_by_kind),
            "applies": self.applies,
            "context": self.context,
            "posture": self.posture,
            "winning_rule": dict(self.winning_rule) if self.winning_rule else None,
        }

    def render(self) -> str:
        """Operator-facing plain-text reconstruction."""
        lines = [
            f"incident report: {self.device} @ t={self.built_at:.1f}s"
            + (f"  context={self.context}" if self.context else "")
            + (f"  posture={self.posture}" if self.posture else "")
        ]
        if self.alerts_by_kind:
            kinds = ", ".join(f"{k}={v}" for k, v in sorted(self.alerts_by_kind.items()))
            lines.append(f"  alerts: {kinds}")
        if self.winning_rule is not None:
            lines.append(
                f"  policy: rule #{self.winning_rule['rule_id']}"
                f" [{self.winning_rule['predicate']}]"
                f" -> {self.winning_rule['posture']}"
            )
        lines.append(f"  timeline ({len(self.timeline)} events):")
        for event in self.timeline:
            trace = f" trace={event['trace_id']}" if event.get("trace_id") else ""
            detail = " ".join(
                f"{k}={v}" for k, v in event.get("detail", {}).items() if v not in ("", None)
            )
            lines.append(
                f"    t={event['at']:>9.4f}  {event['kind']:<18}{trace}  {detail}".rstrip()
            )
        for chain in self.chains:
            lines.append(
                f"  chain trace#{chain.trace_id}"
                f" ({len(chain.stages)} stages,"
                f" total {chain.total_latency * 1e3:.1f}ms):"
            )
            for stage in chain.stages:
                lines.append(
                    f"    {stage['stage']:<14}"
                    f" t={stage['start']:>9.4f} -> {stage['end']:>9.4f}"
                    f"  (+{stage['latency'] * 1e3:7.2f}ms)"
                )
        return "\n".join(lines)


def _span_sort_key(span) -> tuple[float, int]:
    return (span.start, _STAGE_INDEX.get(span.stage, len(STAGE_ORDER)))


def reconstruct(
    sim: "Simulator",
    device: str,
    policy: Any = None,
    state: Any = None,
    dlq: Any = None,
    site_events: bool = False,
) -> Incident:
    """Rebuild the incident timeline for ``device`` from ``sim``'s evidence.

    ``policy`` (a :class:`~repro.policy.fsm.PolicyFSM`) together with
    ``state`` (the current :class:`~repro.policy.context.SystemState`) are
    optional explainers: when both are given the incident also reports
    which rule currently decides the device's posture
    (:meth:`PolicyFSM.rule_for`) -- the "why", next to the journal's
    "what" and the trace's "when".

    ``dlq`` (a :class:`~repro.obs.stream.DeadLetterQueue`) adds the
    quarantined evidence: records the stream consumer refused for this
    device appear on the timeline with ``source="dlq"`` and their full
    refusal detail.  (The refusal *event* is also journaled at quarantine
    time, so it survives DLQ rotation; the DLQ join contributes the
    record body that the bounded journal entry deliberately omits.)

    ``site_events`` folds site-scoped journal entries (SLO breaches and
    recoveries, health transitions, post-outage stream replays,
    failovers -- see :data:`SITE_EVENT_KINDS`) into the timeline with
    ``source="site"``: those records carry no device, yet they explain
    *why* this device's evidence arrived late or its enforcement
    stalled.  Off by default so a device timeline stays device-scoped.
    """
    incident = Incident(device=device, built_at=sim.now)

    # -- dead-letter plane: quarantined (refused) records ------------------
    if dlq is not None:
        for item in dlq.for_device(device):
            incident.timeline.append(
                {
                    "at": item["at"],
                    "seq": 0,  # quarantines carry no journal sequence
                    "source": "dlq",
                    "kind": "dlq-quarantine",
                    "trace_id": None,
                    "detail": {
                        "reason": item["reason"],
                        "host": item["host"],
                        "alert_kind": item["alert_kind"],
                        "offset": item["offset"],
                    },
                }
            )

    # -- journal plane: durable per-device facts --------------------------
    journal_entries = sim.journal.for_device(device)
    seqs_by_trace: dict[int, list[int]] = {}
    for entry in journal_entries:
        incident.timeline.append(
            {
                "at": entry.at,
                "seq": entry.seq,
                "source": "journal",
                "kind": entry.kind,
                "trace_id": entry.trace_id,
                "detail": dict(entry.fields),
            }
        )
        if entry.trace_id is not None:
            seqs_by_trace.setdefault(entry.trace_id, []).append(entry.seq)
        if entry.kind == "alert":
            kind = str(entry.fields.get("alert_kind", "?"))
            incident.alerts_by_kind[kind] = incident.alerts_by_kind.get(kind, 0) + 1
        elif entry.kind == "posture":
            incident.applies += 1
            incident.posture = str(entry.fields.get("posture", incident.posture))
        elif entry.kind == "context":
            incident.context = str(entry.fields.get("context", incident.context))

    # -- site plane (opt-in): deployment-scoped events framing the window --
    if site_events:
        seen = {e.seq for e in journal_entries}
        for entry in sim.journal:
            if entry.kind in SITE_EVENT_KINDS and entry.seq not in seen:
                incident.timeline.append(
                    {
                        "at": entry.at,
                        "seq": entry.seq,
                        "source": "site",
                        "kind": entry.kind,
                        "trace_id": entry.trace_id,
                        "detail": dict(entry.fields),
                    }
                )
                if entry.trace_id is not None:
                    seqs_by_trace.setdefault(entry.trace_id, []).append(entry.seq)

    # -- trace plane: causal chains with per-stage simulated latencies ----
    tracer = sim.tracer
    for trace_id in tracer.traces_for(device):
        spans = sorted(tracer.spans(trace_id), key=_span_sort_key)
        if not spans:
            continue
        chain = IncidentChain(
            trace_id=trace_id, journal_seqs=seqs_by_trace.get(trace_id, [])
        )
        for span in spans:
            chain.stages.append(
                {
                    "stage": span.stage,
                    "start": span.start,
                    "end": span.end,
                    "latency": span.latency,
                    "device": span.device,
                    "attrs": dict(span.attrs),
                }
            )
        incident.chains.append(chain)

    # -- metrics plane: aggregate context for this device -----------------
    registry = sim.metrics
    if registry.enabled:
        applies = 0.0
        for instrument in registry.series("pipeline_device_applies"):
            if instrument.labels.get("device") == device:
                applies += instrument.value
        if applies:
            incident.applies = max(incident.applies, int(applies))

    # -- policy plane: explain the current decision -----------------------
    if policy is not None and state is not None:
        rule = policy.rule_for(state, device)
        if rule is not None:
            incident.winning_rule = {
                "rule_id": rule.rule_id,
                "predicate": str(rule.predicate),
                "posture": rule.posture.name,
                "priority": rule.priority,
            }

    incident.timeline.sort(key=lambda e: (e["at"], e["seq"]))
    return incident
