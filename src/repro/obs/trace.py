"""Span-based causal tracing across the control loop's layers.

A *trace* is the causal chain of one detection: the µmbox that raises an
alert starts a trace (stage ``detect``), the controller continues it as
the alert crosses the control channel (``ingest-alert``), the escalation
decision (``escalate``), the reactive pipeline's evaluation round
(``evaluate``), the orchestrator's actuation (``actuate``) and finally the
data-plane commit (``flow-install`` for direct rule pushes,
``epoch-commit`` for two-phase consistent updates).

Every span carries *simulated* start/end times, so per-stage latencies are
honest simulation measurements, not wall-clock noise.

Propagation has two mechanisms, both explicit:

- the trace id rides data that already flows between layers (the alert's
  ``trace_id`` field, the control-message body, the pipeline's dirty set,
  the orchestrator's actuation batch);
- within one synchronous cascade (alert handling -> ``set_context`` ->
  view notification -> ``ingest``), the controller activates the trace on
  a small stack (:meth:`Tracer.push` / :meth:`Tracer.pop`) that downstream
  code reads via :meth:`Tracer.current` -- the discrete-event simulator is
  single-threaded, so a stack is all the context propagation needed.

Retention is bounded: the tracer keeps the most recent ``max_traces``
traces and evicts whole traces oldest-first, so long runs cannot grow
memory with alert volume.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any


@dataclass
class Span:
    """One stage of one causal chain, in simulated time."""

    trace_id: int
    stage: str
    start: float
    end: float
    device: str = ""
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def latency(self) -> float:
        return self.end - self.start

    def as_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "stage": self.stage,
            "start": self.start,
            "end": self.end,
            "latency": self.latency,
            "device": self.device,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Bounded store of causal traces plus the active-trace stack."""

    def __init__(self, enabled: bool = True, max_traces: int = 512) -> None:
        self.enabled = enabled
        self.max_traces = max_traces
        self._ids = itertools.count(1)
        self._traces: "OrderedDict[int, list[Span]]" = OrderedDict()
        self._by_device: dict[str, list[int]] = {}
        self._stack: list[int | None] = []
        self.started = 0
        self.spans_recorded = 0
        self.evicted = 0

    # ------------------------------------------------------------------
    # Trace lifecycle
    # ------------------------------------------------------------------
    def start_trace(self, device: str = "", **attrs: Any) -> int | None:
        """Allocate a new trace id (None when tracing is disabled)."""
        if not self.enabled:
            return None
        trace_id = next(self._ids)
        self.started += 1
        self._traces[trace_id] = []
        if device:
            self._index_device(device, trace_id)
        while len(self._traces) > self.max_traces:
            self._traces.popitem(last=False)
            self.evicted += 1
        return trace_id

    def span(
        self,
        trace_id: int | None,
        stage: str,
        start: float,
        end: float,
        device: str = "",
        **attrs: Any,
    ) -> Span | None:
        """Record one stage of ``trace_id``; silently dropped when the
        tracer is disabled, the id is None, or the trace was evicted."""
        if not self.enabled or trace_id is None:
            return None
        spans = self._traces.get(trace_id)
        if spans is None:
            return None
        span = Span(trace_id=trace_id, stage=stage, start=start, end=end, device=device, attrs=attrs)
        spans.append(span)
        self.spans_recorded += 1
        if device:
            self._index_device(device, trace_id)
        return span

    def _index_device(self, device: str, trace_id: int) -> None:
        ids = self._by_device.setdefault(device, [])
        if not ids or ids[-1] != trace_id:
            ids.append(trace_id)
            if len(ids) > 4 * self.max_traces:
                ids[:] = [i for i in ids if i in self._traces]

    # ------------------------------------------------------------------
    # Active-trace stack (synchronous cascade propagation)
    # ------------------------------------------------------------------
    def push(self, trace_id: int | None) -> None:
        self._stack.append(trace_id)

    def pop(self) -> None:
        if self._stack:
            self._stack.pop()

    def current(self) -> int | None:
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def spans(self, trace_id: int) -> list[Span]:
        """The spans of one trace, ordered by start time (stable)."""
        return sorted(self._traces.get(trace_id, []), key=lambda s: s.start)

    def traces_for(self, device: str) -> list[int]:
        """Trace ids (oldest first) whose chain touched ``device``."""
        return [i for i in self._by_device.get(device, []) if i in self._traces]

    def last_trace(self, device: str) -> int | None:
        ids = self.traces_for(device)
        return ids[-1] if ids else None

    def trace_ids(self) -> list[int]:
        return list(self._traces)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self, trace_id: int) -> str:
        """A human-readable stage-by-stage view with simulated latencies."""
        spans = self.spans(trace_id)
        if not spans:
            return f"trace #{trace_id}: (no spans)"
        root = spans[0]
        total = max(s.end for s in spans) - min(s.start for s in spans)
        lines = [
            f"trace #{trace_id}"
            f" device={root.device or '-'}"
            f" start=t+{root.start:.3f}s"
            f" total={total * 1e3:.1f}ms"
        ]
        for span in spans:
            attrs = " ".join(f"{k}={v}" for k, v in span.attrs.items())
            lines.append(
                f"  {span.stage:<14} t={span.start:>9.4f} -> {span.end:>9.4f}"
                f"  (+{span.latency * 1e3:7.2f}ms)"
                f"  {span.device:<10} {attrs}".rstrip()
            )
        return "\n".join(lines)
