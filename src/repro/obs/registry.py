"""The metrics registry: counters, gauges, fixed-bucket histograms.

Design constraints (see docs/architecture.md, "Observability"):

- **No wall-clock calls.**  Instruments record what callers hand them;
  anything time-like is simulated seconds.
- **Near-zero hot-path cost.**  A counter increment is one attribute add.
  Gauges are usually *callbacks* over counters a component already keeps,
  so they cost nothing until ``snapshot()`` runs.  Histograms bisect a
  small fixed bounds tuple and are only observed at control-plane
  frequency (rounds, deployments, epochs) -- never per packet.
- **Stable identity.**  A series is ``(name, sorted labels)``.
  ``counter()`` / ``gauge()`` / ``histogram()`` get-or-create, so
  components can resolve their instruments once at construction and reuse
  the object.  :meth:`MetricsRegistry.unique` hands out collision-free
  label values for same-named instances (two sites, both with an ``edge``
  switch, sharing one simulator).
- **Disableable.**  A disabled registry hands out shared no-op
  instruments, which is how the overhead bench measures instrumentation
  cost (``Simulator(observe=False)``).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable

#: Default bounds for simulated-latency histograms (seconds).
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
    0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0,
)

#: Default bounds for size/count histograms (batch sizes, rules per epoch).
COUNT_BUCKETS: tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)

LabelMap = dict[str, str]


class Counter:
    """A monotonically increasing value."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelMap) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value: either set explicitly or read via callback.

    Callback gauges (``fn=...``) are the preferred integration: they
    evaluate only when sampled, so instrumenting a component's existing
    counters adds zero hot-path work.
    """

    kind = "gauge"
    __slots__ = ("name", "labels", "_value", "fn")

    def __init__(
        self, name: str, labels: LabelMap, fn: Callable[[], float] | None = None
    ) -> None:
        self.name = name
        self.labels = labels
        self._value: float = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        if self.fn is not None:
            return self.fn()
        return self._value


class Histogram:
    """A fixed-bucket histogram with sum/count/min/max.

    ``bounds`` are the *upper* edges; an implicit ``+Inf`` bucket catches
    the rest.  Bucket counts are stored non-cumulatively; exporters
    cumulate for Prometheus exposition.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str, labels: LabelMap, bounds: tuple[float, ...]) -> None:
        if tuple(sorted(bounds)) != tuple(bounds):
            raise ValueError(f"histogram bounds must be sorted (got {bounds})")
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> float | None:
        """Bucket-resolution quantile estimate (upper edge of the bucket
        holding the q-th observation; exact min/max at the extremes)."""
        if not self.count:
            return None
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        rank = q * self.count
        seen = 0.0
        for i, n in enumerate(self.bucket_counts):
            seen += n
            if seen >= rank:
                if i < len(self.bounds):
                    return min(self.bounds[i], self.max if self.max is not None else self.bounds[i])
                return self.max
        return self.max


class _NullCounter:
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Keyed store of instruments; one per :class:`Simulator`."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: dict[tuple[str, tuple[tuple[str, str], ...]], Any] = {}
        self._unique_names: dict[str, int] = {}

    # ------------------------------------------------------------------
    def unique(self, prefix: str) -> str:
        """A collision-free label value for same-named instances.

        The first caller keeps the clean name (``"edge"``); later callers
        get ``"edge#2"``, ``"edge#3"`` -- which keeps single-site metrics
        readable while multi-site (shared simulator) fleets stay distinct.
        """
        n = self._unique_names.get(prefix, 0) + 1
        self._unique_names[prefix] = n
        return prefix if n == 1 else f"{prefix}#{n}"

    # ------------------------------------------------------------------
    def _key(self, name: str, labels: LabelMap) -> tuple[str, tuple[tuple[str, str], ...]]:
        return (name, tuple(sorted(labels.items())))

    def _get_or_create(self, name: str, labels: LabelMap, factory: Callable[[], Any]) -> Any:
        key = self._key(name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER  # type: ignore[return-value]
        return self._get_or_create(name, labels, lambda: Counter(name, labels))

    def gauge(self, name: str, fn: Callable[[], float] | None = None, **labels: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE  # type: ignore[return-value]
        return self._get_or_create(name, labels, lambda: Gauge(name, labels, fn))

    def histogram(
        self, name: str, bounds: tuple[float, ...] = LATENCY_BUCKETS, **labels: str
    ) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM  # type: ignore[return-value]
        return self._get_or_create(name, labels, lambda: Histogram(name, labels, bounds))

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def series(self, name: str) -> list[Any]:
        """Every instrument registered under ``name`` (any labels)."""
        return [inst for (n, __), inst in self._instruments.items() if n == name]

    def value(self, name: str, **labels: str) -> float | None:
        """The value of one series, or None when it was never registered."""
        instrument = self._instruments.get(self._key(name, labels))
        if instrument is None:
            return None
        return instrument.value

    def __iter__(self):
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A plain-JSON dict of every series (see exporters for text)."""
        out: dict[str, Any] = {"enabled": self.enabled, "counters": {}, "gauges": {}, "histograms": {}}
        if not self.enabled:
            return out
        for instrument in self._instruments.values():
            if instrument.kind == "histogram":
                buckets = {
                    str(bound): n
                    for bound, n in zip(instrument.bounds, instrument.bucket_counts)
                }
                buckets["+Inf"] = instrument.bucket_counts[-1]
                entry = {
                    "labels": dict(instrument.labels),
                    "count": instrument.count,
                    "sum": instrument.total,
                    "min": instrument.min,
                    "max": instrument.max,
                    "p50": instrument.quantile(0.5),
                    "p99": instrument.quantile(0.99),
                    "buckets": buckets,
                }
            else:
                entry = {"labels": dict(instrument.labels), "value": instrument.value}
            out[instrument.kind + "s"].setdefault(instrument.name, []).append(entry)
        return out
