"""Security SLOs with SRE-style multiwindow burn-rate alerting.

The observability layers built so far (metrics registry, causal traces,
audit journal, durable streams) produce *raw* signal; nothing interprets
it online.  This module declares security service-level objectives — "95%
of enforcement reactions land within 2 s", "99% of control sends are not
given up on" — and evaluates them continuously against the live registry
and component state, using the standard SRE multiwindow, multi-burn-rate
recipe:

* each SLO has a **target** good fraction; the *error budget* is
  ``1 - target``;
* the **burn rate** over a window is the observed error fraction divided
  by the budget (burn 1.0 == exactly consuming the budget);
* a **breach** fires when the burn over the *fast* window AND the burn
  over the *slow* window both exceed their thresholds (the fast window
  gives quick detection, the slow window suppresses blips);
* **recovery** fires when the fast-window burn drops back under its
  threshold.

Two signal styles are supported:

* ``signal`` — a callable returning cumulative, monotonically
  non-decreasing ``(good, bad)`` event counts (e.g. reactions within
  budget vs late).  Window deltas are taken between samples.
* ``check`` — a callable returning a boolean "currently ok" (e.g. "the
  controller is reachable").  Each evaluation tick contributes one
  good/bad unit, turning the SLO into a fraction-of-time objective.

Breaches and recoveries are journaled (``slo-breach`` / ``slo-recover``)
and carry a trace id so incident reconstruction can stitch the breach
window into device timelines.  Everything here is pull-based: when
metrics are disabled (``observe=False``) the monitor registers nothing
and schedules nothing, preserving the null-instrument guarantee.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.simulator import Simulator

__all__ = ["DEFAULT_PERIOD", "SLO", "SloTracker", "SloMonitor"]

#: Default evaluation cadence: one sample per catalog-minimum fast
#: window (5 s), which keeps the always-on plane inside the obs-overhead
#: budget on a long-lived deployment.  Harnesses that need tight
#: detection latency (the chaos/failover scenarios, the `repro health`
#: CLI) pass an explicit sub-second period instead.
DEFAULT_PERIOD = 5.0

#: Severity levels a breach may assign to its subsystem.
SEVERITY_DEGRADED = "degraded"
SEVERITY_CRITICAL = "critical"
_SEVERITIES = (SEVERITY_DEGRADED, SEVERITY_CRITICAL)


@dataclass
class SLO:
    """One declared security objective.

    Exactly one of ``signal`` (cumulative ``(good, bad)`` counts) or
    ``check`` (boolean "ok right now") must be provided.
    """

    name: str
    subsystem: str
    objective: str
    target: float
    fast_window: float
    slow_window: float
    fast_burn: float
    slow_burn: float
    severity: str = SEVERITY_DEGRADED
    unit: str = ""
    device: str = ""
    signal: Callable[[], tuple[float, float]] | None = None
    check: Callable[[], bool] | None = None
    value: Callable[[], float] | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"SLO {self.name!r}: target must be in (0, 1), got {self.target}")
        if self.fast_window <= 0 or self.slow_window <= 0:
            raise ValueError(f"SLO {self.name!r}: windows must be positive")
        if self.fast_window > self.slow_window:
            raise ValueError(f"SLO {self.name!r}: fast_window must be <= slow_window")
        if self.severity not in _SEVERITIES:
            raise ValueError(f"SLO {self.name!r}: severity must be one of {_SEVERITIES}")
        if (self.signal is None) == (self.check is None):
            raise ValueError(f"SLO {self.name!r}: provide exactly one of signal= or check=")

    @property
    def budget(self) -> float:
        return 1.0 - self.target


class SloTracker:
    """Sliding-window burn-rate evaluation + breach state machine for one SLO."""

    __slots__ = (
        "slo",
        "sim",
        "_fast_samples",
        "_slow_samples",
        "_fast_window",
        "_slow_window",
        "_fast_burn",
        "_inv_budget",
        "_check_good",
        "_check_bad",
        "last_ok",
        "state",
        "breaches",
        "recoveries",
        "breached_at",
        "last_trace",
        "_c_breaches",
    )

    def __init__(self, slo: SLO, sim: Simulator) -> None:
        self.slo = slo
        self.sim = sim
        # Cumulative (t, good, bad) samples, one deque per window, each
        # pruned incrementally to its own width (plus one baseline sample
        # at-or-before the left edge) -- amortized O(1) per tick, which
        # is what keeps the plane inside the obs-overhead budget.
        self._fast_samples: deque[tuple[float, float, float]] = deque()
        self._slow_samples: deque[tuple[float, float, float]] = deque()
        # Hot-path locals: the per-tick state machine reads these instead
        # of chasing the SLO dataclass's attributes.
        self._fast_window = slo.fast_window
        self._slow_window = slo.slow_window
        self._fast_burn = slo.fast_burn
        self._inv_budget = 1.0 / slo.budget
        self._check_good = 0
        self._check_bad = 0
        #: Outcome of the most recent check() sample (always True for
        #: signal-style SLOs).  Probes read this instead of re-running
        #: the same predicate a second time in the same tick.
        self.last_ok = True
        self.state = "ok"
        self.breaches = 0
        self.recoveries = 0
        self.breached_at: float | None = None
        self.last_trace: int | None = None
        metrics = sim.metrics
        labels = {"slo": slo.name}
        self._c_breaches = metrics.counter("slo_breaches", **labels)
        metrics.gauge("slo_burn_rate", fn=self.burn_fast, window="fast", **labels)
        metrics.gauge("slo_burn_rate", fn=self.burn_slow, window="slow", **labels)
        metrics.gauge("slo_breached", fn=lambda: 1 if self.state == "breach" else 0, **labels)

    # ------------------------------------------------------------------
    def burn_fast(self) -> float:
        """Fast-window burn rate as of the latest evaluation tick."""
        return self._burn_over(self._fast_samples)

    def burn_slow(self) -> float:
        """Slow-window burn rate as of the latest evaluation tick."""
        return self._burn_over(self._slow_samples)

    # ------------------------------------------------------------------
    def _burn_over(self, samples: deque[tuple[float, float, float]]) -> float:
        """Burn rate between a window's baseline sample and its newest."""
        if len(samples) < 2:
            return 0.0
        baseline = samples[0]
        last = samples[-1]
        # Clamp deltas: sources that rebind after a failover may restart
        # their cumulative counters from zero.
        good = last[1] - baseline[1]
        bad = last[2] - baseline[2]
        if good < 0.0:
            good = 0.0
        if bad < 0.0:
            bad = 0.0
        total = good + bad
        if total <= 0.0:
            return 0.0
        return (bad / total) * self._inv_budget

    # ------------------------------------------------------------------
    def evaluate(self, now: float) -> None:
        """Take one sample and run the breach/recovery state machine.

        This is the plane's hot path (one call per tracked SLO per
        evaluation tick); the window maintenance and burn math are
        inlined and amortized O(1) so a tick costs no more than an
        ordinary simulator event.
        """
        slo = self.slo
        signal = slo.signal
        if signal is not None:
            good, bad = signal()
        else:
            ok = self.last_ok = slo.check()
            if ok:
                self._check_good += 1
            else:
                self._check_bad += 1
            good, bad = self._check_good, self._check_bad
        sample = (now, float(good), float(bad))
        # Prune each deque to its window, keeping one baseline sample
        # at-or-before the left edge (the head after pruning *is* the
        # latest sample <= edge, or the oldest when the run is younger
        # than the window).
        fast_samples = self._fast_samples
        fast_samples.append(sample)
        edge = now - self._fast_window
        while len(fast_samples) >= 2 and fast_samples[1][0] <= edge:
            fast_samples.popleft()
        slow_samples = self._slow_samples
        slow_samples.append(sample)
        edge = now - self._slow_window
        while len(slow_samples) >= 2 and slow_samples[1][0] <= edge:
            slow_samples.popleft()

        # Fast-window burn, inlined (the just-appended sample is the
        # window's newest point; the head is its baseline).  The slow
        # burn is only needed once the fast threshold trips, or while in
        # breach -- snapshots recompute both lazily from the deques.
        baseline = fast_samples[0]
        g = sample[1] - baseline[1]
        b = sample[2] - baseline[2]
        if g < 0.0:
            g = 0.0
        if b < 0.0:
            b = 0.0
        total = g + b
        fast = (b / total) * self._inv_budget if total > 0.0 else 0.0

        if self.state == "ok":
            if fast >= self._fast_burn:
                slow = self._burn_over(slow_samples)
                if slow >= slo.slow_burn:
                    self._breach(now, fast, slow)
        elif fast < self._fast_burn:
            self._recover(now, fast, self._burn_over(slow_samples))

    def _display_value(self) -> float | None:
        if self.slo.value is None:
            return None
        try:
            return round(float(self.slo.value()), 6)
        except Exception:  # pragma: no cover - display only, never fatal
            return None

    def _breach(self, now: float, fast: float, slow: float) -> None:
        slo = self.slo
        self.state = "breach"
        self.breaches += 1
        self.breached_at = now
        self._c_breaches.inc()
        sim = self.sim
        trace = sim.tracer.start_trace(device=slo.device, slo=slo.name)
        self.last_trace = trace
        if trace is not None:
            sim.tracer.span(
                trace,
                "slo-breach",
                now,
                now,
                device=slo.device,
                slo=slo.name,
                burn_fast=round(fast, 3),
                burn_slow=round(slow, 3),
            )
        fields: dict[str, Any] = {
            "slo": slo.name,
            "subsystem": slo.subsystem,
            "severity": slo.severity,
            "burn_fast": round(fast, 3),
            "burn_slow": round(slow, 3),
        }
        value = self._display_value()
        if value is not None:
            fields["value"] = value
        sim.journal.record("slo-breach", device=slo.device, trace=trace, **fields)

    def _recover(self, now: float, fast: float, slow: float) -> None:
        slo = self.slo
        self.state = "ok"
        self.recoveries += 1
        breached_at = self.breached_at
        self.breached_at = None
        sim = self.sim
        trace = self.last_trace
        if trace is not None:
            sim.tracer.span(
                trace,
                "slo-recover",
                breached_at if breached_at is not None else now,
                now,
                device=slo.device,
                slo=slo.name,
            )
        fields: dict[str, Any] = {
            "slo": slo.name,
            "subsystem": slo.subsystem,
            "severity": slo.severity,
            "burn_fast": round(fast, 3),
            "burn_slow": round(slow, 3),
        }
        if breached_at is not None:
            fields["breach_s"] = round(now - breached_at, 6)
        sim.journal.record("slo-recover", device=slo.device, trace=trace, **fields)

    # ------------------------------------------------------------------
    def status(self) -> dict[str, Any]:
        slo = self.slo
        out: dict[str, Any] = {
            "name": slo.name,
            "subsystem": slo.subsystem,
            "objective": slo.objective,
            "severity": slo.severity,
            "target": slo.target,
            "state": self.state,
            "burn_fast": round(self.burn_fast(), 3),
            "burn_slow": round(self.burn_slow(), 3),
            "fast_window_s": slo.fast_window,
            "slow_window_s": slo.slow_window,
            "fast_burn": slo.fast_burn,
            "slow_burn": slo.slow_burn,
            "breaches": self.breaches,
            "recoveries": self.recoveries,
        }
        value = self._display_value()
        if value is not None:
            out["value"] = value
            if slo.unit:
                out["unit"] = slo.unit
        return out


class SloMonitor:
    """Periodically evaluates a catalog of :class:`SLO`\\ s.

    When the simulator was built with ``observe=False`` the monitor is
    inert: :meth:`add` and :meth:`start` are no-ops, no timer is
    scheduled, and the hot path pays nothing.
    """

    def __init__(self, sim: Simulator, period: float = DEFAULT_PERIOD) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive (got {period})")
        self.sim = sim
        self.period = period
        self.enabled = bool(sim.metrics.enabled)
        self.trackers: list[SloTracker] = []
        self.ticks = 0
        #: Optional hook invoked (with sim.now) after each evaluation
        #: round — the health monitor hangs its rollup off this.
        self.on_tick: Callable[[float], None] | None = None
        self._stop: Callable[[], None] | None = None

    def add(self, slo: SLO) -> SloTracker | None:
        """Register an SLO; returns its tracker (None when disabled)."""
        if not self.enabled:
            return None
        if any(t.slo.name == slo.name for t in self.trackers):
            raise ValueError(f"duplicate SLO name {slo.name!r}")
        tracker = SloTracker(slo, self.sim)
        self.trackers.append(tracker)
        return tracker

    def start(self) -> None:
        if not self.enabled or self._stop is not None:
            return
        self._stop = self.sim.every(self.period, self._tick)

    def stop(self) -> None:
        if self._stop is not None:
            self._stop()
            self._stop = None

    def _tick(self) -> None:
        now = self.sim.now
        self.ticks += 1
        for tracker in self.trackers:
            tracker.evaluate(now)
        if self.on_tick is not None:
            self.on_tick(now)

    # ------------------------------------------------------------------
    def breach_total(self) -> int:
        return sum(t.breaches for t in self.trackers)

    def recovery_total(self) -> int:
        return sum(t.recoveries for t in self.trackers)

    def breached(self) -> list[SloTracker]:
        return [t for t in self.trackers if t.state == "breach"]

    def snapshot(self) -> dict[str, Any]:
        if not self.enabled:
            return {"enabled": False}
        return {
            "enabled": True,
            "period_s": self.period,
            "ticks": self.ticks,
            "breaches": self.breach_total(),
            "recoveries": self.recovery_total(),
            "slos": [t.status() for t in self.trackers],
        }
