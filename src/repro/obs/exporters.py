"""Exporters: registry -> Prometheus text exposition / traces -> JSON.

Both work off public read APIs (``registry.snapshot()``, ``tracer.spans``)
so they stay decoupled from instrument internals, and both emit plain
strings/dicts -- no I/O, callers decide where bytes go.

The text exposition follows the Prometheus conventions strictly enough to
round-trip: one ``# HELP`` and one ``# TYPE`` line per metric family
(exactly once, before the family's samples), and label values escaped per
the format spec (``\\`` -> ``\\\\``, ``"`` -> ``\\"``, newline -> ``\\n``).
:func:`parse_exposition` is the matching reader, used by the conformance
tests to prove write -> parse -> same-values.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.registry import MetricsRegistry
    from repro.obs.trace import Tracer

#: Operator-facing help strings for the core metric families.  Families
#: not listed fall back to a generic line -- exposition stays valid either
#: way, this map just makes ``repro metrics`` self-describing.
HELP_TEXT: dict[str, str] = {
    "sim_now": "Current simulated time in seconds",
    "sim_events_processed": "Total simulator events executed",
    "sim_events_pending": "Scheduled events not yet fired",
    "mbox_alerts": "Security alerts raised by mbox elements, by kind",
    "mbox_tunnelled_in": "Tunnelled packets entering the security cluster",
    "mbox_returned": "Inspected packets returned to the ingress switch",
    "mbox_unbound_drops": "Packets dropped for lack of a bound mbox",
    "controller_alerts": "Alerts ingested by the controller, by kind",
    "controller_packet_ins": "Reactive packet-in events at the controller",
    "pipeline_rounds": "Evaluation rounds flushed by the reactive pipeline",
    "pipeline_reaction_latency": "Trigger-to-apply latency in simulated seconds",
    "pipeline_escalations": "Context escalations decided by the pipeline",
    "journal_recorded": "Audit-journal entries recorded",
    "journal_retained": "Audit-journal entries currently retained in memory",
    "journal_evicted": "Audit-journal entries evicted from the bounded ring",
    "journal_spilled": "Evicted journal entries appended to the JSONL spill",
    "journal_spill_rotations": "Journal spill file rotations (byte cap reached)",
    "journal_spill_dropped_files": "Rotated spill files deleted past the file cap",
    "journal_spill_dropped_bytes": "Spill bytes deleted past the file cap",
    "epoch_commit_latency": "Two-phase epoch start-to-flip latency",
    "stream_buffer_depth": "Unacked records buffered, per (host, lane)",
    "stream_replay_lag": "Records sent but not yet acked, per (host, lane)",
    "stream_ack_lag_seconds": "Age of the oldest unacked record, per (host, lane)",
    "stream_peak_depth": "High-water buffered depth, per (host, lane)",
    "stream_evicted": "Bulk-lane records evicted unacked, per host stream",
    "stream_batches": "Coalesced batches shipped, per host stream",
    "dlq_depth": "Records currently quarantined in the dead-letter queue",
    "dlq_rotated": "Quarantined records rotated out of the bounded DLQ",
    "dlq_quarantined": "Records ever quarantined, per dead-letter queue",
    "slo_burn_rate": "Error-budget burn rate, per SLO and window (fast/slow)",
    "slo_breached": "1 while the SLO is in breach, else 0",
    "slo_breaches": "Breach events fired, per SLO",
    "health_state": "Subsystem health level (0=ok 1=degraded 2=critical)",
    "health_rollup": "Deployment health level (worst subsystem)",
}


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text-format rules."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label_value(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:
                out.append(ch)
                out.append(nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _label_str(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{k}="{escape_label_value(str(v))}"' for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def _family_header(lines: list[str], name: str, kind: str) -> None:
    help_text = HELP_TEXT.get(name, f"{name.replace('_', ' ')} (repro.obs)")
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {kind}")


def to_prometheus(registry: "MetricsRegistry") -> str:
    """Prometheus-style text exposition of every registered series.

    Histogram buckets are cumulated and an ``+Inf`` bucket, ``_sum`` and
    ``_count`` are emitted, matching the exposition-format conventions.
    ``# HELP``/``# TYPE`` appear exactly once per family, immediately
    before that family's samples.
    """
    snap = registry.snapshot()
    lines: list[str] = []
    for name, entries in sorted(snap["counters"].items()):
        _family_header(lines, name, "counter")
        for entry in entries:
            lines.append(f"{name}{_label_str(entry['labels'])} {entry['value']:g}")
    for name, entries in sorted(snap["gauges"].items()):
        _family_header(lines, name, "gauge")
        for entry in entries:
            lines.append(f"{name}{_label_str(entry['labels'])} {entry['value']:g}")
    for name, entries in sorted(snap["histograms"].items()):
        _family_header(lines, name, "histogram")
        for entry in entries:
            cumulative = 0
            for bound, count in entry["buckets"].items():
                cumulative += count
                lines.append(
                    f"{name}_bucket{_label_str(entry['labels'], {'le': bound})} {cumulative}"
                )
            lines.append(f"{name}_sum{_label_str(entry['labels'])} {entry['sum']:g}")
            lines.append(f"{name}_count{_label_str(entry['labels'])} {entry['count']}")
    return "\n".join(lines) + "\n"


def _parse_labels(text: str) -> dict[str, str]:
    """Parse ``k="v",k2="v2"`` respecting escapes inside quoted values."""
    labels: dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        key = text[i:eq].strip().lstrip(",").strip()
        assert text[eq + 1] == '"', f"malformed label value at {text[eq:]!r}"
        j = eq + 2
        raw: list[str] = []
        while text[j] != '"':
            if text[j] == "\\":
                raw.append(text[j : j + 2])
                j += 2
            else:
                raw.append(text[j])
                j += 1
        labels[key] = _unescape_label_value("".join(raw))
        i = j + 1
    return labels


def parse_exposition(text: str) -> dict[str, dict[str, Any]]:
    """Parse Prometheus text exposition back into families.

    Returns ``{family: {"type": ..., "help": ..., "samples": [(name,
    labels, value), ...]}}``.  Raises on duplicate ``# TYPE``/``# HELP``
    lines for one family -- the conformance property the exporter
    guarantees.  Built for the round-trip tests, not a general scraper.
    """
    families: dict[str, dict[str, Any]] = {}

    def family(name: str) -> dict[str, Any]:
        return families.setdefault(
            name, {"type": None, "help": None, "samples": []}
        )

    for line in text.splitlines():
        line = line.rstrip()
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            meta, __, rest = line[2:].partition(" ")
            name, __, value = rest.partition(" ")
            entry = family(name)
            key = meta.lower()
            if entry[key] is not None:
                raise ValueError(f"duplicate # {meta} for family {name!r}")
            entry[key] = value
            continue
        if line.startswith("#"):
            continue
        brace = line.find("{")
        if brace >= 0:
            close = line.rindex("}")
            sample_name = line[:brace]
            labels = _parse_labels(line[brace + 1 : close])
            value = float(line[close + 1 :].strip())
        else:
            sample_name, __, raw = line.partition(" ")
            labels = {}
            value = float(raw)
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in families:
                base = sample_name[: -len(suffix)]
                break
        family(base)["samples"].append((sample_name, labels, value))
    return families


def trace_as_dicts(tracer: "Tracer", trace_id: int) -> list[dict[str, Any]]:
    """One trace's spans as plain JSON-serializable dicts, start-ordered."""
    return [span.as_dict() for span in tracer.spans(trace_id)]
