"""Exporters: registry -> Prometheus text exposition / traces -> JSON.

Both work off public read APIs (``registry.snapshot()``, ``tracer.spans``)
so they stay decoupled from instrument internals, and both emit plain
strings/dicts -- no I/O, callers decide where bytes go.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.registry import MetricsRegistry
    from repro.obs.trace import Tracer


def _label_str(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in sorted(merged.items()))
    return "{" + body + "}"


def to_prometheus(registry: "MetricsRegistry") -> str:
    """Prometheus-style text exposition of every registered series.

    Histogram buckets are cumulated and an ``+Inf`` bucket, ``_sum`` and
    ``_count`` are emitted, matching the exposition-format conventions.
    """
    snap = registry.snapshot()
    lines: list[str] = []
    for name, entries in sorted(snap["counters"].items()):
        lines.append(f"# TYPE {name} counter")
        for entry in entries:
            lines.append(f"{name}{_label_str(entry['labels'])} {entry['value']:g}")
    for name, entries in sorted(snap["gauges"].items()):
        lines.append(f"# TYPE {name} gauge")
        for entry in entries:
            lines.append(f"{name}{_label_str(entry['labels'])} {entry['value']:g}")
    for name, entries in sorted(snap["histograms"].items()):
        lines.append(f"# TYPE {name} histogram")
        for entry in entries:
            cumulative = 0
            for bound, count in entry["buckets"].items():
                cumulative += count
                lines.append(
                    f"{name}_bucket{_label_str(entry['labels'], {'le': bound})} {cumulative}"
                )
            lines.append(f"{name}_sum{_label_str(entry['labels'])} {entry['sum']:g}")
            lines.append(f"{name}_count{_label_str(entry['labels'])} {entry['count']}")
    return "\n".join(lines) + "\n"


def trace_as_dicts(tracer: "Tracer", trace_id: int) -> list[dict[str, Any]]:
    """One trace's spans as plain JSON-serializable dicts, start-ordered."""
    return [span.as_dict() for span in tracer.spans(trace_id)]
