"""The durable telemetry plane: store-and-forward, replay, dead letters.

PRs 4-5 made the fault models honest -- and with them an honest problem:
alerts and telemetry ride the *unreliable* fast path of the control
channel, so a partition or shed window simply deletes the evidence, and
exactly the incidents we most need to reconstruct are the ones with holes
in the record.  This module closes that gap with three cooperating parts:

- :class:`HostStream` (µmbox-host side): a durable, bounded
  store-and-forward buffer in front of the lossy channel.  Records are
  appended to per-lane segment rings (``urgent`` for security alerts,
  ``bulk`` for telemetry, so enforcement evidence never queues behind a
  telemetry backlog), assigned monotonically increasing *offsets*, and
  shipped downstream in order as batches.  Eviction is watermark-aware:
  fully-acknowledged segments are freed first, the bulk lane may drop its
  oldest *unacknowledged* records when over capacity (counted and
  journaled, never silent), and the urgent lane **never** evicts an
  unacknowledged record -- overflow is allowed, gauged, and bounded in
  practice by the ack watermark advancing.
- :class:`StreamConsumer` (controller side): tracks one *consumed* offset
  per ``(host, lane)``, delivers records strictly in order (duplicates
  skipped, gaps wait for the retransmission to fill them), and returns a
  cumulative ack.  After a :class:`~repro.sdn.channel.PartitionWindow`
  heals, the host replays from the last acked offset: telemetry arrives
  late but in order with zero loss at bounded memory.  While the ingest
  queue sheds, bulk records are *deferred to the buffer* -- the consumer
  stops consuming (no ack) instead of dropping, and the host replays them
  once shedding ends.
- :class:`DeadLetterQueue`: records that fail schema validation or arrive
  from a reputation-flagged host are quarantined (bounded, journaled,
  inspectable via ``repro dlq``) rather than silently discarded -- the E3
  poisoning-resistance posture applied to the telemetry plane: a
  malformed alert is *evidence*, not noise.

Replay protocol (go-back-N over the unreliable fast path):

- The host sends batches of consecutive unacked records and remembers the
  highest offset in flight (``sent_high``).  Acks are cumulative and ride
  the same lossy wire; a lost ack just means a retransmission, which the
  consumer's offset dedup makes harmless.
- On retransmit timeout with no ack progress, ``sent_high`` falls back to
  the ack watermark and the window resends from there.
- Partition awareness: while :meth:`ControlChannel.reachable` says the
  controller is unreachable, flushes are skipped entirely (buffering
  continues) -- a multi-hour outage costs retry-timer ticks, not a
  journal full of drop records.

Everything here is simulated-time, seeded-deterministic, and observable:
buffer depth / replay lag / peak depth / DLQ depth are callback gauges in
the metrics registry (and therefore in the Prometheus exposition), and
every eviction, replayed batch, and quarantine is journaled.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.simulator import Event, Simulator
    from repro.sdn.channel import ControlChannel, ControlMessage

__all__ = [
    "DeadLetterQueue",
    "HostStream",
    "LANE_BULK",
    "LANE_URGENT",
    "StreamConfig",
    "StreamConsumer",
    "StreamRecord",
    "lane_for",
    "validate_record",
]

#: Security alerts (enforcing/monitor class): never evicted while unacked.
LANE_URGENT = "urgent"
#: Routine telemetry: bounded, oldest-unacked records may be shed.
LANE_BULK = "bulk"
LANES = (LANE_URGENT, LANE_BULK)


def lane_for(kind: str) -> str:
    """Which lane an alert kind rides: telemetry is bulk, the rest urgent."""
    return LANE_BULK if kind == "telemetry" else LANE_URGENT


@dataclass(frozen=True)
class StreamConfig:
    """Knobs for one host's durable stream.

    A lane's nominal capacity is ``segment_size * max_segments`` records;
    the urgent lane treats it as a soft bound (unacked records are never
    evicted), the bulk lane as a hard one (oldest unacked records drop,
    counted and journaled).  ``flush_delay`` coalesces same-instant alert
    bursts into one batch; ``retransmit_timeout`` paces the go-back-N
    resend loop and therefore the post-heal replay latency.
    """

    segment_size: int = 64
    max_segments: int = 64
    batch_max: int = 64
    flush_delay: float = 0.005
    retransmit_timeout: float = 2.0
    #: Minimum spacing of heartbeat depth journal records (the health
    #: sweep pulses much faster than anyone needs depth evidence).
    heartbeat_min_interval: float = 60.0
    #: A delivered batch whose oldest record is at least this stale is a
    #: *replay* (post-partition catch-up) and gets a journal summary.
    replay_age: float = 5.0

    def __post_init__(self) -> None:
        if self.segment_size <= 0:
            raise ValueError(f"segment_size must be positive (got {self.segment_size})")
        if self.max_segments <= 0:
            raise ValueError(f"max_segments must be positive (got {self.max_segments})")
        if self.batch_max <= 0:
            raise ValueError(f"batch_max must be positive (got {self.batch_max})")
        if self.flush_delay < 0:
            raise ValueError(f"flush_delay must be >= 0 (got {self.flush_delay})")
        if self.retransmit_timeout <= 0:
            raise ValueError(
                f"retransmit_timeout must be positive (got {self.retransmit_timeout})"
            )

    @property
    def lane_capacity(self) -> int:
        return self.segment_size * self.max_segments


@dataclass(slots=True)
class StreamRecord:
    """One buffered alert: its offset, birth time, and wire body."""

    offset: int
    at: float
    body: dict[str, Any]

    @property
    def device(self) -> str:
        return str(self.body.get("device", ""))

    @property
    def kind(self) -> str:
        return str(self.body.get("kind", ""))

    def as_wire(self) -> dict[str, Any]:
        return {"offset": self.offset, "at": self.at, "body": self.body}


# ----------------------------------------------------------------------
# Schema validation (the DLQ's admission test)
# ----------------------------------------------------------------------
_MAX_KIND_LEN = 64


def validate_record(wire: Any) -> str | None:
    """Why this wire record is malformed, or ``None`` when it is valid.

    The schema is the alert body :meth:`SecuredDeployment._forward_alert`
    has always produced: a non-empty device, a sane kind, a detail
    mapping with string keys, a string mbox and an optional integer
    trace.  Anything else is quarantine-worthy -- a buggy or hostile host
    must not be able to wedge the controller's ingest path.
    """
    if not isinstance(wire, Mapping):
        return "not-a-record"
    offset = wire.get("offset")
    if not isinstance(offset, int) or isinstance(offset, bool) or offset < 1:
        return "bad-offset"
    at = wire.get("at")
    if not isinstance(at, (int, float)) or isinstance(at, bool) or at < 0:
        return "bad-timestamp"
    body = wire.get("body")
    if not isinstance(body, Mapping):
        return "no-body"
    device = body.get("device")
    if not isinstance(device, str) or not device:
        return "bad-device"
    kind = body.get("kind")
    if not isinstance(kind, str) or not kind or len(kind) > _MAX_KIND_LEN:
        return "bad-kind"
    detail = body.get("detail", {})
    if not isinstance(detail, Mapping) or any(
        not isinstance(key, str) for key in detail
    ):
        return "bad-detail"
    if not isinstance(body.get("mbox", ""), str):
        return "bad-mbox"
    trace = body.get("trace")
    if trace is not None and (not isinstance(trace, int) or isinstance(trace, bool)):
        return "bad-trace"
    return None


# ----------------------------------------------------------------------
# Host side
# ----------------------------------------------------------------------
class _Lane:
    """One lane's segment ring: offsets, ack watermark, bounded eviction.

    Segments hold :class:`StreamRecord` objects in offset order.  ``ack``
    advances the cumulative watermark and frees fully-acked front
    segments (watermark-aware eviction); ``append`` enforces the capacity
    bound -- for the bulk lane by dropping the oldest *unacked* front
    segment (returned to the caller for journaling), for the urgent lane
    never (overflow is counted instead: losing enforcement evidence is
    worse than exceeding a soft memory bound).
    """

    __slots__ = (
        "name",
        "segment_size",
        "max_segments",
        "evict_unacked",
        "_segments",
        "next_offset",
        "acked",
        "sent_high",
        "appended",
        "lost",
        "overflow",
        "peak_depth",
        "evicted_high",
    )

    def __init__(
        self, name: str, segment_size: int, max_segments: int, evict_unacked: bool
    ) -> None:
        self.name = name
        self.segment_size = segment_size
        self.max_segments = max_segments
        self.evict_unacked = evict_unacked
        self._segments: deque[list[StreamRecord]] = deque([[]])
        self.next_offset = 1
        #: Cumulative ack watermark: every offset <= acked was consumed.
        self.acked = 0
        #: Go-back-N high-water mark of offsets already in flight.
        self.sent_high = 0
        self.appended = 0
        #: Unacked records evicted under pressure (bulk lane only).
        self.lost = 0
        #: Appends past nominal capacity that were retained anyway
        #: (urgent lane only -- unacked evidence is never dropped).
        self.overflow = 0
        self.peak_depth = 0
        #: Highest offset ever evicted under pressure (bulk lane): the
        #: replay base advertised downstream is ``max(acked, this)`` --
        #: "everything at or below is consumed or gone, don't wait for it".
        self.evicted_high = 0

    # -- geometry ------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.segment_size * self.max_segments

    @property
    def base(self) -> int:
        """The replay base: no offset at or below it can ever be resent."""
        return max(self.acked, self.evicted_high)

    def depth(self) -> int:
        """Retained records (acked ones linger until their segment frees)."""
        return sum(len(segment) for segment in self._segments)

    def replay_lag(self) -> int:
        """Records appended but not yet acknowledged downstream."""
        return (self.next_offset - 1) - self.acked

    # -- writing -------------------------------------------------------
    def append(self, body: dict[str, Any], at: float) -> tuple[StreamRecord, int]:
        """Buffer one record; returns ``(record, evicted_unacked_count)``."""
        record = StreamRecord(offset=self.next_offset, at=at, body=body)
        self.next_offset += 1
        self.appended += 1
        head = self._segments[-1]
        if len(head) >= self.segment_size:
            head = [record]
            self._segments.append(head)
        else:
            head.append(record)
        evicted = self._enforce_bound()
        depth = self.depth()
        if depth > self.peak_depth:
            self.peak_depth = depth
        return record, evicted

    def _enforce_bound(self) -> int:
        """Free/evict front segments until the ring fits; count casualties."""
        evicted_unacked = 0
        while len(self._segments) > self.max_segments:
            front = self._segments[0]
            if front and front[-1].offset <= self.acked:
                self._segments.popleft()  # fully consumed: plain free
                continue
            if not self.evict_unacked:
                # Urgent lane: retained past capacity rather than losing
                # unacknowledged enforcement evidence.
                self.overflow += 1
                break
            self._segments.popleft()
            unacked = sum(1 for r in front if r.offset > self.acked)
            evicted_unacked += unacked
            self.lost += unacked
            if front and front[-1].offset > self.evicted_high:
                self.evicted_high = front[-1].offset
        return evicted_unacked

    # -- acknowledgement -----------------------------------------------
    def ack(self, offset: int) -> None:
        """Advance the cumulative watermark and free covered segments."""
        if offset <= self.acked:
            return  # duplicate / stale ack: idempotent
        self.acked = min(offset, self.next_offset - 1)
        if self.sent_high < self.acked:
            self.sent_high = self.acked
        while len(self._segments) > 1:
            front = self._segments[0]
            if front and front[-1].offset > self.acked:
                break
            self._segments.popleft()
        head = self._segments[0]
        if len(self._segments) == 1 and head and head[-1].offset <= self.acked:
            # Everything acked: recycle the sole segment.
            head.clear()

    # -- reading -------------------------------------------------------
    def window_after(self, start: int, limit: int) -> list[StreamRecord]:
        """Up to ``limit`` consecutive retained records with offset > start."""
        out: list[StreamRecord] = []
        for segment in self._segments:
            if not segment or segment[-1].offset <= start:
                continue
            for record in segment:
                if record.offset > start:
                    out.append(record)
                    if len(out) >= limit:
                        return out
        return out

    def oldest_unacked(self) -> StreamRecord | None:
        for segment in self._segments:
            for record in segment:
                if record.offset > self.acked:
                    return record
        return None

    def stats(self) -> dict[str, Any]:
        return {
            "lane": self.name,
            "appended": self.appended,
            "acked": self.acked,
            "base": self.base,
            "depth": self.depth(),
            "replay_lag": self.replay_lag(),
            "peak_depth": self.peak_depth,
            "lost": self.lost,
            "overflow": self.overflow,
            "capacity": self.capacity,
        }


class HostStream:
    """A µmbox host's durable store-and-forward front to the channel.

    ``offer`` buffers one alert body in the lane its kind prescribes and
    schedules a coalesced flush; the flush ships one in-order batch per
    lane over the channel's *unreliable* fast path (durability comes from
    the buffer + ack + replay, not from per-message retries) and a
    retransmit timer drives go-back-N until the ack watermark catches up.
    """

    def __init__(
        self,
        sim: "Simulator",
        host: str,
        channel: "ControlChannel",
        controller: str,
        config: StreamConfig | None = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.channel = channel
        self.controller = controller
        self.config = config or StreamConfig()
        cfg = self.config
        self.lanes: dict[str, _Lane] = {
            LANE_URGENT: _Lane(
                LANE_URGENT, cfg.segment_size, cfg.max_segments, evict_unacked=False
            ),
            LANE_BULK: _Lane(
                LANE_BULK, cfg.segment_size, cfg.max_segments, evict_unacked=True
            ),
        }
        self.batches_sent = 0
        self.acks_received = 0
        self.skipped_unreachable = 0
        self._flush_event: "Event | None" = None
        self._retx_event: "Event | None" = None
        self._last_heartbeat_at = -float("inf")
        # Acks ride the channel back to the host's own endpoint.
        channel.register(host, self._on_control)
        metrics = sim.metrics
        # ``stream`` (unique) disambiguates multiple streams; ``host`` is
        # the stable per-host label the exposition promises operators.
        self.metric_labels = {"stream": metrics.unique(host), "host": host}
        for lane in self.lanes.values():
            labels = dict(self.metric_labels, lane=lane.name)
            metrics.gauge("stream_buffer_depth", fn=lane.depth, **labels)
            metrics.gauge("stream_replay_lag", fn=lane.replay_lag, **labels)
            metrics.gauge(
                "stream_peak_depth", fn=lambda lane=lane: lane.peak_depth, **labels
            )
            metrics.gauge(
                "stream_ack_lag_seconds",
                fn=lambda lane=lane: self._ack_lag_seconds(lane),
                **labels,
            )
        self._c_evicted = metrics.counter("stream_evicted", **self.metric_labels)
        self._c_batches = metrics.counter("stream_batches", **self.metric_labels)

    def _ack_lag_seconds(self, lane: "_Lane") -> float:
        """Age of the lane's oldest unacked record (0 when fully acked)."""
        record = lane.oldest_unacked()
        return 0.0 if record is None else self.sim.now - record.at

    # ------------------------------------------------------------------
    def offer(self, kind: str, body: dict[str, Any]) -> StreamRecord:
        """Buffer one alert body; it will ship (and re-ship) until acked."""
        lane = self.lanes[lane_for(kind)]
        record, evicted = lane.append(body, self.sim.now)
        if evicted:
            self._c_evicted.inc(evicted)
            self.sim.journal.record(
                "stream-evict",
                device=record.device,
                host=self.host,
                lane=lane.name,
                evicted=evicted,
                acked=lane.acked,
                lost_total=lane.lost,
            )
        self._schedule_flush()
        return record

    def outstanding(self) -> int:
        """Records not yet acknowledged by the controller, both lanes."""
        return sum(lane.replay_lag() for lane in self.lanes.values())

    # ------------------------------------------------------------------
    # Shipping
    # ------------------------------------------------------------------
    def _schedule_flush(self) -> None:
        if self._flush_event is None:
            self._flush_event = self.sim.schedule(self.config.flush_delay, self._flush)

    def _flush(self) -> None:
        self._flush_event = None
        if not self.channel.reachable(self.controller):
            # Partition: keep buffering, skip the futile transmission.
            # The retransmit timer keeps probing until the window heals.
            self.skipped_unreachable += 1
            self._arm_retransmit()
            return
        cfg = self.config
        sent_any = False
        for lane_name in LANES:  # urgent first: enforcement evidence leads
            lane = self.lanes[lane_name]
            start = max(lane.acked, lane.sent_high)
            batch = lane.window_after(start, cfg.batch_max)
            if not batch:
                continue
            lane.sent_high = batch[-1].offset
            self.batches_sent += 1
            self._c_batches.inc()
            sent_any = True
            self.channel.send(
                self.host,
                self.controller,
                "stream",
                {
                    "host": self.host,
                    "lane": lane.name,
                    # The lane's replay base (max of ack watermark and
                    # highest evicted offset): a fresh consumer adopts it,
                    # so a lost *first* batch reads as a gap (refilled by
                    # go-back-N) rather than a skipped prefix, and a hole
                    # left by bulk eviction reads as gone (skipped) rather
                    # than a gap that would livelock the resend loop.
                    "base": lane.base,
                    "records": [record.as_wire() for record in batch],
                },
            )
        if sent_any or self.outstanding():
            self._arm_retransmit()

    def _arm_retransmit(self) -> None:
        if self._retx_event is None:
            self._retx_event = self.sim.schedule(
                self.config.retransmit_timeout, self._on_retransmit_timeout
            )

    def _on_retransmit_timeout(self) -> None:
        self._retx_event = None
        if not self.outstanding():
            return
        # Go-back-N: nothing acked within the timeout, so the in-flight
        # window is presumed lost (or deferred) -- resend from the ack
        # watermark.  Duplicate delivery is harmless: the consumer skips
        # offsets at or below its consumed watermark.
        for lane in self.lanes.values():
            if lane.sent_high > lane.acked:
                lane.sent_high = lane.acked
        self._flush()

    # ------------------------------------------------------------------
    # Acks
    # ------------------------------------------------------------------
    def _on_control(self, message: "ControlMessage") -> None:
        if message.kind != "stream-ack":
            return
        body = message.body
        lane = self.lanes.get(str(body.get("lane", "")))
        offset = body.get("offset")
        if lane is None or not isinstance(offset, int):
            return
        self.acks_received += 1
        lane.ack(offset)
        if lane.replay_lag() > 0:
            # More retained records beyond the acked window: keep draining
            # without waiting out a full retransmit timeout.
            self._schedule_flush()
        elif not self.outstanding() and self._retx_event is not None:
            self._retx_event.cancel()
            self._retx_event = None

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def heartbeat(self) -> None:
        """Journal buffer depth while a backlog exists (rate-limited).

        Pulsed by the manager's health sweep: during an outage the
        journal gains periodic "the buffer is holding N records" evidence
        so an incident timeline spans the blackout instead of going dark.
        """
        if not self.outstanding():
            return
        now = self.sim.now
        if now - self._last_heartbeat_at < self.config.heartbeat_min_interval:
            return
        self._last_heartbeat_at = now
        for lane in self.lanes.values():
            lag = lane.replay_lag()
            if lag:
                oldest = lane.oldest_unacked()
                self.sim.journal.record(
                    "stream-depth",
                    host=self.host,
                    lane=lane.name,
                    depth=lane.depth(),
                    replay_lag=lag,
                    oldest_at=(oldest.at if oldest is not None else None),
                )

    def stats(self) -> dict[str, Any]:
        return {
            "host": self.host,
            "batches_sent": self.batches_sent,
            "acks_received": self.acks_received,
            "skipped_unreachable": self.skipped_unreachable,
            "lanes": {name: lane.stats() for name, lane in self.lanes.items()},
        }


# ----------------------------------------------------------------------
# Dead-letter queue
# ----------------------------------------------------------------------
class DeadLetterQueue:
    """Bounded quarantine for records the stream refused to deliver.

    Every quarantine is journaled (kind ``"dlq"``) so the refusal itself
    is durable evidence even after the bounded queue rotates; the queue
    keeps the full record bodies for operator inspection (``repro dlq``)
    and incident reconstruction.
    """

    def __init__(
        self, sim: "Simulator", name: str = "controller", max_records: int = 1024
    ) -> None:
        if max_records <= 0:
            raise ValueError(f"max_records must be positive (got {max_records})")
        self.sim = sim
        self.name = name
        self.max_records = max_records
        self._records: deque[dict[str, Any]] = deque()
        self.quarantined = 0
        self.rotated = 0
        self.by_reason: dict[str, int] = {}
        metrics = sim.metrics
        self.metric_labels = {"dlq": metrics.unique(name)}
        metrics.gauge("dlq_depth", fn=lambda: len(self._records), **self.metric_labels)
        metrics.gauge("dlq_rotated", fn=lambda: self.rotated, **self.metric_labels)
        self._c_quarantined = metrics.counter("dlq_quarantined", **self.metric_labels)

    def __len__(self) -> int:
        return len(self._records)

    def quarantine(self, wire: Any, reason: str, host: str) -> dict[str, Any]:
        """Admit one refused record; returns the stored entry."""
        body = wire.get("body") if isinstance(wire, Mapping) else None
        body = body if isinstance(body, Mapping) else {}
        device = body.get("device")
        device = device if isinstance(device, str) else ""
        alert_kind = body.get("kind")
        alert_kind = alert_kind if isinstance(alert_kind, str) else ""
        offset = wire.get("offset") if isinstance(wire, Mapping) else None
        entry = {
            "at": self.sim.now,
            "host": host,
            "reason": reason,
            "device": device,
            "alert_kind": alert_kind,
            "offset": offset if isinstance(offset, int) else None,
            "record": _plain(wire),
        }
        self._records.append(entry)
        if len(self._records) > self.max_records:
            self._records.popleft()
            self.rotated += 1
        self.quarantined += 1
        self.by_reason[reason] = self.by_reason.get(reason, 0) + 1
        self._c_quarantined.inc()
        self.sim.journal.record(
            "dlq",
            device=device,
            host=host,
            reason=reason,
            alert_kind=alert_kind,
            offset=entry["offset"],
        )
        return entry

    # -- inspection ----------------------------------------------------
    def entries(
        self, device: str | None = None, reason: str | None = None
    ) -> list[dict[str, Any]]:
        out = []
        for entry in self._records:
            if device is not None and entry["device"] != device:
                continue
            if reason is not None and entry["reason"] != reason:
                continue
            out.append(dict(entry))
        return out

    def for_device(self, device: str) -> list[dict[str, Any]]:
        return self.entries(device=device)

    def stats(self) -> dict[str, Any]:
        return {
            "depth": len(self._records),
            "quarantined": self.quarantined,
            "rotated": self.rotated,
            "by_reason": dict(self.by_reason),
            "max_records": self.max_records,
        }

    def export_jsonl(self, path: str) -> int:
        """Dump every retained quarantine entry as JSON lines (CI artifact)."""
        n = 0
        with open(path, "w", encoding="utf-8") as fh:
            for entry in self._records:
                fh.write(json.dumps(entry, default=str) + "\n")
                n += 1
        return n


def _plain(value: Any) -> Any:
    """A JSON-safe deep copy of an arbitrary (possibly hostile) payload."""
    if isinstance(value, Mapping):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


# ----------------------------------------------------------------------
# Controller side
# ----------------------------------------------------------------------
@dataclass
class _ConsumerState:
    """Per-(host, lane) consumption cursor."""

    consumed: int | None = None  # None until first contact (adopt base)
    delivered: int = 0
    last_batch_at: float = field(default=0.0)


class StreamConsumer:
    """The controller's end of the durable stream: in-order consumption.

    ``deliver(body, sent_at)`` is the existing alert ingress
    (:meth:`IoTSecController._on_alert`), so replayed records flow through
    the same escalation/telemetry path as live ones -- stamped with their
    *birth* time, which is what makes post-outage timelines honest.

    Exactly-once holds per consumer incarnation (offsets are in-memory
    controller state); across a controller crash + failover the stream
    degrades to at-least-once, exactly like the reliable channel path.
    """

    def __init__(
        self,
        sim: "Simulator",
        channel: "ControlChannel",
        name: str,
        deliver: Callable[[dict[str, Any], float], None],
        dlq: DeadLetterQueue,
        defer: Callable[[], bool] | None = None,
        host_trust: Callable[[str], float] | None = None,
        trust_threshold: float = 0.25,
        replay_age: float = 5.0,
    ) -> None:
        self.sim = sim
        self.channel = channel
        self.name = name
        self.deliver = deliver
        self.dlq = dlq
        #: When true, bulk records stay in the host buffer (shed mode):
        #: the consumer stops consuming instead of dropping.
        self.defer = defer
        self.host_trust = host_trust
        self.trust_threshold = trust_threshold
        self.replay_age = replay_age
        self._states: dict[tuple[str, str], _ConsumerState] = {}
        self.flagged: set[str] = set()
        self.delivered = 0
        self.duplicates = 0
        self.gaps = 0
        self.deferred = 0
        #: Offsets skipped because the host evicted them under pressure
        #: (its advertised base moved past our cursor): known-lost, never
        #: silently -- the host journaled each eviction when it happened.
        self.skipped_unavailable = 0
        self.batches = 0
        self.replayed_batches = 0
        metrics = sim.metrics
        self.metric_labels = {"consumer": metrics.unique(name)}
        self._c_delivered = metrics.counter("stream_delivered", **self.metric_labels)
        self._c_duplicates = metrics.counter("stream_duplicates", **self.metric_labels)
        self._c_gaps = metrics.counter("stream_gaps", **self.metric_labels)
        self._c_deferred = metrics.counter("stream_deferred", **self.metric_labels)

    # ------------------------------------------------------------------
    def flag_host(self, host: str) -> None:
        """Reputation decision: quarantine everything this host sends."""
        self.flagged.add(host)

    def unflag_host(self, host: str) -> None:
        self.flagged.discard(host)

    def _host_flagged(self, host: str) -> bool:
        if host in self.flagged:
            return True
        if self.host_trust is not None:
            return self.host_trust(host) < self.trust_threshold
        return False

    def offset_of(self, host: str, lane: str) -> int:
        state = self._states.get((host, lane))
        return state.consumed or 0 if state else 0

    # ------------------------------------------------------------------
    def on_batch(self, message: "ControlMessage") -> None:
        """Consume one stream batch in order; ack the new watermark."""
        body = message.body
        host = body.get("host")
        lane = body.get("lane")
        records = body.get("records")
        if (
            not isinstance(host, str)
            or not host
            or lane not in LANES
            or not isinstance(records, list)
        ):
            self.dlq.quarantine(
                {"body": {}, "offset": None, "batch": _plain(body)},
                "malformed-batch",
                host if isinstance(host, str) else "?",
            )
            return
        self.batches += 1
        state = self._states.setdefault((host, lane), _ConsumerState())
        raw_base = body.get("base")
        base = (
            raw_base
            if isinstance(raw_base, int)
            and not isinstance(raw_base, bool)
            and raw_base >= 0
            else None
        )
        if base is not None and state.consumed is not None and base > state.consumed:
            # The host declared offsets <= base unavailable (evicted under
            # pressure, already journaled host-side): waiting for them
            # would livelock the resend loop, so skip the hole and count.
            self.skipped_unavailable += base - state.consumed
            state.consumed = base
        if base is not None and state.consumed is None:
            # First contact (fresh controller after failover, or a brand-
            # new host): adopt the host's replay base.  Everything at or
            # below it was consumed by the previous incarnation or
            # evicted; anything above it that this batch skips is a *gap*
            # the host must resend -- without the base, a dropped first
            # batch would silently skip the stream's prefix.
            state.consumed = base
        flagged = self._host_flagged(host)
        oldest_at: float | None = None
        consumed_before = state.consumed
        for wire in records:
            offset = wire.get("offset") if isinstance(wire, Mapping) else None
            if not isinstance(offset, int) or isinstance(offset, bool) or offset < 1:
                # No usable offset: quarantine, but the cursor cannot
                # advance past a record it cannot place.
                self.dlq.quarantine(wire, "bad-offset", host)
                continue
            if state.consumed is None:
                # Hand-crafted batch without a replay base: fall back to
                # adopting the first offset seen.
                state.consumed = offset - 1
            if offset <= state.consumed:
                self.duplicates += 1
                self._c_duplicates.inc()
                continue
            if offset > state.consumed + 1:
                # A hole: stop here and let go-back-N refill it.  Acking
                # the old watermark below is what triggers the resend.
                self.gaps += 1
                self._c_gaps.inc()
                break
            if (
                lane == LANE_BULK
                and self.defer is not None
                and self.defer()
            ):
                # Shed mode: defer-to-buffer.  Do not consume, do not
                # drop -- the un-advanced ack leaves the record in the
                # host's durable buffer for replay after shedding ends.
                self.deferred += 1
                self._c_deferred.inc()
                break
            reason = "reputation" if flagged else validate_record(wire)
            state.consumed = offset  # poison records must not wedge the lane
            if reason is not None:
                self.dlq.quarantine(wire, reason, host)
                continue
            at = wire.get("at")
            sent_at = float(at) if isinstance(at, (int, float)) else message.sent_at
            if oldest_at is None:
                oldest_at = sent_at
            state.delivered += 1
            self.delivered += 1
            self._c_delivered.inc()
            self.deliver(dict(wire["body"]), sent_at)
        state.last_batch_at = self.sim.now
        if (
            oldest_at is not None
            and self.sim.now - oldest_at >= self.replay_age
            and state.consumed is not None
        ):
            # Post-outage catch-up: summarize the replayed batch so the
            # journal shows late-but-in-order delivery, not a silent gap.
            self.replayed_batches += 1
            self.sim.journal.record(
                "stream-replay",
                host=host,
                lane=lane,
                base=(consumed_before if consumed_before is not None else 0) + 1,
                consumed=state.consumed,
                oldest_at=oldest_at,
                lag=self.sim.now - oldest_at,
            )
        # Cumulative ack (unreliable, loseable: a lost ack just costs a
        # retransmission, which offset dedup absorbs).
        self.channel.send(
            self.name,
            host,
            "stream-ack",
            {"lane": lane, "offset": state.consumed or 0},
        )

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        return {
            "batches": self.batches,
            "delivered": self.delivered,
            "duplicates": self.duplicates,
            "gaps": self.gaps,
            "deferred": self.deferred,
            "skipped_unavailable": self.skipped_unavailable,
            "replayed_batches": self.replayed_batches,
            "flagged_hosts": sorted(self.flagged),
            "offsets": {
                f"{host}/{lane}": state.consumed or 0
                for (host, lane), state in sorted(self._states.items())
            },
        }
