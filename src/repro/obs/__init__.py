"""repro.obs: always-on, near-zero-overhead observability.

Two primitives and their glue:

- :class:`MetricsRegistry` (:mod:`repro.obs.registry`) -- counters, gauges
  and fixed-bucket histograms keyed by ``(name, labels)``.  Simulated-time
  aware: nothing in here reads the wall clock, and the hot-path cost of an
  instrument is one attribute increment.  Callback gauges cost *nothing*
  until a snapshot is taken -- they read counters a component already
  keeps.
- :class:`Tracer` (:mod:`repro.obs.trace`) -- span-based causal tracing.
  An alert is stamped with a trace id where it is born (the µmbox) and
  the id rides the control channel, the escalation engine, the reactive
  pipeline's dirty set, and the orchestrator's actuation batch, so one
  trace shows the packet -> alert -> escalation -> posture -> flow-rule
  chain with per-stage *simulated* latencies.

Exporters (:mod:`repro.obs.exporters`) turn a registry into a plain JSON
snapshot or Prometheus-style text exposition.

Every :class:`~repro.netsim.simulator.Simulator` owns one registry and one
tracer (``sim.metrics`` / ``sim.tracer``); components register into them at
construction.  ``Simulator(observe=False)`` swaps in no-op instruments so
the overhead bench can measure the cost of instrumentation itself.
"""

from repro.obs.exporters import to_prometheus, trace_as_dicts
from repro.obs.registry import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import Span, Tracer

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "to_prometheus",
    "trace_as_dicts",
]
