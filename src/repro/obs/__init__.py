"""repro.obs: always-on, near-zero-overhead observability.

Three primitives and their glue:

- :class:`MetricsRegistry` (:mod:`repro.obs.registry`) -- counters, gauges
  and fixed-bucket histograms keyed by ``(name, labels)``.  Simulated-time
  aware: nothing in here reads the wall clock, and the hot-path cost of an
  instrument is one attribute increment.  Callback gauges cost *nothing*
  until a snapshot is taken -- they read counters a component already
  keeps.
- :class:`Tracer` (:mod:`repro.obs.trace`) -- span-based causal tracing.
  An alert is stamped with a trace id where it is born (the µmbox) and
  the id rides the control channel, the escalation engine, the reactive
  pipeline's dirty set, and the orchestrator's actuation batch, so one
  trace shows the packet -> alert -> escalation -> posture -> flow-rule
  chain with per-stage *simulated* latencies.
- :class:`Journal` (:mod:`repro.obs.journal`) -- the flight recorder: an
  append-only, bounded, structured security audit journal every layer
  writes through ``sim.journal.record(kind, **fields)``.  Where metrics
  aggregate and traces time, the journal *remembers*: packet verdicts,
  alerts, escalations, posture/FSM transitions, flow installs, epoch
  commits, device lifecycle and attack steps, in order, in simulated
  time.  :func:`reconstruct` (:mod:`repro.obs.incident`) joins journal +
  traces + metrics into a per-device incident timeline.

The durable telemetry plane (:mod:`repro.obs.stream`) sits between the
µmbox hosts and the controller: per-host store-and-forward buffers with
offset-tracked, acknowledged, in-order replay across partitions, plus a
dead-letter queue that quarantines malformed or untrusted records as
inspectable evidence.

The SLO & health plane (:mod:`repro.obs.slo` / :mod:`repro.obs.health`)
interprets all of the above online: declared security objectives
evaluated over sliding windows with fast/slow burn-rate thresholds
(journaled ``slo-breach``/``slo-recover`` chains carrying trace ids),
rolled up into per-subsystem ``ok -> degraded -> critical`` health
states and a deployment-level verdict.

Exporters (:mod:`repro.obs.exporters`) turn a registry into a plain JSON
snapshot or Prometheus-style text exposition (escaped labels, one
``# HELP``/``# TYPE`` per family; :func:`parse_exposition` round-trips).

Every :class:`~repro.netsim.simulator.Simulator` owns one registry, one
tracer and one journal (``sim.metrics`` / ``sim.tracer`` /
``sim.journal``); components register into them at construction.
``Simulator(observe=False)`` swaps in no-op instruments so the overhead
bench can measure the cost of instrumentation itself.
"""

from repro.obs.exporters import parse_exposition, to_prometheus, trace_as_dicts
from repro.obs.health import (
    HEALTH_CRITICAL,
    HEALTH_DEGRADED,
    HEALTH_OK,
    HealthMonitor,
    HealthPlane,
    attach_health_plane,
)
from repro.obs.incident import Incident, IncidentChain, reconstruct
from repro.obs.journal import Journal, JournalEntry
from repro.obs.registry import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.slo import SLO, SloMonitor, SloTracker
from repro.obs.stream import (
    DeadLetterQueue,
    HostStream,
    StreamConfig,
    StreamConsumer,
    StreamRecord,
    validate_record,
)
from repro.obs.trace import Span, Tracer

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "DeadLetterQueue",
    "Gauge",
    "HEALTH_CRITICAL",
    "HEALTH_DEGRADED",
    "HEALTH_OK",
    "HealthMonitor",
    "HealthPlane",
    "Histogram",
    "HostStream",
    "Incident",
    "IncidentChain",
    "Journal",
    "JournalEntry",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "SLO",
    "SloMonitor",
    "SloTracker",
    "Span",
    "StreamConfig",
    "StreamConsumer",
    "StreamRecord",
    "Tracer",
    "attach_health_plane",
    "parse_exposition",
    "reconstruct",
    "to_prometheus",
    "trace_as_dicts",
    "validate_record",
]
