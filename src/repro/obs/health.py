"""Per-subsystem health rollups on top of the SLO monitor.

Each subsystem (pipeline, control channel, streams, µmbox fleet, HA,
overload queue) owns a tiny state machine ``ok → degraded → critical``
whose state is the *worst* of:

* the severities of currently-breached SLOs scoped to the subsystem, and
* direct **probes** — cheap closures that report an immediate condition
  (e.g. "a fail-open µmbox is down right now") without waiting for a
  burn window to accumulate.

State transitions are journaled (kind ``health``) and the deployment
rollup — the worst state across subsystems — is journaled under the
pseudo-subsystem ``deployment``.  Gauges ``health_state{subsystem=...}``
and ``health_rollup`` export the numeric level (0/1/2) to Prometheus.

:func:`attach_health_plane` builds the standard security-SLO catalog for
a :class:`~repro.core.deployment.SecuredDeployment`, registering each
SLO only when the backing component exists (no HA SLOs without a
checkpointer, no stream SLOs without durable telemetry).  With
``observe=False`` the plane is inert: nothing is registered or
scheduled.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.obs.slo import (
    DEFAULT_PERIOD,
    SEVERITY_CRITICAL,
    SEVERITY_DEGRADED,
    SLO,
    SloMonitor,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.deployment import SecuredDeployment
    from repro.netsim.simulator import Simulator

__all__ = [
    "HEALTH_OK",
    "HEALTH_DEGRADED",
    "HEALTH_CRITICAL",
    "HealthMonitor",
    "HealthPlane",
    "attach_health_plane",
    "standard_slos",
]

HEALTH_OK = "ok"
HEALTH_DEGRADED = "degraded"
HEALTH_CRITICAL = "critical"

#: Numeric level per state, used for the exported gauges and for
#: worst-of comparisons.
LEVELS = {HEALTH_OK: 0, HEALTH_DEGRADED: 1, HEALTH_CRITICAL: 2}
_STATE_BY_LEVEL = (HEALTH_OK, HEALTH_DEGRADED, HEALTH_CRITICAL)

#: A probe returns ``None`` (healthy) or ``(state, reason)``.
Probe = Callable[[], "tuple[str, str] | None"]


class HealthMonitor:
    """Aggregates SLO breach state + probes into per-subsystem health."""

    def __init__(self, sim: Simulator, slos: SloMonitor) -> None:
        self.sim = sim
        self.slos = slos
        self.enabled = slos.enabled
        self._subsystems: list[str] = []
        self._probes: dict[str, list[Probe]] = {}
        #: Flattened (subsystem, probe) pairs -- the tick loop walks this
        #: once instead of a dict-of-lists per subsystem.
        self._probe_items: list[tuple[str, Probe]] = []
        self._last: dict[str, str] = {}
        self._last_rollup = HEALTH_OK
        #: True while any subsystem (or the rollup) is not ok; lets the
        #: tick return immediately in the all-healthy steady state.
        self._any_bad = False
        self.transitions = 0
        if self.enabled:
            slos.on_tick = self._on_tick
            sim.metrics.gauge("health_rollup", fn=lambda: LEVELS[self.rollup()])

    # ------------------------------------------------------------------
    def register(self, subsystem: str) -> None:
        """Declare a subsystem so it appears in rollups even when all-ok."""
        if not self.enabled or subsystem in self._subsystems:
            return
        self._subsystems.append(subsystem)
        self._last[subsystem] = HEALTH_OK
        self.sim.metrics.gauge(
            "health_state",
            fn=lambda s=subsystem: LEVELS[self.state_of(s)],
            subsystem=subsystem,
        )

    def probe(self, subsystem: str, fn: Probe) -> None:
        if not self.enabled:
            return
        self.register(subsystem)
        self._probes.setdefault(subsystem, []).append(fn)
        self._probe_items.append((subsystem, fn))

    # ------------------------------------------------------------------
    def _findings(self, subsystem: str) -> list[tuple[str, str]]:
        """All (state, reason) contributions for a subsystem right now."""
        findings: list[tuple[str, str]] = []
        for tracker in self.slos.trackers:
            if tracker.slo.subsystem == subsystem and tracker.state == "breach":
                findings.append((tracker.slo.severity, f"slo:{tracker.slo.name}"))
        for fn in self._probes.get(subsystem, ()):
            result = fn()
            if result is not None:
                findings.append(result)
        return findings

    def state_of(self, subsystem: str) -> str:
        level = 0
        for state, _reason in self._findings(subsystem):
            level = max(level, LEVELS.get(state, 0))
            if level == 2:
                break
        return _STATE_BY_LEVEL[level]

    def reasons_of(self, subsystem: str) -> list[str]:
        return [reason for _state, reason in self._findings(subsystem)]

    def rollup(self) -> str:
        level = 0
        for subsystem in self._subsystems:
            level = max(level, LEVELS[self.state_of(subsystem)])
            if level == 2:
                break
        return _STATE_BY_LEVEL[level]

    # ------------------------------------------------------------------
    def _on_tick(self, now: float) -> None:
        """One flat pass over breach states and probes per tick.

        This runs once per SLO evaluation tick for the whole deployment;
        in the all-healthy steady state (no breached tracker, no probe
        finding, everything already ok) it returns after one cheap scan,
        so the health rollup adds near-zero cost on top of the SLO
        plane's own sampling.
        """
        levels: dict[str, int] | None = None
        for tracker in self.slos.trackers:
            if tracker.state != "ok":
                slo = tracker.slo
                level = LEVELS.get(slo.severity, 1)
                if levels is None:
                    levels = {slo.subsystem: level}
                elif level > levels.get(slo.subsystem, 0):
                    levels[slo.subsystem] = level
        for subsystem, fn in self._probe_items:
            result = fn()
            if result is not None:
                level = LEVELS.get(result[0], 0)
                if levels is None:
                    levels = {subsystem: level}
                elif level > levels.get(subsystem, 0):
                    levels[subsystem] = level
        if levels is None and not self._any_bad:
            return

        found = levels or {}
        worst = 0
        any_bad = False
        for subsystem in self._subsystems:
            level = found.get(subsystem, 0)
            if level:
                any_bad = True
                if level > worst:
                    worst = level
            state = _STATE_BY_LEVEL[level]
            prev = self._last[subsystem]
            if state != prev:
                self._last[subsystem] = state
                self.transitions += 1
                self.sim.journal.record(
                    "health",
                    subsystem=subsystem,
                    from_state=prev,
                    to_state=state,
                    reasons=self.reasons_of(subsystem),
                )
        rollup = _STATE_BY_LEVEL[worst]
        if rollup != self._last_rollup:
            prev, self._last_rollup = self._last_rollup, rollup
            self.transitions += 1
            self.sim.journal.record(
                "health", subsystem="deployment", from_state=prev, to_state=rollup
            )
        self._any_bad = any_bad

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        if not self.enabled:
            return {"enabled": False}
        subsystems = {
            name: {"state": self.state_of(name), "reasons": self.reasons_of(name)}
            for name in self._subsystems
        }
        return {
            "enabled": True,
            "rollup": self.rollup(),
            "transitions": self.transitions,
            "subsystems": subsystems,
        }


class HealthPlane:
    """SLO monitor + health monitor bound to one deployment."""

    def __init__(self, sim: Simulator, period: float = DEFAULT_PERIOD) -> None:
        self.sim = sim
        self.slos = SloMonitor(sim, period=period)
        self.health = HealthMonitor(sim, self.slos)
        self.enabled = self.slos.enabled

    def start(self) -> None:
        self.slos.start()

    def stop(self) -> None:
        self.slos.stop()

    def snapshot(self) -> dict[str, Any]:
        if not self.enabled:
            return {"enabled": False}
        health = self.health.snapshot()
        slos = self.slos.snapshot()
        return {
            "enabled": True,
            "at": self.sim.now,
            "rollup": health["rollup"],
            "subsystems": health["subsystems"],
            "transitions": health["transitions"],
            "slo_breaches": slos["breaches"],
            "slo_recoveries": slos["recoveries"],
            "slos": slos["slos"],
        }

    def render(self) -> str:
        """Human-readable health report (the `repro health` body)."""
        if not self.enabled:
            return "health plane disabled (observe=False)"
        snap = self.snapshot()
        mark = {"ok": "+", "degraded": "~", "critical": "!"}
        lines = [f"deployment: {snap['rollup'].upper()}  (t={snap['at']:.1f}s)"]
        for name, info in snap["subsystems"].items():
            reason = f"  [{', '.join(info['reasons'])}]" if info["reasons"] else ""
            lines.append(f"  [{mark[info['state']]}] {name:<16} {info['state']}{reason}")
        lines.append(
            f"slos: {len(snap['slos'])} tracked, "
            f"{snap['slo_breaches']} breach(es), {snap['slo_recoveries']} recovery(ies)"
        )
        for slo in snap["slos"]:
            value = f"  value={slo['value']}{slo.get('unit', '')}" if "value" in slo else ""
            lines.append(
                f"  [{mark['ok'] if slo['state'] == 'ok' else mark[slo['severity']]}] "
                f"{slo['name']:<24} {slo['state']:<6} "
                f"burn fast={slo['burn_fast']:.2f}/{slo['fast_burn']:.0f} "
                f"slow={slo['burn_slow']:.2f}/{slo['slow_burn']:.0f}{value}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Standard catalog for a SecuredDeployment
# ----------------------------------------------------------------------


def _reaction_signal(dep: SecuredDeployment, budget_s: float) -> Callable[[], tuple[int, int]]:
    """Cumulative (on-time, late) enforcement reactions.

    Keeps an incremental cursor into ``controller.reactions``; a list
    that *shrank* means a controller rebind (failover/restart), so the
    cursor resets and the fresh controller's reactions count as new.
    """
    state = {"seen": 0, "good": 0, "bad": 0}

    def signal() -> tuple[int, int]:
        ctrl = dep.controller
        if ctrl is None:
            return state["good"], state["bad"]
        records = ctrl.reactions
        if len(records) < state["seen"]:
            state["seen"] = 0
        for record in records[state["seen"] :]:
            if record.applied_at - record.trigger_at <= budget_s:
                state["good"] += 1
            else:
                state["bad"] += 1
        state["seen"] = len(records)
        return state["good"], state["bad"]

    return signal


def _ingest_signal(dep: SecuredDeployment) -> Callable[[], tuple[int, int]]:
    """Cumulative (processed, dropped) ENFORCING-class ingest alerts."""
    state = {"good": 0, "bad": 0}

    def signal() -> tuple[int, int]:
        ctrl = dep.controller
        queue = getattr(ctrl, "ingest", None) if ctrl is not None else None
        if queue is not None:
            state["good"], state["bad"] = queue.processed[0], queue.dropped[0]
        return state["good"], state["bad"]

    return signal


def _oldest_unacked_age(dep: SecuredDeployment) -> float:
    stream = dep.host_stream
    if stream is None:
        return 0.0
    oldest: float | None = None
    for lane in stream.lanes.values():
        record = lane.oldest_unacked()
        if record is not None and (oldest is None or record.at < oldest):
            oldest = record.at
    if oldest is None:
        return 0.0
    return dep.sim.now - oldest


def _max_lane_fill(dep: SecuredDeployment) -> float:
    stream = dep.host_stream
    if stream is None:
        return 0.0
    fill = 0.0
    for lane in stream.lanes.values():
        if lane.capacity:
            fill = max(fill, lane.depth() / lane.capacity)
    return fill


def standard_slos(dep: SecuredDeployment, plane: HealthPlane) -> None:
    """Register the standard security-SLO catalog + probes for ``dep``.

    Each entry is added only when its backing component exists; the full
    table (objective, windows, burn thresholds, signal source) is
    documented in docs/architecture.md § "Health & SLOs".
    """
    slos, health = plane.slos, plane.health
    sim = dep.sim

    # --- pipeline: time-to-enforcement --------------------------------
    health.register("pipeline")
    slos.add(
        SLO(
            name="time-to-enforcement",
            subsystem="pipeline",
            objective="95% of enforcement reactions apply within 2s of the trigger",
            target=0.95,
            fast_window=10.0,
            slow_window=60.0,
            fast_burn=4.0,
            slow_burn=1.0,
            severity=SEVERITY_DEGRADED,
            signal=_reaction_signal(dep, budget_s=2.0),
        )
    )

    # --- µmbox fleet: exposure window ---------------------------------
    if dep.manager is not None:
        health.register("mbox-fleet")
        cluster = dep.cluster
        slos.add(
            SLO(
                name="exposure-window",
                subsystem="mbox-fleet",
                objective="99% of device traffic traverses a live µmbox (no fail-open passes)",
                target=0.99,
                fast_window=10.0,
                slow_window=60.0,
                fast_burn=2.0,
                slow_burn=1.0,
                severity=SEVERITY_CRITICAL,
                signal=lambda: (cluster.tunnelled_in, cluster.fail_open_passes),
            )
        )

        def fleet_probe() -> tuple[str, str] | None:
            open_outages = dep.manager.open_outages()
            if not open_outages:
                return None
            if any(o.fail_mode == "open" for o in open_outages):
                return (HEALTH_CRITICAL, f"{len(open_outages)} umbox(es) down fail-open")
            return (HEALTH_DEGRADED, f"{len(open_outages)} umbox(es) down fail-closed")

        health.probe("mbox-fleet", fleet_probe)

    # --- control channel ----------------------------------------------
    health.register("control-channel")
    channel = dep.channel
    controller_ep = dep.CONTROLLER
    reach_tracker = slos.add(
        SLO(
            name="control-reachability",
            subsystem="control-channel",
            objective="controller endpoint reachable 99% of the time",
            target=0.99,
            fast_window=5.0,
            slow_window=30.0,
            fast_burn=10.0,
            slow_burn=2.0,
            severity=SEVERITY_DEGRADED,
            check=lambda: channel.reachable(controller_ep),
        )
    )
    slos.add(
        SLO(
            name="control-delivery",
            subsystem="control-channel",
            objective="98% of reliable control sends delivered (not given up)",
            target=0.98,
            fast_window=15.0,
            slow_window=60.0,
            fast_burn=3.0,
            slow_burn=1.0,
            severity=SEVERITY_CRITICAL,
            signal=lambda: (channel.delivered, channel.giveups),
        )
    )
    # The reachability tracker already sampled the predicate this tick;
    # the probe reads its outcome instead of re-running the check.
    health.probe(
        "control-channel",
        lambda: None
        if reach_tracker.last_ok
        else (HEALTH_DEGRADED, "controller unreachable (partition)"),
    )

    # --- streams (durable telemetry) ----------------------------------
    if dep.host_stream is not None:
        health.register("streams")
        slos.add(
            SLO(
                name="telemetry-freshness",
                subsystem="streams",
                objective="oldest unacked stream record is younger than 15s, 95% of the time",
                target=0.95,
                fast_window=10.0,
                slow_window=60.0,
                fast_burn=4.0,
                slow_burn=1.0,
                severity=SEVERITY_DEGRADED,
                check=lambda: _oldest_unacked_age(dep) <= 15.0,
                value=lambda: _oldest_unacked_age(dep),
                unit="s",
            )
        )
        slos.add(
            SLO(
                name="stream-headroom",
                subsystem="streams",
                objective="every stream lane stays under 80% of ring capacity, 95% of the time",
                target=0.95,
                fast_window=10.0,
                slow_window=60.0,
                fast_burn=4.0,
                slow_burn=1.0,
                severity=SEVERITY_DEGRADED,
                check=lambda: _max_lane_fill(dep) <= 0.8,
                value=lambda: _max_lane_fill(dep),
            )
        )

    # --- HA: failover blind window + checkpoint staleness -------------
    health.register("ha")
    blind_tracker = slos.add(
        SLO(
            name="failover-blind-window",
            subsystem="ha",
            objective="an active (non-crashed) controller exists 99% of the time",
            target=0.99,
            fast_window=5.0,
            slow_window=30.0,
            fast_burn=10.0,
            slow_burn=2.0,
            severity=SEVERITY_CRITICAL,
            check=lambda: dep.controller is not None and not dep.controller.crashed,
        )
    )
    health.probe(
        "ha",
        lambda: None
        if blind_tracker.last_ok
        else (HEALTH_CRITICAL, "no active controller"),
    )
    if dep.checkpointer is not None:
        store = dep.checkpointer.store
        period = dep.checkpoint_period
        attached_at = sim.now

        def checkpoint_age() -> float:
            latest = store.latest_at()
            ref = latest if latest is not None else attached_at
            return sim.now - ref

        slos.add(
            SLO(
                name="checkpoint-staleness",
                subsystem="ha",
                objective=f"latest checkpoint younger than {3 * period:.0f}s, 95% of the time",
                target=0.95,
                fast_window=max(10.0, 2 * period),
                slow_window=max(60.0, 12 * period),
                fast_burn=4.0,
                slow_burn=1.0,
                severity=SEVERITY_DEGRADED,
                check=lambda: checkpoint_age() <= 3 * period,
                value=checkpoint_age,
                unit="s",
            )
        )

    # --- overload: enforcing-alert delivery under shedding ------------
    if getattr(dep.controller, "ingest", None) is not None:
        health.register("overload")
        slos.add(
            SLO(
                name="enforcing-delivery",
                subsystem="overload",
                objective="99% of ENFORCING-class alerts processed (not shed)",
                target=0.99,
                fast_window=10.0,
                slow_window=60.0,
                fast_burn=2.0,
                slow_burn=1.0,
                severity=SEVERITY_CRITICAL,
                signal=_ingest_signal(dep),
            )
        )

        def shed_probe() -> tuple[str, str] | None:
            ctrl = dep.controller
            queue = getattr(ctrl, "ingest", None) if ctrl is not None else None
            if queue is not None and queue.shedding:
                return (HEALTH_DEGRADED, "ingest queue in shed mode")
            return None

        health.probe("overload", shed_probe)


def attach_health_plane(dep: SecuredDeployment, period: float = DEFAULT_PERIOD) -> HealthPlane:
    """Build, populate and start the health plane for a deployment.

    Inert (no gauges, no timers, no journal writes) when the simulator
    runs with ``observe=False``.
    """
    plane = HealthPlane(dep.sim, period=period)
    if plane.enabled:
        standard_slos(dep, plane)
        plane.start()
    return plane
