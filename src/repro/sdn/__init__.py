"""SDN substrate: flow rules, control channels, tunnels, consistent updates.

Substitutes for the paper's OpenDaylight control plane (DESIGN.md section 2).
The pieces:

- :mod:`repro.sdn.flowrule` -- Match -> Action rules installed in switches.
- :mod:`repro.sdn.channel` -- the controller <-> switch control channel,
  with configurable latency (the control plane runs *in* simulated time,
  which is what makes the responsiveness experiments of section 5.1 possible).
- :mod:`repro.sdn.tunnel` -- encapsulation of device traffic toward µmboxes.
- :mod:`repro.sdn.consistency` -- two-phase consistent updates of flow
  tables (section 5.1's "critical state ... must be handled in a consistent
  fashion").
"""

from repro.sdn.channel import ControlChannel, ControlMessage
from repro.sdn.consistency import ConsistentUpdater, UpdateReport
from repro.sdn.flowrule import Action, FlowMatch, FlowRule
from repro.sdn.tunnel import TunnelTable, detunnel, tunnel_packet

__all__ = [
    "Action",
    "ConsistentUpdater",
    "ControlChannel",
    "ControlMessage",
    "FlowMatch",
    "FlowRule",
    "TunnelTable",
    "UpdateReport",
    "detunnel",
    "tunnel_packet",
]
