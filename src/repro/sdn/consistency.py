"""Consistent flow-table updates.

Section 5.1: "critical state ... that must be handled in a consistent
fashion does change often" in IoT, unlike traditional SDN where topology is
near-static.  We implement the classic two-phase consistent-update protocol
(install the new rule set under a fresh version tag on every switch, wait
for all acknowledgements, then flip each switch's active version, then
garbage-collect the old epoch), plus a cheaper best-effort updater as the
baseline the experiments compare against.

During a two-phase update no packet is ever processed by a mixture of old
and new rules at a single switch: version filtering in
:class:`repro.netsim.switch.Switch` makes the flip atomic per switch.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from repro.sdn.flowrule import FlowRule

if TYPE_CHECKING:  # pragma: no cover
    from repro.netsim.simulator import Simulator
    from repro.netsim.switch import Switch
    from repro.sdn.channel import ControlChannel


@dataclass
class UpdateReport:
    """Outcome of one configuration push."""

    version: int
    started_at: float
    committed_at: float | None = None
    switches: int = 0
    rules_installed: int = 0
    rules_removed: int = 0
    mode: str = "two-phase"

    @property
    def duration(self) -> float | None:
        if self.committed_at is None:
            return None
        return self.committed_at - self.started_at


class ConsistentUpdater:
    """Pushes whole rule-set epochs to a set of switches.

    The updater talks to switches through the control channel so that update
    latency is borne by the simulation, not assumed free.  Switch-side
    message handling is done by direct method invocation on delivery (the
    channel models the wire; switch CPUs are not a bottleneck here).
    """

    def __init__(
        self,
        sim: "Simulator",
        channel: "ControlChannel",
        controller_name: str = "controller",
        reliable: bool = False,
    ) -> None:
        self.sim = sim
        self.channel = channel
        self.controller_name = controller_name
        #: When True, install/flip messages use the channel's at-least-once
        #: machinery (retry + dedup): a dropped flow-mod is retransmitted
        #: until it lands (epoch commits late) or the channel gives up
        #: (epoch stays open -- journaled, never silently half-applied).
        self.reliable = reliable
        self._versions = itertools.count(1)
        self.reports: list[UpdateReport] = []
        # Observability: epoch counts and the commit-latency distribution
        # (observed once per committed two-phase epoch).
        metrics = sim.metrics
        self.metric_labels = {"updater": metrics.unique(controller_name)}
        metrics.gauge(
            "updater_epochs", fn=lambda: len(self.reports), **self.metric_labels
        )
        self._c_committed = metrics.counter("updater_commits", **self.metric_labels)
        self._h_commit = metrics.histogram("epoch_commit_latency", **self.metric_labels)

    def _send_and_apply(self, switch: "Switch", apply: Callable[[], None]) -> float:
        """Model one control-channel RTT around ``apply`` on the switch.

        The message rides the control channel's RPC path, so the channel's
        fault model (drops, jitter, partitions) applies, and -- with
        ``reliable`` -- so do retransmission and receiver-side dedup:
        ``apply`` executes at most once however often the wire loses it.
        Returns the earliest simulated time at which the switch can have
        applied the change (one-way latency, no faults).
        """
        latency = self.channel.latency_to(switch.name)
        self.channel.call(
            self.controller_name,
            switch.name,
            apply,
            kind="flow-mod",
            reliable=self.reliable,
        )
        return self.sim.now + latency

    def push_two_phase(
        self,
        assignments: dict["Switch", Iterable[FlowRule]],
        on_committed: Callable[[UpdateReport], None] | None = None,
    ) -> UpdateReport:
        """Install a new epoch on every switch, then flip atomically.

        ``assignments`` maps each switch to the complete new rule set it
        should run (version tags are stamped here).  Returns the report,
        which is completed (``committed_at`` set) when the flip lands.
        """
        version = next(self._versions)
        report = UpdateReport(
            version=version,
            started_at=self.sim.now,
            switches=len(assignments),
        )
        self.reports.append(report)
        if not assignments:
            report.committed_at = self.sim.now
            self._c_committed.inc()
            self._h_commit.observe(0.0)
            self.sim.journal.record(
                "epoch-commit",
                version=report.version,
                mode=report.mode,
                switches=0,
                rules_installed=0,
                rules_removed=0,
                duration=0.0,
            )
            if on_committed:
                on_committed(report)
            return report

        acks_needed = len(assignments)
        acks = {"n": 0}

        def phase_two() -> None:
            flip_done = {"n": 0}

            def done() -> None:
                flip_done["n"] += 1
                if flip_done["n"] == acks_needed:
                    report.committed_at = self.sim.now
                    self._c_committed.inc()
                    self._h_commit.observe(report.committed_at - report.started_at)
                    self.sim.journal.record(
                        "epoch-commit",
                        version=report.version,
                        mode=report.mode,
                        switches=report.switches,
                        rules_installed=report.rules_installed,
                        rules_removed=report.rules_removed,
                        duration=report.duration,
                    )
                    if on_committed:
                        on_committed(report)

            for switch in assignments:

                def make_flip(sw: "Switch" = switch) -> None:
                    # Concurrent pushes may flip out of order: versions are
                    # monotone, so never step backwards, and garbage-collect
                    # every epoch older than the active one (including
                    # stale epochs that were superseded before activating).
                    if sw.active_version is None or version > sw.active_version:
                        sw.set_active_version(version)
                    active = sw.active_version
                    removed = sw.remove_where(
                        lambda r: r.version is not None and r.version < active
                    )
                    report.rules_removed += removed
                    done()

                self._send_and_apply(switch, make_flip)

        def phase_one_ack() -> None:
            acks["n"] += 1
            if acks["n"] == acks_needed:
                phase_two()

        for switch, rules in assignments.items():
            stamped = []
            for rule in rules:
                rule.version = version
                stamped.append(rule)
            report.rules_installed += len(stamped)

            def make_install(
                sw: "Switch" = switch, rs: list[FlowRule] = stamped
            ) -> None:
                for r in rs:
                    sw.install(r)
                # Ack travels back over the channel.
                self.sim.schedule(self.channel.latency_to(sw.name), phase_one_ack)

            self._send_and_apply(switch, make_install)

        return report

    def push_best_effort(
        self, assignments: dict["Switch", Iterable[FlowRule]]
    ) -> UpdateReport:
        """Baseline: install rules immediately with no epoching or barrier.

        Packets in flight can see mixed old/new state -- the inconsistency
        the paper warns about.  Used as the comparison arm in bench E6.
        """
        version = next(self._versions)
        report = UpdateReport(
            version=version,
            started_at=self.sim.now,
            switches=len(assignments),
            mode="best-effort",
        )
        self.reports.append(report)
        for switch, rules in assignments.items():
            materialized = list(rules)
            report.rules_installed += len(materialized)

            def make_install(
                sw: "Switch" = switch, rs: list[FlowRule] = materialized
            ) -> None:
                for r in rs:
                    r.version = None
                    sw.install(r)

            self._send_and_apply(switch, make_install)
        # Best effort "commits" as soon as the last install lands.
        max_latency = max(
            (self.channel.latency_to(sw.name) for sw in assignments), default=0.0
        )
        report.committed_at = self.sim.now + max_latency
        self.sim.journal.record(
            "epoch-commit",
            version=report.version,
            mode=report.mode,
            switches=report.switches,
            rules_installed=report.rules_installed,
            duration=report.duration,
        )
        return report
