"""Tunneling device traffic to µmboxes.

Section 2.2: "Each IoT device's first-hop edge router or wireless access
point (AP) is configured to tunnel packets to/from the device to the cluster
or an IoT router."  We model encapsulation by wrapping the original packet
in a new one addressed to the µmbox host; the inner packet rides in
``payload["inner"]``.
"""

from __future__ import annotations

from repro.netsim.packet import Packet

TUNNEL_PROTOCOL = "iotsec-tunnel"
TUNNEL_OVERHEAD_BYTES = 20


def tunnel_packet(packet: Packet, ingress: str, target: str) -> Packet:
    """Encapsulate ``packet`` toward the µmbox named ``target``.

    ``ingress`` records which switch encapsulated it, so the µmbox host can
    return the (possibly rewritten) packet to the right place.
    """
    return Packet(
        src=ingress,
        dst=target,
        protocol=TUNNEL_PROTOCOL,
        payload={"inner": packet, "ingress": ingress, "target": target},
        size=packet.size + TUNNEL_OVERHEAD_BYTES,
    )


def detunnel(packet: Packet) -> tuple[Packet, str]:
    """Unwrap a tunnelled packet; returns ``(inner, ingress_switch)``."""
    if packet.protocol != TUNNEL_PROTOCOL:
        raise ValueError(f"not a tunnel packet: {packet!r}")
    return packet.payload["inner"], packet.payload["ingress"]


def is_tunnelled(packet: Packet) -> bool:
    return packet.protocol == TUNNEL_PROTOCOL


class TunnelTable:
    """Controller-side record of which device's traffic goes to which µmbox.

    Maps device name -> µmbox name; the orchestrator compiles this into
    tunnel flow rules at the device's edge switch.
    """

    def __init__(self) -> None:
        self._by_device: dict[str, str] = {}

    def bind(self, device: str, mbox: str) -> None:
        self._by_device[device] = mbox

    def unbind(self, device: str) -> None:
        self._by_device.pop(device, None)

    def mbox_for(self, device: str) -> str | None:
        return self._by_device.get(device)

    def devices_of(self, mbox: str) -> list[str]:
        return [d for d, m in self._by_device.items() if m == mbox]

    def __len__(self) -> int:
        return len(self._by_device)

    def __contains__(self, device: str) -> bool:
        return device in self._by_device
